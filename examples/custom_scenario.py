#!/usr/bin/env python3
"""Plug a user-defined topology + congestion scheme into the harness.

This is the pluggable-scenario API end to end, without editing a single
``repro`` module:

1. register a new topology family (a two-tier *leaf-spine* fabric built from
   the public ``Network`` primitives),
2. register a new congestion-control scheme (a toy fixed-rate limiter),
3. describe an experiment as a declarative :class:`ScenarioSpec` comparing
   IRN under the new scheme against stock IRN and RoCE on that fabric,
4. sweep it -- **in parallel** -- and print the paper-style report.

Parallel workers re-import a clean registry, so this module names itself in
the ``REPRO_PLUGINS`` environment variable: the sweep layer imports the
named modules in every worker process (and in the coordinator) before
running cells, which is what makes script-registered components work with
``workers > 1``.  Because the coordinator may import this module *alongside*
the ``__main__`` execution of the same file, every registration below is
guarded to be idempotent.

Run with::

    python examples/custom_scenario.py
"""

import os

import repro.api as repro
from repro.congestion.base import RateBasedControl
from repro.sim.network import Network


# ---------------------------------------------------------------------------
# 1. A new topology family: two spines, each leaf dual-homed to both.
# ---------------------------------------------------------------------------
def build_leaf_spine(sim, config, switch_config):
    network = Network(sim)
    leaves = ("leaf0", "leaf1")
    spines = ("spine0", "spine1")
    for switch in (*leaves, *spines):
        network.add_switch(switch, config=switch_config)
    for leaf in leaves:
        for spine in spines:
            network.connect(leaf, spine, config.link_bandwidth_bps, config.link_delay_s)
    for i in range(config.num_hosts):
        host = f"h{i}"
        network.add_host(host)
        leaf = leaves[i % len(leaves)]
        network.connect(host, leaf, config.link_bandwidth_bps, config.link_delay_s)
    network.build_routing()
    return network


# ---------------------------------------------------------------------------
# 2. A new congestion scheme: clamp every flow to a fraction of line rate.
# ---------------------------------------------------------------------------
class HalfRate(RateBasedControl):
    """Toy scheme: pace every flow at a fixed fraction of line rate."""

    def __init__(self, line_rate_bps: float, fraction: float = 0.5) -> None:
        super().__init__(line_rate_bps)
        self.rate_bps = line_rate_bps * fraction
        self.clamp_rate()


def make_half_rate(line_rate_bps, base_rtt_s, params=None):
    return HalfRate(line_rate_bps)


# ---------------------------------------------------------------------------
# 3. The scenario, as data.
# ---------------------------------------------------------------------------
SPEC = repro.ScenarioSpec(
    name="leaf_spine_shootout",
    description="IRN vs RoCE vs IRN+half-rate on a dual-spine leaf-spine fabric",
    defaults={
        "topology": "leaf_spine",
        "num_hosts": 8,
        "pfc_enabled": False,
        "workload": "heavy_tailed",
        "target_load": 0.6,
        "num_flows": 120,
        "flow_size_scale": 0.2,
    },
    variants={
        "IRN": {"transport": "irn"},
        "RoCE (with PFC)": {"transport": "roce", "pfc_enabled": True},
        "IRN + half-rate": {"transport": "irn", "congestion_control": "half_rate"},
    },
    seeds=(1, 2),
)


def register() -> None:
    """Idempotent registrations (safe under __main__ + plugin double import)."""
    if "leaf_spine" not in repro.TOPOLOGIES.names():
        repro.register_topology(
            "leaf_spine",
            max_hop_count=4,   # host -> leaf -> spine -> leaf -> host
            switch_radix=lambda config: max(4, config.num_hosts // 2),
        )(build_leaf_spine)
    if "half_rate" not in repro.CONGESTION_SCHEMES.names():
        repro.register_congestion_control("half_rate")(make_half_rate)
    if "leaf_spine_shootout" not in repro.SCENARIOS.names():
        repro.register_scenario(SPEC)


register()


def main() -> None:
    print(f"Scenario {SPEC.name!r}: {SPEC.description}")
    print(f"Registered topologies: {', '.join(repro.TOPOLOGIES.names())}")
    print(f"Registered congestion schemes: {', '.join(repro.CONGESTION_SCHEMES.names())}")
    print()

    # Name this module in REPRO_PLUGINS so parallel worker processes import
    # it (re-running `register()` in their clean registries) before they run
    # cells.  When run as `python examples/custom_scenario.py`, the script
    # directory is on sys.path, so the import name is bare "custom_scenario".
    os.environ.setdefault("REPRO_PLUGINS", "custom_scenario")
    sweep = repro.load_scenario("leaf_spine_shootout").sweep(workers=2)
    print(repro.format_metric_table("leaf-spine shootout, per replica", sweep.rows))
    print()
    print(repro.format_aggregate_table(SPEC.aggregate(sweep), label_keys=("name",)))


if __name__ == "__main__":
    main()
