#!/usr/bin/env python3
"""NIC hardware budget for IRN (§6 of the paper).

Answers the implementability question for a NIC architect: how much extra
state, chip area and latency does IRN add to a RoCE NIC, and does it keep the
message rate?  The script regenerates the §6.1 state accounting, the Table 2
FPGA synthesis estimates (40 Gbps and 100 Gbps bitmaps) and the Table 1 raw
NIC comparison including an IRN row.

Run with::

    python examples/nic_hardware_budget.py
"""

from repro.hw.fpga_model import FpgaSynthesisModel
from repro.hw.nic_model import raw_performance_table
from repro.hw.nic_state import NicStateParams, compute_state_overhead


def main() -> None:
    print("=== §6.1 additional NIC state ===")
    for bandwidth_gbps in (40, 100):
        params = NicStateParams(link_bandwidth_bps=bandwidth_gbps * 1e9)
        overhead = compute_state_overhead(params)
        print(f"\n{bandwidth_gbps} Gbps links, {params.num_qps} QPs, {params.num_wqes} WQEs:")
        for label, value in overhead.as_rows():
            print(f"  {label:<32} {value}")

    print("\n=== Table 2: FPGA synthesis estimates ===")
    for bitmap_bits, label in ((128, "40 Gbps (128-bit bitmaps)"), (320, "100 Gbps (320-bit bitmaps)")):
        model = FpgaSynthesisModel(bitmap_bits)
        print(f"\n{label}:")
        print(f"  {'module':<14} {'FF %':>7} {'LUT %':>7} {'latency (ns)':>13} {'tput (Mpps)':>12}")
        for row in model.table():
            print(f"  {row.name:<14} {row.flip_flop_fraction * 100:>7.2f} "
                  f"{row.lut_fraction * 100:>7.2f} {row.latency_ns:>13.1f} "
                  f"{row.throughput_mpps:>12.1f}")
        total = model.totals()
        print(f"  {'total':<14} {total.flip_flop_fraction * 100:>7.2f} "
              f"{total.lut_fraction * 100:>7.2f} {'-':>13} {total.throughput_mpps:>12.1f}")
        print(f"  bottleneck sustains 40G line rate: {total.sustains_line_rate(40e9)}")

    print("\n=== Table 1: raw NIC performance (64B Writes, single QP) ===")
    print(f"  {'NIC':<30} {'latency (us)':>13} {'msg rate (Mpps)':>16}")
    for name, perf in raw_performance_table().items():
        print(f"  {name:<30} {perf.latency_us:>13.2f} {perf.message_rate_mpps:>16.1f}")


if __name__ == "__main__":
    main()
