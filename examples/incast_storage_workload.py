#!/usr/bin/env python3
"""Incast with background storage traffic (§4.4.3 of the paper).

A distributed storage read stripes a response across many servers that all
answer the same client at once -- the canonical best case for PFC, since only
the genuinely congestion-causing flows get paused.  This example runs the
incast with and without cross traffic and reports the request completion time
(RCT) and the impact on the background workload.

Run with::

    python examples/incast_storage_workload.py
"""

from repro.experiments import scenarios
from repro.experiments.runner import run_experiment


def run_set(label: str, configs) -> None:
    print(f"\n=== {label} ===")
    print(f"{'scheme':<22} {'incast RCT (ms)':>16} {'bg avg slowdown':>16} {'drops':>7} {'pauses':>7}")
    for name, config in configs.items():
        result = run_experiment(config)
        rct = result.incast_rct_s * 1e3 if result.incast_rct_s is not None else float("nan")
        background = result.background_summary
        bg_slowdown = background.avg_slowdown if background is not None else float("nan")
        print(f"{name:<22} {rct:>16.3f} {bg_slowdown:>16.2f} "
              f"{result.packets_dropped:>7d} {result.pause_frames:>7d}")


def main() -> None:
    # Pure incast: vary the fan-in (Figure 9's x axis).
    pure = scenarios.fig9_configs(fan_ins=(5, 10), total_bytes=2_000_000)
    print("Pure incast (no cross traffic): RCT of the striped request")
    print(f"{'scheme':<14} {'RCT (ms)':>10}")
    rcts = {}
    for name, config in pure.items():
        result = run_experiment(config)
        rcts[name] = result.incast_rct_s
        print(f"{name:<14} {result.incast_rct_s * 1e3:>10.3f}")
    for fan_in in (5, 10):
        ratio = rcts[f"IRN M={fan_in}"] / rcts[f"RoCE M={fan_in}"]
        print(f"  fan-in {fan_in}: IRN/RoCE RCT ratio = {ratio:.3f} "
              f"(paper: within a few percent of 1.0)")

    # Incast sharing the fabric with a 50%-load background workload.
    run_set(
        "Incast with cross traffic (50% background load)",
        scenarios.incast_with_cross_traffic_configs(fan_in=8, total_bytes=1_500_000, num_flows=80),
    )


if __name__ == "__main__":
    main()
