#!/usr/bin/env python3
"""Incast with background storage traffic (§4.4.3 of the paper).

A distributed storage read stripes a response across many servers that all
answer the same client at once -- the canonical best case for PFC, since only
the genuinely congestion-causing flows get paused.  This example runs the
incast with and without cross traffic and reports the request completion time
(RCT) and the impact on the background workload.

All scenarios (two fan-ins x two transports, plus the cross-traffic pair)
are independent, so they execute as one parallel sweep.

Run with::

    python examples/incast_storage_workload.py
"""

from repro.experiments import scenarios
from repro.experiments.sweep import run_sweep
from repro.metrics.report import format_incast_table


def main() -> None:
    # Pure incast: vary the fan-in (Figure 9's x axis).  Cross-traffic
    # scenarios ride along in the same sweep under a label prefix.
    fan_ins = (5, 10)
    configs = scenarios.fig9_configs(fan_ins=fan_ins, total_bytes=2_000_000)
    configs.update({
        "cross-traffic " + label: config
        for label, config in scenarios.incast_with_cross_traffic_configs(
            fan_in=8, total_bytes=1_500_000, num_flows=80
        ).items()
    })
    sweep = run_sweep(configs)

    print("Pure incast (no cross traffic): RCT of the striped request")
    print(f"{'scheme':<14} {'RCT (ms)':>10}")
    for fan_in in fan_ins:
        for transport in ("RoCE", "IRN"):
            label = f"{transport} M={fan_in}"
            print(f"{label:<14} {sweep[label].incast_rct_s * 1e3:>10.3f}")
    for fan_in in fan_ins:
        ratio = sweep[f"IRN M={fan_in}"].incast_rct_s / sweep[f"RoCE M={fan_in}"].incast_rct_s
        print(f"  fan-in {fan_in}: IRN/RoCE RCT ratio = {ratio:.3f} "
              f"(paper: within a few percent of 1.0)")

    print()
    print(format_incast_table(
        "Incast with cross traffic (50% background load)",
        {label: row for label, row in sweep.rows.items() if label.startswith("cross-traffic")},
    ))


if __name__ == "__main__":
    main()
