#!/usr/bin/env python3
"""Quickstart: compare IRN (without PFC) against RoCE (with PFC).

This reproduces the headline comparison of the paper (Figure 1) on a scaled-
down fat-tree: a heavy-tailed RPC/storage workload at 70% load, ECMP load
balancing, buffers of twice the bandwidth-delay product.

Everything goes through :mod:`repro.api`: the scenario is resolved by name
from the registry, and one ``sweep()`` call runs every cell in parallel with
completed results cached on disk -- re-running this script is instant, and
editing one scenario only re-runs that scenario.  Delete the cache directory
(or run with ``--no-cache``) to force fresh simulations.

The same pipeline is one shell command: ``python -m repro run fig1``.

Run with::

    python examples/quickstart.py [--no-cache]
"""

import sys

import repro.api as repro

CACHE_DIR = ".sweep-cache/quickstart"


def main() -> None:
    cache = None if "--no-cache" in sys.argv[1:] else repro.ResultCache(CACHE_DIR)
    print("Comparing IRN (no PFC) with RoCE (PFC) on a k=4 fat-tree, 70% load")
    sweep = repro.load_scenario("fig1").sweep(seeds=[1], num_flows=120, cache=cache)
    if cache is not None and sweep.cache_hits:
        print(f"({sweep.cache_hits}/{len(sweep)} scenarios served from {CACHE_DIR}; "
              f"re-render any time with: python -m repro.metrics.report {CACHE_DIR})")

    print(repro.format_metric_table("Figure 1 (scaled down)", sweep.rows))

    irn = sweep["IRN (without PFC) [seed=1]"]
    roce = sweep["RoCE (with PFC) [seed=1]"]
    improvement = (1.0 - irn.avg_slowdown / roce.avg_slowdown) * 100.0
    print(f"\nIRN improves average slowdown by {improvement:.0f}% while running on a lossy "
          f"fabric ({irn.packets_dropped} packets dropped, zero PFC pauses).")


if __name__ == "__main__":
    main()
