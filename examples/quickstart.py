#!/usr/bin/env python3
"""Quickstart: compare IRN (without PFC) against RoCE (with PFC).

This reproduces the headline comparison of the paper (Figure 1) on a scaled-
down fat-tree: a heavy-tailed RPC/storage workload at 70% load, ECMP load
balancing, buffers of twice the bandwidth-delay product.

Run with::

    python examples/quickstart.py
"""

from repro.core.factory import TransportKind
from repro.experiments import scenarios
from repro.experiments.runner import run_experiment


def main() -> None:
    configs = scenarios.fig1_configs(num_flows=120)
    print("Comparing IRN (no PFC) with RoCE (PFC) on a k=4 fat-tree, 70% load")
    print(f"{'scheme':<22} {'avg slowdown':>12} {'avg FCT (ms)':>14} {'99% FCT (ms)':>14} "
          f"{'drops':>7} {'pauses':>7}")
    results = {}
    for label, config in configs.items():
        result = run_experiment(config)
        results[label] = result
        print(f"{label:<22} {result.summary.avg_slowdown:>12.2f} "
              f"{result.summary.avg_fct * 1e3:>14.4f} {result.summary.tail_fct * 1e3:>14.4f} "
              f"{result.packets_dropped:>7d} {result.pause_frames:>7d}")

    irn = results["IRN (without PFC)"]
    roce = results["RoCE (with PFC)"]
    improvement = (1.0 - irn.summary.avg_slowdown / roce.summary.avg_slowdown) * 100.0
    print(f"\nIRN improves average slowdown by {improvement:.0f}% while running on a lossy "
          f"fabric ({irn.packets_dropped} packets dropped, zero PFC pauses).")


if __name__ == "__main__":
    main()
