"""Results-service smoke check: real server process, real worker, exact bytes.

CI runs this to prove the ``repro serve`` recipe end to end on Figure 1:

1. warm a sweep cache (``fig1 --quick``, small flows) -- the one simulation
   phase of the whole script;
2. start a real ``python -m repro serve`` process on an ephemeral port;
3. GET ``/scenarios``, ``/scenarios/fig1/aggregate`` and
   ``/scenarios/fig1/cdf`` and sanity-check the JSON shapes (including that
   a second aggregate GET is answered from the warm in-process copy);
4. assert ``?format=text`` is **byte-identical** to the offline
   ``python -m repro.metrics.report`` CLI over the same cache;
5. spool the same cells through a queue directory, start one real
   ``python -m repro worker --drain`` process, stream
   ``/scenarios/fig1/follow`` until ``done``, and assert the streamed final
   aggregate equals the serial batch aggregate bit for bit.

Usage::

    PYTHONPATH=src python examples/serve_smoke.py [work-dir]
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import urllib.request

from repro.api import TaskQueue, aggregate_rows, load_scenario, run_sweep

SCENARIO = "fig1"
FLOWS = 20  # small enough for CI, enough traffic for non-empty digests


def launch(args, **kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", *args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, **kwargs,
    )


def get(port, path):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}", timeout=180) as resp:
        return resp.read()


def main() -> int:
    work_dir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="repro-serve-")
    cache_dir = os.path.join(work_dir, "cache")
    queue_dir = os.path.join(work_dir, "queue")
    failures = []

    print(f"== warm the cache: {SCENARIO} --quick --flows {FLOWS} ==")
    warm = launch(["repro", "run", SCENARIO, "--quick", "--flows", str(FLOWS),
                   "--workers", "1", "--cache", cache_dir])
    warm_out, _ = warm.communicate(timeout=600)
    if warm.returncode != 0:
        print(warm_out)
        print("FAILED: cache warm-up run failed")
        return 1

    spec = load_scenario(SCENARIO)
    configs = spec.replicated(seeds=[1], num_flows=FLOWS)
    for label, config in configs.items():
        TaskQueue(queue_dir).enqueue(label, config)

    print("== start a real `repro serve` process (ephemeral port) ==")
    server = launch(["repro", "serve", cache_dir, "--queue-dir", queue_dir,
                     "--port", "0", "--quiet"])
    banner = server.stdout.readline()
    match = re.search(r"http://[\d.]+:(\d+)", banner)
    if not match:
        print(f"FAILED: no listen banner, got: {banner!r}")
        server.kill()
        return 1
    port = int(match.group(1))
    print(f"   {banner.strip()}")

    try:
        catalog = json.loads(get(port, "/scenarios"))
        if not any(entry["name"] == SCENARIO for entry in catalog["scenarios"]):
            failures.append(f"{SCENARIO} missing from /scenarios catalog")

        aggregate = json.loads(get(port, f"/scenarios/{SCENARIO}/aggregate"))
        if aggregate["replica_rows"] != len(configs):
            failures.append(f"aggregate saw {aggregate['replica_rows']} rows, "
                            f"expected {len(configs)}")
        if len(aggregate["records"]) != 2:
            failures.append(f"expected 2 cells, got {len(aggregate['records'])}")
        rewarmed = json.loads(get(port, f"/scenarios/{SCENARIO}/aggregate"))
        if rewarmed["warm"] is not True:
            failures.append("second aggregate GET was not served warm")
        if rewarmed["records"] != aggregate["records"]:
            failures.append("warm records differ from the freshly built ones")

        cdf = json.loads(get(port, f"/scenarios/{SCENARIO}/cdf"))
        if not cdf["cells"] or any(not cell["points"] for cell in cdf["cells"]):
            failures.append("cdf endpoint returned no tail points")

        print("== text parity: HTTP bytes vs the offline report CLI ==")
        http_text = get(port, f"/scenarios/{SCENARIO}/aggregate?format=text&cdf=1")
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        cli = subprocess.run(
            [sys.executable, "-m", "repro.metrics.report", cache_dir, "--cdf"],
            capture_output=True, env=env,
        )
        if http_text != cli.stdout:
            failures.append("?format=text differs from the report CLI bytes")
        else:
            print(f"   byte-identical ({len(http_text)} bytes)")

        print("== /follow over a live 1-worker queue drain ==")
        worker = launch(["repro", "worker", queue_dir, "--drain",
                         "--cache", os.path.join(queue_dir, "cache")])
        stream = get(
            port,
            f"/scenarios/{SCENARIO}/follow?poll=0.1&expect={len(configs)}&timeout=300",
        ).decode()
        worker_out, _ = worker.communicate(timeout=600)
        if worker.returncode != 0:
            print(worker_out)
            failures.append("worker process failed")
        events = []
        for block in stream.split("\n\n"):
            if block.strip():
                lines = block.splitlines()
                events.append((lines[0].removeprefix("event: "),
                               json.loads(lines[1].removeprefix("data: "))))
        kinds = [event for event, _ in events]
        if kinds.count("update") != len(configs):
            failures.append(f"expected {len(configs)} update events, saw {kinds}")
        if not events or events[-1][0] != "done":
            failures.append(f"stream did not end with done: {kinds}")
        else:
            done = events[-1][1]
            serial = run_sweep(configs, workers=1, cache=cache_dir)
            batch = aggregate_rows(list(serial.rows.values()), by=spec.aggregate_by)
            streamed = done["records"]
            if json.loads(json.dumps(batch)) != streamed:
                failures.append(
                    "streamed final aggregate differs from the serial batch:\n"
                    f"  serial:   {batch}\n  streamed: {streamed}")
            else:
                print(f"   done: {done['completed']} rows streamed; final "
                      f"aggregate matches the serial batch bit for bit")
    finally:
        server.terminate()
        server.wait(timeout=30)

    if failures:
        print("FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("OK: catalog/aggregate/cdf served, text parity byte-exact, "
          "follow stream converged to the serial batch aggregate.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
