#!/usr/bin/env python3
"""RDMA verbs over a lossy, reordering path (§5 of the paper).

This example drives the verbs layer directly: a requester posts Writes with
immediate data, Sends, a Read and an Atomic, and the packets are delivered to
the responder in a deliberately scrambled order (simulating the reordering
and retransmissions IRN produces on a lossy fabric).  It then shows that

* every payload lands at exactly the right address (out-of-order DMA
  placement with per-packet RETH headers),
* completions are signalled in posting order with correct immediate data,
* the MSN/2-bitmap machinery only fires completions once every earlier
  packet has arrived (the premature-CQE path).

Run with::

    python examples/rdma_verbs_out_of_order.py
"""

import random

from repro.rdma import (
    MemoryRegion,
    OpType,
    ReceiveWqe,
    Requester,
    RequesterConfig,
    RequestWqe,
    Responder,
    ResponderConfig,
)


def main() -> None:
    rng = random.Random(42)
    mtu = 64
    requester = Requester(RequesterConfig(mtu_bytes=mtu))
    responder = Responder(ResponderConfig(mtu_bytes=mtu))

    heap = MemoryRegion(4096, rkey=7)
    responder.register_memory(heap)
    responder.register_memory(MemoryRegion(4096, rkey=0))   # Send sink buffers

    # Post receive WQEs for the Sends / Write-with-immediate.
    for i in range(4):
        responder.post_receive(ReceiveWqe(buffer_addr=1024 + 256 * i, length=256))

    # A mix of operations, as a key-value store might issue them.
    payload = bytes(rng.randrange(256) for _ in range(300))
    requester.post(RequestWqe(op=OpType.WRITE_WITH_IMM, local_data=payload,
                              remote_addr=0, rkey=7, immediate=0xBEEF))
    requester.post(RequestWqe(op=OpType.SEND, local_data=b"get key=42"))
    requester.post(RequestWqe(op=OpType.READ, length=128, remote_addr=0, rkey=7))
    requester.post(RequestWqe(op=OpType.ATOMIC_FETCH_ADD, remote_addr=512, rkey=7, atomic_add=3))

    # Scramble the request packets to emulate loss recovery reordering.
    packets = requester.pop_outgoing()
    rng.shuffle(packets)
    print(f"Delivering {len(packets)} request packets in scrambled order...")
    for packet in packets:
        for response in responder.on_request(packet):
            requester.on_packet(response)

    print(f"Responder: expected_psn={responder.expected_psn}, MSN={responder.msn}, "
          f"out-of-order arrivals={responder.ooo_arrivals}")
    assert heap.read(0, len(payload)) == payload, "Write payload corrupted"
    print("Write payload placed correctly despite out-of-order delivery.")

    print("\nRequester completions (posting order preserved):")
    for cqe in requester.poll_cq():
        extra = ""
        if cqe.op is OpType.READ:
            extra = f", read back {len(cqe.read_data)} bytes"
        if cqe.op is OpType.ATOMIC_FETCH_ADD:
            extra = f", original value {cqe.atomic_result}"
        print(f"  {cqe.op.name:<18} bytes={cqe.byte_len:<5} {extra}")

    print("\nResponder completions (receive side):")
    for cqe in responder.poll_cq():
        print(f"  {cqe.op.name:<18} bytes={cqe.byte_len:<5} immediate={cqe.immediate}")

    print(f"\nAtomic target now holds {heap.read_u64(512)} (fetch-and-add of 3 applied once).")


if __name__ == "__main__":
    main()
