"""Queue-backend smoke check: two real workers, one queue dir, exact answers.

CI runs this to prove the multi-machine recipe end to end on Figure 1:

1. run the scenario serially (the reference answer);
2. run it again through the ``queue`` backend with **two** worker processes
   (each a real ``python -m repro worker <dir> --drain``) draining one queue
   directory, streaming partial aggregates as part-files land;
3. assert the streamed sweep saw partial progress before completion and that
   its final ``aggregate_rows`` output -- fingerprints, pooled digest tails
   and all -- is identical to the serial run.

With ``--resume`` (pointed at a queue directory a previous invocation
populated) it instead proves the durability story: the coordinator must
serve every cell from the part-files already on disk without simulating
anything -- ``run_experiment`` is replaced with a tripwire for the duration.

Usage::

    PYTHONPATH=src python examples/queue_smoke.py [queue-dir] [--resume]
"""

from __future__ import annotations

import sys
import tempfile

from repro.api import QueueBackend, load_scenario

SCENARIO = "fig1"
FLOWS = 30  # enough traffic for non-trivial tails, small enough for CI


def main() -> int:
    args = [arg for arg in sys.argv[1:] if arg != "--resume"]
    resume = "--resume" in sys.argv[1:]
    queue_dir = args[0] if args else tempfile.mkdtemp(prefix="repro-queue-")
    spec = load_scenario(SCENARIO)

    print(f"== serial reference: {SCENARIO} x seeds {list(spec.seeds or ())} ==")
    serial = spec.sweep(workers=1, cache=None, num_flows=FLOWS)
    serial_agg = spec.aggregate(serial)

    if resume:
        print(f"== resume: coordinator must serve everything from {queue_dir}/parts ==")
        import repro.experiments.runner as runner_mod

        def tripwire(config):
            raise AssertionError(f"resume simulated {config.name!r} instead of "
                                 "serving its part-file")

        runner_mod.run_experiment = tripwire
        backend = QueueBackend(queue_dir, workers=0, poll_interval_s=0.05,
                               wait_timeout_s=60)
        resumed = spec.sweep(cache=None, backend=backend, num_flows=FLOWS)
        if resumed.rows != serial.rows or spec.aggregate(resumed) != serial_agg:
            print("FAILED: resumed rows/aggregates differ from serial")
            return 1
        print(f"OK: all {len(resumed.rows)} rows resumed from durable parts, "
              "zero simulations.")
        return 0

    print(f"== queue backend: 2 workers draining {queue_dir} ==")
    snapshots = []

    def follow(progress, row):
        record = progress.last_update or {}
        snapshots.append(progress.completed)
        print(
            f"  [{progress.completed}/{progress.total}] {row.label}"
            f"  ->  {row.name}: replicas={record.get('replicas')}"
            f" fct_p99_s={record.get('fct_p99_s', float('nan')):.6f}"
        )

    backend = QueueBackend(queue_dir, workers=2, poll_interval_s=0.05, wait_timeout_s=600)
    queued = spec.sweep(cache=None, backend=backend, progress=follow, num_flows=FLOWS)
    queued_agg = spec.aggregate(queued)

    failures = []
    if queued.workers_used != 2:
        failures.append(f"expected 2 workers, used {queued.workers_used}")
    if snapshots != list(range(1, len(serial.rows) + 1)):
        failures.append(f"progress stream incomplete: {snapshots}")
    if len(snapshots) >= 2 and snapshots[-2] >= snapshots[-1]:
        failures.append("no partial aggregate was observed before completion")
    if queued.rows != serial.rows:
        failures.append("queue rows differ from serial rows")
    if sorted(r.fingerprint for r in queued.rows.values()) != sorted(
        r.fingerprint for r in serial.rows.values()
    ):
        failures.append("fingerprints differ")
    if queued_agg != serial_agg:
        failures.append(f"aggregates differ:\n  serial: {serial_agg}\n  queue:  {queued_agg}")

    if failures:
        print("FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1

    print(f"OK: {len(queued.rows)} rows via 2 queue workers; streamed aggregate "
          f"matches the serial run exactly ({len(queued_agg)} cells).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
