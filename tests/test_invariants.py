"""Property-based tests: data-structure invariants and the fuzz harness.

Two layers:

* **Unit-level properties** (hypothesis over the data structures): bitmaps,
  receivers, RDMA placement, statistics, workload distributions.
* **Whole-simulation invariants** (hypothesis over fuzz seeds): every
  generated case -- arbitrary topology, workload and fault schedule from
  :mod:`repro.verify` -- must satisfy the invariant contract on *both*
  engine cores (see ``docs/architecture.md``).  Each invariant gets its own
  test so a violation names the property, not just the seed.

The fuzz layer keeps ``max_examples`` small: this is tier-1's fast smoke
slice.  CI's dedicated fuzz job (``python -m repro.verify``) runs the same
harness at 50+ cases per PR and deeper nightly via ``REPRO_FUZZ_BUDGET``.
"""

import random
from functools import lru_cache

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.irn import IrnConfig, IrnReceiver
from repro.core.transport import Flow
from repro.hw.bitmap import RingBitmap, TwoBitmap
from repro.metrics.stats import percentile
from repro.rdma import (
    MemoryRegion,
    OpType,
    Requester,
    RequesterConfig,
    RequestWqe,
    Responder,
    ResponderConfig,
)
from repro.sim.engine import Simulator
from repro.sim.packet import Packet, PacketType
from repro.verify import FuzzCase, check_case, known_bad_case, run_case
from repro.workload.distributions import HeavyTailedSizes, UniformSizes

ENGINE_CORES = ("calendar", "heap")


# ---------------------------------------------------------------------------
# Bitmap invariants
# ---------------------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=127), max_size=60))
def test_ring_bitmap_occupancy_matches_distinct_sets(seqs):
    bitmap = RingBitmap(128)
    for seq in seqs:
        bitmap.set(seq)
    assert bitmap.occupancy() == len(set(seqs))
    assert bitmap.set_bits() == sorted(set(seqs))


@given(st.lists(st.integers(min_value=0, max_value=127), max_size=60))
def test_ring_bitmap_find_first_zero_is_first_gap(seqs):
    bitmap = RingBitmap(128)
    present = set(seqs)
    for seq in seqs:
        bitmap.set(seq)
    expected = 0
    while expected in present:
        expected += 1
    assert bitmap.find_first_zero() == min(expected, 128)


@given(
    st.lists(st.integers(min_value=0, max_value=127), max_size=60),
    st.integers(min_value=0, max_value=128),
)
def test_ring_bitmap_shift_conserves_bits(seqs, shift_by):
    bitmap = RingBitmap(128)
    for seq in seqs:
        bitmap.set(seq)
    before = bitmap.occupancy()
    shifted_out = bitmap.shift(shift_by)
    assert shifted_out + bitmap.occupancy() == before
    assert bitmap.head_seq == shift_by


@given(st.lists(st.tuples(st.integers(0, 63), st.booleans()), max_size=40))
def test_two_bitmap_advance_never_exceeds_recorded(entries):
    bitmap = TwoBitmap(64)
    recorded = {}
    for seq, last in entries:
        if seq not in recorded:
            bitmap.record(seq, last)
            recorded[seq] = last
    passed, messages = bitmap.advance()
    assert messages <= passed
    assert passed <= len(recorded)


# ---------------------------------------------------------------------------
# Receiver invariants: any arrival order delivers the flow exactly once
# ---------------------------------------------------------------------------
@settings(deadline=None, max_examples=40)
@given(st.permutations(list(range(12))), st.booleans())
def test_irn_receiver_completes_under_any_arrival_order(order, duplicate_some):
    sim = Simulator()
    flow = Flow(flow_id=1, src="h0", dst="h1", size_bytes=12_000)
    receiver = IrnReceiver(sim, flow, IrnConfig(mtu_bytes=1000))
    completions = []
    receiver.on_complete = lambda f, t: completions.append(t)
    for index, psn in enumerate(order):
        packet = Packet(PacketType.DATA, 1, "h0", "h1", psn=psn, payload_bytes=1000)
        receiver.on_data(packet, now=index * 1e-6)
        if duplicate_some and psn % 3 == 0:
            receiver.on_data(packet, now=index * 1e-6 + 1e-9)
    assert receiver.completed
    assert receiver.expected_psn == 12
    assert receiver.delivered_packets == 12
    assert len(completions) == 1


@settings(deadline=None, max_examples=40)
@given(st.permutations(list(range(10))))
def test_irn_receiver_cumulative_ack_is_monotone(order):
    sim = Simulator()
    flow = Flow(flow_id=1, src="h0", dst="h1", size_bytes=10_000)
    receiver = IrnReceiver(sim, flow, IrnConfig(mtu_bytes=1000))
    last_cum = 0
    for index, psn in enumerate(order):
        packet = Packet(PacketType.DATA, 1, "h0", "h1", psn=psn, payload_bytes=1000)
        for response in receiver.on_data(packet, now=index * 1e-6):
            assert response.cumulative_ack >= last_cum
            last_cum = max(last_cum, response.cumulative_ack)
    assert receiver.expected_psn == 10


# ---------------------------------------------------------------------------
# RDMA responder placement invariant: payload bytes always land at the right
# address, no matter how the packets are ordered.
# ---------------------------------------------------------------------------
@settings(deadline=None, max_examples=25)
@given(
    st.integers(min_value=1, max_value=600),
    st.integers(min_value=0, max_value=200),
    st.randoms(use_true_random=False),
)
def test_rdma_write_placement_is_order_independent(length, addr, rng):
    requester = Requester(RequesterConfig(mtu_bytes=64))
    responder = Responder(ResponderConfig(mtu_bytes=64))
    region = MemoryRegion(1024, rkey=1)
    responder.register_memory(region)
    payload = bytes((i * 7 + 3) % 256 for i in range(length))
    packets = requester.post(
        RequestWqe(op=OpType.WRITE, local_data=payload, remote_addr=addr, rkey=1)
    )
    rng.shuffle(packets)
    for packet in packets:
        responder.on_request(packet)
    assert region.read(addr, length) == payload
    assert responder.expected_psn == len(packets)


# ---------------------------------------------------------------------------
# Statistics and workload invariants
# ---------------------------------------------------------------------------
@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=200),
       st.floats(min_value=0, max_value=1))
def test_percentile_bounded_by_min_and_max(values, fraction):
    result = percentile(values, fraction)
    assert min(values) <= result <= max(values)


@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=200))
def test_percentile_is_monotone_in_fraction(values):
    assert percentile(values, 0.2) <= percentile(values, 0.8)


@given(st.integers(min_value=0, max_value=2 ** 32), st.floats(min_value=0.05, max_value=1.0))
def test_heavy_tailed_samples_stay_in_band_ranges(seed, scale):
    dist = HeavyTailedSizes(scale=scale)
    rng = random.Random(seed)
    lows = min(band[1] for band in dist.bands)
    highs = max(band[2] for band in dist.bands)
    for _ in range(20):
        sample = dist.sample(rng)
        assert 1 <= sample <= highs + 1
        assert sample >= min(1, lows)


@given(st.integers(min_value=0, max_value=2 ** 32))
def test_uniform_samples_within_bounds(seed):
    dist = UniformSizes(1_000, 9_000)
    rng = random.Random(seed)
    for _ in range(20):
        assert 1_000 <= dist.sample(rng) <= 9_000


# ===========================================================================
# Whole-simulation invariants over fuzzed cases (repro.verify)
# ===========================================================================
#: Small seed band so the cached outcomes below are shared across the
#: per-invariant tests; derandomize keeps tier-1 byte-stable run to run.
fuzz_seeds = st.integers(min_value=0, max_value=31)
FUZZ_SETTINGS = dict(deadline=None, max_examples=8, derandomize=True)


@lru_cache(maxsize=256)
def _fuzz_outcome(seed, queue):
    """One execution per (seed, core), shared by every invariant test."""
    return FuzzCase.generate(seed), run_case(FuzzCase.generate(seed), queue=queue)


@pytest.mark.parametrize("queue", ENGINE_CORES)
@settings(**FUZZ_SETTINGS)
@given(seed=fuzz_seeds)
def test_fuzz_clock_is_monotone(queue, seed):
    _, outcome = _fuzz_outcome(seed, queue)
    times = [time for time, _ in outcome.trace]
    assert times == sorted(times)


@pytest.mark.parametrize("queue", ENGINE_CORES)
@settings(**FUZZ_SETTINGS)
@given(seed=fuzz_seeds)
def test_fuzz_event_accounting_identity(queue, seed):
    _, outcome = _fuzz_outcome(seed, queue)
    assert outcome.events_scheduled == (
        outcome.events_processed + outcome.events_cancelled + outcome.pending_events
    )


@pytest.mark.parametrize("queue", ENGINE_CORES)
@settings(**FUZZ_SETTINGS)
@given(seed=fuzz_seeds)
def test_fuzz_lossless_ports_never_drop(queue, seed):
    case, outcome = _fuzz_outcome(seed, queue)
    if case.pfc_enabled:
        # Fault drops count: the fuzzer never aims packet-touching faults
        # at a lossless fabric, so both counters must stay zero.
        assert outcome.switch_drops + outcome.fault_drops == 0
    else:
        assert outcome.fault_drops >= 0


@pytest.mark.parametrize("queue", ENGINE_CORES)
@settings(**FUZZ_SETTINGS)
@given(seed=fuzz_seeds)
def test_fuzz_packet_conservation_at_drain(queue, seed):
    _, outcome = _fuzz_outcome(seed, queue)
    if not outcome.drained:
        pytest.skip("run hit the event valve; conservation needs full drain")
    assert outcome.packets_committed == (
        outcome.packets_delivered
        + outcome.switch_drops
        + outcome.fault_drops
        + outcome.queued_packets
    )


@pytest.mark.parametrize("queue", ENGINE_CORES)
@settings(**FUZZ_SETTINGS)
@given(seed=fuzz_seeds)
def test_fuzz_per_qp_delivery_order_preserved(queue, seed):
    _, outcome = _fuzz_outcome(seed, queue)
    assert outcome.ordering_violations == []


@pytest.mark.parametrize("queue", ENGINE_CORES)
@settings(**FUZZ_SETTINGS)
@given(seed=fuzz_seeds)
def test_fuzz_completions_are_sane(queue, seed):
    _, outcome = _fuzz_outcome(seed, queue)
    assert outcome.flows_completed <= outcome.flows_total
    assert outcome.completions_recorded == outcome.flows_completed


@settings(**FUZZ_SETTINGS)
@given(seed=fuzz_seeds)
def test_fuzz_calendar_and_heap_execute_identical_orders(seed):
    _, calendar = _fuzz_outcome(seed, "calendar")
    _, heap = _fuzz_outcome(seed, "heap")
    assert calendar.trace == heap.trace
    assert calendar.events_scheduled == heap.events_scheduled
    assert calendar.events_processed == heap.events_processed
    assert calendar.packets_delivered == heap.packets_delivered
    assert calendar.switch_drops == heap.switch_drops
    assert calendar.fault_drops == heap.fault_drops
    assert calendar.deadlock_events == heap.deadlock_events
    assert calendar.time_to_deadlock_s == heap.time_to_deadlock_s


def test_known_bad_case_is_caught_by_losslessness_invariant():
    """The seeded known-bad config (corruption injected on a lossless link)
    must trip the losslessness invariant -- the harness's proof it can still
    detect the bug class it exists for."""
    report = check_case(known_bad_case())
    assert not report.passed
    assert any("losslessness violated" in v for v in report.violations)
