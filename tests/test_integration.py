"""End-to-end integration tests: full simulations on small fabrics.

These exercise the complete stack -- workload generation, transports,
congestion control, switches with PFC/ECN, metric collection -- and assert
the paper's qualitative claims at miniature scale.
"""

import pytest

from repro.core.factory import TransportKind
from repro.experiments import scenarios
from repro.experiments.config import (
    CongestionControl,
    ExperimentConfig,
    TopologyKind,
    WorkloadKind,
)
from repro.experiments.runner import run_experiment
from repro.workload.incast import IncastParams


def small_config(**overrides):
    """A fast star-topology experiment used across the integration tests."""
    base = dict(
        topology=TopologyKind.STAR,
        num_hosts=6,
        link_bandwidth_bps=10e9,
        link_delay_s=1e-6,
        workload=WorkloadKind.HEAVY_TAILED,
        flow_size_scale=0.1,
        num_flows=60,
        target_load=0.8,
        seed=11,
        max_sim_time_s=2.0,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


class TestBasicCompletion:
    @pytest.mark.parametrize("transport", [
        TransportKind.IRN, TransportKind.ROCE, TransportKind.IWARP,
        TransportKind.IRN_GO_BACK_N, TransportKind.IRN_NO_BDPFC, TransportKind.IRN_NO_SACK,
    ])
    def test_all_transports_complete_all_flows_without_pfc(self, transport):
        result = run_experiment(small_config(transport=transport, pfc_enabled=False))
        assert result.completion_fraction() == 1.0
        assert result.summary.num_flows == 60

    @pytest.mark.parametrize("transport", [TransportKind.IRN, TransportKind.ROCE])
    def test_all_transports_complete_all_flows_with_pfc(self, transport):
        result = run_experiment(small_config(transport=transport, pfc_enabled=True))
        assert result.completion_fraction() == 1.0

    @pytest.mark.parametrize("cc", [
        CongestionControl.TIMELY, CongestionControl.DCQCN,
        CongestionControl.AIMD, CongestionControl.DCTCP,
    ])
    def test_irn_completes_under_every_congestion_control(self, cc):
        result = run_experiment(small_config(transport=TransportKind.IRN,
                                             congestion_control=cc, pfc_enabled=False))
        assert result.completion_fraction() == 1.0

    def test_results_are_deterministic_for_a_seed(self):
        a = run_experiment(small_config())
        b = run_experiment(small_config())
        assert a.summary.avg_fct == b.summary.avg_fct
        assert a.packets_dropped == b.packets_dropped

    def test_different_seeds_change_the_workload(self):
        a = run_experiment(small_config(seed=11))
        b = run_experiment(small_config(seed=12))
        assert a.summary.avg_fct != b.summary.avg_fct


class TestPaperClaims:
    def test_pfc_prevents_drops_and_lossy_fabric_drops(self):
        lossless = run_experiment(small_config(transport=TransportKind.ROCE, pfc_enabled=True,
                                               target_load=0.9))
        lossy = run_experiment(small_config(transport=TransportKind.ROCE, pfc_enabled=False,
                                            target_load=0.9))
        assert lossless.packets_dropped == 0
        assert lossless.pause_frames > 0
        assert lossy.packets_dropped > 0
        assert lossy.pause_frames == 0

    def test_roce_requires_pfc(self):
        """Figure 3: go-back-N RoCE degrades badly on a lossy fabric."""
        with_pfc = run_experiment(small_config(transport=TransportKind.ROCE, pfc_enabled=True,
                                               target_load=0.9))
        without_pfc = run_experiment(small_config(transport=TransportKind.ROCE, pfc_enabled=False,
                                                  target_load=0.9))
        assert without_pfc.summary.avg_fct > with_pfc.summary.avg_fct
        assert without_pfc.retransmissions > with_pfc.retransmissions

    def test_irn_tolerates_losing_pfc(self):
        """Figure 2's qualitative claim: IRN does not need a lossless fabric."""
        with_pfc = run_experiment(small_config(transport=TransportKind.IRN, pfc_enabled=True,
                                               target_load=0.9))
        without_pfc = run_experiment(small_config(transport=TransportKind.IRN, pfc_enabled=False,
                                                  target_load=0.9))
        # Losing PFC costs IRN at most a small factor (the paper shows it
        # actually helps; at miniature scale we only require "no collapse").
        assert without_pfc.summary.avg_fct <= 1.5 * with_pfc.summary.avg_fct

    def test_irn_beats_roce_without_pfc(self):
        """SACK recovery plus BDP-FC must beat go-back-N on a lossy fabric.

        Summed over seed replicas, like the retransmission claim below: at
        miniature scale a single seed's FCT ordering is queueing noise (the
        two transports sit within a few percent on clean seeds), while the
        aggregate is dominated by the seeds where go-back-N melts down --
        which is exactly the paper's point.
        """
        irn_fct = roce_fct = 0.0
        irn_rtx = roce_rtx = 0
        for seed in (7, 10, 11, 12, 13):
            irn = run_experiment(small_config(transport=TransportKind.IRN,
                                              pfc_enabled=False, target_load=0.9, seed=seed))
            roce = run_experiment(small_config(transport=TransportKind.ROCE,
                                               pfc_enabled=False, target_load=0.9, seed=seed))
            irn_fct += irn.summary.avg_fct
            roce_fct += roce.summary.avg_fct
            irn_rtx += irn.retransmissions
            roce_rtx += roce.retransmissions
        assert irn_fct < roce_fct
        assert irn_rtx < roce_rtx

    def test_sack_recovery_retransmits_less_than_go_back_n(self):
        """Figure 7's mechanism: go-back-N wastes bandwidth on redundant data.

        Loss counts at miniature scale are a handful of packets per run, so
        the claim is asserted on a sum over seed replicas rather than one
        draw (a single seed can invert a difference this small).
        """
        sack = gbn = 0
        for seed in (7, 10, 11):
            # Shallow port buffers force the drops the comparison needs:
            # with ACK coalescing on by default, the miniature hub no longer
            # overflows at 0.9 load on its default (2x BDP) buffers.
            sack += run_experiment(small_config(transport=TransportKind.IRN,
                                                pfc_enabled=False, target_load=0.9,
                                                buffer_bytes_per_port=6000,
                                                seed=seed)).retransmissions
            gbn += run_experiment(small_config(transport=TransportKind.IRN_GO_BACK_N,
                                               pfc_enabled=False, target_load=0.9,
                                               buffer_bytes_per_port=6000,
                                               seed=seed)).retransmissions
        assert gbn > sack

    def test_bdp_fc_reduces_queueing_or_drops(self):
        with_cap = run_experiment(small_config(transport=TransportKind.IRN, pfc_enabled=False,
                                               target_load=0.9))
        without_cap = run_experiment(small_config(transport=TransportKind.IRN_NO_BDPFC,
                                                  pfc_enabled=False, target_load=0.9))
        assert with_cap.packets_dropped <= without_cap.packets_dropped

    def test_congestion_control_reduces_drops_without_pfc(self):
        none = run_experiment(small_config(transport=TransportKind.IRN, pfc_enabled=False,
                                           target_load=0.9))
        dcqcn = run_experiment(small_config(transport=TransportKind.IRN, pfc_enabled=False,
                                            target_load=0.9,
                                            congestion_control=CongestionControl.DCQCN))
        assert dcqcn.packets_dropped <= none.packets_dropped

    def test_worst_case_overheads_cost_only_a_few_percent(self):
        plain = run_experiment(small_config(transport=TransportKind.IRN, pfc_enabled=False))
        overhead = run_experiment(small_config(transport=TransportKind.IRN, pfc_enabled=False,
                                               worst_case_overheads=True))
        assert overhead.summary.avg_fct <= 1.25 * plain.summary.avg_fct


class TestIncastIntegration:
    def incast_config(self, transport, pfc, fan_in=4):
        return small_config(
            transport=transport,
            pfc_enabled=pfc,
            workload=WorkloadKind.NONE,
            num_flows=0,
            incast=IncastParams(total_bytes=400_000, fan_in=fan_in, destination="h0"),
        )

    def test_incast_completes_and_reports_rct(self):
        result = run_experiment(self.incast_config(TransportKind.IRN, pfc=False))
        assert result.incast_rct_s is not None
        assert result.incast_rct_s > 0

    def test_irn_rct_is_comparable_to_roce_with_pfc(self):
        """Figure 9: disabling PFC costs IRN only a few percent on incast."""
        irn = run_experiment(self.incast_config(TransportKind.IRN, pfc=False))
        roce = run_experiment(self.incast_config(TransportKind.ROCE, pfc=True))
        assert irn.incast_rct_s <= 1.3 * roce.incast_rct_s

    def test_incast_with_cross_traffic_reports_both_metrics(self):
        config = small_config(
            transport=TransportKind.IRN,
            pfc_enabled=False,
            target_load=0.5,
            num_flows=40,
            incast=IncastParams(total_bytes=300_000, fan_in=3, destination="h0",
                                start_time=1e-4),
        )
        result = run_experiment(config)
        assert result.incast_rct_s is not None
        assert result.background_summary is not None
        assert result.background_summary.num_flows > 0


class TestFatTreeIntegration:
    def test_small_fat_tree_run_matches_fig1_direction(self):
        configs = scenarios.fig1_configs(num_flows=60, seed=3)
        irn = run_experiment(configs["IRN (without PFC)"])
        roce = run_experiment(configs["RoCE (with PFC)"])
        assert irn.completion_fraction() == 1.0
        assert roce.completion_fraction() == 1.0
        # IRN must be at least competitive with RoCE+PFC (the paper shows
        # a 6-83% win; tiny runs can be noisy so allow near-parity).
        assert irn.summary.avg_slowdown <= 1.2 * roce.summary.avg_slowdown

    def test_ecmp_spreads_flows_across_core_switches(self):
        config = scenarios.default_config(num_flows=80, seed=5)
        result = run_experiment(config)
        # At least two core switches should have forwarded traffic.
        # (Forwarding statistics live on the Switch objects, which are not
        # retained, so use the aggregate as a sanity check.)
        assert result.packets_forwarded > 0

    def test_packet_spray_keeps_irn_correct(self):
        # IRN's OOO tolerance means per-packet load balancing still delivers
        # every flow (the §7 "reordering due to load balancing" discussion).
        from repro.experiments import runner as runner_module

        config = scenarios.default_config(num_flows=40, seed=7)
        result = run_experiment(config)
        assert result.completion_fraction() == 1.0
