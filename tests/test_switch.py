"""Tests for the input-queued switch: forwarding, drops, PFC, ECN."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.packet import Packet, PacketType
from repro.sim.pfc import PfcConfig
from repro.sim.switch import EcnConfig, SwitchConfig
from repro.topology.simple import build_star


def make_star(num_hosts=3, pfc_enabled=True, buffer_bytes=10_000, headroom=3_000,
              ecn=None, bandwidth=8e9, delay=1e-6):
    sim = Simulator(seed=1)
    config = SwitchConfig(
        buffer_bytes_per_port=buffer_bytes,
        pfc=PfcConfig(enabled=pfc_enabled, headroom_bytes=headroom),
        ecn=ecn or EcnConfig(enabled=False),
    )
    network = build_star(sim, num_hosts, bandwidth_bps=bandwidth, link_delay_s=delay,
                         switch_config=config)
    return sim, network


def data_packet(flow_id, src, dst, psn=0, payload=1000):
    return Packet(PacketType.DATA, flow_id, src, dst, psn=psn, payload_bytes=payload,
                  header_bytes=0)


class TestForwarding:
    def test_packet_is_forwarded_to_destination_host(self):
        sim, network = make_star()
        switch = network.switches["s0"]
        in_link = network.link_between("h0", "s0")
        switch.receive(data_packet(1, "h0", "h1"), in_link)
        sim.run_until_idle()
        assert network.hosts["h1"].data_packets_received == 1
        assert switch.packets_forwarded == 1

    def test_unknown_destination_raises(self):
        sim, network = make_star()
        switch = network.switches["s0"]
        in_link = network.link_between("h0", "s0")
        with pytest.raises(KeyError):
            switch.receive(data_packet(1, "h0", "h99"), in_link)

    def test_round_robin_across_input_ports(self):
        sim, network = make_star(num_hosts=4)
        switch = network.switches["s0"]
        # Two senders, one destination: enqueue bursts from both inputs.
        for psn in range(5):
            switch.receive(data_packet(1, "h0", "h3", psn), network.link_between("h0", "s0"))
            switch.receive(data_packet(2, "h1", "h3", psn), network.link_between("h1", "s0"))
        sim.run_until_idle()
        assert network.hosts["h3"].data_packets_received == 10
        assert switch.packets_dropped == 0

    def test_total_queued_bytes_drains_to_zero(self):
        sim, network = make_star()
        switch = network.switches["s0"]
        for psn in range(3):
            switch.receive(data_packet(1, "h0", "h1", psn), network.link_between("h0", "s0"))
        assert switch.total_queued_bytes() >= 0
        sim.run_until_idle()
        assert switch.total_queued_bytes() == 0


class TestDropsWithoutPfc:
    def test_buffer_overflow_drops_packets(self):
        sim, network = make_star(pfc_enabled=False, buffer_bytes=3_000)
        switch = network.switches["s0"]
        in_link = network.link_between("h0", "s0")
        for psn in range(10):
            switch.receive(data_packet(1, "h0", "h1", psn), in_link)
        assert switch.packets_dropped > 0
        assert switch.bytes_dropped == switch.packets_dropped * 1000
        sim.run_until_idle()
        # The packets that were accepted are all delivered.
        assert network.hosts["h1"].data_packets_received == 10 - switch.packets_dropped

    def test_no_pause_frames_when_pfc_disabled(self):
        sim, network = make_star(pfc_enabled=False, buffer_bytes=3_000)
        switch = network.switches["s0"]
        in_link = network.link_between("h0", "s0")
        for psn in range(10):
            switch.receive(data_packet(1, "h0", "h1", psn), in_link)
        sim.run_until_idle()
        assert switch.pause_frames_sent == 0


class TestPfcBehaviour:
    def test_pause_frame_sent_when_threshold_crossed(self):
        sim, network = make_star(pfc_enabled=True, buffer_bytes=5_000, headroom=2_000)
        switch = network.switches["s0"]
        in_link = network.link_between("h0", "s0")
        for psn in range(4):
            switch.receive(data_packet(1, "h0", "h1", psn), in_link)
        assert switch.pause_frames_sent == 1

    def test_resume_frame_sent_after_draining(self):
        sim, network = make_star(pfc_enabled=True, buffer_bytes=5_000, headroom=2_000)
        switch = network.switches["s0"]
        in_link = network.link_between("h0", "s0")
        for psn in range(4):
            switch.receive(data_packet(1, "h0", "h1", psn), in_link)
        sim.run_until_idle()
        assert switch.resume_frames_sent >= 1

    def test_pause_frame_pauses_upstream_host(self):
        sim, network = make_star(pfc_enabled=True, buffer_bytes=5_000, headroom=2_000)
        switch = network.switches["s0"]
        host = network.hosts["h0"]
        in_link = network.link_between("h0", "s0")
        for psn in range(4):
            switch.receive(data_packet(1, "h0", "h1", psn), in_link)
        # Deliver the pause frame.
        sim.run(until=3e-6)
        assert host.uplink_port.paused or host.uplink_port.pause_count > 0

    def test_pfc_prevents_drops_under_burst(self):
        sim, network = make_star(pfc_enabled=True, buffer_bytes=6_000, headroom=3_000)
        switch = network.switches["s0"]
        host = network.hosts["h0"]

        class BurstSender:
            flow_id = 1

            def __init__(self):
                self.sent = 0

            def next_packet(self, now):
                if self.sent >= 30:
                    return None
                packet = data_packet(1, "h0", "h1", self.sent)
                self.sent += 1
                return packet

            def on_control(self, packet, now):
                pass

        host.register_sender(BurstSender())
        sim.run_until_idle()
        assert switch.packets_dropped == 0
        assert network.hosts["h1"].data_packets_received == 30


class TestEcnMarking:
    def test_step_marking_above_threshold(self):
        ecn = EcnConfig(enabled=True, kmin_bytes=2_000, kmax_bytes=4_000, step_marking=True)
        sim, network = make_star(buffer_bytes=50_000, ecn=ecn)
        switch = network.switches["s0"]
        in_link = network.link_between("h0", "s0")
        packets = [data_packet(1, "h0", "h1", psn) for psn in range(8)]
        for packet in packets:
            switch.receive(packet, in_link)
        assert any(packet.ecn for packet in packets)
        # The first packets (queue below kmin) must not be marked.
        assert not packets[0].ecn
        assert not packets[1].ecn

    def test_red_marking_is_probabilistic_and_bounded(self):
        ecn = EcnConfig(enabled=True, kmin_bytes=1_000, kmax_bytes=3_000, pmax=1.0)
        sim, network = make_star(buffer_bytes=50_000, ecn=ecn)
        switch = network.switches["s0"]
        in_link = network.link_between("h0", "s0")
        packets = [data_packet(1, "h0", "h1", psn) for psn in range(10)]
        for packet in packets:
            switch.receive(packet, in_link)
        # Deep in the queue (>= kmax) marking probability reaches 1.
        assert packets[-1].ecn

    def test_control_packets_never_marked(self):
        ecn = EcnConfig(enabled=True, kmin_bytes=0, kmax_bytes=1, pmax=1.0)
        sim, network = make_star(buffer_bytes=50_000, ecn=ecn)
        switch = network.switches["s0"]
        in_link = network.link_between("h0", "s0")
        ack = Packet(PacketType.ACK, 1, "h0", "h1")
        switch.receive(data_packet(1, "h0", "h1", 0), in_link)
        switch.receive(ack, in_link)
        assert not ack.ecn

    def test_no_marking_when_disabled(self):
        sim, network = make_star(buffer_bytes=50_000)
        switch = network.switches["s0"]
        in_link = network.link_between("h0", "s0")
        packets = [data_packet(1, "h0", "h1", psn) for psn in range(10)]
        for packet in packets:
            switch.receive(packet, in_link)
        assert not any(packet.ecn for packet in packets)
        assert switch.packets_marked == 0
