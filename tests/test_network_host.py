"""Tests for the Network container and the Host NIC scheduler."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.packet import Packet, PacketType
from repro.topology.simple import build_star


def data_packet(flow_id, src, dst, psn=0):
    return Packet(PacketType.DATA, flow_id, src, dst, psn=psn, payload_bytes=1000, header_bytes=0)


class ListSender:
    """A minimal SenderQP that transmits a fixed number of packets."""

    def __init__(self, flow_id, src, dst, count):
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.count = count
        self.sent = 0
        self.controls = []

    def has_packet_ready(self, now):
        return self.sent < self.count

    def next_packet(self, now):
        if self.sent >= self.count:
            return None
        packet = data_packet(self.flow_id, self.src, self.dst, self.sent)
        self.sent += 1
        return packet

    def on_control(self, packet, now):
        self.controls.append(packet)


class EchoReceiver:
    """A ReceiverQP that ACKs every packet."""

    def __init__(self, flow_id, src, dst):
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.received = []

    def on_data(self, packet, now):
        self.received.append(packet)
        return [Packet(PacketType.ACK, self.flow_id, self.dst, self.src, psn=packet.psn)]


class TestNetworkConstruction:
    def test_duplicate_names_rejected(self):
        network = Network(Simulator())
        network.add_host("a")
        with pytest.raises(ValueError):
            network.add_host("a")
        with pytest.raises(ValueError):
            network.add_switch("a")

    def test_node_lookup(self):
        network = Network(Simulator())
        network.add_host("h")
        network.add_switch("s")
        assert network.node("h") is network.hosts["h"]
        assert network.node("s") is network.switches["s"]
        with pytest.raises(KeyError):
            network.node("missing")

    def test_connect_creates_two_directed_links(self):
        network = Network(Simulator())
        network.add_host("h")
        network.add_switch("s")
        network.connect("h", "s", 10e9, 1e-6)
        assert len(network.links) == 2
        assert network.link_between("h", "s").dst.name == "s"
        assert network.link_between("s", "h").dst.name == "h"

    def test_path_properties(self):
        sim = Simulator()
        network = build_star(sim, 3, bandwidth_bps=10e9, link_delay_s=2e-6)
        hops, bandwidth, delay = network.path_properties("h0", "h1")
        assert hops == 2
        assert bandwidth == 10e9
        assert delay == pytest.approx(4e-6)


class TestHostScheduling:
    def test_end_to_end_transfer_with_acks(self):
        sim = Simulator()
        network = build_star(sim, 2)
        sender = ListSender(1, "h0", "h1", count=5)
        receiver = EchoReceiver(1, "h0", "h1")
        network.hosts["h0"].register_sender(sender)
        network.hosts["h1"].register_receiver(receiver)
        sim.run_until_idle()
        assert len(receiver.received) == 5
        assert len(sender.controls) == 5

    def test_round_robin_between_flows(self):
        sim = Simulator()
        network = build_star(sim, 3)
        host = network.hosts["h0"]
        sender_a = ListSender(1, "h0", "h1", count=10)
        sender_b = ListSender(2, "h0", "h2", count=10)
        host.register_sender(sender_a)
        host.register_sender(sender_b)
        network.hosts["h1"].register_receiver(EchoReceiver(1, "h0", "h1"))
        network.hosts["h2"].register_receiver(EchoReceiver(2, "h0", "h2"))
        # Run only long enough for roughly half the packets to be sent.
        sim.run(until=9e-6)
        # Round-robin keeps the two flows within one departure batch of each
        # other (flow A's registration kick commits a full batch before B
        # registers; after that the pulls alternate A/B).
        from repro.sim.link import DEFAULT_PORT_BATCH

        assert abs(sender_a.sent - sender_b.sent) <= DEFAULT_PORT_BATCH

    def test_control_packets_take_priority(self):
        sim = Simulator()
        network = build_star(sim, 2)
        host = network.hosts["h0"]
        sender = ListSender(1, "h0", "h1", count=3)
        host.uplink_port.max_batch_packets = 1  # one pull per packet
        ack = Packet(PacketType.ACK, 9, "h0", "h1")
        host._control_queue.append(ack)
        host.register_sender(sender)
        # The registration kick must drain the control queue before any data.
        assert host.control_packets_sent == 1
        assert sender.sent == 0
        sim.run_until_idle()
        assert sender.sent == 3

    def test_deregistered_sender_is_skipped(self):
        sim = Simulator()
        network = build_star(sim, 2)
        host = network.hosts["h0"]
        sender = ListSender(1, "h0", "h1", count=100)
        host.register_sender(sender)
        host.deregister_sender(1)
        sim.run_until_idle()
        # At most the departure batch the registration kick already
        # committed to the wire; nothing after the deregistration.
        assert sender.sent <= host.uplink_port.max_batch_packets

    def test_unknown_flow_data_is_ignored(self):
        sim = Simulator()
        network = build_star(sim, 2)
        switch = network.switches["s0"]
        switch.receive(data_packet(77, "h0", "h1"), network.link_between("h0", "s0"))
        sim.run_until_idle()
        assert network.hosts["h1"].data_packets_received == 1

    def test_network_statistics_helpers(self):
        sim = Simulator()
        network = build_star(sim, 2)
        assert network.total_dropped_packets() == 0
        assert network.total_pause_frames() == 0
        assert network.total_forwarded_packets() == 0
