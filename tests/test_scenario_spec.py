"""Tests for the declarative scenario layer: ScenarioSpec, the SCENARIOS
registry, the repro.api facade and the ``python -m repro`` CLI."""

import json

import pytest

import repro.api as api
from repro.core.factory import TransportKind
from repro.experiments import scenarios
from repro.experiments.config import CongestionControl, ExperimentConfig
from repro.experiments.spec import SCENARIOS, ScenarioSpec, register_scenario, scenario
from repro.registry import UnknownNameError

#: Every figure/table scenario shipped with the paper presets.
PAPER_SCENARIOS = (
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "no_sack",
    "fig8", "fig9", "incast_cross_traffic", "fig10", "fig11", "fig12",
    "table3", "table4", "table5", "table6", "table7", "table8", "table9",
)


class TestScenarioRegistry:
    def test_every_paper_scenario_is_resolvable_by_name(self):
        for name in PAPER_SCENARIOS:
            spec = api.load_scenario(name)
            assert spec.name == name
            assert spec.configs()  # every spec builds at least one cell

    def test_list_scenarios_covers_the_presets(self):
        names = api.list_scenarios()
        for name in PAPER_SCENARIOS:
            assert name in names

    def test_unknown_scenario_lists_valid_names(self):
        with pytest.raises(UnknownNameError, match="fig8"):
            api.load_scenario("fig99")

    def test_register_scenario_roundtrip(self):
        spec = ScenarioSpec(
            name="test_tmp_scenario",
            variants={"only": {"transport": "irn"}},
        )
        register_scenario(spec)
        try:
            assert scenario("test_tmp_scenario") is spec
        finally:
            SCENARIOS.unregister("test_tmp_scenario")


class TestSpecConfigs:
    def test_flat_labels_match_legacy_builders(self):
        assert list(scenario("fig1").configs()) == [
            "RoCE (with PFC)", "IRN (without PFC)"
        ]
        assert list(scenario("fig8").configs())[:3] == [
            "RoCE (with PFC) +none", "IRN with PFC +none", "IRN (without PFC) +none"
        ]
        assert list(scenario("fig9").configs())[:2] == ["RoCE M=5", "IRN M=5"]

    def test_table_shape(self):
        table = scenario("table3").tables()
        assert list(table) == ["30%", "50%", "70%", "90%"]
        for row in table.values():
            assert set(row) == {"IRN", "IRN+PFC", "RoCE+PFC"}
        with pytest.raises(ValueError, match="has no rows"):
            scenario("fig1").tables()

    def test_overrides_apply_to_every_cell_and_win(self):
        configs = scenario("fig1").configs(num_flows=7, pfc_enabled=False)
        assert all(c.num_flows == 7 for c in configs.values())
        # Call overrides beat variant overrides, like the legacy builders.
        assert not configs["RoCE (with PFC)"].pfc_enabled

    def test_unknown_override_key_rejected(self):
        with pytest.raises(ValueError, match="unknown ExperimentConfig field"):
            scenario("fig1").configs(num_flowz=7)
        with pytest.raises(ValueError, match="unknown ExperimentConfig field"):
            ScenarioSpec(name="bad", variants={"v": {"not_a_field": 1}})

    def test_fingerprints_match_handwritten_construction(self):
        # The acceptance bar: spec-built configs fingerprint identically to
        # the pre-redesign builders (reconstructed literally here), so warm
        # sweep caches stay valid across the API redesign.
        legacy_roce = ExperimentConfig(
            name="roce-none-pfc",
            topology="fat_tree",
            fat_tree_k=4,
            link_bandwidth_bps=10e9,
            link_delay_s=1e-6,
            pfc_enabled=True,
            transport=TransportKind.ROCE,
            congestion_control=CongestionControl.NONE,
            workload="heavy_tailed",
            target_load=0.7,
            num_flows=scenarios.DEFAULT_NUM_FLOWS,
            flow_size_scale=scenarios.DEFAULT_SIZE_SCALE,
            seed=1,
        )
        spec_roce = scenario("fig1").configs()["RoCE (with PFC)"]
        assert spec_roce.fingerprint() == legacy_roce.fingerprint()
        assert spec_roce.name == legacy_roce.name

    def test_legacy_wrappers_delegate_to_specs(self):
        wrapper = scenarios.fig8_configs(num_flows=50)
        direct = scenario("fig8").configs(num_flows=50)
        assert list(wrapper) == list(direct)
        assert [c.fingerprint() for c in wrapper.values()] == [
            c.fingerprint() for c in direct.values()
        ]

    def test_fig9_names_and_incast(self):
        configs = scenario("fig9").configs()
        assert configs["RoCE M=10"].name == "incast-roce-m10"
        assert configs["IRN M=15"].incast.fan_in == 15
        assert configs["IRN M=15"].workload_name == "none"
        # The legacy wrapper keeps the paper's larger default fan-ins.
        assert "IRN M=20" in scenarios.fig9_configs()

    def test_every_scenario_default_is_runnable(self):
        # The CLI exposes every registered scenario at its defaults; each
        # cell must at least generate a valid flow list on its topology
        # (fig9's M=20 on a 16-host fabric used to crash here).
        from repro.experiments.runner import _build_network, _generate_flows
        from repro.sim.engine import Simulator

        for name in PAPER_SCENARIOS:
            for label, config in scenario(name).configs(num_flows=4).items():
                network = _build_network(Simulator(seed=1), config)
                flows = _generate_flows(config, network)
                assert flows, f"{name}:{label} generated no flows"

    def test_table_cell_names_are_unique(self):
        configs = scenario("table3").configs()
        names = [c.name for c in configs.values()]
        assert len(set(names)) == len(names)

    @pytest.mark.parametrize("name", PAPER_SCENARIOS)
    def test_every_scenario_has_unique_cell_names(self, name):
        # Names define aggregation cells: two distinct cells sharing a name
        # would silently average together when seed replicas are folded.
        configs = scenario(name).configs()
        names = [c.name for c in configs.values()]
        assert len(set(names)) == len(names), names

    def test_auto_name_collisions_get_variant_suffix(self):
        # fig12's two IRN variants differ only in the overheads flag, which
        # the transport-cc-pfc auto name does not encode.
        configs = scenario("fig12").configs()
        assert configs["IRN (no overheads)"].name == (
            "irn-none-nopfc|IRN (no overheads)"
        )
        assert configs["IRN (worst-case overheads)"].name == (
            "irn-none-nopfc|IRN (worst-case overheads)"
        )
        # Unambiguous cells keep the plain historical name.
        assert configs["RoCE (with PFC)"].name == "roce-none-pfc"

    def test_spec_aggregate_keeps_distinct_flat_cells_apart(self):
        spec = ScenarioSpec(
            name="test_name_collision",
            defaults={"topology": "star", "num_hosts": 4, "workload": "fixed",
                      "fixed_size_bytes": 20_000, "max_sim_time_s": 1.0,
                      "pfc_enabled": False},
            variants={"small": {"num_flows": 4}, "large": {"num_flows": 8}},
            seeds=(1, 2),
        )
        sweep = spec.sweep(workers=1)
        records = spec.aggregate(sweep)
        assert len(records) == 2  # not silently merged into one cell
        assert all(record["replicas"] == 2 for record in records)


class TestSpecSerialization:
    @pytest.mark.parametrize("name", PAPER_SCENARIOS)
    def test_json_roundtrip_preserves_spec_and_configs(self, name):
        spec = scenario(name)
        payload = json.dumps(spec.to_dict())          # must be JSON-safe
        rebuilt = ScenarioSpec.from_dict(json.loads(payload))
        assert rebuilt == spec
        original = spec.configs()
        restored = rebuilt.configs()
        assert list(original) == list(restored)
        assert [c.fingerprint() for c in original.values()] == [
            c.fingerprint() for c in restored.values()
        ]

    def test_enum_overrides_normalize_to_json(self):
        spec = ScenarioSpec(
            name="enum_spec",
            variants={"v": {"transport": TransportKind.ROCE,
                            "congestion_control": CongestionControl.TIMELY}},
        )
        assert spec.variants["v"]["transport"] == "roce"
        json.dumps(spec.to_dict())  # round-trippable despite enum input

    def test_from_dict_rejects_extra_keys(self):
        with pytest.raises(TypeError):
            ScenarioSpec.from_dict({"name": "x", "variants": {"v": {}}, "bogus": 1})


class TestSeedsAndSweep:
    def test_replicated_expands_spec_seeds(self):
        spec = scenario("fig8")
        assert spec.seeds == (1, 2, 3)
        replicas = spec.replicated(num_flows=10)
        assert len(replicas) == 3 * len(spec.variants)
        assert "RoCE (with PFC) +none [seed=2]" in replicas
        assert replicas["RoCE (with PFC) +none [seed=2]"].seed == 2
        # Replicas share their cell's name, so they aggregate together.
        names = {label: c.name for label, c in replicas.items()
                 if label.startswith("RoCE (with PFC) +none")}
        assert len(set(names.values())) == 1

    def test_seeds_as_int_means_one_through_n(self):
        replicas = scenario("fig1").replicated(seeds=2, num_flows=10)
        seeds = {c.seed for c in replicas.values()}
        assert seeds == {1, 2}

    def test_no_seeds_means_no_expansion(self):
        # Every registered paper scenario now carries a seed axis, so build a
        # seedless spec directly.
        spec = ScenarioSpec(
            name="seedless",
            variants={"A": {"transport": "irn"}, "B": {"transport": "roce"}},
        )
        configs = spec.replicated(num_flows=10)
        assert list(configs) == list(spec.configs())

    def test_explicit_seed_override_disables_default_axis(self):
        # A pinned seed=9 must actually run, not be silently replaced by the
        # spec's (1, 2, 3) axis.
        configs = scenario("fig1").replicated(num_flows=10, seed=9)
        assert all(c.seed == 9 for c in configs.values())
        assert list(configs) == list(scenario("fig1").configs())
        # An explicit seeds= argument still wins over the override.
        expanded = scenario("fig1").replicated(seeds=2, num_flows=10, seed=9)
        assert {c.seed for c in expanded.values()} == {1, 2}

    def test_spec_sweep_runs_end_to_end(self, tmp_path):
        spec = ScenarioSpec(
            name="test_sweep_spec",
            defaults={"topology": "star", "num_hosts": 4, "workload": "fixed",
                      "fixed_size_bytes": 20_000, "num_flows": 4,
                      "max_sim_time_s": 1.0, "pfc_enabled": False},
            variants={"IRN": {"transport": "irn"},
                      "RoCE": {"transport": "roce", "pfc_enabled": True}},
            seeds=(1, 2),
        )
        sweep = spec.sweep(workers=1, cache=tmp_path / "cache")
        assert len(sweep) == 4
        records = spec.aggregate(sweep)
        assert {record["name"] for record in records} == {
            "irn-none-nopfc", "roce-none-pfc"
        }
        for record in records:
            assert record["replicas"] == 2
            assert record["avg_slowdown_ci95"] >= 0.0
        # Second sweep is fully cache-served.
        again = spec.sweep(workers=1, cache=tmp_path / "cache")
        assert again.runs_executed == 0

    def test_keep_flow_records_flows_through_spec(self):
        spec = ScenarioSpec(
            name="test_records_spec",
            defaults={"topology": "star", "num_hosts": 4, "workload": "fixed",
                      "fixed_size_bytes": 20_000, "num_flows": 4,
                      "max_sim_time_s": 1.0, "keep_flow_records": False},
            variants={"IRN": {"transport": "irn", "pfc_enabled": False}},
        )
        (config,) = spec.configs().values()
        assert config.keep_flow_records is False
        from repro.experiments.runner import run_experiment

        result = run_experiment(config)
        assert result.collector.keep_records is False
        assert result.collector.records == []
        # Streaming summaries and rows still work without records.
        assert result.summary.num_flows == 4
        assert result.to_row().fct_digest is not None


class TestCli:
    def test_run_tiny_scenario_serial_no_cache(self, capsys):
        from repro.__main__ import main

        code = main([
            "run", "fig1", "--flows", "12", "--seeds", "1",
            "--workers", "1", "--no-cache",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 runs (2 simulated, 0 from cache" in out
        assert "RoCE (with PFC) [seed=1]" in out

    def test_run_unknown_scenario_fails_helpfully(self, capsys):
        from repro.__main__ import main

        code = main(["run", "not_a_scenario"])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().out

    def test_list_names_every_scenario(self, capsys):
        from repro.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in PAPER_SCENARIOS:
            assert name in out

    def test_name_override_warns_about_pooled_aggregates(self, capsys):
        from repro.__main__ import main

        code = main([
            "run", "fig1", "--flows", "8", "--seeds", "1",
            "--workers", "1", "--no-cache", "--set", "name=x",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "every cell the same name" in out

    def test_row_axis_override_warns(self, capsys):
        from repro.__main__ import main

        code = main([
            "run", "table5", "--flows", "8", "--seeds", "1",
            "--workers", "1", "--no-cache", "--set", "fat_tree_k=4",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "collapses table5's row sweep" in out

    def test_set_overrides_parse_json_and_strings(self):
        from repro.__main__ import _parse_set_overrides

        parsed = _parse_set_overrides(["target_load=0.9", "workload=uniform"])
        assert parsed == {"target_load": 0.9, "workload": "uniform"}
        with pytest.raises(SystemExit):
            _parse_set_overrides(["missing-equals"])