"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulator


class TestScheduling:
    def test_starts_at_time_zero(self):
        sim = Simulator()
        assert sim.now == 0.0

    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3e-6, order.append, "c")
        sim.schedule(1e-6, order.append, "a")
        sim.schedule(2e-6, order.append, "b")
        sim.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_run_fifo(self):
        sim = Simulator()
        order = []
        for label in "abcde":
            sim.schedule(1e-6, order.append, label)
        sim.run_until_idle()
        assert order == list("abcde")

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        sim.schedule(5e-6, lambda: None)
        sim.run_until_idle()
        assert sim.now == pytest.approx(5e-6)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        times = []
        sim.schedule_at(2e-6, lambda: times.append(sim.now))
        sim.run_until_idle()
        assert times == [pytest.approx(2e-6)]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1e-6, lambda: None)

    def test_scheduling_in_the_past_rejected(self):
        sim = Simulator()
        sim.schedule(1e-6, lambda: None)
        sim.run_until_idle()
        with pytest.raises(ValueError):
            sim.schedule_at(0.0, lambda: None)

    def test_events_can_schedule_more_events(self):
        sim = Simulator()
        seen = []

        def chain(depth):
            seen.append(depth)
            if depth < 5:
                sim.schedule(1e-6, chain, depth + 1)

        sim.schedule(0.0, chain, 0)
        sim.run_until_idle()
        assert seen == list(range(6))
        assert sim.now == pytest.approx(5e-6)


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        sim = Simulator()
        ran = []
        event = sim.schedule(1e-6, ran.append, "x")
        event.cancel()
        sim.run_until_idle()
        assert ran == []

    def test_cancel_via_simulator_helper(self):
        sim = Simulator()
        ran = []
        event = sim.schedule(1e-6, ran.append, "x")
        sim.cancel(event)
        sim.run_until_idle()
        assert ran == []

    def test_cancel_none_is_noop(self):
        sim = Simulator()
        sim.cancel(None)

    def test_other_events_unaffected_by_cancellation(self):
        sim = Simulator()
        ran = []
        event = sim.schedule(1e-6, ran.append, "a")
        sim.schedule(2e-6, ran.append, "b")
        event.cancel()
        sim.run_until_idle()
        assert ran == ["b"]


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        ran = []
        sim.schedule(1e-6, ran.append, "a")
        sim.schedule(10e-6, ran.append, "b")
        sim.run(until=5e-6)
        assert ran == ["a"]
        assert sim.now == pytest.approx(5e-6)
        sim.run_until_idle()
        assert ran == ["a", "b"]

    def test_run_until_advances_clock_when_queue_is_empty(self):
        sim = Simulator()
        sim.run(until=1e-3)
        assert sim.now == pytest.approx(1e-3)

    def test_max_events_limits_execution(self):
        sim = Simulator()
        ran = []
        for i in range(10):
            sim.schedule(i * 1e-6, ran.append, i)
        sim.run(max_events=3)
        assert ran == [0, 1, 2]

    def test_stop_terminates_the_loop(self):
        sim = Simulator()
        ran = []
        sim.schedule(1e-6, ran.append, "a")
        sim.schedule(2e-6, sim.stop)
        sim.schedule(3e-6, ran.append, "b")
        sim.run_until_idle()
        assert ran == ["a"]

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(i * 1e-6, lambda: None)
        sim.run_until_idle()
        assert sim.events_processed == 4

    def test_rng_is_deterministic_per_seed(self):
        values_a = Simulator(seed=5).rng.random()
        values_b = Simulator(seed=5).rng.random()
        values_c = Simulator(seed=6).rng.random()
        assert values_a == values_b
        assert values_a != values_c
