"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulator


class TestScheduling:
    def test_starts_at_time_zero(self):
        sim = Simulator()
        assert sim.now == 0.0

    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3e-6, order.append, "c")
        sim.schedule(1e-6, order.append, "a")
        sim.schedule(2e-6, order.append, "b")
        sim.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_run_fifo(self):
        sim = Simulator()
        order = []
        for label in "abcde":
            sim.schedule(1e-6, order.append, label)
        sim.run_until_idle()
        assert order == list("abcde")

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        sim.schedule(5e-6, lambda: None)
        sim.run_until_idle()
        assert sim.now == pytest.approx(5e-6)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        times = []
        sim.schedule_at(2e-6, lambda: times.append(sim.now))
        sim.run_until_idle()
        assert times == [pytest.approx(2e-6)]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1e-6, lambda: None)

    def test_scheduling_in_the_past_rejected(self):
        sim = Simulator()
        sim.schedule(1e-6, lambda: None)
        sim.run_until_idle()
        with pytest.raises(ValueError):
            sim.schedule_at(0.0, lambda: None)

    def test_events_can_schedule_more_events(self):
        sim = Simulator()
        seen = []

        def chain(depth):
            seen.append(depth)
            if depth < 5:
                sim.schedule(1e-6, chain, depth + 1)

        sim.schedule(0.0, chain, 0)
        sim.run_until_idle()
        assert seen == list(range(6))
        assert sim.now == pytest.approx(5e-6)


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        sim = Simulator()
        ran = []
        event = sim.schedule(1e-6, ran.append, "x")
        event.cancel()
        sim.run_until_idle()
        assert ran == []

    def test_cancel_via_simulator_helper(self):
        sim = Simulator()
        ran = []
        event = sim.schedule(1e-6, ran.append, "x")
        sim.cancel(event)
        sim.run_until_idle()
        assert ran == []

    def test_cancel_none_is_noop(self):
        sim = Simulator()
        sim.cancel(None)

    def test_other_events_unaffected_by_cancellation(self):
        sim = Simulator()
        ran = []
        event = sim.schedule(1e-6, ran.append, "a")
        sim.schedule(2e-6, ran.append, "b")
        event.cancel()
        sim.run_until_idle()
        assert ran == ["b"]


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        ran = []
        sim.schedule(1e-6, ran.append, "a")
        sim.schedule(10e-6, ran.append, "b")
        sim.run(until=5e-6)
        assert ran == ["a"]
        assert sim.now == pytest.approx(5e-6)
        sim.run_until_idle()
        assert ran == ["a", "b"]

    def test_run_until_advances_clock_when_queue_is_empty(self):
        sim = Simulator()
        sim.run(until=1e-3)
        assert sim.now == pytest.approx(1e-3)

    def test_max_events_limits_execution(self):
        sim = Simulator()
        ran = []
        for i in range(10):
            sim.schedule(i * 1e-6, ran.append, i)
        sim.run(max_events=3)
        assert ran == [0, 1, 2]

    def test_stop_terminates_the_loop(self):
        sim = Simulator()
        ran = []
        sim.schedule(1e-6, ran.append, "a")
        sim.schedule(2e-6, sim.stop)
        sim.schedule(3e-6, ran.append, "b")
        sim.run_until_idle()
        assert ran == ["a"]

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(i * 1e-6, lambda: None)
        sim.run_until_idle()
        assert sim.events_processed == 4

    def test_rng_is_deterministic_per_seed(self):
        values_a = Simulator(seed=5).rng.random()
        values_b = Simulator(seed=5).rng.random()
        values_c = Simulator(seed=6).rng.random()
        assert values_a == values_b
        assert values_a != values_c


class TestCancelledEventAccounting:
    def test_cancelled_pops_counted_separately(self):
        sim = Simulator()
        ran = []
        keep = sim.schedule(1e-6, ran.append, "a")
        for _ in range(5):
            sim.cancel(sim.schedule(2e-6, ran.append, "x"))
        del keep
        sim.run_until_idle()
        assert ran == ["a"]
        assert sim.events_processed == 1
        assert sim.events_cancelled == 5

    def test_max_events_counts_only_executed_events(self):
        sim = Simulator()
        ran = []
        # Interleave tombstones before each live event; max_events must budget
        # the *executed* events, not the discarded tombstones.
        for i in range(6):
            sim.cancel(sim.schedule(i * 1e-6, ran.append, "dead"))
            sim.schedule(i * 1e-6, ran.append, i)
        sim.run(max_events=3)
        assert ran == [0, 1, 2]
        assert sim.events_processed == 3
        assert sim.events_cancelled >= 3

    def test_tombstone_only_heap_drains_without_consuming_the_valve(self):
        sim = Simulator()
        for i in range(10_000):
            sim.cancel(sim.schedule(i * 1e-9, lambda: None))
        sim.run(max_events=10)
        # Tombstones never execute: the valve is untouched, the heap drains,
        # and every discard is accounted for.
        assert sim.events_processed == 0
        assert sim.events_cancelled + sim.pending_events == 10_000
        assert sim.pending_events == 0

    def test_clock_advance_sees_through_tombstone_head(self):
        sim = Simulator()
        ran = []
        sim.schedule(1.0, ran.append, "a")
        sim.cancel(sim.schedule(2.0, ran.append, "dead"))
        sim.schedule(20.0, ran.append, "b")
        # Valve trips with a tombstone at the heap head; no *live* event at
        # or before `until` remains, so the clock must still advance.
        sim.run(until=10.0, max_events=1)
        assert ran == ["a"]
        assert sim.now == pytest.approx(10.0)

    def test_max_events_not_consumed_by_heavy_tombstone_interleaving(self):
        sim = Simulator()
        ran = []
        # 3 tombstones per live event: the valve must still admit exactly
        # max_events *executed* events, not stop early on discards.
        for i in range(8):
            for _ in range(3):
                sim.cancel(sim.schedule(i * 1e-6, ran.append, "dead"))
            sim.schedule(i * 1e-6, ran.append, i)
        sim.run(max_events=6)
        assert ran == [0, 1, 2, 3, 4, 5]
        assert sim.events_processed == 6


class TestHeapCompaction:
    def test_mass_cancellation_compacts_the_heap(self):
        from repro.sim.engine import _COMPACT_MIN_SIZE

        sim = Simulator()
        total = 4 * _COMPACT_MIN_SIZE
        # Set-then-cancel churn (the transports' RTO pattern): the heap must
        # stay bounded by the compaction watermark instead of growing with
        # every tombstone ever scheduled.
        for i in range(total):
            sim.cancel(sim.schedule(1e-3 + i * 1e-9, lambda: None))
        assert sim.pending_events <= _COMPACT_MIN_SIZE
        # Every tombstone is either compacted away (counted) or still queued.
        assert sim.events_cancelled + sim.pending_events == total

    def test_compaction_preserves_order_and_results(self):
        sim = Simulator()
        ran = []
        live = []
        for i in range(5000):
            event = sim.schedule(i * 1e-9, ran.append, i)
            if i % 7:
                sim.cancel(event)
            else:
                live.append(i)
        sim.run_until_idle()
        assert ran == live
        assert sim.events_processed == len(live)
