"""Tests for the discrete-event engine (both scheduler cores).

Everything in the shared contract -- ordering, cancellation, ``run``
control, ``until``/``max_events`` semantics, cancellation accounting -- runs
against **both** the heap core and the calendar/timer-wheel core via the
``sim`` fixture.  Core-specific structure tests (heap compaction, calendar
window rotation, wheel flushing) live in their own classes.
"""

import pytest

from repro.sim.engine import _COMPACT_MIN_SIZE, Simulator


@pytest.fixture(params=["heap", "calendar"])
def make_sim(request):
    """Factory for a simulator of each core (``make_sim(seed=...)``)."""

    def factory(**kwargs):
        kwargs.setdefault("queue", request.param)
        return Simulator(**kwargs)

    factory.queue = request.param
    return factory


class TestScheduling:
    def test_starts_at_time_zero(self, make_sim):
        assert make_sim().now == 0.0

    def test_events_run_in_time_order(self, make_sim):
        sim = make_sim()
        order = []
        sim.schedule(3e-6, order.append, "c")
        sim.schedule(1e-6, order.append, "a")
        sim.schedule(2e-6, order.append, "b")
        sim.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_run_fifo(self, make_sim):
        sim = make_sim()
        order = []
        for label in "abcde":
            sim.schedule(1e-6, order.append, label)
        sim.run_until_idle()
        assert order == list("abcde")

    def test_clock_advances_to_event_time(self, make_sim):
        sim = make_sim()
        sim.schedule(5e-6, lambda: None)
        sim.run_until_idle()
        assert sim.now == pytest.approx(5e-6)

    def test_schedule_at_absolute_time(self, make_sim):
        sim = make_sim()
        times = []
        sim.schedule_at(2e-6, lambda: times.append(sim.now))
        sim.run_until_idle()
        assert times == [pytest.approx(2e-6)]

    def test_negative_delay_rejected(self, make_sim):
        with pytest.raises(ValueError):
            make_sim().schedule(-1e-6, lambda: None)

    def test_scheduling_in_the_past_rejected(self, make_sim):
        sim = make_sim()
        sim.schedule(1e-6, lambda: None)
        sim.run_until_idle()
        with pytest.raises(ValueError):
            sim.schedule_at(0.0, lambda: None)

    def test_events_can_schedule_more_events(self, make_sim):
        sim = make_sim()
        seen = []

        def chain(depth):
            seen.append(depth)
            if depth < 5:
                sim.schedule(1e-6, chain, depth + 1)

        sim.schedule(0.0, chain, 0)
        sim.run_until_idle()
        assert seen == list(range(6))
        assert sim.now == pytest.approx(5e-6)

    def test_zero_delay_events_run_after_current(self, make_sim):
        sim = make_sim()
        order = []

        def first():
            order.append("first")
            sim.schedule(0.0, order.append, "nested")

        sim.schedule(1e-6, first)
        sim.schedule(1e-6, order.append, "second")
        sim.run_until_idle()
        # The nested zero-delay event shares the timestamp but was scheduled
        # last, so FIFO ordering puts it after "second".
        assert order == ["first", "second", "nested"]


class TestTimers:
    """``set_timer`` -- the cancellable-timer API backed by the wheel."""

    def test_timer_fires_at_deadline(self, make_sim):
        sim = make_sim()
        times = []
        sim.set_timer(320e-6, lambda: times.append(sim.now))
        sim.run_until_idle()
        assert times == [pytest.approx(320e-6)]

    def test_cancelled_timer_does_not_fire(self, make_sim):
        sim = make_sim()
        ran = []
        timer = sim.set_timer(320e-6, ran.append, "x")
        sim.cancel(timer)
        sim.schedule(1e-3, ran.append, "end")
        sim.run_until_idle()
        assert ran == ["end"]

    def test_negative_timer_delay_rejected(self, make_sim):
        with pytest.raises(ValueError):
            make_sim().set_timer(-1e-6, lambda: None)

    def test_timer_in_the_past_rejected(self, make_sim):
        sim = make_sim()
        sim.schedule(1e-3, lambda: None)
        sim.run_until_idle()
        with pytest.raises(ValueError):
            sim.set_timer_at(0.5e-3, lambda: None)

    def test_timers_interleave_with_events_in_time_order(self, make_sim):
        sim = make_sim()
        order = []
        sim.schedule(100e-6, order.append, "event-100us")
        sim.set_timer(50e-6, order.append, "timer-50us")
        sim.schedule(10e-6, order.append, "event-10us")
        sim.set_timer(200e-6, order.append, "timer-200us")
        sim.run_until_idle()
        assert order == ["event-10us", "timer-50us", "event-100us", "timer-200us"]

    def test_same_time_timer_and_event_keep_fifo_order(self, make_sim):
        sim = make_sim()
        order = []
        sim.set_timer(70e-6, order.append, "timer-first")
        sim.schedule(70e-6, order.append, "event-second")
        sim.set_timer(70e-6, order.append, "timer-third")
        sim.run_until_idle()
        assert order == ["timer-first", "event-second", "timer-third"]

    def test_rearm_pattern(self, make_sim):
        """The transports' set-cancel-rearm RTO pattern fires only the last."""
        sim = make_sim()
        fired = []
        timer = None

        def rearm(step):
            nonlocal timer
            if timer is not None:
                sim.cancel(timer)
            timer = sim.set_timer(320e-6, fired.append, step)

        for step in range(50):
            sim.schedule(step * 1e-6, rearm, step)
        sim.run_until_idle()
        assert fired == [49]


class TestCancellation:
    def test_cancelled_event_does_not_run(self, make_sim):
        sim = make_sim()
        ran = []
        event = sim.schedule(1e-6, ran.append, "x")
        event.cancel()
        sim.run_until_idle()
        assert ran == []

    def test_cancel_via_simulator_helper(self, make_sim):
        sim = make_sim()
        ran = []
        event = sim.schedule(1e-6, ran.append, "x")
        sim.cancel(event)
        sim.run_until_idle()
        assert ran == []

    def test_cancel_none_is_noop(self, make_sim):
        make_sim().cancel(None)

    def test_other_events_unaffected_by_cancellation(self, make_sim):
        sim = make_sim()
        ran = []
        event = sim.schedule(1e-6, ran.append, "a")
        sim.schedule(2e-6, ran.append, "b")
        event.cancel()
        sim.run_until_idle()
        assert ran == ["b"]


class TestRunControl:
    def test_run_until_stops_before_later_events(self, make_sim):
        sim = make_sim()
        ran = []
        sim.schedule(1e-6, ran.append, "a")
        sim.schedule(10e-6, ran.append, "b")
        sim.run(until=5e-6)
        assert ran == ["a"]
        assert sim.now == pytest.approx(5e-6)
        sim.run_until_idle()
        assert ran == ["a", "b"]

    def test_run_until_advances_clock_when_queue_is_empty(self, make_sim):
        sim = make_sim()
        sim.run(until=1e-3)
        assert sim.now == pytest.approx(1e-3)

    def test_run_until_stops_before_pending_timer(self, make_sim):
        sim = make_sim()
        ran = []
        sim.set_timer(400e-6, ran.append, "late-timer")
        sim.run(until=100e-6)
        assert ran == []
        assert sim.now == pytest.approx(100e-6)
        sim.run_until_idle()
        assert ran == ["late-timer"]

    def test_run_until_executes_due_timer(self, make_sim):
        sim = make_sim()
        ran = []
        sim.set_timer(50e-6, ran.append, "due")
        sim.run(until=100e-6)
        assert ran == ["due"]
        assert sim.now == pytest.approx(100e-6)

    def test_max_events_limits_execution(self, make_sim):
        sim = make_sim()
        ran = []
        for i in range(10):
            sim.schedule(i * 1e-6, ran.append, i)
        sim.run(max_events=3)
        assert ran == [0, 1, 2]

    def test_stop_terminates_the_loop(self, make_sim):
        sim = make_sim()
        ran = []
        sim.schedule(1e-6, ran.append, "a")
        sim.schedule(2e-6, sim.stop)
        sim.schedule(3e-6, ran.append, "b")
        sim.run_until_idle()
        assert ran == ["a"]

    def test_events_processed_counter(self, make_sim):
        sim = make_sim()
        for i in range(4):
            sim.schedule(i * 1e-6, lambda: None)
        sim.run_until_idle()
        assert sim.events_processed == 4

    def test_rng_is_deterministic_per_seed(self):
        values_a = Simulator(seed=5).rng.random()
        values_b = Simulator(seed=5).rng.random()
        values_c = Simulator(seed=6).rng.random()
        assert values_a == values_b
        assert values_a != values_c


class TestCancelledEventAccounting:
    def test_cancelled_pops_counted_separately(self, make_sim):
        sim = make_sim()
        ran = []
        keep = sim.schedule(1e-6, ran.append, "a")
        for _ in range(5):
            sim.cancel(sim.schedule(2e-6, ran.append, "x"))
        del keep
        sim.run_until_idle()
        assert ran == ["a"]
        assert sim.events_processed == 1
        assert sim.events_cancelled == 5

    def test_cancelled_timers_counted_in_events_cancelled(self, make_sim):
        """Wheel cancellations land in the same counter as heap tombstones."""
        sim = make_sim()
        ran = []
        for i in range(20):
            sim.cancel(sim.set_timer(100e-6 + i * 1e-6, ran.append, "dead"))
        sim.set_timer(500e-6, ran.append, "live")
        sim.run_until_idle()
        assert ran == ["live"]
        assert sim.events_processed == 1
        assert sim.events_cancelled == 20

    def test_max_events_counts_only_executed_events(self, make_sim):
        sim = make_sim()
        ran = []
        # Interleave tombstones before each live event; max_events must budget
        # the *executed* events, not the discarded tombstones.
        for i in range(6):
            sim.cancel(sim.schedule(i * 1e-6, ran.append, "dead"))
            sim.schedule(i * 1e-6, ran.append, i)
        sim.run(max_events=3)
        assert ran == [0, 1, 2]
        assert sim.events_processed == 3
        assert sim.events_cancelled >= 3

    def test_tombstone_only_queue_drains_without_consuming_the_valve(self, make_sim):
        sim = make_sim()
        for i in range(10_000):
            sim.cancel(sim.schedule(i * 1e-9, lambda: None))
        sim.run(max_events=10)
        # Tombstones never execute: the valve is untouched, the queue drains,
        # and every discard is accounted for.
        assert sim.events_processed == 0
        assert sim.events_cancelled + sim.pending_events == 10_000
        assert sim.pending_events == 0

    def test_clock_advance_sees_through_tombstone_head(self, make_sim):
        sim = make_sim()
        ran = []
        sim.schedule(1.0, ran.append, "a")
        sim.cancel(sim.schedule(2.0, ran.append, "dead"))
        sim.schedule(20.0, ran.append, "b")
        # Valve trips with a tombstone at the queue head; no *live* event at
        # or before `until` remains, so the clock must still advance.
        sim.run(until=10.0, max_events=1)
        assert ran == ["a"]
        assert sim.now == pytest.approx(10.0)

    def test_clock_advance_sees_through_cancelled_timer(self, make_sim):
        sim = make_sim()
        ran = []
        sim.schedule(1e-6, ran.append, "a")
        sim.cancel(sim.set_timer(5e-3, ran.append, "dead-timer"))
        sim.run(until=1.0)
        assert ran == ["a"]
        # The only remaining entry is a cancelled timer: advance to `until`.
        assert sim.now == pytest.approx(1.0)

    def test_max_events_not_consumed_by_heavy_tombstone_interleaving(self, make_sim):
        sim = make_sim()
        ran = []
        # 3 tombstones per live event: the valve must still admit exactly
        # max_events *executed* events, not stop early on discards.
        for i in range(8):
            for _ in range(3):
                sim.cancel(sim.schedule(i * 1e-6, ran.append, "dead"))
            sim.schedule(i * 1e-6, ran.append, i)
        sim.run(max_events=6)
        assert ran == [0, 1, 2, 3, 4, 5]
        assert sim.events_processed == 6

    def test_resume_after_max_events_continues_exactly(self, make_sim):
        sim = make_sim()
        ran = []
        for i in range(10):
            sim.schedule(i * 1e-6, ran.append, i)
            sim.cancel(sim.schedule(i * 1e-6 + 1e-9, ran.append, "dead"))
        sim.run(max_events=4)
        assert ran == [0, 1, 2, 3]
        sim.run(max_events=4)
        assert ran == [0, 1, 2, 3, 4, 5, 6, 7]
        sim.run_until_idle()
        assert ran == list(range(10))
        assert sim.events_processed == 10
        assert sim.events_cancelled == 10


class TestMassCancellationMemory:
    """The set-then-cancel churn must not grow memory without bound."""

    def test_mass_cancellation_is_compacted(self, make_sim):
        sim = make_sim()
        total = 4 * _COMPACT_MIN_SIZE
        # Set-then-cancel churn (the transports' RTO pattern): the pending
        # population must stay bounded by the compaction/sweep watermark
        # instead of growing with every tombstone ever scheduled.
        for i in range(total):
            sim.cancel(sim.schedule(1e-3 + i * 1e-9, lambda: None))
        assert sim.pending_events <= _COMPACT_MIN_SIZE
        # Every tombstone is either compacted away (counted) or still queued.
        assert sim.events_cancelled + sim.pending_events == total

    def test_mass_timer_cancellation_is_compacted(self, make_sim):
        sim = make_sim()
        total = 4 * _COMPACT_MIN_SIZE
        for i in range(total):
            sim.cancel(sim.set_timer(10e-3 + i * 1e-9, lambda: None))
        assert sim.pending_events <= _COMPACT_MIN_SIZE
        assert sim.events_cancelled + sim.pending_events == total

    def test_compaction_preserves_order_and_results(self, make_sim):
        sim = make_sim()
        ran = []
        live = []
        for i in range(5000):
            event = sim.schedule(i * 1e-9, ran.append, i)
            if i % 7:
                sim.cancel(event)
            else:
                live.append(i)
        sim.run_until_idle()
        assert ran == live
        assert sim.events_processed == len(live)


class TestCalendarStructure:
    """Calendar-core specifics: window rotation, overflow band, wheel."""

    def test_past_window_events_land_in_upper_levels(self):
        # 8 buckets x 1us window: events at 100..140us fall past the level-0
        # window but inside the upper levels' horizons, so the hierarchy --
        # not the far-future heap -- absorbs them, and they cascade back
        # down in exact time order.
        sim = Simulator(queue="calendar", bucket_width_s=1e-6, num_buckets=8)
        ran = []
        for i in range(40, 0, -1):
            sim.schedule(100e-6 + i * 1e-6, ran.append, i)
        assert sum(sim._hi_counts) == 40
        assert not sim._overflow
        sim.run_until_idle()
        assert ran == list(range(1, 41))

    def test_single_level_keeps_legacy_overflow_band(self):
        # num_levels=1 is the pre-hierarchy calendar: everything past the
        # one window parks in the overflow heap and migrates at rebase.
        sim = Simulator(
            queue="calendar", bucket_width_s=1e-6, num_buckets=8, num_levels=1
        )
        ran = []
        for i in range(40, 0, -1):
            sim.schedule(100e-6 + i * 1e-6, ran.append, i)
        assert len(sim._overflow) == 40
        sim.run_until_idle()
        assert ran == list(range(1, 41))

    def test_far_future_jump_skips_empty_windows(self):
        sim = Simulator(queue="calendar", bucket_width_s=1e-6, num_buckets=8)
        ran = []
        sim.schedule(1e-6, ran.append, "near")
        sim.schedule(3.0, ran.append, "far")   # ~3M buckets ahead
        sim.run_until_idle()
        assert ran == ["near", "far"]
        assert sim.now == pytest.approx(3.0)

    def test_events_within_current_bucket_insort(self):
        sim = Simulator(queue="calendar", bucket_width_s=10e-6, num_buckets=8)
        order = []

        def first():
            order.append("first")
            # Absolute time 2us: lands in the *currently draining* bucket,
            # before the pre-scheduled 2.5us event.
            sim.schedule(1e-6, order.append, "nested")

        sim.schedule(1e-6, first)
        sim.schedule(2.5e-6, order.append, "second")
        sim.run_until_idle()
        assert order == ["first", "nested", "second"]

    def test_wheel_slot_flush_preserves_order(self):
        sim = Simulator(queue="calendar", wheel_slot_s=64e-6)
        order = []
        # Two timers in one wheel slot, scheduled out of time order.
        sim.set_timer(130e-6, order.append, "later")
        sim.set_timer(129e-6, order.append, "earlier")
        sim.schedule(131e-6, order.append, "event")
        sim.run_until_idle()
        assert order == ["earlier", "later", "event"]

    def test_timer_into_flushed_slot_becomes_regular_event(self):
        sim = Simulator(queue="calendar", wheel_slot_s=64e-6)
        order = []

        def late_set():
            # now == 100us: slot 1 (64..128us) has been flushed; a timer for
            # 110us must still fire, as a regular event.
            sim.set_timer(10e-6, order.append, "late-timer")

        sim.schedule(100e-6, late_set)
        sim.run_until_idle()
        assert order == ["late-timer"]
        assert sim.now == pytest.approx(110e-6)

    def test_pending_events_spans_all_bands(self):
        sim = Simulator(queue="calendar", bucket_width_s=1e-6, num_buckets=8)
        sim.schedule(1e-6, lambda: None)     # bucket
        sim.schedule(1e-3, lambda: None)     # overflow band
        sim.set_timer(320e-6, lambda: None)  # wheel
        assert sim.pending_events == 3
        sim.run_until_idle()
        assert sim.pending_events == 0
        assert sim.events_processed == 3

    def test_sweep_then_rebase_does_not_resurrect_stale_bucket_heads(self):
        # Regression: a sweep that empties a bucket used to leave its index
        # in the occupied-bucket heads heap; after a window rebase a later
        # bucket aliasing the same slot (mod num_buckets) could then be
        # loaded under the stale (smaller) index, executing far-future
        # events early and driving the clock backwards.
        sim = Simulator(queue="calendar", bucket_width_s=1e-6, num_buckets=256)
        from repro.sim.engine import _COMPACT_MIN_SIZE

        # Fill bucket 10 with cancel-churn so the sweep empties it but its
        # head entry (index 10) survives.
        for _ in range(_COMPACT_MIN_SIZE - 1):
            sim.cancel(sim.schedule_at(10.5e-6, lambda: None))
        order = []
        # 290.5us rebases the window past bucket 255; 522.5us lands in
        # bucket 522, which aliases slot 522 & 255 == 10.
        sim.schedule_at(522.5e-6, order.append, "late")
        sim.schedule_at(290.5e-6, order.append, "early")
        times = []
        sim.schedule_at(522.5e-6, lambda: times.append(sim.now))
        sim.schedule_at(290.5e-6, lambda: times.append(sim.now))
        sim.run_until_idle()
        assert order == ["early", "late"]
        assert times == sorted(times)

    def test_invalid_tuning_rejected(self):
        with pytest.raises(ValueError):
            Simulator(queue="calendar", bucket_width_s=0.0)
        with pytest.raises(ValueError):
            Simulator(queue="calendar", wheel_slot_s=-1e-6)
        with pytest.raises(ValueError):
            Simulator(queue="calendar", num_buckets=0)


class TestHierarchicalCalendar:
    """Multi-level specifics: cascade, per-level cancellation, rebase.

    8 buckets x 1us level-0 quantum gives horizons of 8us (level 0), 64us
    (level 1) and 512us (level 2) -- small enough that every band is easy
    to hit deliberately.
    """

    def _sim(self, **kwargs):
        kwargs.setdefault("queue", "calendar")
        kwargs.setdefault("bucket_width_s", 1e-6)
        kwargs.setdefault("num_buckets", 8)
        kwargs.setdefault("num_levels", 3)
        return Simulator(**kwargs)

    def test_insertion_routes_to_the_right_band(self):
        sim = self._sim()
        sim.schedule(2e-6, lambda: None)      # level 0
        sim.schedule(20e-6, lambda: None)     # level 1
        sim.schedule(100e-6, lambda: None)    # level 2
        sim.schedule(1e-3, lambda: None)      # beyond level 2: far future
        assert sim._num_bucketed == 1
        assert sim._hi_counts[1] == 1
        assert sim._hi_counts[2] == 1
        assert len(sim._overflow) == 1
        assert sim.pending_events == 4
        sim.run_until_idle()
        assert sim.events_processed == 4
        assert sim.pending_events == 0

    def test_cascade_preserves_order_across_levels(self):
        sim = self._sim()
        ran = []
        # Interleave events whose initial homes span all three levels plus
        # the far-future band; execution must still be globally sorted.
        times = [2e-6, 20e-6, 100e-6, 1e-3, 5e-6, 60e-6, 400e-6, 2e-3]
        for t in times:
            sim.schedule(t, ran.append, t)
        sim.run_until_idle()
        assert ran == sorted(times)

    def test_cascade_observed_mid_run(self):
        sim = self._sim()
        seen = {}
        # 100..140us all start in level 2 (their level-1 indices are past
        # level 1's initial window); by the time the first one executes, the
        # chain level2 -> level1 -> level0 must have partially drained the
        # top while leaving later slots up there.
        for i in range(41):
            sim.schedule(100e-6 + i * 1e-6, lambda: None)

        def probe():
            seen["counts"] = (sim._num_bucketed, sim._hi_counts[1], sim._hi_counts[2])

        assert sim._hi_counts[2] == 41
        sim.schedule(100e-6, probe)
        sim.run_until_idle()
        bucketed, lvl1, lvl2 = seen["counts"]
        assert lvl2 > 0, "level 2 should still hold the far slots"
        assert lvl1 > 0, "level 1 should hold the cascaded middle"
        assert sim.events_processed == 42

    def test_cancellation_discards_at_every_level(self):
        sim = self._sim()
        ran = []
        victims = [
            sim.schedule(2e-6, ran.append, "l0"),       # level-0 bucket
            sim.schedule(20e-6, ran.append, "l1"),      # level 1
            sim.schedule(100e-6, ran.append, "l2"),     # level 2
            sim.schedule(1e-3, ran.append, "far"),      # far-future heap
            sim.set_timer(200e-6, ran.append, "wheel"),  # timer wheel
        ]
        for victim in victims:
            sim.cancel(victim)
        sim.schedule(2e-3, ran.append, "end")
        sim.run_until_idle()
        assert ran == ["end"]
        assert sim.events_cancelled == 5
        assert sim.events_scheduled == (
            sim.events_processed + sim.events_cancelled + sim.pending_events
        )

    def test_rebase_places_far_events_directly_at_their_level(self):
        sim = self._sim()
        seen = {}

        def probe():
            seen["state"] = (
                sim._num_bucketed,
                sim._hi_counts[1],
                sim._hi_counts[2],
                len(sim._overflow),
            )

        # All four start in the far-future heap (past level 2's initial
        # horizon).  The rebase onto the 1000us head must distribute each
        # directly: head+5us to level 0, head+70us past the rebased level-1
        # window into level 2, and 10s stays in the heap.
        sim.schedule(1000e-6, probe)
        sim.schedule(1005e-6, lambda: None)
        sim.schedule(1070e-6, lambda: None)
        sim.schedule(10.0, lambda: None)
        assert len(sim._overflow) == 4
        sim.run_until_idle()
        bucketed, lvl1, lvl2, far = seen["state"]
        assert bucketed == 1      # 1005us, in its own level-0 bucket
        assert lvl2 == 1          # 1070us went straight to level 2
        assert far == 1           # 10s is genuinely far-future
        assert sim.events_processed == 4
        assert sim.now == pytest.approx(10.0)

    def test_order_identity_across_level_counts(self):
        # The level count is a pure structure knob: 1, 2 and 3 levels must
        # execute one mixed-horizon stream in the identical order.
        def drive(num_levels):
            sim = Simulator(
                queue="calendar",
                bucket_width_s=1e-6,
                num_buckets=8,
                num_levels=num_levels,
            )
            order = []
            for i in range(60):
                t = (i * 37 % 11) * 53e-6 + i * 1e-7
                sim.schedule(t, order.append, (round(t * 1e9), i))
                if i % 3 == 0:
                    dead = sim.set_timer(t + 400e-6, order.append, ("dead", i))
                    sim.cancel(dead)
            sim.run_until_idle()
            return order, sim.events_processed, sim.events_cancelled

        reference = drive(1)
        assert drive(2) == reference
        assert drive(3) == reference

    def test_invalid_num_levels_rejected(self):
        with pytest.raises(ValueError):
            Simulator(queue="calendar", num_levels=0)

    @pytest.mark.parametrize("num_levels", [1, 3])
    def test_wheel_flush_at_exact_slot_boundary(self, num_levels):
        # A timer whose due time is exactly a wheel-slot boundary, with
        # every calendar band empty, forces the wheel-only flush branch.
        # Judging due-ness via int(time * inv_wheel) can round one slot
        # low at such boundaries (slot/inv * inv round-trips below slot),
        # leaving the due head unflushed and the engine spinning; the
        # flush must use the same division that computed the deadline.
        sim = Simulator(queue="calendar", num_levels=num_levels)
        inv = sim._inv_wheel
        slot = next(
            s for s in range(1, 1_000_000) if int((s / inv) * inv) < s
        )
        ran = []
        sim.set_timer_at(slot / inv, ran.append, "boundary")
        sim.run_until_idle()
        assert ran == ["boundary"]
        assert sim.pending_events == 0


class TestHeapCompaction:
    def test_mass_cancellation_compacts_the_heap(self):
        sim = Simulator(queue="heap")
        total = 4 * _COMPACT_MIN_SIZE
        for i in range(total):
            sim.cancel(sim.schedule(1e-3 + i * 1e-9, lambda: None))
        assert sim.pending_events <= _COMPACT_MIN_SIZE
        assert sim.events_cancelled + sim.pending_events == total
