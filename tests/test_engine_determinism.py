"""Cross-core determinism: the calendar queue must replay the heap exactly.

The calendar/timer-wheel core reorders nothing: every pop yields the
globally minimal ``(time, seq)``, so a full experiment must produce
byte-for-byte identical results under ``queue="heap"`` and
``queue="calendar"``.  These tests pin that contract on real figure cells
(fig1's two schemes and a fig8 transport cell), comparing the *entire*
serialized :class:`ResultRow` -- headline metrics, fabric counters and the
quantile-digest payloads -- per seed.

This is what keeps ``ExperimentConfig`` fingerprints engine-agnostic: a
cached row is valid no matter which core computed it.
"""

import pytest

from repro.experiments.runner import run_experiment
from repro.experiments.spec import scenario
from repro.sim.engine import Simulator, _CalendarSimulator, _HeapSimulator


def _row_for(config, queue, monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", queue)
    return run_experiment(config).to_row(label=config.name).to_dict()


def _scaled_cells(name, **overrides):
    spec = scenario(name)
    return spec.configs(**overrides)


class TestEngineSelection:
    def test_default_is_calendar(self):
        assert isinstance(Simulator(), _CalendarSimulator)
        assert Simulator().queue_kind == "calendar"

    def test_heap_escape_hatch(self):
        assert isinstance(Simulator(queue="heap"), _HeapSimulator)
        assert Simulator(queue="heap").queue_kind == "heap"

    def test_env_var_selects_core(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "heap")
        assert Simulator().queue_kind == "heap"
        monkeypatch.setenv("REPRO_ENGINE", "calendar")
        assert Simulator().queue_kind == "calendar"

    def test_explicit_queue_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "heap")
        assert Simulator(queue="calendar").queue_kind == "calendar"

    def test_unknown_queue_rejected(self):
        with pytest.raises(ValueError, match="unknown engine queue"):
            Simulator(queue="wheelbarrow")


class TestUnitEventOrderIdentity:
    """Both cores must execute one synthetic stream in the same order."""

    def _drive(self, queue):
        sim = Simulator(seed=3, queue=queue, bucket_width_s=0.7e-6, num_buckets=16)
        order = []

        def emit(tag):
            order.append((round(sim.now * 1e9), tag))

        def burst(base, tag):
            # Same-time FIFO ties, cross-bucket spreads, overflow-band times,
            # and timers that interleave with regular events.
            for k in range(4):
                sim.schedule(base + k * 0.3e-6, emit, f"{tag}-s{k}")
            sim.set_timer(base + 0.45e-6, emit, f"{tag}-t")
            dead = sim.set_timer(base + 200e-6, emit, f"{tag}-dead")
            sim.schedule(base + 50e-6, emit, f"{tag}-far")
            sim.cancel(dead)

        for i in range(40):
            sim.schedule(i * 1.1e-6, burst, i * 0.05e-6, f"b{i}")
        sim.run_until_idle()
        return order, sim.events_processed, sim.events_cancelled

    def test_heap_and_calendar_agree(self):
        heap_order, heap_n, heap_c = self._drive("heap")
        cal_order, cal_n, cal_c = self._drive("calendar")
        assert heap_order == cal_order
        assert heap_n == cal_n
        # Both cores eventually discard every cancelled timer.
        assert heap_c == cal_c


class TestExperimentIdentity:
    """Per-seed ResultRow metrics are identical across scheduler cores."""

    @pytest.mark.parametrize("seed", [1, 2])
    def test_fig1_cells_identical_across_cores(self, monkeypatch, seed):
        for label, config in _scaled_cells("fig1", num_flows=40, seed=seed).items():
            heap_row = _row_for(config, "heap", monkeypatch)
            calendar_row = _row_for(config, "calendar", monkeypatch)
            assert heap_row == calendar_row, f"{label} diverged between cores"

    def test_fig8_cell_identical_across_cores(self, monkeypatch):
        label, config = next(iter(_scaled_cells("fig8", num_flows=40).items()))
        heap_row = _row_for(config, "heap", monkeypatch)
        calendar_row = _row_for(config, "calendar", monkeypatch)
        assert heap_row == calendar_row, f"{label} diverged between cores"
