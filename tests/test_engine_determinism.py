"""Cross-core determinism: the calendar queue must replay the heap exactly.

The calendar/timer-wheel core reorders nothing: every pop yields the
globally minimal ``(time, seq)``, so a full experiment must produce
byte-for-byte identical results under ``queue="heap"`` and
``queue="calendar"``.  These tests pin that contract on real figure cells
(fig1's two schemes and a fig8 transport cell), comparing the *entire*
serialized :class:`ResultRow` -- headline metrics, fabric counters and the
quantile-digest payloads -- per seed.

This is what keeps ``ExperimentConfig`` fingerprints engine-agnostic: a
cached row is valid no matter which core computed it.
"""

import pytest

from repro.experiments.runner import run_experiment
from repro.experiments.spec import scenario
from repro.sim import compiled
from repro.sim.engine import Simulator, _CalendarSimulator, _HeapSimulator


def _all_cores():
    """Every selectable core: the compiled calendar only when built."""
    cores = ["heap", "calendar"]
    if compiled.available():
        cores.append("calendar_c")
    return cores


def _row_for(config, queue, monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", queue)
    return run_experiment(config).to_row(label=config.name).to_dict()


def _scaled_cells(name, **overrides):
    spec = scenario(name)
    return spec.configs(**overrides)


class TestEngineSelection:
    def test_default_is_calendar(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert isinstance(Simulator(), _CalendarSimulator)
        assert Simulator().queue_kind == "calendar"

    def test_heap_escape_hatch(self):
        assert isinstance(Simulator(queue="heap"), _HeapSimulator)
        assert Simulator(queue="heap").queue_kind == "heap"

    def test_env_var_selects_core(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "heap")
        assert Simulator().queue_kind == "heap"
        monkeypatch.setenv("REPRO_ENGINE", "calendar")
        assert Simulator().queue_kind == "calendar"

    def test_explicit_queue_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "heap")
        assert Simulator(queue="calendar").queue_kind == "calendar"

    def test_unknown_queue_rejected(self):
        with pytest.raises(ValueError, match="unknown engine queue"):
            Simulator(queue="wheelbarrow")

    def test_compiled_core_request_always_safe(self):
        """``calendar_c`` resolves to the compiled core when built, and
        silently degrades to the pure-Python calendar when it is not --
        either way the request must never fail."""
        sim = Simulator(queue="calendar_c")
        if compiled.available():
            assert sim.queue_kind == "calendar_c"
            assert sim._event_cls is compiled.load().CEvent
        else:
            assert sim.queue_kind == "calendar"


class TestUnitEventOrderIdentity:
    """Both cores must execute one synthetic stream in the same order."""

    def _drive(self, queue):
        sim = Simulator(seed=3, queue=queue, bucket_width_s=0.7e-6, num_buckets=16)
        order = []

        def emit(tag):
            order.append((round(sim.now * 1e9), tag))

        def burst(base, tag):
            # Same-time FIFO ties, cross-bucket spreads, overflow-band times,
            # and timers that interleave with regular events.
            for k in range(4):
                sim.schedule(base + k * 0.3e-6, emit, f"{tag}-s{k}")
            sim.set_timer(base + 0.45e-6, emit, f"{tag}-t")
            dead = sim.set_timer(base + 200e-6, emit, f"{tag}-dead")
            sim.schedule(base + 50e-6, emit, f"{tag}-far")
            sim.cancel(dead)

        for i in range(40):
            sim.schedule(i * 1.1e-6, burst, i * 0.05e-6, f"b{i}")
        sim.run_until_idle()
        return order, sim.events_processed, sim.events_cancelled

    def test_heap_and_calendar_agree(self):
        heap_order, heap_n, heap_c = self._drive("heap")
        for queue in _all_cores()[1:]:
            order, n, c = self._drive(queue)
            assert order == heap_order, f"{queue} reordered the stream"
            assert n == heap_n
            # Every core eventually discards every cancelled timer.
            assert c == heap_c


class TestExperimentIdentity:
    """Per-seed ResultRow metrics are identical across scheduler cores."""

    @pytest.mark.parametrize("seed", [1, 2])
    def test_fig1_cells_identical_across_cores(self, monkeypatch, seed):
        for label, config in _scaled_cells("fig1", num_flows=40, seed=seed).items():
            heap_row = _row_for(config, "heap", monkeypatch)
            calendar_row = _row_for(config, "calendar", monkeypatch)
            assert heap_row == calendar_row, f"{label} diverged between cores"

    def test_fig8_cell_identical_across_cores(self, monkeypatch):
        label, config = next(iter(_scaled_cells("fig8", num_flows=40).items()))
        heap_row = _row_for(config, "heap", monkeypatch)
        calendar_row = _row_for(config, "calendar", monkeypatch)
        assert heap_row == calendar_row, f"{label} diverged between cores"


class TestCoalescingMatrix:
    """ResultRows pin across every core x ACK-coalescing setting.

    Coalescing changes the simulated event stream (that is its purpose), so
    rows are pinned per setting: for each ``ack_coalesce_n`` every core must
    produce the identical row.  This is the acceptance matrix for the
    transport-batching work -- a cached row stays valid no matter which core
    computed it, with coalescing on or off.
    """

    @pytest.mark.parametrize("ack_n", [1, 4])
    def test_fig1_irn_cell_identical_across_cores(self, monkeypatch, ack_n):
        config = _scaled_cells("fig1", num_flows=40, seed=1)[
            "IRN (without PFC)"
        ].with_overrides(ack_coalesce_n=ack_n)
        rows = {queue: _row_for(config, queue, monkeypatch) for queue in _all_cores()}
        reference = rows.pop("heap")
        for queue, row in rows.items():
            assert row == reference, f"{queue} diverged at ack_coalesce_n={ack_n}"


class TestWanMatrix:
    """WAN-scenario ResultRows pin byte-identical across every core.

    Propagation-dominated fabrics are what the hierarchical calendar was
    built for: with 100-1000x delay heterogeneity most packet arrivals
    land beyond the level-0 window, so these cells exercise the upper
    calendar levels, cascade/rebase and the wheel-boundary flush on every
    core -- none of which the homogeneous figure cells reach.  Both
    presets collect c-latency ratios, so the new conditional digest
    payload is pinned across cores too.
    """

    def test_wan_incast_cells_identical_across_cores(self, monkeypatch):
        for label, config in _scaled_cells("wan_incast", seed=1).items():
            rows = {
                queue: _row_for(config, queue, monkeypatch)
                for queue in _all_cores()
            }
            reference = rows.pop("heap")
            assert reference["c_latency_digest"] is not None
            for queue, row in rows.items():
                assert row == reference, f"{label} diverged on {queue}"

    def test_cross_dc_cell_identical_across_cores(self, monkeypatch):
        """The inter-DC fat-tree at 1000x heterogeneity -- the cell that
        drains every calendar band and leaves only wheel timers pending,
        the regime the slot-boundary flush fix exists for."""
        cells = _scaled_cells("cross_dc", num_flows=60, seed=2)
        label = next(
            name for name in cells if "IRN" in name and "1000x" in name
        )
        config = cells[label]
        rows = {
            queue: _row_for(config, queue, monkeypatch)
            for queue in _all_cores()
        }
        reference = rows.pop("heap")
        for queue, row in rows.items():
            assert row == reference, f"{label} diverged on {queue}"


class TestFaultMatrix:
    """Fault-enabled ResultRows pin byte-identical across every core.

    Fault injection adds its own event sources (flap windows, per-link
    corruption RNG draws, degraded-link boundary events, pause storms) and
    its own observables (fault counters, goodput/stall digests,
    ``recovery_time_s``).  All of them must replay exactly on every core --
    otherwise a fault-enabled cached row would depend on which engine
    computed it.
    """

    #: One window of every fault kind, aimed at the dumbbell bottleneck.
    PLAN = {
        "faults": [
            dict(kind="link_flap", src="s0", dst="s1",
                 start_s=100e-6, end_s=200e-6),
            dict(kind="packet_corruption", src="s1", dst="s0",
                 probability=0.05, start_s=50e-6, end_s=400e-6),
            dict(kind="degraded_link", src="s0", dst="s1",
                 start_s=250e-6, end_s=450e-6,
                 bandwidth_factor=0.5, delay_factor=2.0),
            dict(kind="pause_storm", src="h0", dst="s0",
                 start_s=120e-6, end_s=180e-6),
        ]
    }

    def _variant_cells(self):
        """One IRN and one RoCE cell from the availability family."""
        picked = {}
        for label, config in _scaled_cells(
            "availability_flap", num_flows=40, seed=1
        ).items():
            key = "irn" if "IRN" in label else "roce"
            picked.setdefault(key, (label, config))
        return picked.values()

    def test_availability_cells_identical_across_cores(self, monkeypatch):
        for label, config in self._variant_cells():
            config = config.with_overrides(fault_plan=self.PLAN)
            rows = {
                queue: _row_for(config, queue, monkeypatch)
                for queue in _all_cores()
            }
            reference = rows.pop("heap")
            assert reference["faults_enabled"] is True
            for queue, row in rows.items():
                assert row == reference, f"{label} diverged on {queue}"
