"""Tests for links and output ports."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.link import Link, OutputPort
from repro.sim.packet import Packet, PacketType


class SinkNode:
    """Records every packet delivered to it."""

    def __init__(self, name):
        self.name = name
        self.received = []
        self.received_times = []

    def receive(self, packet, link):
        self.received.append(packet)
        self.received_times.append(link.sim.now)


class QueueSource:
    """A PacketSource backed by a plain list."""

    def __init__(self):
        self.queue = []

    def next_packet(self, port):
        if self.queue:
            return self.queue.pop(0)
        return None


def make_link(sim, bandwidth=8e9, delay=1e-6):
    src = SinkNode("src")
    dst = SinkNode("dst")
    link = Link(sim, src, dst, bandwidth, delay)
    source = QueueSource()
    port = OutputPort(sim, link, source)
    return link, port, source, dst


def data_packet(payload=1000, header=0):
    return Packet(PacketType.DATA, 1, "src", "dst", payload_bytes=payload, header_bytes=header)


class TestLink:
    def test_serialization_delay(self):
        sim = Simulator()
        link, _, _, _ = make_link(sim, bandwidth=8e9)
        assert link.serialization_delay(data_packet(1000)) == pytest.approx(1e-6)

    def test_invalid_parameters_rejected(self):
        sim = Simulator()
        a, b = SinkNode("a"), SinkNode("b")
        with pytest.raises(ValueError):
            Link(sim, a, b, 0, 1e-6)
        with pytest.raises(ValueError):
            Link(sim, a, b, 1e9, -1.0)

    def test_utilization_tracks_busy_time(self):
        sim = Simulator()
        link, port, source, _ = make_link(sim, bandwidth=8e9, delay=0.0)
        source.queue.append(data_packet(1000))
        port.kick()
        sim.run_until_idle()
        assert link.utilization(2e-6) == pytest.approx(0.5)


class TestOutputPort:
    def test_packet_arrives_after_serialization_and_propagation(self):
        sim = Simulator()
        link, port, source, dst = make_link(sim, bandwidth=8e9, delay=2e-6)
        source.queue.append(data_packet(1000))  # 1 us serialization
        port.kick()
        sim.run_until_idle()
        assert len(dst.received) == 1
        assert sim.now == pytest.approx(3e-6)

    def test_packets_are_serialized_back_to_back(self):
        sim = Simulator()
        link, port, source, dst = make_link(sim, bandwidth=8e9, delay=0.0)
        source.queue.extend([data_packet(1000), data_packet(1000)])
        port.kick()
        sim.run_until_idle()
        assert len(dst.received) == 2
        assert sim.now == pytest.approx(2e-6)
        assert link.packets_sent == 2
        assert link.bytes_sent == 2000

    def test_kick_while_busy_does_not_duplicate(self):
        sim = Simulator()
        _, port, source, dst = make_link(sim, bandwidth=8e9, delay=0.0)
        source.queue.append(data_packet(1000))
        port.kick()
        port.kick()
        sim.run_until_idle()
        assert len(dst.received) == 1

    def test_pause_blocks_new_transmissions(self):
        sim = Simulator()
        _, port, source, dst = make_link(sim, bandwidth=8e9, delay=0.0)
        source.queue.append(data_packet(1000))
        port.pause()
        port.kick()
        sim.run_until_idle()
        assert dst.received == []

    def test_resume_restarts_transmission(self):
        sim = Simulator()
        _, port, source, dst = make_link(sim, bandwidth=8e9, delay=0.0)
        source.queue.append(data_packet(1000))
        port.pause()
        port.kick()
        port.resume()
        sim.run_until_idle()
        assert len(dst.received) == 1
        assert port.pause_count == 1
        assert port.resume_count == 1

    def test_pause_lets_in_flight_packet_finish(self):
        sim = Simulator()
        _, port, source, dst = make_link(sim, bandwidth=8e9, delay=0.0)
        port.max_batch_packets = 1  # pin the classic one-packet-in-flight model
        source.queue.extend([data_packet(1000), data_packet(1000)])
        port.kick()
        # Pause mid-transmission of the first packet.
        sim.schedule(0.5e-6, port.pause)
        sim.run_until_idle()
        assert len(dst.received) == 1

    def test_pause_lets_committed_batch_finish(self):
        # Departure batching commits up to max_batch_packets to the MAC in
        # one pull; a pause landing mid-batch stops the *next* pull, not the
        # committed frames (the PFC headroom budgets for exactly this).
        sim = Simulator()
        _, port, source, dst = make_link(sim, bandwidth=8e9, delay=0.0)
        source.queue.extend(data_packet(1000) for _ in range(8))
        port.kick()
        sim.schedule(0.5e-6, port.pause)
        sim.run_until_idle()
        assert len(dst.received) == port.max_batch_packets
        assert port.batches_sent == 1

    def test_same_time_kick_and_pull_do_not_double_commit(self):
        # Race regression: a kick event firing at exactly the wire-free time
        # but *before* the port's own wake-up pull (earlier seq) starts a new
        # batch; the stale wake-up must then re-arm, not commit the wire a
        # second time at the same instant (which would interleave two batches
        # and reorder the flow).
        sim = Simulator()
        _, port, source, dst = make_link(sim, bandwidth=8e9, delay=0.0)
        port.max_batch_packets = 2
        # The external kick is scheduled FIRST so it outranks the follow-up
        # pull the port schedules when its batch limit trips.
        sim.schedule_at(2e-6, port.kick)
        source.queue.extend(data_packet(1000) for _ in range(6))
        port.kick()
        sim.run_until_idle()
        assert len(dst.received) == 6
        # Strictly serialized: one packet per serialization time, no overlap.
        assert dst.received_times == pytest.approx([i * 1e-6 for i in range(1, 7)])

    def test_batched_packets_are_stamped_at_serialization_start(self):
        # RTT consumers (Timely, iWARP's RTO estimator) read sent_time via
        # the receiver's echo; batch members must carry their wire-start
        # times, not the shared pull timestamp.
        sim = Simulator()
        _, port, source, dst = make_link(sim, bandwidth=8e9, delay=0.0)
        source.queue.extend(data_packet(1000) for _ in range(3))
        port.kick()
        sim.run_until_idle()
        assert [p.sent_time for p in dst.received] == pytest.approx(
            [0.0, 1e-6, 2e-6]
        )

    def test_batch_limit_schedules_follow_up_pull(self):
        sim = Simulator()
        _, port, source, dst = make_link(sim, bandwidth=8e9, delay=0.0)
        source.queue.extend(data_packet(1000) for _ in range(10))
        port.kick()
        sim.run_until_idle()
        # All packets drain without any external kicks, in ceil(10/4) pulls.
        assert len(dst.received) == 10
        assert port.batches_sent == 3
        # Back-to-back serialization: arrivals 1us apart at 8Gbps/1kB.
        assert dst.received_times == pytest.approx([i * 1e-6 for i in range(1, 11)])

    def test_control_direct_bypasses_pause(self):
        sim = Simulator()
        _, port, _, dst = make_link(sim, bandwidth=8e9, delay=1e-6)
        port.pause()
        frame = Packet(PacketType.PFC_PAUSE, -1, "src", "dst")
        port.send_control_direct(frame)
        sim.run_until_idle()
        assert len(dst.received) == 1

    def test_paused_time_accounting(self):
        sim = Simulator()
        _, port, _, _ = make_link(sim)
        port.pause()
        sim.schedule(5e-6, port.resume)
        sim.run_until_idle()
        assert port.paused_time == pytest.approx(5e-6)


class TestOutputPortByteCap:
    """port_batch_bytes: bytes-based bound on one departure batch."""

    def make_capped_link(self, sim, max_batch_bytes, bandwidth=8e9, delay=0.0):
        src = SinkNode("src")
        dst = SinkNode("dst")
        link = Link(sim, src, dst, bandwidth, delay)
        source = QueueSource()
        port = OutputPort(sim, link, source, max_batch_bytes=max_batch_bytes)
        return link, port, source, dst

    def test_batch_stops_at_byte_cap(self):
        sim = Simulator()
        # Cap of 2000 B: the batch commits packets until committed bytes
        # reach the cap -- two 1000 B packets -- then arranges its own pull.
        link, port, source, dst = self.make_capped_link(sim, max_batch_bytes=2000)
        source.queue.extend(data_packet(1000) for _ in range(4))
        port.kick()
        sim.run_until_idle()
        assert len(dst.received) == 4
        # Two byte-capped batches instead of one 4-packet batch.
        assert port.batches_sent == 2

    def test_always_commits_at_least_one_packet(self):
        sim = Simulator()
        # A jumbo frame larger than the cap still moves (cap checked before
        # each pull, never against the packet about to be pulled).
        link, port, source, dst = self.make_capped_link(sim, max_batch_bytes=2000)
        source.queue.append(data_packet(9000))
        port.kick()
        sim.run_until_idle()
        assert len(dst.received) == 1

    def test_burst_bounded_by_cap_plus_one_packet(self):
        sim = Simulator()
        link, port, source, dst = self.make_capped_link(sim, max_batch_bytes=2500)
        source.queue.extend(data_packet(1000) for _ in range(8))
        port.kick()
        sim.run_until_idle()
        assert len(dst.received) == 8
        # Each batch committed 3 packets (2000 B < cap, pull one more) --
        # never the 4-packet default.
        assert port.batches_sent == 3

    def test_unset_cap_keeps_packet_count_batching(self):
        sim = Simulator()
        link, port, source, dst = make_link(sim, bandwidth=8e9, delay=0.0)
        assert port.max_batch_bytes is None
        source.queue.extend(data_packet(1000) for _ in range(8))
        port.kick()
        sim.run_until_idle()
        assert len(dst.received) == 8
        assert port.batches_sent == 2  # two DEFAULT_PORT_BATCH pulls

    def test_invalid_cap_rejected(self):
        sim = Simulator()
        src, dst = SinkNode("a"), SinkNode("b")
        link = Link(sim, src, dst, 8e9, 1e-6)
        with pytest.raises(ValueError, match="max_batch_bytes"):
            OutputPort(sim, link, QueueSource(), max_batch_bytes=0)

    def test_pause_digest_records_episode_durations(self):
        sim = Simulator()
        link, port, source, dst = make_link(sim, bandwidth=8e9, delay=0.0)

        class ListDigest:
            def __init__(self):
                self.samples = []

            def add(self, value):
                self.samples.append(value)

        port.pause_digest = ListDigest()
        port.pause()
        # Advance simulated time by scheduling a no-op event.
        sim.schedule(5e-6, lambda: None)
        sim.run_until_idle()
        port.resume()
        assert port.pause_digest.samples == [pytest.approx(5e-6)]
        assert port.paused_time == pytest.approx(5e-6)
