"""Tests for links and output ports."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.link import Link, OutputPort
from repro.sim.packet import Packet, PacketType


class SinkNode:
    """Records every packet delivered to it."""

    def __init__(self, name):
        self.name = name
        self.received = []

    def receive(self, packet, link):
        self.received.append(packet)


class QueueSource:
    """A PacketSource backed by a plain list."""

    def __init__(self):
        self.queue = []

    def next_packet(self, port):
        if self.queue:
            return self.queue.pop(0)
        return None


def make_link(sim, bandwidth=8e9, delay=1e-6):
    src = SinkNode("src")
    dst = SinkNode("dst")
    link = Link(sim, src, dst, bandwidth, delay)
    source = QueueSource()
    port = OutputPort(sim, link, source)
    return link, port, source, dst


def data_packet(payload=1000, header=0):
    return Packet(PacketType.DATA, 1, "src", "dst", payload_bytes=payload, header_bytes=header)


class TestLink:
    def test_serialization_delay(self):
        sim = Simulator()
        link, _, _, _ = make_link(sim, bandwidth=8e9)
        assert link.serialization_delay(data_packet(1000)) == pytest.approx(1e-6)

    def test_invalid_parameters_rejected(self):
        sim = Simulator()
        a, b = SinkNode("a"), SinkNode("b")
        with pytest.raises(ValueError):
            Link(sim, a, b, 0, 1e-6)
        with pytest.raises(ValueError):
            Link(sim, a, b, 1e9, -1.0)

    def test_utilization_tracks_busy_time(self):
        sim = Simulator()
        link, port, source, _ = make_link(sim, bandwidth=8e9, delay=0.0)
        source.queue.append(data_packet(1000))
        port.kick()
        sim.run_until_idle()
        assert link.utilization(2e-6) == pytest.approx(0.5)


class TestOutputPort:
    def test_packet_arrives_after_serialization_and_propagation(self):
        sim = Simulator()
        link, port, source, dst = make_link(sim, bandwidth=8e9, delay=2e-6)
        source.queue.append(data_packet(1000))  # 1 us serialization
        port.kick()
        sim.run_until_idle()
        assert len(dst.received) == 1
        assert sim.now == pytest.approx(3e-6)

    def test_packets_are_serialized_back_to_back(self):
        sim = Simulator()
        link, port, source, dst = make_link(sim, bandwidth=8e9, delay=0.0)
        source.queue.extend([data_packet(1000), data_packet(1000)])
        port.kick()
        sim.run_until_idle()
        assert len(dst.received) == 2
        assert sim.now == pytest.approx(2e-6)
        assert link.packets_sent == 2
        assert link.bytes_sent == 2000

    def test_kick_while_busy_does_not_duplicate(self):
        sim = Simulator()
        _, port, source, dst = make_link(sim, bandwidth=8e9, delay=0.0)
        source.queue.append(data_packet(1000))
        port.kick()
        port.kick()
        sim.run_until_idle()
        assert len(dst.received) == 1

    def test_pause_blocks_new_transmissions(self):
        sim = Simulator()
        _, port, source, dst = make_link(sim, bandwidth=8e9, delay=0.0)
        source.queue.append(data_packet(1000))
        port.pause()
        port.kick()
        sim.run_until_idle()
        assert dst.received == []

    def test_resume_restarts_transmission(self):
        sim = Simulator()
        _, port, source, dst = make_link(sim, bandwidth=8e9, delay=0.0)
        source.queue.append(data_packet(1000))
        port.pause()
        port.kick()
        port.resume()
        sim.run_until_idle()
        assert len(dst.received) == 1
        assert port.pause_count == 1
        assert port.resume_count == 1

    def test_pause_lets_in_flight_packet_finish(self):
        sim = Simulator()
        _, port, source, dst = make_link(sim, bandwidth=8e9, delay=0.0)
        source.queue.extend([data_packet(1000), data_packet(1000)])
        port.kick()
        # Pause mid-transmission of the first packet.
        sim.schedule(0.5e-6, port.pause)
        sim.run_until_idle()
        assert len(dst.received) == 1

    def test_control_direct_bypasses_pause(self):
        sim = Simulator()
        _, port, _, dst = make_link(sim, bandwidth=8e9, delay=1e-6)
        port.pause()
        frame = Packet(PacketType.PFC_PAUSE, -1, "src", "dst")
        port.send_control_direct(frame)
        sim.run_until_idle()
        assert len(dst.received) == 1

    def test_paused_time_accounting(self):
        sim = Simulator()
        _, port, _, _ = make_link(sim)
        port.pause()
        sim.schedule(5e-6, port.resume)
        sim.run_until_idle()
        assert port.paused_time == pytest.approx(5e-6)
