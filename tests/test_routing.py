"""Tests for ECMP and packet-spray routing."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.packet import Packet, PacketType
from repro.sim.routing import EcmpRouting, PacketSprayRouting, compute_next_hop_table
from repro.topology.fattree import FatTreeParams, build_fat_tree
from repro.topology.simple import build_dumbbell


def simple_adjacency():
    # A diamond: a - (b | c) - d
    return {
        "a": {"b", "c"},
        "b": {"a", "d"},
        "c": {"a", "d"},
        "d": {"b", "c"},
    }


class TestNextHopTable:
    def test_shortest_path_next_hops(self):
        table = compute_next_hop_table(simple_adjacency(), ["d"])
        assert sorted(table["a"]["d"]) == ["b", "c"]
        assert table["b"]["d"] == ["d"]
        assert table["c"]["d"] == ["d"]

    def test_unknown_destination_raises(self):
        with pytest.raises(KeyError):
            compute_next_hop_table(simple_adjacency(), ["z"])

    def test_destination_has_no_self_entry(self):
        table = compute_next_hop_table(simple_adjacency(), ["d"])
        assert "d" not in table["d"]


class _FakeNode:
    def __init__(self, name):
        self.name = name


class TestEcmp:
    def test_flow_always_takes_the_same_path(self):
        routing = EcmpRouting(compute_next_hop_table(simple_adjacency(), ["d"]))
        node = _FakeNode("a")
        packet = Packet(PacketType.DATA, flow_id=42, src="a", dst="d")
        hops = {routing.next_hop(node, packet) for _ in range(20)}
        assert len(hops) == 1

    def test_different_flows_spread_over_paths(self):
        routing = EcmpRouting(compute_next_hop_table(simple_adjacency(), ["d"]))
        node = _FakeNode("a")
        hops = {
            routing.next_hop(node, Packet(PacketType.DATA, flow_id=f, src="a", dst="d"))
            for f in range(64)
        }
        assert hops == {"b", "c"}

    def test_path_reaches_destination(self):
        routing = EcmpRouting(compute_next_hop_table(simple_adjacency(), ["d"]))
        path = routing.path("a", "d", flow_id=7)
        assert path[0] == "a"
        assert path[-1] == "d"
        assert len(path) == 3

    def test_hop_count(self):
        routing = EcmpRouting(compute_next_hop_table(simple_adjacency(), ["d"]))
        assert routing.hop_count("a", "d") == 2

    def test_missing_route_raises(self):
        routing = EcmpRouting(compute_next_hop_table(simple_adjacency(), ["d"]))
        with pytest.raises(KeyError):
            routing.candidates("a", "nonexistent")


class TestPacketSpray:
    def test_packets_of_one_flow_use_multiple_paths(self):
        routing = PacketSprayRouting(compute_next_hop_table(simple_adjacency(), ["d"]))
        node = _FakeNode("a")
        hops = {
            routing.next_hop(node, Packet(PacketType.DATA, flow_id=1, src="a", dst="d"))
            for _ in range(64)
        }
        assert hops == {"b", "c"}


class TestFatTreeRouting:
    def test_all_host_pairs_are_routable(self):
        sim = Simulator()
        network = build_fat_tree(sim, FatTreeParams(k=4))
        routing = network.routing
        hosts = list(network.hosts)
        for src in hosts[:4]:
            for dst in hosts[-4:]:
                if src == dst:
                    continue
                path = routing.path(src, dst, flow_id=1)
                assert path[0] == src and path[-1] == dst

    def test_inter_pod_paths_have_six_hops(self):
        sim = Simulator()
        network = build_fat_tree(sim, FatTreeParams(k=4))
        # h0 is in pod 0, the last host is in pod k-1.
        hosts = sorted(network.hosts, key=lambda h: int(h[1:]))
        hop_count = network.routing.hop_count(hosts[0], hosts[-1], flow_id=3)
        assert hop_count == 6

    def test_same_edge_paths_have_two_hops(self):
        sim = Simulator()
        network = build_fat_tree(sim, FatTreeParams(k=4))
        assert network.routing.hop_count("h0", "h1", flow_id=1) == 2

    def test_dumbbell_cross_traffic_traverses_bottleneck(self):
        sim = Simulator()
        network = build_dumbbell(sim, hosts_per_side=2)
        path = network.routing.path("h0", "h2", flow_id=1)
        assert "s0" in path and "s1" in path
