"""Tests for the NIC hardware models: bitmaps, packet modules, state, FPGA."""

import pytest

from repro.hw.bitmap import RingBitmap, TwoBitmap
from repro.hw.fpga_model import FpgaSynthesisModel
from repro.hw.nic_model import NicKind, NicPipelineModel, raw_performance_table
from repro.hw.nic_state import NicStateParams, compute_state_overhead
from repro.hw.packet_modules import (
    QpContext,
    ReceiveAckModule,
    ReceiveDataModule,
    TimeoutModule,
    TxFreeModule,
)


class TestRingBitmap:
    def test_set_test_clear(self):
        bitmap = RingBitmap(64)
        bitmap.set(5)
        assert bitmap.test(5)
        bitmap.clear(5)
        assert not bitmap.test(5)

    def test_out_of_window_rejected(self):
        bitmap = RingBitmap(8, head_seq=100)
        with pytest.raises(IndexError):
            bitmap.set(99)
        with pytest.raises(IndexError):
            bitmap.set(108)
        assert bitmap.in_window(100) and not bitmap.in_window(108)

    def test_find_first_zero(self):
        bitmap = RingBitmap(64)
        assert bitmap.find_first_zero() == 0
        for seq in range(5):
            bitmap.set(seq)
        assert bitmap.find_first_zero() == 5
        bitmap.set(6)
        assert bitmap.find_first_zero() == 5

    def test_find_first_zero_spans_chunks(self):
        bitmap = RingBitmap(96)
        for seq in range(40):
            bitmap.set(seq)
        assert bitmap.find_first_zero() == 40

    def test_full_bitmap_returns_capacity(self):
        bitmap = RingBitmap(32)
        for seq in range(32):
            bitmap.set(seq)
        assert bitmap.find_first_zero() == 32

    def test_popcount_prefix(self):
        bitmap = RingBitmap(64)
        for seq in (0, 2, 4, 10):
            bitmap.set(seq)
        assert bitmap.popcount_prefix(5) == 3
        assert bitmap.popcount_prefix() == 4

    def test_shift_returns_bits_shifted_out(self):
        bitmap = RingBitmap(64)
        for seq in (0, 1, 5):
            bitmap.set(seq)
        out = bitmap.shift(4)
        assert out == 2
        assert bitmap.head_seq == 4
        assert bitmap.test(5)

    def test_advance_head_to(self):
        bitmap = RingBitmap(64)
        bitmap.set(3)
        bitmap.advance_head_to(10)
        assert bitmap.head_seq == 10
        assert bitmap.occupancy() == 0
        with pytest.raises(ValueError):
            bitmap.advance_head_to(5)

    def test_storage_is_chunk_aligned(self):
        assert RingBitmap(100).storage_bits() == 128
        assert RingBitmap(128).storage_bits() == 128

    def test_set_bits_listing(self):
        bitmap = RingBitmap(16, head_seq=50)
        bitmap.set(51)
        bitmap.set(60)
        assert bitmap.set_bits() == [51, 60]


class TestTwoBitmap:
    def test_advance_counts_messages(self):
        bitmap = TwoBitmap(64)
        bitmap.record(0, last_of_message=False)
        bitmap.record(1, last_of_message=True)
        bitmap.record(2, last_of_message=True)
        passed, messages = bitmap.advance()
        assert passed == 3
        assert messages == 2
        assert bitmap.head_seq == 3

    def test_advance_stops_at_gap(self):
        bitmap = TwoBitmap(64)
        bitmap.record(0, last_of_message=True)
        bitmap.record(2, last_of_message=True)
        passed, messages = bitmap.advance()
        assert passed == 1
        assert messages == 1

    def test_storage(self):
        assert TwoBitmap(128).storage_bits() == 256


class TestPacketModules:
    def test_receive_data_in_order(self):
        ctx = QpContext(bdp_cap=32)
        module = ReceiveDataModule()
        out = module.process(ctx, psn=0, last_of_message=True)
        assert out.send_ack and not out.send_nack
        assert out.msn_increment == 1
        assert ctx.expected_psn == 1
        assert ctx.msn == 1

    def test_receive_data_out_of_order(self):
        ctx = QpContext(bdp_cap=32)
        module = ReceiveDataModule()
        out = module.process(ctx, psn=3, last_of_message=False)
        assert out.send_nack and not out.send_ack
        assert out.sack_psn == 3
        assert ctx.expected_psn == 0

    def test_receive_data_fills_gap_and_fires_all_completions(self):
        ctx = QpContext(bdp_cap=32)
        module = ReceiveDataModule()
        module.process(ctx, psn=1, last_of_message=True)
        module.process(ctx, psn=2, last_of_message=True)
        out = module.process(ctx, psn=0, last_of_message=True)
        assert out.msn_increment == 3
        assert ctx.expected_psn == 3

    def test_receive_data_duplicate(self):
        ctx = QpContext(bdp_cap=32)
        module = ReceiveDataModule()
        module.process(ctx, psn=0, last_of_message=False)
        out = module.process(ctx, psn=0, last_of_message=False)
        assert out.duplicate

    def test_tx_free_sends_new_packets_up_to_bdp(self):
        ctx = QpContext(bdp_cap=4)
        module = TxFreeModule()
        sent = [module.process(ctx, new_packets_available=True).psn_to_send for _ in range(6)]
        assert sent[:4] == [0, 1, 2, 3]
        assert sent[4:] == [None, None]

    def test_tx_free_look_ahead_during_recovery(self):
        ctx = QpContext(bdp_cap=16)
        tx = TxFreeModule()
        for _ in range(8):
            tx.process(ctx, new_packets_available=True)
        # NACK: cumulative 2, SACK 5 -> lost packets 2,3,4.
        ack_module = ReceiveAckModule()
        ack_module.process(ctx, cumulative_ack=2, sack_psn=5, is_nack=True)
        retransmits = []
        for _ in range(3):
            out = tx.process(ctx, new_packets_available=False)
            if out.psn_to_send is not None and out.is_retransmission:
                retransmits.append(out.psn_to_send)
        assert retransmits == [2, 3, 4]

    def test_receive_ack_advances_and_enters_recovery(self):
        ctx = QpContext(bdp_cap=16)
        tx = TxFreeModule()
        for _ in range(6):
            tx.process(ctx, new_packets_available=True)
        module = ReceiveAckModule()
        out = module.process(ctx, cumulative_ack=3, sack_psn=4, is_nack=True)
        assert ctx.snd_una == 3
        assert out.entered_recovery
        out = module.process(ctx, cumulative_ack=6, sack_psn=None, is_nack=False)
        assert out.exited_recovery
        assert not ctx.in_recovery

    def test_timeout_extends_when_condition_fails(self):
        ctx = QpContext(bdp_cap=16, rto_low_threshold=3)
        tx = TxFreeModule()
        for _ in range(8):
            tx.process(ctx, new_packets_available=True)
        out = TimeoutModule().process(ctx, fired_with_rto_low=True)
        assert out.extend_to_rto_high and not out.acted

    def test_timeout_acts_when_few_packets_in_flight(self):
        ctx = QpContext(bdp_cap=16, rto_low_threshold=3)
        TxFreeModule().process(ctx, new_packets_available=True)
        out = TimeoutModule().process(ctx, fired_with_rto_low=True)
        assert out.acted and not out.extend_to_rto_high
        assert ctx.in_recovery

    def test_timeout_noop_when_nothing_in_flight(self):
        ctx = QpContext(bdp_cap=16)
        out = TimeoutModule().process(ctx, fired_with_rto_low=False)
        assert not out.acted


class TestNicStateOverhead:
    def test_paper_default_is_within_claimed_range(self):
        overhead = compute_state_overhead(NicStateParams())
        assert 0.03 <= overhead.fraction_of_cache <= 0.10

    def test_per_qp_state_matches_paper_breakdown(self):
        overhead = compute_state_overhead(NicStateParams())
        assert overhead.per_qp_state_bits == 160
        assert overhead.per_wqe_bytes == 3
        assert overhead.shared_bytes == 10

    def test_bitmaps_dominate_per_qp_overhead(self):
        overhead = compute_state_overhead(NicStateParams(link_bandwidth_bps=40e9))
        assert overhead.per_qp_bitmap_bits == 5 * overhead.bitmap_bits_each
        assert overhead.per_qp_bitmap_bits > overhead.per_qp_state_bits

    def test_overhead_grows_with_bandwidth_but_stays_modest(self):
        overhead_40g = compute_state_overhead(NicStateParams(link_bandwidth_bps=40e9))
        overhead_100g = compute_state_overhead(NicStateParams(link_bandwidth_bps=100e9))
        assert overhead_100g.total_bytes > overhead_40g.total_bytes
        assert overhead_100g.fraction_of_cache <= 0.15

    def test_rows_rendering(self):
        rows = compute_state_overhead().as_rows()
        assert any("Fraction of NIC cache" in label for label, _ in rows)


class TestFpgaModel:
    def test_reproduces_table2_anchors_at_128_bits(self):
        model = FpgaSynthesisModel(128)
        receive_data = model.estimate("receiveData")
        assert receive_data.flip_flop_fraction == pytest.approx(0.0062, rel=0.01)
        assert receive_data.lut_fraction == pytest.approx(0.0193, rel=0.01)
        assert receive_data.latency_ns == pytest.approx(16.5)
        assert receive_data.throughput_mpps == pytest.approx(45.45)

    def test_totals_match_paper_summary(self):
        totals = FpgaSynthesisModel(128).totals()
        assert totals.flip_flop_fraction == pytest.approx(0.0135, abs=0.002)
        assert totals.lut_fraction == pytest.approx(0.0401, abs=0.005)
        assert totals.throughput_mpps == pytest.approx(45.45, rel=0.01)

    def test_100g_bitmaps_roughly_double_resources(self):
        small = FpgaSynthesisModel(128).totals()
        large = FpgaSynthesisModel(320).totals()
        assert 1.5 <= large.lut_fraction / small.lut_fraction <= 3.0

    def test_bottleneck_sustains_line_rate(self):
        totals = FpgaSynthesisModel(128).totals()
        # 45 Mpps of MTU-sized packets is 360+ Gbps, far above 40 Gbps.
        assert totals.sustains_line_rate(40e9)
        assert totals.sustains_line_rate(100e9)

    def test_unknown_module_rejected(self):
        with pytest.raises(KeyError):
            FpgaSynthesisModel(128).estimate("nonexistent")

    def test_invalid_bitmap_size_rejected(self):
        with pytest.raises(ValueError):
            FpgaSynthesisModel(0)


class TestNicPipelineModel:
    def test_iwarp_has_higher_latency_and_lower_rate_than_roce(self):
        table = raw_performance_table()
        iwarp = table["Chelsio T-580-CR (iWARP)"]
        roce = table["Mellanox MCX416A-BCAT (RoCE)"]
        assert iwarp.latency_us > 2.5 * roce.latency_us
        assert roce.message_rate_mpps > 3.5 * iwarp.message_rate_mpps

    def test_absolute_numbers_near_table1(self):
        table = raw_performance_table()
        iwarp = table["Chelsio T-580-CR (iWARP)"]
        roce = table["Mellanox MCX416A-BCAT (RoCE)"]
        assert roce.latency_us == pytest.approx(0.94, rel=0.25)
        assert roce.message_rate_mpps == pytest.approx(14.7, rel=0.25)
        assert iwarp.latency_us == pytest.approx(2.89, rel=0.25)
        assert iwarp.message_rate_mpps == pytest.approx(3.24, rel=0.25)

    def test_irn_keeps_roce_message_rate(self):
        table = raw_performance_table()
        irn = table["IRN (RoCE + bitmap logic)"]
        roce = table["Mellanox MCX416A-BCAT (RoCE)"]
        assert irn.message_rate_mpps == pytest.approx(roce.message_rate_mpps, rel=0.05)
        assert irn.latency_us <= roce.latency_us * 1.1

    def test_unbatched_rate_is_lower(self):
        model = NicPipelineModel(NicKind.ROCE)
        assert model.message_rate_mpps(batched=False) < model.message_rate_mpps(batched=True)
