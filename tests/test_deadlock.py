"""PFC deadlock detection: the paper's §2 circular buffer dependency.

The deterministic scenario: a 3-switch ring (``repro.topology.cyclic``)
carrying the ``circular`` workload, which feeds every receiver at full rate
from two different upstream switches.  Under RoCE with PFC the pause
wait-for graph closes into the cycle ``s0 -> s1 -> s2 -> s0`` and the
fabric wedges; under IRN (no PFC) packets drop and retransmit instead, so
the detector must stay silent forever.

The time of the *first* deadlock must be byte-stable across both engine
cores -- it is derived purely from the event order the cores are required
to share.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.sim.deadlock import PfcDeadlockDetector
from repro.sim.engine import Simulator
from repro.topology.cyclic import build_ring

ENGINE_CORES = ("calendar", "heap")


def _ring_config(transport: str, pfc_enabled: bool) -> ExperimentConfig:
    return ExperimentConfig(
        name=f"deadlock-{transport}",
        topology="ring",
        ring_switches=3,
        workload="circular",
        num_hosts=9,
        num_flows=30,
        fixed_size_bytes=100_000,
        target_load=0.9,
        transport=transport,
        pfc_enabled=pfc_enabled,
        seed=1,
        max_sim_time_s=0.002,
        keep_flow_records=False,
    )


def _run(config: ExperimentConfig, queue: str, monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", queue)
    return run_experiment(config)


# ---------------------------------------------------------------------------
# Detector unit behaviour (no traffic: pause ports by hand)
# ---------------------------------------------------------------------------
def test_detector_reports_cycle_when_ring_ports_pause():
    sim = Simulator()
    network = build_ring(sim, num_switches=3, hosts_per_switch=1)
    detector = PfcDeadlockDetector()
    detector.install(network)

    # Pausing two of the three inter-switch ports leaves the graph acyclic.
    network.switches["s0"].port_towards("s1").pause()
    network.switches["s1"].port_towards("s2").pause()
    assert detector.deadlock_events == 0
    assert ("s0", "s1") in detector.waiting_edges

    # The third edge closes the cycle.
    network.switches["s2"].port_towards("s0").pause()
    assert detector.deadlock_events == 1
    assert detector.time_to_deadlock_s == sim.now
    assert detector.cycles[0][1][0] in ("s0", "s1", "s2")


def test_detector_forgets_resumed_edges():
    sim = Simulator()
    network = build_ring(sim, num_switches=3, hosts_per_switch=1)
    detector = PfcDeadlockDetector()
    detector.install(network)

    port = network.switches["s0"].port_towards("s1")
    port.pause()
    network.switches["s1"].port_towards("s2").pause()
    port.resume()
    # With s0 -> s1 gone, the closing pause only sees a 2-edge path.
    network.switches["s2"].port_towards("s0").pause()
    assert detector.deadlock_events == 0
    assert ("s0", "s1") not in detector.waiting_edges


def test_detector_ignores_repeated_pause_of_same_port():
    sim = Simulator()
    network = build_ring(sim, num_switches=3, hosts_per_switch=1)
    detector = PfcDeadlockDetector()
    detector.install(network)
    port = network.switches["s0"].port_towards("s1")
    port.pause()
    port.pause()
    assert detector.waiting_edges.count(("s0", "s1")) == 1


# ---------------------------------------------------------------------------
# End-to-end: RoCE+PFC wedges, IRN does not, both cores agree to the byte
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def roce_outcomes():
    results = {}
    config = _ring_config("roce", pfc_enabled=True)
    mp = pytest.MonkeyPatch()
    try:
        for queue in ENGINE_CORES:
            mp.setenv("REPRO_ENGINE", queue)
            results[queue] = run_experiment(config)
    finally:
        mp.undo()
    return results


def test_roce_with_pfc_deadlocks_on_circular_dependency(roce_outcomes):
    for queue in ENGINE_CORES:
        result = roce_outcomes[queue]
        assert result.deadlock_events > 0
        assert result.time_to_deadlock_s is not None
        assert 0.0 < result.time_to_deadlock_s < 0.002
        # Lossless fabric: it wedges, it does not drop.
        assert result.packets_dropped == 0
        assert result.pause_frames > 0


def test_time_to_deadlock_is_byte_stable_across_cores(roce_outcomes):
    calendar = roce_outcomes["calendar"]
    heap = roce_outcomes["heap"]
    assert calendar.time_to_deadlock_s == heap.time_to_deadlock_s
    assert calendar.deadlock_events == heap.deadlock_events
    assert calendar.events_processed == heap.events_processed


@pytest.mark.parametrize("queue", ENGINE_CORES)
def test_irn_never_deadlocks_on_the_same_ring(queue, monkeypatch):
    result = _run(_ring_config("irn", pfc_enabled=False), queue, monkeypatch)
    assert result.deadlock_events == 0
    assert result.time_to_deadlock_s is None
    assert result.pause_frames == 0
