"""Tests for experiment configuration and the paper scenario presets."""

import json

import pytest

from repro.core.factory import TransportKind
from repro.experiments import scenarios
from repro.experiments.config import (
    CongestionControl,
    ExperimentConfig,
    TopologyKind,
    WorkloadKind,
)
from repro.faults import FaultPlan, LinkFlap, PacketCorruption


class TestDerivedQuantities:
    def test_default_bdp_matches_paper_formula(self):
        config = ExperimentConfig(
            fat_tree_k=6, link_bandwidth_bps=40e9, link_delay_s=2e-6, mtu_bytes=1000
        )
        # 40 Gbps * 24 us / 8 = 120 KB -> 120 packets.
        assert config.bdp_bytes() == 120_000
        assert config.effective_bdp_cap_packets() == 120

    def test_buffer_defaults_to_twice_bdp(self):
        config = ExperimentConfig(link_bandwidth_bps=10e9, link_delay_s=1e-6)
        assert config.effective_buffer_bytes() == 2 * config.bdp_bytes()

    def test_explicit_overrides_win(self):
        config = ExperimentConfig(bdp_cap_packets=42, buffer_bytes_per_port=12345,
                                  rto_low_s=1e-4, rto_high_s=1e-3)
        assert config.effective_bdp_cap_packets() == 42
        assert config.effective_buffer_bytes() == 12345
        assert config.effective_rto_low_s() == 1e-4
        assert config.effective_rto_high_s() == 1e-3

    def test_derived_rtos_follow_paper_rule(self):
        config = ExperimentConfig(link_bandwidth_bps=10e9, link_delay_s=1e-6, fat_tree_k=4)
        drain = config.effective_buffer_bytes() * 8 / 10e9
        expected_high = 6 * 1e-6 + 3 * drain
        assert config.effective_rto_high_s() == pytest.approx(expected_high)
        assert config.effective_rto_low_s() < config.effective_rto_high_s()

    def test_worst_case_overheads_add_header_bytes(self):
        base = ExperimentConfig()
        worst = ExperimentConfig(worst_case_overheads=True)
        assert worst.effective_header_bytes() == base.effective_header_bytes() + 16

    def test_switch_config_reflects_pfc_and_cc(self):
        config = ExperimentConfig(pfc_enabled=False, congestion_control=CongestionControl.DCQCN)
        switch_config = config.switch_config()
        assert switch_config.pfc.enabled is False
        assert switch_config.ecn.enabled is True
        assert switch_config.ecn.step_marking is False

    def test_dctcp_uses_step_marking(self):
        config = ExperimentConfig(congestion_control=CongestionControl.DCTCP)
        assert config.switch_config().ecn.step_marking is True

    def test_no_ecn_without_ecn_based_cc(self):
        for cc in (CongestionControl.NONE, CongestionControl.TIMELY, CongestionControl.AIMD):
            config = ExperimentConfig(congestion_control=cc)
            assert config.switch_config().ecn.enabled is False

    def test_size_distribution_selection(self):
        assert ExperimentConfig(workload=WorkloadKind.HEAVY_TAILED).size_distribution() is not None
        assert ExperimentConfig(workload=WorkloadKind.UNIFORM).size_distribution() is not None
        assert ExperimentConfig(workload=WorkloadKind.NONE).size_distribution() is None

    def test_with_overrides_returns_modified_copy(self):
        config = ExperimentConfig(target_load=0.7)
        modified = config.with_overrides(target_load=0.9)
        assert modified.target_load == 0.9
        assert config.target_load == 0.7


class TestAckCoalescingKnobs:
    def test_behavior_changing_default_is_fingerprinted(self):
        """The default window of 4 changes ACK timing vs the per-packet
        stream, so it must key its own cache entries -- a pre-coalescing
        cached row served for a default run would be stale."""
        payload = ExperimentConfig().to_canonical_dict()
        assert payload["ack_coalesce_n"] == 4
        assert payload["ack_coalesce_us"] == 25.0
        assert "pacing_quantum_us" not in payload

    def test_per_packet_configs_collapse_onto_pre_knob_fingerprints(self):
        """n=1 is byte-identical to pre-knob physics: both keys (the then
        irrelevant flush timeout too) drop out of the canonical dict, so
        these configs still hit rows cached before the knobs existed."""
        payload = ExperimentConfig(ack_coalesce_n=1).to_canonical_dict()
        assert "ack_coalesce_n" not in payload
        assert "ack_coalesce_us" not in payload
        # The flush timeout is inert without a window; it must not split
        # fingerprints of physically identical per-packet runs.
        same = ExperimentConfig(ack_coalesce_n=1, ack_coalesce_us=60.0)
        assert same.fingerprint() == ExperimentConfig(ack_coalesce_n=1).fingerprint()

    def test_fingerprint_uses_raw_knob_not_scheme_capped_value(self):
        # Timely's metadata caps the *effective* window at 1, but the
        # fingerprint keys on the raw knob: it must not depend on which
        # schemes are registered in the fingerprinting process (a
        # coordinator can fingerprint configs for plugin schemes it never
        # loads).  The cap just costs one conservative cache miss.
        timely = ExperimentConfig(congestion_control=CongestionControl.TIMELY)
        assert timely.effective_ack_coalesce_n() == 1
        assert timely.to_canonical_dict()["ack_coalesce_n"] == 4

    def test_non_default_values_fingerprint(self):
        base = ExperimentConfig().fingerprint()
        assert ExperimentConfig(ack_coalesce_n=1).fingerprint() != base
        assert ExperimentConfig(ack_coalesce_n=8).fingerprint() != base
        assert ExperimentConfig(ack_coalesce_us=60.0).fingerprint() != base
        assert ExperimentConfig(pacing_quantum_us=3.2).fingerprint() != base

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(ack_coalesce_n=0)
        with pytest.raises(ValueError):
            ExperimentConfig(ack_coalesce_us=0.0)
        with pytest.raises(ValueError):
            ExperimentConfig(pacing_quantum_us=-1.0)


class TestFaultPlanFingerprint:
    """Fault plans and the cache-key contract.

    A non-empty plan changes the simulated physics, so it must key its own
    cache entries; an empty plan is physically inert and must collapse onto
    the fault-free fingerprint so pre-fault-injection warm caches stay
    valid.
    """

    PLAN = FaultPlan(
        faults=(
            LinkFlap(src="s0", dst="s1", start_s=1e-4, end_s=2e-4),
            PacketCorruption(src="s1", dst="s0", probability=0.01),
        )
    )

    def test_absent_plan_is_fingerprint_neutral(self):
        payload = ExperimentConfig().to_canonical_dict()
        assert "fault_plan" not in payload

    def test_empty_plan_collapses_onto_fault_free_fingerprint(self):
        # __post_init__ normalizes an empty plan to None, so the canonical
        # dict (and hence the fingerprint) is identical to no plan at all.
        empty = ExperimentConfig(fault_plan=FaultPlan())
        assert empty.fault_plan is None
        assert empty.fingerprint() == ExperimentConfig().fingerprint()

    def test_non_empty_plan_changes_fingerprint(self):
        base = ExperimentConfig()
        faulted = ExperimentConfig(fault_plan=self.PLAN)
        assert faulted.fingerprint() != base.fingerprint()
        assert "fault_plan" in faulted.to_canonical_dict()

    def test_different_plans_fingerprint_differently(self):
        one = ExperimentConfig(fault_plan=self.PLAN)
        other = ExperimentConfig(
            fault_plan=FaultPlan(
                faults=(LinkFlap(src="s0", dst="s1", start_s=1e-4, end_s=3e-4),)
            )
        )
        assert one.fingerprint() != other.fingerprint()

    def test_plan_round_trips_through_queue_wire_format(self):
        # The work queue serializes configs with to_dict() -> JSON ->
        # from_dict(); plans must survive with typed fault kinds and an
        # unchanged fingerprint.
        config = ExperimentConfig(fault_plan=self.PLAN)
        wire = json.loads(json.dumps(config.to_dict()))
        restored = ExperimentConfig.from_dict(wire)
        assert restored.fingerprint() == config.fingerprint()
        assert isinstance(restored.fault_plan, FaultPlan)
        kinds = [type(fault) for fault in restored.fault_plan.faults]
        assert kinds == [LinkFlap, PacketCorruption]

    def test_plan_dict_is_coerced_on_construction(self):
        config = ExperimentConfig(
            fault_plan={"faults": [dict(kind="link_flap", src="a", dst="b",
                                        start_s=0.0, end_s=1e-6)]}
        )
        assert isinstance(config.fault_plan, FaultPlan)
        assert isinstance(config.fault_plan.faults[0], LinkFlap)

    def test_effective_window_respects_scheme_cap(self):
        # Timely needs per-packet RTT samples: the scheme metadata caps the
        # coalescing window at 1 whatever the config asks for.
        timely = ExperimentConfig(congestion_control=CongestionControl.TIMELY)
        assert timely.effective_ack_coalesce_n() == 1
        dcqcn = ExperimentConfig(congestion_control=CongestionControl.DCQCN)
        assert dcqcn.effective_ack_coalesce_n() == 4

    def test_flush_timeout_clamped_below_rto(self):
        config = ExperimentConfig(ack_coalesce_us=10_000.0)
        assert config.effective_ack_coalesce_s() <= 0.5 * config.effective_rto_low_s()


class TestScenarioPresets:
    def test_fig1_pairs_roce_pfc_with_irn_lossy(self):
        configs = scenarios.fig1_configs()
        roce = configs["RoCE (with PFC)"]
        irn = configs["IRN (without PFC)"]
        assert roce.transport is TransportKind.ROCE and roce.pfc_enabled
        assert irn.transport is TransportKind.IRN and not irn.pfc_enabled

    def test_fig2_varies_only_pfc(self):
        configs = scenarios.fig2_configs()
        assert all(c.transport is TransportKind.IRN for c in configs.values())
        assert {c.pfc_enabled for c in configs.values()} == {True, False}

    def test_fig4_covers_timely_and_dcqcn(self):
        configs = scenarios.fig4_configs()
        ccs = {c.congestion_control for c in configs.values()}
        assert ccs == {CongestionControl.TIMELY, CongestionControl.DCQCN}
        assert len(configs) == 4

    def test_fig7_factor_analysis_variants(self):
        configs = scenarios.fig7_configs()
        kinds = {c.transport for c in configs.values()}
        assert kinds == {
            TransportKind.IRN, TransportKind.IRN_GO_BACK_N, TransportKind.IRN_NO_BDPFC
        }

    def test_fig9_varies_fan_in(self):
        configs = scenarios.fig9_configs(fan_ins=(4, 8))
        assert len(configs) == 4
        assert all(c.incast is not None for c in configs.values())
        assert {c.incast.fan_in for c in configs.values()} == {4, 8}
        assert all(c.workload is WorkloadKind.NONE for c in configs.values())

    def test_fig10_resilient_roce_is_dcqcn_without_pfc(self):
        config = scenarios.fig10_configs()["Resilient RoCE"]
        assert config.transport is TransportKind.ROCE
        assert config.congestion_control is CongestionControl.DCQCN
        assert not config.pfc_enabled

    def test_fig11_includes_iwarp(self):
        configs = scenarios.fig11_configs()
        assert configs["iWARP"].transport is TransportKind.IWARP

    def test_fig12_overhead_flag(self):
        configs = scenarios.fig12_configs()
        assert configs["IRN (worst-case overheads)"].worst_case_overheads
        assert not configs["IRN (no overheads)"].worst_case_overheads

    def test_appendix_tables_have_three_columns_per_row(self):
        for table in (
            scenarios.table3_configs(utilizations=(0.5, 0.9)),
            scenarios.table4_configs(bandwidths_gbps=(10,)),
            scenarios.table7_configs(buffer_bytes=(15_000,)),
            scenarios.table8_configs(rto_high_values_s=(320e-6,)),
            scenarios.table9_configs(n_values=(3,)),
        ):
            for row in table.values():
                assert set(row) == {"IRN", "IRN+PFC", "RoCE+PFC"}

    def test_table5_scales_topology(self):
        table = scenarios.table5_configs(arities=(4, 6))
        assert {row_label.split(" ")[0] for row_label in table} == {"k=4", "k=6"}
        assert table["k=6 (54 hosts)"]["IRN"].fat_tree_k == 6

    def test_table6_switches_workload(self):
        table = scenarios.table6_configs()
        assert table["Uniform"]["IRN"].workload is WorkloadKind.UNIFORM
        assert table["Heavy-tailed"]["IRN"].workload is WorkloadKind.HEAVY_TAILED

    def test_default_config_overrides_passthrough(self):
        config = scenarios.default_config(num_flows=10, seed=9, target_load=0.4)
        assert config.num_flows == 10
        assert config.seed == 9
        assert config.target_load == 0.4
