"""Unit tests for the iWARP-style TCP transport."""

import pytest

from repro.core.iwarp import TcpConfig, TcpSender
from repro.sim.engine import Simulator

from tests.helpers import FakeHost, ack, drain, make_flow, nack


def make_sender(size_bytes=50_000, **config_kwargs):
    sim = Simulator()
    host = FakeHost()
    flow = make_flow(size_bytes)
    config = TcpConfig(mtu_bytes=1000, **config_kwargs)
    return sim, host, flow, TcpSender(sim, host, flow, config)


class TestSlowStart:
    def test_initial_window_limits_the_first_burst(self):
        _, _, _, sender = make_sender(initial_cwnd_packets=2)
        packets = drain(sender, 0.0)
        assert len(packets) == 2

    def test_window_doubles_per_round_trip_in_slow_start(self):
        _, _, flow, sender = make_sender(initial_cwnd_packets=2)
        drain(sender, 0.0)
        sender.on_control(ack(flow, 2, echo_time=0.0), now=1e-4)
        assert sender.cwnd == pytest.approx(4.0)
        packets = drain(sender, 1e-4)
        assert len(packets) == 4

    def test_exits_slow_start_at_ssthresh(self):
        _, _, flow, sender = make_sender(initial_cwnd_packets=2, initial_ssthresh_packets=4)
        drain(sender, 0.0)
        sender.on_control(ack(flow, 2), now=1e-4)
        assert not sender.in_slow_start
        before = sender.cwnd
        drain(sender, 1e-4)
        sender.on_control(ack(flow, 4), now=2e-4)
        # Congestion avoidance: roughly +1 packet per window, not doubling.
        assert sender.cwnd < 2 * before

    def test_no_static_bdp_cap(self):
        _, _, _, sender = make_sender()
        assert sender.config.bdp_fc_enabled is False


class TestFastRetransmit:
    def test_three_dupacks_trigger_fast_retransmit(self):
        _, _, flow, sender = make_sender(initial_cwnd_packets=10)
        drain(sender, 0.0)
        # Packet 0 was lost: every NACK repeats cumulative_ack=0 (a dup-ack).
        for sacked in (1, 2, 3):
            sender.on_control(nack(flow, cumulative=0, sack=sacked), now=1e-4)
        assert sender.fast_retransmits == 1
        assert sender.in_recovery
        retransmit = sender.next_packet(1e-4)
        assert retransmit.psn == 0
        assert retransmit.retransmitted

    def test_window_halved_on_fast_retransmit(self):
        _, _, flow, sender = make_sender(initial_cwnd_packets=10)
        drain(sender, 0.0)
        before = sender.cwnd
        for sacked in (1, 2, 3):
            sender.on_control(nack(flow, cumulative=0, sack=sacked), now=1e-4)
        assert sender.cwnd < before

    def test_fewer_than_three_dupacks_do_not_trigger(self):
        _, _, flow, sender = make_sender(initial_cwnd_packets=10)
        drain(sender, 0.0)
        sender.on_control(nack(flow, cumulative=2, sack=3), now=1e-4)
        sender.on_control(nack(flow, cumulative=2, sack=4), now=1.1e-4)
        assert sender.fast_retransmits == 0


class TestRtoEstimation:
    def test_rto_tracks_measured_rtt(self):
        _, _, flow, sender = make_sender(initial_cwnd_packets=4, min_rto_s=1e-5)
        drain(sender, 0.0)
        sender.on_control(ack(flow, 1, echo_time=0.0), now=200e-6)
        assert sender._srtt == pytest.approx(200e-6)
        assert sender._rto >= 200e-6

    def test_timeout_collapses_window_and_backs_off(self):
        sim, _, flow, sender = make_sender(initial_cwnd_packets=8, initial_rto_s=1e-4)
        drain(sender, 0.0)
        rto_before = sender._rto
        sim.run(until=3e-4)
        assert sender.timeouts_fired >= 1
        assert sender.cwnd == pytest.approx(1.0)
        assert sender._rto >= rto_before

    def test_completion(self):
        _, _, flow, sender = make_sender(size_bytes=3_000, initial_cwnd_packets=10)
        drain(sender, 0.0)
        sender.on_control(ack(flow, 3), now=1e-4)
        assert sender.completed
