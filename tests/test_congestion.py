"""Unit tests for the congestion-control algorithms."""

import pytest

from repro.congestion.base import NoCongestionControl, RateBasedControl
from repro.congestion.dcqcn import Dcqcn, DcqcnParams
from repro.congestion.factory import make_congestion_control
from repro.congestion.timely import Timely, TimelyParams
from repro.congestion.window import AimdParams, AimdWindow, DctcpParams, DctcpWindow


class TestRateBasedPacing:
    def test_no_cc_is_unconstrained(self):
        cc = NoCongestionControl()
        assert cc.next_send_time(5.0) == 5.0
        assert cc.window_limit(42.0) == 42.0
        assert cc.current_rate_bps() == float("inf")

    def test_pacing_gap_matches_rate(self):
        cc = RateBasedControl(line_rate_bps=8e9)
        cc.on_packet_sent(8_000, now=0.0)   # 1 us at 8 Gbps
        assert cc.next_send_time(0.0) == pytest.approx(1e-6)

    def test_gap_halves_rate_doubles(self):
        cc = RateBasedControl(line_rate_bps=8e9)
        cc.rate_bps = 4e9
        cc.on_packet_sent(8_000, now=0.0)
        assert cc.next_send_time(0.0) == pytest.approx(2e-6)

    def test_clamp_rate(self):
        cc = RateBasedControl(line_rate_bps=1e9, min_rate_bps=1e6)
        cc.rate_bps = 1e12
        cc.clamp_rate()
        assert cc.rate_bps == 1e9
        cc.rate_bps = 0.0
        cc.clamp_rate()
        assert cc.rate_bps == 1e6

    def test_invalid_line_rate_rejected(self):
        with pytest.raises(ValueError):
            RateBasedControl(0.0)


class TestDcqcn:
    def test_cnp_cuts_rate(self):
        cc = Dcqcn(10e9)
        cc.on_cnp(now=1e-3)
        assert cc.rate_bps < 10e9
        assert cc.rate_cuts == 1

    def test_repeated_cnps_cut_harder(self):
        cc = Dcqcn(10e9)
        cc.on_cnp(now=1e-3)
        rate_after_one = cc.rate_bps
        cc.on_cnp(now=1.1e-3)
        assert cc.rate_bps < rate_after_one

    def test_rate_recovers_toward_target_after_quiet_period(self):
        params = DcqcnParams(rate_increase_timer_s=10e-6, alpha_timer_s=10e-6)
        cc = Dcqcn(10e9, params)
        cc.on_cnp(now=0.0)
        dropped = cc.rate_bps
        cc.on_ack(rtt=1e-5, now=500e-6)
        assert cc.rate_bps > dropped

    def test_rate_never_exceeds_line_rate(self):
        params = DcqcnParams(rate_increase_timer_s=1e-6)
        cc = Dcqcn(10e9, params)
        cc.on_cnp(now=0.0)
        cc.on_ack(rtt=1e-5, now=1.0)
        assert cc.rate_bps <= 10e9

    def test_alpha_decays_without_cnps(self):
        cc = Dcqcn(10e9)
        cc.on_cnp(now=0.0)
        alpha_after_cnp = cc.alpha
        cc.on_ack(rtt=1e-5, now=10e-3)
        assert cc.alpha < alpha_after_cnp

    def test_rate_floor(self):
        cc = Dcqcn(10e9)
        for i in range(200):
            cc.on_cnp(now=i * 1e-6)
        assert cc.rate_bps >= cc.min_rate_bps


class TestTimely:
    def params(self):
        return TimelyParams(t_low_s=50e-6, t_high_s=500e-6, min_rtt_s=20e-6,
                            additive_increase_fraction=0.01)

    def test_low_rtt_increases_rate(self):
        cc = Timely(10e9, self.params())
        cc.rate_bps = 5e9
        cc.on_ack(rtt=30e-6, now=0.0)
        cc.on_ack(rtt=30e-6, now=1e-5)
        assert cc.rate_bps > 5e9

    def test_high_rtt_decreases_rate(self):
        cc = Timely(10e9, self.params())
        cc.on_ack(rtt=100e-6, now=0.0)
        cc.on_ack(rtt=900e-6, now=1e-5)
        assert cc.rate_bps < 10e9
        assert cc.decreases >= 1

    def test_rising_gradient_in_band_decreases_rate(self):
        cc = Timely(10e9, self.params())
        for i, rtt in enumerate((100e-6, 150e-6, 220e-6, 300e-6)):
            cc.on_ack(rtt=rtt, now=i * 1e-5)
        assert cc.rate_bps < 10e9

    def test_falling_gradient_in_band_increases_rate(self):
        cc = Timely(10e9, self.params())
        cc.rate_bps = 1e9
        for i, rtt in enumerate((300e-6, 250e-6, 200e-6, 150e-6)):
            cc.on_ack(rtt=rtt, now=i * 1e-5)
        assert cc.rate_bps > 1e9

    def test_ignores_nonpositive_rtt(self):
        cc = Timely(10e9, self.params())
        cc.on_ack(rtt=0.0, now=0.0)
        assert cc.rtt_samples == 0


class TestWindowBased:
    def test_aimd_slow_start_growth(self):
        cc = AimdWindow(AimdParams(initial_window=1, slow_start=True))
        for _ in range(4):
            cc.on_ack(rtt=1e-5, now=0.0)
        assert cc.cwnd == pytest.approx(5.0)

    def test_aimd_halves_on_loss(self):
        cc = AimdWindow(AimdParams(initial_window=16, slow_start=False))
        cc.on_loss(now=0.0)
        assert cc.cwnd == pytest.approx(8.0)

    def test_aimd_timeout_collapses_to_min(self):
        cc = AimdWindow(AimdParams(initial_window=16))
        cc.on_timeout(now=0.0)
        assert cc.cwnd == 1.0

    def test_aimd_window_limit(self):
        cc = AimdWindow(AimdParams(initial_window=4))
        assert cc.window_limit(100.0) == 4.0
        assert cc.window_limit(2.0) == 2.0

    def test_dctcp_cut_scales_with_marking_fraction(self):
        heavy = DctcpWindow(DctcpParams(initial_window=10))
        light = DctcpWindow(DctcpParams(initial_window=10))
        for i in range(10):
            heavy.on_ack(rtt=1e-5, now=0.0, ecn_echo=True)
            light.on_ack(rtt=1e-5, now=0.0, ecn_echo=(i == 0))
        assert heavy.cwnd < light.cwnd

    def test_dctcp_no_marks_no_cut(self):
        cc = DctcpWindow(DctcpParams(initial_window=10))
        for _ in range(10):
            cc.on_ack(rtt=1e-5, now=0.0, ecn_echo=False)
        assert cc.cwnd > 10.0
        assert cc.window_cuts == 0

    def test_dctcp_loss_halves_window(self):
        cc = DctcpWindow(DctcpParams(initial_window=10))
        cc.on_loss(now=0.0)
        assert cc.cwnd == pytest.approx(5.0)


class TestFactory:
    def test_known_kinds(self):
        for kind, expected in (
            ("none", NoCongestionControl),
            ("dcqcn", Dcqcn),
            ("timely", Timely),
            ("aimd", AimdWindow),
            ("dctcp", DctcpWindow),
        ):
            cc = make_congestion_control(kind, line_rate_bps=10e9, base_rtt_s=10e-6)
            assert isinstance(cc, expected)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_congestion_control("bbr", 10e9, 10e-6)

    def test_timely_thresholds_scale_with_base_rtt(self):
        cc = make_congestion_control("timely", 10e9, base_rtt_s=100e-6)
        assert cc.params.t_low_s == pytest.approx(150e-6)
        assert cc.params.t_high_s == pytest.approx(600e-6)
