"""Tests for the RDMA verbs layer: packetization, OOO placement, completions."""

import random

import pytest

from repro.rdma import (
    MemoryRegion,
    OpType,
    PacketOpcode,
    ReceiveWqe,
    Requester,
    RequesterConfig,
    RequestWqe,
    Responder,
    ResponderConfig,
    SharedReceiveQueue,
)


def make_pair(mtu=100, srq=None):
    requester = Requester(RequesterConfig(mtu_bytes=mtu))
    responder = Responder(ResponderConfig(mtu_bytes=mtu), srq=srq)
    heap = MemoryRegion(8192, rkey=1)
    sink = MemoryRegion(8192, rkey=0)
    responder.register_memory(heap)
    responder.register_memory(sink)
    return requester, responder, heap, sink


def deliver(requester, responder, packets):
    """Deliver request packets, looping responses back to the requester."""
    for packet in packets:
        for response in responder.on_request(packet):
            for read_ack in requester.on_packet(response):
                # Read (N)ACKs flow requester -> responder; the responder's
                # retransmission logic is handled by the transport layer, so
                # they are simply absorbed here.
                pass


class TestPacketization:
    def test_write_split_into_mtu_chunks(self):
        requester, _, _, _ = make_pair(mtu=100)
        packets = requester.post(RequestWqe(op=OpType.WRITE, local_data=b"x" * 250,
                                            remote_addr=0, rkey=1))
        assert len(packets) == 3
        assert packets[0].opcode is PacketOpcode.WRITE_FIRST
        assert packets[1].opcode is PacketOpcode.WRITE_MIDDLE
        assert packets[2].opcode is PacketOpcode.WRITE_LAST
        assert packets[2].last

    def test_every_write_packet_carries_reth(self):
        requester, _, _, _ = make_pair(mtu=100)
        packets = requester.post(RequestWqe(op=OpType.WRITE, local_data=b"x" * 350,
                                            remote_addr=64, rkey=1))
        assert all(p.reth_addr == 64 for p in packets)

    def test_single_packet_write_uses_only_opcode(self):
        requester, _, _, _ = make_pair(mtu=100)
        packets = requester.post(RequestWqe(op=OpType.WRITE, local_data=b"abc",
                                            remote_addr=0, rkey=1))
        assert packets[0].opcode is PacketOpcode.WRITE_ONLY

    def test_write_with_imm_marks_last_packet(self):
        requester, _, _, _ = make_pair(mtu=100)
        packets = requester.post(RequestWqe(op=OpType.WRITE_WITH_IMM, local_data=b"x" * 150,
                                            remote_addr=0, rkey=1, immediate=99))
        assert packets[-1].opcode is PacketOpcode.WRITE_LAST_WITH_IMM
        assert packets[-1].immediate == 99
        assert packets[-1].recv_wqe_sn == 0
        assert packets[0].immediate is None

    def test_send_packets_carry_recv_wqe_sn_and_offset(self):
        requester, _, _, _ = make_pair(mtu=100)
        requester.post(RequestWqe(op=OpType.SEND, local_data=b"a" * 100))
        packets = requester.post(RequestWqe(op=OpType.SEND, local_data=b"b" * 250))
        assert all(p.recv_wqe_sn == 1 for p in packets)
        assert [p.offset for p in packets] == [0, 1, 2]

    def test_psns_are_contiguous_across_requests(self):
        requester, _, _, _ = make_pair(mtu=100)
        first = requester.post(RequestWqe(op=OpType.WRITE, local_data=b"x" * 150,
                                          remote_addr=0, rkey=1))
        second = requester.post(RequestWqe(op=OpType.SEND, local_data=b"y" * 50))
        psns = [p.psn for p in first + second]
        assert psns == list(range(len(psns)))

    def test_read_and_atomic_get_read_wqe_sns(self):
        requester, _, _, _ = make_pair()
        read = requester.post(RequestWqe(op=OpType.READ, length=64, remote_addr=0, rkey=1))[0]
        atomic = requester.post(RequestWqe(op=OpType.ATOMIC_FETCH_ADD, remote_addr=8, rkey=1))[0]
        assert read.read_wqe_sn == 0
        assert atomic.read_wqe_sn == 1


class TestInOrderOperation:
    def test_write_places_data_and_completes(self):
        requester, responder, heap, _ = make_pair(mtu=100)
        payload = bytes(range(256)) * 2
        packets = requester.post(RequestWqe(op=OpType.WRITE, local_data=payload,
                                            remote_addr=128, rkey=1))
        deliver(requester, responder, packets)
        assert heap.read(128, len(payload)) == payload
        cqes = requester.poll_cq()
        assert len(cqes) == 1 and cqes[0].op is OpType.WRITE

    def test_send_consumes_receive_wqes_in_order(self):
        requester, responder, _, sink = make_pair(mtu=100)
        responder.post_receive(ReceiveWqe(buffer_addr=0, length=200))
        responder.post_receive(ReceiveWqe(buffer_addr=512, length=200))
        deliver(requester, responder, requester.post(RequestWqe(op=OpType.SEND, local_data=b"first")))
        deliver(requester, responder, requester.post(RequestWqe(op=OpType.SEND, local_data=b"second")))
        assert sink.read(0, 5) == b"first"
        assert sink.read(512, 6) == b"second"
        cqes = responder.poll_cq()
        assert len(cqes) == 2 and all(c.is_receive for c in cqes)

    def test_read_returns_remote_data(self):
        requester, responder, heap, _ = make_pair(mtu=100)
        heap.write(256, b"read-me-please!!" * 8)
        packets = requester.post(RequestWqe(op=OpType.READ, length=128, remote_addr=256, rkey=1))
        deliver(requester, responder, packets)
        cqe = requester.poll_cq()[0]
        assert cqe.read_data == heap.read(256, 128)

    def test_atomic_fetch_add(self):
        requester, responder, heap, _ = make_pair()
        heap.write_u64(64, 100)
        deliver(requester, responder,
                requester.post(RequestWqe(op=OpType.ATOMIC_FETCH_ADD, remote_addr=64,
                                          rkey=1, atomic_add=23)))
        cqe = requester.poll_cq()[0]
        assert cqe.atomic_result == 100
        assert heap.read_u64(64) == 123

    def test_atomic_compare_swap(self):
        requester, responder, heap, _ = make_pair()
        heap.write_u64(64, 7)
        deliver(requester, responder,
                requester.post(RequestWqe(op=OpType.ATOMIC_CMP_SWAP, remote_addr=64, rkey=1,
                                          atomic_compare=7, atomic_swap=99)))
        assert heap.read_u64(64) == 99
        # A second CAS with a stale compare value does not swap.
        deliver(requester, responder,
                requester.post(RequestWqe(op=OpType.ATOMIC_CMP_SWAP, remote_addr=64, rkey=1,
                                          atomic_compare=7, atomic_swap=1)))
        assert heap.read_u64(64) == 99

    def test_msn_counts_completed_messages(self):
        requester, responder, heap, _ = make_pair(mtu=100)
        responder.post_receive(ReceiveWqe(buffer_addr=0, length=100))
        deliver(requester, responder, requester.post(
            RequestWqe(op=OpType.WRITE, local_data=b"x" * 250, remote_addr=0, rkey=1)))
        deliver(requester, responder, requester.post(RequestWqe(op=OpType.SEND, local_data=b"y")))
        assert responder.msn == 2


class TestOutOfOrderDelivery:
    def test_write_payload_placed_correctly_under_any_order(self):
        rng = random.Random(3)
        for trial in range(5):
            requester, responder, heap, _ = make_pair(mtu=64)
            payload = bytes(rng.randrange(256) for _ in range(500))
            packets = requester.post(RequestWqe(op=OpType.WRITE, local_data=payload,
                                                remote_addr=32, rkey=1))
            rng.shuffle(packets)
            deliver(requester, responder, packets)
            assert heap.read(32, len(payload)) == payload

    def test_ooo_arrivals_generate_sack_nacks(self):
        requester, responder, _, _ = make_pair(mtu=64)
        packets = requester.post(RequestWqe(op=OpType.WRITE, local_data=b"z" * 300,
                                            remote_addr=0, rkey=1))
        responses = responder.on_request(packets[3])
        assert responses[0].opcode is PacketOpcode.NACK
        assert responses[0].sack_psn == 3
        assert responder.ooo_arrivals == 1

    def test_completion_deferred_until_all_packets_arrive(self):
        requester, responder, _, sink = make_pair(mtu=64)
        responder.post_receive(ReceiveWqe(buffer_addr=0, length=512))
        packets = requester.post(RequestWqe(op=OpType.SEND, local_data=b"q" * 200))
        # Deliver the last packet first: a premature CQE must NOT be released.
        responder.on_request(packets[-1])
        assert responder.poll_cq() == []
        assert responder.msn == 0
        for packet in packets[:-1]:
            responder.on_request(packet)
        assert len(responder.poll_cq()) == 1
        assert responder.msn == 1

    def test_requester_completions_follow_posting_order(self):
        requester, responder, heap, _ = make_pair(mtu=64)
        responder.post_receive(ReceiveWqe(buffer_addr=0, length=512))
        write = requester.post(RequestWqe(op=OpType.WRITE, local_data=b"w" * 200,
                                          remote_addr=0, rkey=1))
        send = requester.post(RequestWqe(op=OpType.SEND, local_data=b"s" * 100))
        # Deliver the send first, then the write.
        deliver(requester, responder, send)
        assert requester.poll_cq() == []
        deliver(requester, responder, write)
        cqes = requester.poll_cq()
        assert [c.op for c in cqes] == [OpType.WRITE, OpType.SEND]

    def test_read_executes_only_after_earlier_packets(self):
        requester, responder, heap, _ = make_pair(mtu=64)
        heap.write(0, b"R" * 64)
        write = requester.post(RequestWqe(op=OpType.WRITE, local_data=b"w" * 128,
                                          remote_addr=256, rkey=1))
        read = requester.post(RequestWqe(op=OpType.READ, length=64, remote_addr=0, rkey=1))
        # The read request arrives before the write's packets.
        responses = responder.on_request(read[0])
        assert all(r.opcode is not PacketOpcode.READ_RESPONSE for r in responses)
        deliver(requester, responder, write)
        # Now the parked read has been executed and responses generated.
        assert requester.poll_cq() == [] or True
        assert responder.read_wqe_buffer == {}

    def test_read_responses_acknowledged_per_packet(self):
        requester, responder, heap, _ = make_pair(mtu=64)
        heap.write(0, bytes(range(200)))
        read = requester.post(RequestWqe(op=OpType.READ, length=200, remote_addr=0, rkey=1))
        responses = responder.on_request(read[0])
        read_responses = [r for r in responses if r.opcode is PacketOpcode.READ_RESPONSE]
        assert len(read_responses) == 4
        # Deliver them out of order and check read (N)ACK generation.
        acks = requester.on_packet(read_responses[2])
        assert acks[0].opcode is PacketOpcode.READ_NACK
        acks = requester.on_packet(read_responses[0])
        assert acks[0].opcode is PacketOpcode.READ_ACK
        requester.on_packet(read_responses[1])
        requester.on_packet(read_responses[3])
        cqe = requester.poll_cq()[0]
        assert cqe.read_data == bytes(range(200))

    def test_duplicate_request_packets_are_acked_not_reapplied(self):
        requester, responder, heap, _ = make_pair()
        heap.write_u64(8, 0)
        atomic = requester.post(RequestWqe(op=OpType.ATOMIC_FETCH_ADD, remote_addr=8,
                                           rkey=1, atomic_add=5))
        responder.on_request(atomic[0])
        responses = responder.on_request(atomic[0])   # duplicate delivery
        assert responder.duplicates == 1
        assert heap.read_u64(8) == 5                   # applied exactly once
        assert responses[0].opcode is PacketOpcode.ACK

    def test_packets_beyond_bdp_cap_are_dropped(self):
        requester, responder, _, _ = make_pair(mtu=64)
        responder.config.bdp_cap_packets = 4
        packets = requester.post(RequestWqe(op=OpType.WRITE, local_data=b"x" * 1000,
                                            remote_addr=0, rkey=1))
        responses = responder.on_request(packets[10])
        assert responses == []
        assert responder.dropped_probes == 1


class TestCreditsAndErrors:
    def test_in_order_send_without_receive_wqe_gets_rnr_nack(self):
        requester, responder, _, _ = make_pair()
        packets = requester.post(RequestWqe(op=OpType.SEND, local_data=b"hello"))
        responses = responder.on_request(packets[0])
        assert responses[0].opcode is PacketOpcode.RNR_NACK
        assert responder.rnr_nacks == 1

    def test_ooo_send_probe_without_credits_is_dropped_silently(self):
        requester, responder, _, _ = make_pair(mtu=64)
        responder.post_receive(ReceiveWqe(buffer_addr=0, length=64))
        first = requester.post(RequestWqe(op=OpType.SEND, local_data=b"a" * 64))
        second = requester.post(RequestWqe(op=OpType.SEND, local_data=b"b" * 64))
        # The first message is lost; the second (a probe without credits)
        # arrives out of order and must be dropped without an RNR NACK.
        responses = responder.on_request(second[0])
        assert responses == []
        assert responder.rnr_nacks == 0
        assert responder.dropped_probes == 1
        # Loss recovery later delivers the first message successfully.
        deliver(requester, responder, first)
        assert responder.msn == 1

    def test_acks_carry_available_credits(self):
        requester, responder, _, _ = make_pair()
        responder.post_receive(ReceiveWqe(buffer_addr=0, length=64))
        responder.post_receive(ReceiveWqe(buffer_addr=64, length=64))
        packets = requester.post(RequestWqe(op=OpType.WRITE, local_data=b"x",
                                            remote_addr=0, rkey=1))
        responses = responder.on_request(packets[0])
        assert responses[0].credits == 2

    def test_write_to_unknown_rkey_is_nacked(self):
        requester, responder, _, _ = make_pair()
        packets = requester.post(RequestWqe(op=OpType.WRITE, local_data=b"x",
                                            remote_addr=0, rkey=99))
        responses = responder.on_request(packets[0])
        assert responses[0].opcode is PacketOpcode.NACK

    def test_send_with_invalidate_invalidates_region_after_completion(self):
        requester, responder, heap, sink = make_pair(mtu=64)
        responder.post_receive(ReceiveWqe(buffer_addr=0, length=64))
        packets = requester.post(RequestWqe(op=OpType.SEND_WITH_INV, local_data=b"inv",
                                            invalidate_rkey=1))
        deliver(requester, responder, packets)
        assert not heap.valid
        with pytest.raises(PermissionError):
            heap.read(0, 1)


class TestSharedReceiveQueue:
    def test_wqes_allotted_at_dequeue_time(self):
        srq = SharedReceiveQueue()
        for i in range(4):
            srq.post(ReceiveWqe(buffer_addr=i * 128, length=128))
        requester, responder, _, sink = make_pair(mtu=64, srq=srq)
        first = requester.post(RequestWqe(op=OpType.SEND, local_data=b"m0"))
        second = requester.post(RequestWqe(op=OpType.SEND, local_data=b"m1"))
        third = requester.post(RequestWqe(op=OpType.SEND, local_data=b"m2"))
        # The third send arrives first: the responder must dequeue three WQEs
        # and use the last one (recv_WQE_SN = 2) to place it (§B.2).
        deliver(requester, responder, third)
        assert srq.dequeued == 3
        assert sink.read(256, 2) == b"m2"
        deliver(requester, responder, first)
        deliver(requester, responder, second)
        assert sink.read(0, 2) == b"m0"
        assert sink.read(128, 2) == b"m1"

    def test_post_receive_rejected_when_srq_configured(self):
        srq = SharedReceiveQueue()
        _, responder, _, _ = make_pair(srq=srq)
        with pytest.raises(RuntimeError):
            responder.post_receive(ReceiveWqe())

    def test_dequeue_up_to(self):
        srq = SharedReceiveQueue()
        for _ in range(2):
            srq.post(ReceiveWqe())
        assert len(srq.dequeue_up_to(5)) == 2
        assert srq.dequeue() is None


class TestMemoryRegion:
    def test_bounds_checked(self):
        region = MemoryRegion(16, rkey=1)
        with pytest.raises(IndexError):
            region.write(10, b"toolongpayload")
        with pytest.raises(IndexError):
            region.read(-1, 4)

    def test_u64_roundtrip(self):
        region = MemoryRegion(64)
        region.write_u64(8, 2 ** 50 + 17)
        assert region.read_u64(8) == 2 ** 50 + 17

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            MemoryRegion(0)
