"""Tests for workload generation: size distributions, Poisson arrivals, incast."""

import random

import pytest

from repro.workload.distributions import FixedSizes, HeavyTailedSizes, UniformSizes
from repro.workload.generator import PoissonWorkload, WorkloadParams
from repro.workload.incast import IncastParams, build_incast_flows, request_completion_time


class TestDistributions:
    def test_heavy_tailed_band_shape(self):
        dist = HeavyTailedSizes(scale=1.0)
        rng = random.Random(1)
        samples = [dist.sample(rng) for _ in range(4000)]
        small = sum(1 for s in samples if s <= 1000)
        large = sum(1 for s in samples if s >= 200_000)
        # Roughly 50% single-packet RPCs and 15% large storage flows.
        assert 0.42 <= small / len(samples) <= 0.58
        assert 0.09 <= large / len(samples) <= 0.21

    def test_heavy_tailed_mean_is_dominated_by_large_flows(self):
        dist = HeavyTailedSizes(scale=1.0)
        assert dist.mean_bytes() > 50_000

    def test_heavy_tailed_scale_shrinks_large_flows_only(self):
        scaled = HeavyTailedSizes(scale=0.1)
        full = HeavyTailedSizes(scale=1.0)
        assert scaled.mean_bytes() < full.mean_bytes()
        assert scaled.bands[0][1:] == full.bands[0][1:]   # RPC band untouched

    def test_heavy_tailed_invalid_bands_rejected(self):
        with pytest.raises(ValueError):
            HeavyTailedSizes(bands=((0.5, 10, 100), (0.4, 100, 1000)))

    def test_uniform_range_respected(self):
        dist = UniformSizes(10_000, 20_000)
        rng = random.Random(2)
        samples = [dist.sample(rng) for _ in range(500)]
        assert all(10_000 <= s <= 20_000 for s in samples)
        assert dist.mean_bytes() == 15_000

    def test_uniform_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            UniformSizes(100, 10)

    def test_fixed_sizes(self):
        dist = FixedSizes(12345)
        assert dist.sample(random.Random(0)) == 12345
        assert dist.mean_bytes() == 12345


class TestPoissonWorkload:
    def make(self, **kwargs):
        defaults = dict(target_load=0.5, link_bandwidth_bps=10e9,
                        sizes=FixedSizes(10_000), num_flows=200, seed=3)
        defaults.update(kwargs)
        return WorkloadParams(**defaults)

    def test_generates_requested_flow_count(self):
        workload = PoissonWorkload(self.make(), [f"h{i}" for i in range(8)])
        flows = workload.generate()
        assert len(flows) == 200

    def test_flows_sorted_by_start_time(self):
        flows = PoissonWorkload(self.make(), ["h0", "h1", "h2"]).generate()
        times = [flow.start_time for flow in flows]
        assert times == sorted(times)

    def test_no_self_destined_flows(self):
        flows = PoissonWorkload(self.make(), ["h0", "h1", "h2", "h3"]).generate()
        assert all(flow.src != flow.dst for flow in flows)

    def test_flow_ids_unique_and_offsettable(self):
        flows = PoissonWorkload(self.make(num_flows=50), ["h0", "h1"]).generate(first_flow_id=100)
        ids = [flow.flow_id for flow in flows]
        assert len(set(ids)) == 50
        assert min(ids) == 100

    def test_deterministic_for_a_seed(self):
        hosts = ["h0", "h1", "h2"]
        a = PoissonWorkload(self.make(seed=9), hosts).generate()
        b = PoissonWorkload(self.make(seed=9), hosts).generate()
        assert [(f.src, f.dst, f.size_bytes, f.start_time) for f in a] == \
               [(f.src, f.dst, f.size_bytes, f.start_time) for f in b]

    def test_arrival_rate_matches_target_load(self):
        params = self.make(target_load=0.5)
        rate = params.per_host_arrival_rate(num_hosts=4)
        # load * bw / (mean_size_bits) = 0.5 * 10e9 / 80_000 = 62_500 flows/s.
        assert rate == pytest.approx(62_500)

    def test_offered_load_close_to_target(self):
        params = self.make(target_load=0.6, num_flows=3000)
        hosts = [f"h{i}" for i in range(6)]
        flows = PoissonWorkload(params, hosts).generate()
        duration = max(f.start_time for f in flows)
        offered_bits = sum(f.size_bytes for f in flows) * 8.0
        load = offered_bits / (duration * 10e9 * len(hosts))
        assert load == pytest.approx(0.6, rel=0.15)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            WorkloadParams(target_load=0.0)
        with pytest.raises(ValueError):
            WorkloadParams(num_flows=0)
        with pytest.raises(ValueError):
            PoissonWorkload(self.make(), ["only_one_host"])


class TestIncast:
    def test_builds_fan_in_flows_to_one_destination(self):
        params = IncastParams(total_bytes=1_000_000, fan_in=10, destination="h0")
        flows = build_incast_flows(params, [f"h{i}" for i in range(20)])
        assert len(flows) == 10
        assert all(flow.dst == "h0" for flow in flows)
        assert all(flow.src != "h0" for flow in flows)
        assert all(flow.group == "incast" for flow in flows)

    def test_bytes_striped_evenly(self):
        params = IncastParams(total_bytes=1_000_000, fan_in=10, destination="h0")
        flows = build_incast_flows(params, [f"h{i}" for i in range(20)])
        assert all(flow.size_bytes == 100_000 for flow in flows)

    def test_senders_are_distinct(self):
        params = IncastParams(total_bytes=500_000, fan_in=8, destination="h1")
        flows = build_incast_flows(params, [f"h{i}" for i in range(10)])
        assert len({flow.src for flow in flows}) == 8

    def test_needs_enough_hosts(self):
        params = IncastParams(total_bytes=1_000, fan_in=5)
        with pytest.raises(ValueError):
            build_incast_flows(params, ["h0", "h1", "h2"])

    def test_unknown_destination_rejected(self):
        params = IncastParams(total_bytes=1_000, fan_in=2, destination="h99")
        with pytest.raises(ValueError):
            build_incast_flows(params, ["h0", "h1", "h2"])

    def test_request_completion_time(self):
        params = IncastParams(total_bytes=1_000, fan_in=2, destination="h0", start_time=1.0)
        flows = build_incast_flows(params, ["h0", "h1", "h2"])
        flows[0].completion_time = 1.5
        flows[1].completion_time = 2.5
        assert request_completion_time(flows) == pytest.approx(1.5)

    def test_rct_requires_completed_flows(self):
        params = IncastParams(total_bytes=1_000, fan_in=2, destination="h0")
        flows = build_incast_flows(params, ["h0", "h1", "h2"])
        with pytest.raises(RuntimeError):
            request_completion_time(flows)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            IncastParams(total_bytes=1_000, fan_in=0)
        with pytest.raises(ValueError):
            IncastParams(total_bytes=2, fan_in=5)
