"""Execution-backend semantics: registry, streaming progress, and the
durable work queue (lease atomicity, crash reclaim, resume-from-parts,
serial-vs-queue equality)."""

import json
import os
import threading
import time

import pytest

from repro.experiments.backends import (
    EXECUTION_BACKENDS,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    register_execution_backend,
    resolve_backend,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.queue import QueueBackend, TaskQueue, run_worker
from repro.experiments.sweep import ResultCache, aggregate_rows, run_sweep
from repro.metrics.partial import PartialAggregator, aggregate_partial


def tiny_config(**overrides) -> ExperimentConfig:
    """A star-topology config that simulates in a few milliseconds."""
    base = ExperimentConfig(
        name="tiny",
        topology="star",
        num_hosts=4,
        workload="fixed",
        fixed_size_bytes=20_000,
        num_flows=6,
        max_sim_time_s=1.0,
    )
    return base.with_overrides(**overrides) if overrides else base


def tiny_cells(n=4):
    """n cells over two aggregation names (seed replicas of cell0/cell1)."""
    return {
        f"s{seed}": tiny_config(seed=seed, name=f"cell{seed % 2}")
        for seed in range(1, n + 1)
    }


class TestBackendRegistry:
    def test_builtin_backends_registered(self):
        resolve_backend(None)  # force queue-module registration
        names = EXECUTION_BACKENDS.names()
        for expected in ("serial", "process", "queue"):
            assert expected in names

    def test_none_maps_workers_onto_serial_or_process(self):
        assert isinstance(resolve_backend(None, workers=1), SerialBackend)
        assert isinstance(resolve_backend(None, workers=0), SerialBackend)
        assert isinstance(resolve_backend(None, workers=4), ProcessBackend)
        assert isinstance(resolve_backend(None, workers=None), ProcessBackend)

    def test_instances_pass_through(self):
        backend = SerialBackend()
        assert resolve_backend(backend) is backend

    def test_queue_by_name_needs_a_directory(self):
        with pytest.raises(ValueError, match="queue directory"):
            resolve_backend("queue", workers=2)

    def test_queue_rejects_missing_dir_at_construction(self):
        with pytest.raises(ValueError, match="queue directory"):
            QueueBackend()

    def test_custom_backend_runs_by_name(self):
        @register_execution_backend("recording")
        class RecordingBackend(ExecutionBackend):
            seen = []

            def __init__(self, workers=None):
                self.workers = workers

            def execute(self, pending, on_result):
                from repro.experiments.sweep import _run_cell

                for item in pending:
                    RecordingBackend.seen.append(item[0])
                    on_result(_run_cell(item))
                return 7

        try:
            sweep = run_sweep({"only": tiny_config()}, backend="recording")
            assert sweep.backend == "recording"
            assert sweep.workers_used == 7
            assert RecordingBackend.seen == ["only"]
            assert sweep["only"].num_flows == 6
        finally:
            EXECUTION_BACKENDS._entries.pop("recording", None)

    def test_decorator_sets_backend_name(self):
        assert SerialBackend.name == "serial"
        assert ProcessBackend.name == "process"
        assert QueueBackend.name == "queue"

    def test_sweep_result_records_backend(self):
        assert run_sweep({"a": tiny_config()}, workers=1).backend == "serial"


class TestSweepProgress:
    def test_streams_rows_and_partial_aggregates(self):
        events = []

        def observe(progress, row):
            events.append(
                (progress.completed, progress.total, row.label, progress.aggregate())
            )

        configs = tiny_cells(4)
        sweep = run_sweep(configs, workers=1, progress=observe)
        assert [event[0] for event in events] == [1, 2, 3, 4]
        assert all(event[1] == 4 for event in events)
        assert [event[2] for event in events] == list(configs)
        # Mid-sweep partial aggregates exist (and cover fewer replicas than
        # the final table), before the sweep finishes.
        mid = events[1][3]
        assert sum(record["replicas"] for record in mid) == 2
        final = events[-1][3]
        assert final == aggregate_rows(sweep.rows.values(), by=("name",))

    def test_cache_hits_count_toward_progress(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        configs = tiny_cells(2)
        run_sweep(configs, workers=1, cache=cache)
        events = []
        again = run_sweep(
            configs, workers=1, cache=cache,
            progress=lambda p, r: events.append(p.completed),
        )
        # Everything served from cache: the observer never fires, but the
        # sweep still completes with all rows.
        assert events == []
        assert again.cache_hits == 2 and len(again) == 2


class TestPartialAggregator:
    def test_every_prefix_matches_batch_aggregation(self):
        rows = list(run_sweep(tiny_cells(4), workers=1).rows.values())
        partial = PartialAggregator(by=("name",))
        for i, row in enumerate(rows, start=1):
            partial.add(row)
            assert partial.snapshot() == aggregate_rows(rows[:i], by=("name",))
        assert partial.rows_absorbed == 4
        assert len(partial) == 2

    def test_aggregate_partial_equals_aggregate_rows(self):
        rows = list(run_sweep(tiny_cells(3), workers=1).rows.values())
        assert aggregate_partial(rows, by=("name",)) == aggregate_rows(rows, by=("name",))

    def test_incremental_add_reports_updated_cell(self):
        rows = list(run_sweep(tiny_cells(2), workers=1).rows.values())
        partial = PartialAggregator(by=("name",))
        record = partial.add(rows[0])
        assert record["name"] == rows[0].name
        assert record["replicas"] == 1
        assert record["fct_p99_s"] == rows[0].fct_percentile(0.99)

    def test_unknown_by_field_rejected(self):
        with pytest.raises(ValueError, match="unknown ResultRow field"):
            PartialAggregator(by=("nope",))


class TestTaskQueue:
    def test_lifecycle_task_to_lease_to_part(self, tmp_path):
        queue = TaskQueue(tmp_path / "q")
        config = tiny_config()
        assert queue.enqueue("cell", config) is True
        assert queue.counts() == {"tasks": 1, "leases": 0, "parts": 0, "failed": 0}

        task = queue.claim("w1")
        assert task is not None
        assert task.label == "cell"
        assert task.config == config
        assert task.config.fingerprint() == config.fingerprint()
        assert queue.counts()["leases"] == 1 and queue.counts()["tasks"] == 0

        from repro.experiments.sweep import _run_cell

        row = _run_cell((task.label, task.config))
        queue.complete(task, row)
        assert queue.counts() == {"tasks": 0, "leases": 0, "parts": 1, "failed": 0}
        assert queue.part_row(config.fingerprint()) == row

    def test_enqueue_is_idempotent_across_states(self, tmp_path):
        queue = TaskQueue(tmp_path / "q")
        config = tiny_config()
        assert queue.enqueue("cell", config) is True
        assert queue.enqueue("cell", config) is False  # already pending
        task = queue.claim("w1")
        assert queue.enqueue("cell", config) is False  # leased
        queue.complete(task, run_sweep({"cell": config}, workers=1)["cell"])
        assert queue.enqueue("cell", config) is False  # completed

    def test_task_file_is_the_config_wire_format(self, tmp_path):
        queue = TaskQueue(tmp_path / "q")
        config = tiny_config(seed=3)
        queue.enqueue("cell", config)
        payload = json.loads(queue.task_path(config.fingerprint()).read_text())
        assert payload["label"] == "cell"
        assert payload["fingerprint"] == config.fingerprint()
        rebuilt = ExperimentConfig.from_dict(payload["config"])
        assert rebuilt == config
        assert rebuilt.fingerprint() == config.fingerprint()

    def test_concurrent_claims_never_duplicate(self, tmp_path):
        queue = TaskQueue(tmp_path / "q")
        for seed in range(1, 9):
            queue.enqueue(f"s{seed}", tiny_config(seed=seed))

        claims = {}
        lock = threading.Lock()

        def drain(worker_id):
            mine = []
            while True:
                task = queue.claim(worker_id)
                if task is None:
                    break
                mine.append(task.fingerprint)
            with lock:
                claims[worker_id] = mine

        threads = [
            threading.Thread(target=drain, args=(f"w{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        all_claims = [fp for mine in claims.values() for fp in mine]
        # The atomic rename guarantees exactly-once claiming: no task is
        # claimed twice and none is lost.
        assert len(all_claims) == 8
        assert len(set(all_claims)) == 8
        assert queue.counts()["tasks"] == 0 and queue.counts()["leases"] == 8

    def test_crash_orphan_reclaim(self, tmp_path):
        queue = TaskQueue(tmp_path / "q", lease_timeout_s=60.0)
        config = tiny_config()
        queue.enqueue("cell", config)
        task = queue.claim("crashed-worker")
        assert task is not None
        # A fresh lease is not reclaimable...
        assert queue.reclaim_orphans() == []
        assert queue.claim("w2") is None
        # ...but once it exceeds the timeout (backdate the lease mtime, as a
        # worker dead for a minute would look), any participant requeues it.
        stale = time.time() - 120.0
        os.utime(queue.lease_path(config.fingerprint()), (stale, stale))
        assert queue.reclaim_orphans() == [config.fingerprint()]
        retry = queue.claim("w2")
        assert retry is not None and retry.label == "cell"

    def test_late_completion_after_reclaim_is_idempotent(self, tmp_path):
        queue = TaskQueue(tmp_path / "q", lease_timeout_s=60.0)
        config = tiny_config()
        queue.enqueue("cell", config)
        slow = queue.claim("slow-worker")
        stale = time.time() - 120.0
        os.utime(queue.lease_path(config.fingerprint()), (stale, stale))
        queue.reclaim_orphans()
        # The presumed-dead worker finishes after all: its part lands fine.
        row = run_sweep({"cell": config}, workers=1)["cell"]
        queue.complete(slow, row)
        # The requeued duplicate task is retired on sight instead of re-run.
        assert queue.claim("w2") is None
        assert queue.counts()["tasks"] == 0
        assert queue.part_row(config.fingerprint()) == row

    def test_claiming_a_long_pending_task_yields_a_fresh_lease(self, tmp_path):
        # A task can sit in the pending spool longer than the lease timeout
        # (deep backlog, few workers).  Claiming it must refresh the mtime
        # the reclaim judges by -- a rename alone preserves the enqueue-time
        # mtime and would make the new lease instantly reclaim-eligible,
        # letting a polling coordinator snatch work out from under a live
        # worker.
        queue = TaskQueue(tmp_path / "q", lease_timeout_s=60.0)
        config = tiny_config()
        queue.enqueue("cell", config)
        stale = time.time() - 3600.0
        os.utime(queue.task_path(config.fingerprint()), (stale, stale))
        task = queue.claim("w1")
        assert task is not None
        assert queue.reclaim_orphans() == []
        age = time.time() - queue.lease_path(config.fingerprint()).stat().st_mtime
        assert age < 5.0

    def test_release_returns_task_to_spool(self, tmp_path):
        queue = TaskQueue(tmp_path / "q")
        queue.enqueue("cell", tiny_config())
        task = queue.claim("w1")
        queue.release(task)
        assert queue.counts()["tasks"] == 1 and queue.counts()["leases"] == 0
        assert queue.claim("w2") is not None

    def test_parts_are_code_aware(self, tmp_path, monkeypatch):
        queue = TaskQueue(tmp_path / "q")
        config = tiny_config()
        queue.enqueue("cell", config)
        task = queue.claim("w1")
        queue.complete(task, run_sweep({"cell": config}, workers=1)["cell"])
        assert queue.part_row(config.fingerprint()) is not None
        monkeypatch.setattr(
            "repro.experiments.sweep._CODE_FINGERPRINT", "pretend-code-changed"
        )
        # A part written by a different simulator version reads as missing...
        assert queue.part_row(config.fingerprint()) is None
        # ...unless explicitly opted out (archived queue directories).
        assert queue.part_row(config.fingerprint(), code_aware=False) is not None

    def test_stale_part_does_not_pin_the_task_as_done(self, tmp_path, monkeypatch):
        # A part written by a *different source tree* must not leave the cell
        # in limbo (unreadable part + "already completed" task): enqueueing
        # deletes the stale part and respools, and claiming does not retire
        # the task against it.
        queue = TaskQueue(tmp_path / "q")
        config = tiny_config()
        queue.enqueue("cell", config)
        queue.complete(queue.claim("w1"), run_sweep({"cell": config}, workers=1)["cell"])
        monkeypatch.setattr(
            "repro.experiments.sweep._CODE_FINGERPRINT", "pretend-code-changed"
        )
        assert queue.enqueue("cell", config) is True  # stale part cleared
        task = queue.claim("w2")
        assert task is not None  # not retired against the stale part
        row = run_sweep({"cell": config}, workers=1)["cell"]
        queue.complete(task, row)
        assert queue.part_row(config.fingerprint()) == row

    def test_sweep_resumes_past_stale_parts(self, tmp_path, monkeypatch):
        # End to end: interrupt a queue sweep, "edit the simulator" (new code
        # fingerprint), and the resumed sweep recomputes the stale cells
        # instead of hanging on never-readable parts.
        configs = tiny_cells(2)
        queue = TaskQueue(tmp_path / "q")
        for label, config in configs.items():
            queue.enqueue(label, config)
        run_worker(queue, drain=True, max_tasks=1)
        monkeypatch.setattr(
            "repro.experiments.sweep._CODE_FINGERPRINT", "pretend-code-changed"
        )
        resumed = run_sweep(
            configs, backend=QueueBackend(tmp_path / "q", wait_timeout_s=60)
        )
        assert len(resumed) == 2
        assert resumed.rows == run_sweep(configs, workers=1).rows


class TestRunWorker:
    def test_drains_queue_and_writes_parts_and_cache(self, tmp_path):
        queue = TaskQueue(tmp_path / "q")
        configs = tiny_cells(3)
        for label, config in configs.items():
            queue.enqueue(label, config)
        executed = run_worker(queue, drain=True)
        assert executed == 3
        assert queue.counts() == {"tasks": 0, "leases": 0, "parts": 3, "failed": 0}
        # The shared cache was written through: a plain cached sweep over the
        # same configs simulates nothing.
        again = run_sweep(configs, workers=1, cache=queue.default_cache())
        assert again.cache_hits == 3 and again.runs_executed == 0

    def test_max_tasks_interrupts_mid_queue(self, tmp_path):
        queue = TaskQueue(tmp_path / "q")
        for label, config in tiny_cells(4).items():
            queue.enqueue(label, config)
        assert run_worker(queue, drain=True, max_tasks=2) == 2
        counts = queue.counts()
        assert counts["parts"] == 2 and counts["tasks"] == 2

    def test_failing_cell_becomes_marker_not_crash(self, tmp_path):
        queue = TaskQueue(tmp_path / "q")
        bad = tiny_config(workload="none", num_flows=0)  # generates no flows
        queue.enqueue("bad", bad)
        queue.enqueue("good", tiny_config())
        executed = run_worker(queue, drain=True, worker_id="w1")
        assert executed == 1  # the good cell
        counts = queue.counts()
        assert counts["failed"] == 1 and counts["parts"] == 1
        failures = queue.failures()
        assert list(failures) == [bad.fingerprint()]
        assert "bad" in failures[bad.fingerprint()]

    def test_accepts_plain_directory_path(self, tmp_path):
        queue = TaskQueue(tmp_path / "q")
        queue.enqueue("cell", tiny_config())
        assert run_worker(tmp_path / "q", drain=True) == 1

    def test_idle_polls_back_off_exponentially_with_jitter(self, tmp_path, monkeypatch):
        # An idle (non-drain) worker must not hammer the queue at a fixed
        # cadence: sleeps start at poll/16 and double toward the configured
        # interval, each jittered into [0.5, 1.0) of its nominal delay.
        queue = TaskQueue(tmp_path / "q")
        sleeps = []

        def fake_sleep(seconds):
            sleeps.append(seconds)
            if len(sleeps) >= 8:
                raise KeyboardInterrupt

        monkeypatch.setattr("repro.experiments.queue.time.sleep", fake_sleep)
        with pytest.raises(KeyboardInterrupt):
            run_worker(queue, poll_interval_s=0.8)
        floor = 0.8 / 16
        for attempt, observed in enumerate(sleeps):
            nominal = min(0.8, floor * 2 ** attempt)
            assert 0.5 * nominal <= observed < nominal
        assert sleeps[-1] > sleeps[0]
        assert max(sleeps) < 0.8  # jitter keeps every sleep under the cap


class TestQueueBackend:
    def test_inline_queue_matches_serial_exactly(self, tmp_path):
        configs = tiny_cells(4)
        serial = run_sweep(configs, workers=1)
        queued = run_sweep(
            configs,
            backend=QueueBackend(tmp_path / "q", wait_timeout_s=60),
        )
        assert queued.backend == "queue"
        # Bit-identical rows, labels, and pooled aggregates.
        assert queued.rows == serial.rows
        assert queued.labels() == serial.labels()
        assert aggregate_rows(queued.rows.values(), by=("name",)) == aggregate_rows(
            serial.rows.values(), by=("name",)
        )

    def test_interrupted_sweep_resumes_from_parts(self, tmp_path):
        configs = tiny_cells(4)
        serial = run_sweep(configs, workers=1)

        # Spool everything, then "kill" the sweep after two cells: a drain
        # worker executes two tasks and stops, leaving two durable parts.
        queue = TaskQueue(tmp_path / "q")
        for label, config in configs.items():
            queue.enqueue(label, config)
        run_worker(queue, drain=True, max_tasks=2)
        assert queue.counts()["parts"] == 2

        executed = []
        resumed = run_sweep(
            configs,
            backend=QueueBackend(tmp_path / "q", wait_timeout_s=60),
            progress=lambda p, r: executed.append(r.label),
        )
        # Every cell reported (the two pre-existing parts are re-served
        # through the same progress stream), rows identical to serial...
        assert sorted(executed) == sorted(configs)
        assert resumed.rows == serial.rows
        # ...and only the two missing cells were actually simulated.
        assert queue.counts()["parts"] == 4
        assert aggregate_rows(resumed.rows.values(), by=("name",)) == aggregate_rows(
            serial.rows.values(), by=("name",)
        )

    def test_streams_partial_aggregates_before_completion(self, tmp_path):
        snapshots = []
        run_sweep(
            tiny_cells(4),
            backend=QueueBackend(tmp_path / "q", wait_timeout_s=60),
            progress=lambda p, r: snapshots.append((p.completed, p.aggregate())),
        )
        assert [completed for completed, _ in snapshots] == [1, 2, 3, 4]
        # Partial aggregates exist strictly before the sweep finished.
        mid_completed, mid_agg = snapshots[1]
        assert mid_completed == 2
        assert sum(record["replicas"] for record in mid_agg) == 2

    def test_fingerprint_identical_cells_share_one_part(self, tmp_path):
        # Two labels whose configs differ only in name (not fingerprint):
        # one task runs, both rows are delivered with rebound identities.
        configs = {
            "a": tiny_config(name="scenario-a|cell"),
            "b": tiny_config(name="scenario-b|cell"),
        }
        assert configs["a"].fingerprint() == configs["b"].fingerprint()
        queue = TaskQueue(tmp_path / "q")
        sweep = run_sweep(configs, backend=QueueBackend(tmp_path / "q", wait_timeout_s=60))
        assert queue.counts()["parts"] == 1
        assert sweep["a"].name == "scenario-a|cell"
        assert sweep["b"].name == "scenario-b|cell"
        assert sweep["a"].label == "a" and sweep["b"].label == "b"

    def test_failure_marker_from_external_worker_raises(self, tmp_path, monkeypatch):
        # Model a *remote* worker failing the cell mid-sweep: the claim
        # "succeeds elsewhere" and only a failure marker appears, so the
        # coordinator must error out instead of waiting forever.
        configs = {"cell": tiny_config()}
        backend = QueueBackend(tmp_path / "q", wait_timeout_s=60)
        original_claim = TaskQueue.claim

        def claim_then_fail(self, worker_id):
            task = original_claim(self, worker_id)
            if task is not None:
                self.fail(task, RuntimeError("boom"), worker_id="other-machine")
                return None
            return task

        monkeypatch.setattr(TaskQueue, "claim", claim_then_fail)
        with pytest.raises(RuntimeError, match="queue task"):
            run_sweep(configs, backend=backend)

    def test_inline_cell_error_propagates(self, tmp_path):
        bad = {"bad": tiny_config(workload="none", num_flows=0)}
        with pytest.raises(ValueError, match="no flows"):
            run_sweep(bad, backend=QueueBackend(tmp_path / "q", wait_timeout_s=60))

    def test_uses_shared_cache_before_simulating(self, tmp_path):
        queue_dir = tmp_path / "q"
        configs = tiny_cells(2)
        # Warm the queue's default cache directly.
        warm = run_sweep(configs, workers=1, cache=ResultCache(queue_dir / "cache"))
        backend = QueueBackend(queue_dir, wait_timeout_s=60)

        def boom(config):
            raise AssertionError(f"run_experiment called for {config.name}")

        import repro.experiments.runner as runner_mod

        original = runner_mod.run_experiment
        runner_mod.run_experiment = boom
        try:
            served = run_sweep(configs, backend=backend)
        finally:
            runner_mod.run_experiment = original
        assert served.rows == warm.rows


class TestQueueBackendSubprocessWorkers:
    """End-to-end: real `python -m repro worker` processes drain the queue."""

    def test_two_workers_drain_one_queue(self, tmp_path):
        configs = tiny_cells(4)
        serial = run_sweep(configs, workers=1)
        events = []
        queued = run_sweep(
            configs,
            backend=QueueBackend(
                tmp_path / "q", workers=2, poll_interval_s=0.05, wait_timeout_s=300,
            ),
            progress=lambda p, r: events.append(p.completed),
        )
        assert queued.workers_used == 2
        assert queued.rows == serial.rows
        assert events == [1, 2, 3, 4]
        assert aggregate_rows(queued.rows.values(), by=("name",)) == aggregate_rows(
            serial.rows.values(), by=("name",)
        )
        # The workers logged their drains.
        logs = sorted((tmp_path / "q" / "logs").glob("worker-*.log"))
        assert len(logs) == 2


class TestWorkerCli:
    def test_worker_subcommand_drains(self, tmp_path, capsys):
        from repro.__main__ import main

        queue = TaskQueue(tmp_path / "q")
        for label, config in tiny_cells(2).items():
            queue.enqueue(label, config)
        rc = main(["worker", str(tmp_path / "q"), "--drain"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 cell(s) executed" in out
        assert queue.counts()["parts"] == 2

    def test_run_with_queue_backend_and_follow(self, tmp_path, capsys):
        from repro.__main__ import main

        rc = main([
            "run", "fig1", "--quick", "--flows", "12", "--no-cache",
            "--backend", "queue", "--queue-dir", str(tmp_path / "q"),
            "--follow",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "queue backend" in out
        assert "[1/2]" in out and "[2/2]" in out  # streamed partials
        assert "replicas=1" in out

    def test_quick_conflicts_with_seeds(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(["run", "fig1", "--quick", "--seeds", "3"])

    def test_queue_dir_requires_queue_backend(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit, match="--queue-dir"):
            main(["run", "fig1", "--queue-dir", "/tmp/nope"])


class TestHeartbeats:
    def test_fresh_heartbeat_blocks_reclaim_of_an_old_lease(self, tmp_path):
        # A worker stuck in one very slow cell keeps heartbeating even though
        # its lease mtime is ancient: the lease must never be stolen while
        # the heartbeat is fresh, however old the lease itself looks.
        queue = TaskQueue(tmp_path / "q", lease_timeout_s=60.0)
        config = tiny_config()
        queue.enqueue("cell", config)
        task = queue.claim("slow-worker")
        stale = time.time() - 3600.0
        os.utime(queue.lease_path(config.fingerprint()), (stale, stale))
        queue.heartbeat(task)
        assert queue.reclaim_orphans() == []
        # Only once the heartbeat too has gone silent is the worker presumed
        # dead and the task requeued (and its heartbeat file cleared).
        os.utime(queue.heartbeat_path(config.fingerprint()), (stale, stale))
        assert queue.reclaim_orphans() == [config.fingerprint()]
        assert not queue.heartbeat_path(config.fingerprint()).exists()
        assert queue.claim("w2") is not None

    def test_complete_clears_the_heartbeat(self, tmp_path):
        queue = TaskQueue(tmp_path / "q")
        config = tiny_config()
        queue.enqueue("cell", config)
        task = queue.claim("w1")
        queue.heartbeat(task)
        assert queue.heartbeat_path(config.fingerprint()).exists()
        queue.complete(task, run_sweep({"cell": config}, workers=1)["cell"])
        assert not queue.heartbeat_path(config.fingerprint()).exists()

    def test_heartbeating_context_keeps_touching_the_file(self, tmp_path):
        from repro.experiments.queue import _heartbeating

        queue = TaskQueue(tmp_path / "q")
        config = tiny_config()
        queue.enqueue("cell", config)
        task = queue.claim("w1")
        heartbeat = queue.heartbeat_path(task.fingerprint)
        with _heartbeating(queue, task, 0.05):
            first = heartbeat.stat().st_mtime
            deadline = time.time() + 5.0
            while heartbeat.stat().st_mtime == first and time.time() < deadline:
                time.sleep(0.02)
            assert heartbeat.stat().st_mtime > first

    def test_drained_worker_leaves_no_heartbeat_files(self, tmp_path):
        queue = TaskQueue(tmp_path / "q")
        for label, config in tiny_cells(2).items():
            queue.enqueue(label, config)
        run_worker(queue, drain=True)
        assert list(queue.leases_dir.glob("*.hb")) == []


class TestPartsManifest:
    def _completed(self, queue, n):
        fingerprints = []
        for label, config in tiny_cells(n).items():
            queue.enqueue(label, config)
        while True:
            task = queue.claim("w1")
            if task is None:
                break
            from repro.experiments.sweep import _run_cell

            queue.complete(task, _run_cell((task.label, task.config)))
            fingerprints.append(task.fingerprint)
        return fingerprints

    def test_complete_appends_to_the_manifest(self, tmp_path):
        queue = TaskQueue(tmp_path / "q")
        fingerprints = self._completed(queue, 3)
        assert queue.manifest_path.read_text().splitlines() == fingerprints

    def test_tail_reads_manifest_increments(self, tmp_path):
        from repro.experiments.queue import PartsTail

        queue = TaskQueue(tmp_path / "q")
        first_two = self._completed(queue, 2)
        tail = PartsTail(queue)
        assert sorted(tail.poll()) == sorted(first_two)
        assert tail.poll() == []
        third = self._completed(queue, 3)[-1]
        assert tail.poll() == [third]
        assert tail.poll() == []

    def test_tail_falls_back_to_scanning_without_a_manifest(self, tmp_path):
        from repro.experiments.queue import PartsTail

        queue = TaskQueue(tmp_path / "q")
        fingerprints = self._completed(queue, 2)
        queue.manifest_path.unlink()
        tail = PartsTail(queue)
        assert sorted(tail.poll()) == sorted(fingerprints)
        assert tail.poll() == []

    def test_forget_re_reports_on_the_next_scan(self, tmp_path):
        from repro.experiments.queue import PartsTail

        queue = TaskQueue(tmp_path / "q")
        (fingerprint,) = self._completed(queue, 1)
        tail = PartsTail(queue)
        assert tail.poll() == [fingerprint]
        tail.forget(fingerprint)
        assert tail.poll(force_scan=True) == [fingerprint]

    def test_manifest_ignores_a_torn_trailing_line(self, tmp_path):
        from repro.experiments.queue import PartsTail

        queue = TaskQueue(tmp_path / "q")
        (fingerprint,) = self._completed(queue, 1)
        tail = PartsTail(queue)
        assert tail.poll() == [fingerprint]
        # A crashed writer can leave a newline-less fragment: the tail must
        # not surface it until the line is completed.
        with open(queue.manifest_path, "a") as handle:
            handle.write("abcdef0123")
        assert tail.poll() == []
        with open(queue.manifest_path, "a") as handle:
            handle.write("456789\n")
        polled = tail.poll()
        assert polled == [] or polled == ["abcdef0123456789"]
