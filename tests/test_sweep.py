"""Tests for the parallel sweep subsystem (grid, cache, runner, aggregation)."""

import os
import pickle

import pytest

from repro.core.factory import TransportKind
from repro.experiments.config import (
    CongestionControl,
    ExperimentConfig,
    TopologyKind,
    WorkloadKind,
)
from repro.experiments.results import ResultRow
from repro.experiments.runner import run_experiment
from repro.experiments.sweep import (
    ParameterGrid,
    ResultCache,
    aggregate_rows,
    run_sweep,
)


def tiny_config(**overrides) -> ExperimentConfig:
    """A star-topology config that simulates in a few milliseconds."""
    base = ExperimentConfig(
        name="tiny",
        topology=TopologyKind.STAR,
        num_hosts=4,
        workload=WorkloadKind.FIXED,
        fixed_size_bytes=20_000,
        num_flows=6,
        max_sim_time_s=1.0,
    )
    return base.with_overrides(**overrides) if overrides else base


def tiny_grid() -> ParameterGrid:
    """A 12-cell grid: 2 transports x 2 PFC settings x 3 seeds."""
    return ParameterGrid(
        tiny_config(),
        axes={
            "transport": [TransportKind.IRN, TransportKind.ROCE],
            "pfc_enabled": [False, True],
            "seed": [1, 2, 3],
        },
    )


class TestParameterGrid:
    def test_expansion_size_and_order(self):
        grid = tiny_grid()
        cells = grid.expand()
        assert len(grid) == 12
        assert len(cells) == 12
        # Last axis (seed) varies fastest, itertools.product-style.
        first_labels = list(cells)[:3]
        assert first_labels == [
            "transport=irn, pfc_enabled=False, seed=1",
            "transport=irn, pfc_enabled=False, seed=2",
            "transport=irn, pfc_enabled=False, seed=3",
        ]

    def test_overrides_applied_and_name_set(self):
        cells = tiny_grid().expand()
        config = cells["transport=roce, pfc_enabled=True, seed=2"]
        assert config.transport is TransportKind.ROCE
        assert config.pfc_enabled is True
        assert config.seed == 2
        assert config.name == "transport=roce, pfc_enabled=True, seed=2"
        # Non-axis fields come from the base config.
        assert config.num_flows == 6

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown ExperimentConfig field"):
            ParameterGrid(tiny_config(), axes={"not_a_field": [1]})

    def test_duplicate_axis_values_rejected(self):
        # A duplicated seed would silently collapse replicas if allowed.
        grid = ParameterGrid(tiny_config(), axes={"seed": [1, 1]})
        with pytest.raises(ValueError, match="collide on label"):
            grid.expand()

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            ParameterGrid(tiny_config(), axes={"seed": []})


class TestFingerprint:
    def test_stable_for_equal_configs(self):
        assert tiny_config().fingerprint() == tiny_config().fingerprint()

    def test_cosmetic_name_does_not_change_the_key(self):
        # Identical simulations under different preset labels must share one
        # cache entry.
        assert tiny_config(name="a").fingerprint() == tiny_config(name="b").fingerprint()

    def test_sensitive_to_any_field(self):
        base = tiny_config().fingerprint()
        assert tiny_config(seed=2).fingerprint() != base
        assert tiny_config(target_load=0.6).fingerprint() != base
        assert tiny_config(congestion_control=CongestionControl.TIMELY).fingerprint() != base

    def test_canonical_dict_is_json_safe(self):
        import json

        payload = tiny_config().to_canonical_dict()
        assert json.loads(json.dumps(payload)) == payload


class TestResultRow:
    def test_pickle_roundtrip(self):
        row = run_experiment(tiny_config()).to_row(label="tiny run")
        clone = pickle.loads(pickle.dumps(row))
        assert clone == row
        assert clone.label == "tiny run"

    def test_config_pickle_roundtrip(self):
        config = tiny_config(congestion_control=CongestionControl.DCQCN)
        assert pickle.loads(pickle.dumps(config)) == config

    def test_dict_roundtrip(self):
        row = run_experiment(tiny_config()).to_row()
        assert ResultRow.from_dict(row.to_dict()) == row

    def test_matches_heavyweight_result(self):
        result = run_experiment(tiny_config())
        row = result.to_row()
        assert row.summary == result.summary
        assert row.drop_rate == result.drop_rate
        assert row.completion_fraction() == pytest.approx(result.completion_fraction())
        assert row.retransmissions == result.retransmissions
        assert row.events_processed == result.events_processed > 0

    def test_carries_latency_digests(self):
        result = run_experiment(tiny_config())
        row = result.to_row()
        fct = row.fct_distribution
        assert fct is not None and fct.count == row.num_flows
        # Exact-mode digests reproduce the per-flow computation bit for bit.
        assert fct.is_exact
        assert row.fct_percentile(0.99) == result.summary.tail_fct
        assert fct.mean == pytest.approx(result.summary.avg_fct)
        slowdowns = row.slowdown_distribution
        assert slowdowns is not None
        assert slowdowns.mean == pytest.approx(result.summary.avg_slowdown)
        # 20 kB flows are multi-packet: no single-packet digest.
        assert row.single_packet_count == 0
        with pytest.raises(ValueError, match="no single-packet digest"):
            row.single_packet_percentile(0.99)

    def test_digests_survive_dict_roundtrip(self):
        row = run_experiment(tiny_config()).to_row()
        clone = ResultRow.from_dict(row.to_dict())
        assert clone.fct_digest == row.fct_digest
        assert clone.fct_percentile(0.999) == row.fct_percentile(0.999)

    def test_rows_stay_hashable_despite_digest_payloads(self):
        # The digest dicts are excluded from __hash__ (dicts are unhashable)
        # but still participate in equality.
        row = run_experiment(tiny_config()).to_row()
        clone = ResultRow.from_dict(row.to_dict())
        assert row.fct_digest is not None
        assert {row, clone} == {row}
        assert hash(row) == hash(clone) and row == clone


class TestRunSweep:
    def test_parallel_matches_serial_for_fixed_seeds(self):
        grid = tiny_grid()
        serial = run_sweep(grid, workers=1)
        parallel = run_sweep(grid, workers=4)
        assert serial.workers_used == 1
        assert len(parallel) == 12
        # Independent seeded simulations: bit-identical rows either way.
        assert parallel.rows == serial.rows
        assert parallel.labels() == serial.labels()

    def test_accepts_label_mapping(self):
        configs = {"a": tiny_config(seed=1), "b": tiny_config(seed=2)}
        sweep = run_sweep(configs, workers=1)
        assert sweep.labels() == ["a", "b"]
        assert sweep["a"].seed == 1

    def test_accepts_plain_iterable_and_dedups_names(self):
        # Iterables are labelled by config name; shared names get suffixes
        # instead of silently overwriting each other.
        sweep = run_sweep([tiny_config(seed=1), tiny_config(seed=2)], workers=1)
        assert sweep.labels() == ["tiny", "tiny #2"]
        assert sweep["tiny"].seed == 1
        assert sweep["tiny #2"].seed == 2

    def test_duplicate_labels_rejected(self):
        class MultiMapping(dict):
            """A Mapping whose items() yields a colliding label twice."""

            def items(self):
                return [("x", tiny_config(seed=1)), ("x", tiny_config(seed=2))]

        with pytest.raises(ValueError, match="duplicate"):
            run_sweep(MultiMapping(), workers=1)


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        config = tiny_config()
        assert cache.get(config) is None
        first = run_sweep({"cell": config}, workers=1, cache=cache)
        assert (first.cache_hits, first.runs_executed) == (0, 1)
        assert cache.get(config) == first["cell"]

    def test_repeat_sweep_runs_zero_simulations(self, tmp_path, monkeypatch):
        grid = tiny_grid()
        cache = ResultCache(tmp_path / "cache")
        first = run_sweep(grid, workers=2, cache=cache)
        assert first.runs_executed == 12
        assert len(cache) == 12

        # Any attempt to simulate again must be loud: the repeated sweep has
        # to be served entirely from the on-disk cache.
        def boom(config):
            raise AssertionError(f"run_experiment called for {config.name}")

        monkeypatch.setattr("repro.experiments.runner.run_experiment", boom)
        again = run_sweep(grid, workers=1, cache=cache)
        assert again.runs_executed == 0
        assert again.cache_hits == 12
        assert again.rows == first.rows

    def test_changed_cell_reruns_only_that_cell(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        configs = {"a": tiny_config(seed=1), "b": tiny_config(seed=2)}
        run_sweep(configs, workers=1, cache=cache)
        configs["b"] = tiny_config(seed=99)
        second = run_sweep(configs, workers=1, cache=cache)
        assert second.cache_hits == 1
        assert second.runs_executed == 1
        assert second["b"].seed == 99

    def test_failing_cell_keeps_completed_siblings_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        configs = {
            "good": tiny_config(seed=1),
            # No workload and no incast: _generate_flows raises ValueError.
            "bad": tiny_config(workload=WorkloadKind.NONE, num_flows=0),
        }
        with pytest.raises(ValueError, match="no flows"):
            run_sweep(configs, workers=1, cache=cache)
        # The completed sibling survived the failure...
        assert cache.get(configs["good"]) is not None
        # ...so the retry (with the bad cell fixed) only runs the fixed cell.
        configs["bad"] = tiny_config(seed=7)
        retry = run_sweep(configs, workers=1, cache=cache)
        assert retry.cache_hits == 1
        assert retry.runs_executed == 1

    def test_cache_hit_rebinds_name_and_label(self, tmp_path):
        # `name` is excluded from the fingerprint, so a fingerprint-identical
        # cell in another scenario may carry a different name.  Names group
        # aggregation cells: a hit must serve the *requesting* config's name
        # (and label), not whichever sweep first computed the row.
        cache = ResultCache(tmp_path / "cache")
        first = tiny_config(name="scenario-a|cell")
        run_sweep({"a": first}, workers=1, cache=cache)
        second = tiny_config(name="scenario-b|cell")
        assert first.fingerprint() == second.fingerprint()
        redo = run_sweep({"b": second}, workers=1, cache=cache)
        assert redo.cache_hits == 1 and redo.runs_executed == 0
        assert redo["b"].label == "b"
        assert redo["b"].name == "scenario-b|cell"
        (record,) = aggregate_rows(redo.rows.values(), by=("name",))
        assert record["name"] == "scenario-b|cell"

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        config = tiny_config()
        run_sweep({"cell": config}, workers=1, cache=cache)
        cache.path_for(config.fingerprint()).write_text("{not json")
        assert cache.get(config) is None
        redo = run_sweep({"cell": config}, workers=1, cache=cache)
        assert redo.runs_executed == 1

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_sweep({"cell": tiny_config()}, workers=1, cache=cache)
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_code_change_invalidates_entries(self, tmp_path, monkeypatch):
        # Simulator code changes must not serve stale rows (ROADMAP item):
        # the stored code fingerprint no longer matches -> miss.
        cache = ResultCache(tmp_path / "cache")
        config = tiny_config()
        run_sweep({"cell": config}, workers=1, cache=cache)
        assert cache.get(config) is not None
        monkeypatch.setattr(
            "repro.experiments.sweep._CODE_FINGERPRINT", "pretend-code-changed"
        )
        assert cache.get(config) is None
        redo = run_sweep({"cell": config}, workers=1, cache=cache)
        assert redo.runs_executed == 1

    def test_code_unaware_cache_opts_out(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        config = tiny_config()
        run_sweep({"cell": config}, workers=1, cache=cache)
        monkeypatch.setattr(
            "repro.experiments.sweep._CODE_FINGERPRINT", "pretend-code-changed"
        )
        archive = ResultCache(tmp_path / "cache", code_aware=False)
        assert archive.get(config) is not None

    def test_rows_lists_cached_rows(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        configs = {"b": tiny_config(seed=2), "a": tiny_config(seed=1)}
        run_sweep(configs, workers=1, cache=cache)
        rows = cache.rows()
        assert [row.label for row in rows] == ["a", "b"]
        # Corrupt entries are skipped, not fatal.
        next(iter(cache.directory.glob("*.json"))).write_text("{not json")
        assert len(cache.rows()) == 1


class TestAggregation:
    def test_mean_and_p99_across_seeds(self):
        rows = run_sweep(tiny_grid(), workers=2).rows.values()
        table = aggregate_rows(rows, by=("transport", "pfc_enabled"))
        assert len(table) == 4
        cell = next(
            record for record in table
            if record["transport"] == "irn" and record["pfc_enabled"] is False
        )
        assert cell["replicas"] == 3
        assert cell["seeds"] == [1, 2, 3]
        members = [row for row in rows if row.transport == "irn" and not row.pfc_enabled]
        expected_mean = sum(row.avg_slowdown for row in members) / 3
        assert cell["avg_slowdown_mean"] == pytest.approx(expected_mean)
        # p99 of three replicas interpolates near the maximum.
        assert cell["avg_slowdown_p99"] <= max(row.avg_slowdown for row in members)
        assert cell["avg_slowdown_p99"] >= expected_mean
        assert cell["retransmissions_total"] == sum(row.retransmissions for row in members)

    def test_unknown_group_field_rejected(self):
        with pytest.raises(ValueError, match="unknown ResultRow field"):
            aggregate_rows([], by=("nope",))

    def test_stderr_and_ci95_columns(self):
        from repro.metrics.stats import ci95_half_width, stderr

        rows = list(run_sweep(tiny_grid(), workers=2).rows.values())
        table = aggregate_rows(rows, by=("transport", "pfc_enabled"))
        cell = next(
            record for record in table
            if record["transport"] == "irn" and record["pfc_enabled"] is False
        )
        members = [row.avg_slowdown for row in rows
                   if row.transport == "irn" and not row.pfc_enabled]
        assert cell["avg_slowdown_stderr"] == pytest.approx(stderr(members))
        assert cell["avg_slowdown_ci95"] == pytest.approx(ci95_half_width(members))
        # With 3 replicas the t multiplier is 4.303 (df=2), not 1.96.
        assert cell["avg_slowdown_ci95"] == pytest.approx(
            4.303 * cell["avg_slowdown_stderr"]
        )
        for metric in ("avg_slowdown", "avg_fct_s", "tail_fct_s"):
            assert cell[f"{metric}_stderr"] >= 0.0
            assert cell[f"{metric}_ci95"] >= cell[f"{metric}_stderr"]

    def test_single_replica_has_zero_ci(self):
        row = run_experiment(tiny_config()).to_row()
        (record,) = aggregate_rows([row], by=("transport",))
        assert record["avg_slowdown_stderr"] == 0.0
        assert record["avg_slowdown_ci95"] == 0.0

    def test_digests_merge_into_pooled_percentiles(self):
        from repro.metrics.sketch import QuantileDigest

        rows = list(run_sweep(tiny_grid(), workers=2).rows.values())
        table = aggregate_rows(rows, by=("transport", "pfc_enabled"))
        cell = next(
            record for record in table
            if record["transport"] == "irn" and record["pfc_enabled"] is False
        )
        members = [row for row in rows if row.transport == "irn" and not row.pfc_enabled]
        assert cell["num_flows_total"] == sum(row.num_flows for row in members)
        # The pooled p99 is the true percentile over every flow of every
        # replica (here all digests are exact, so bit-exact), not a mean of
        # per-replica tails.
        pooled = QuantileDigest()
        for row in members:
            pooled.merge(QuantileDigest.from_dict(row.fct_digest))
        assert cell["fct_p99_s"] == pooled.percentile(0.99)
        assert cell["fct_p999_s"] == pooled.percentile(0.999)
        assert cell["fct_p50_s"] <= cell["fct_p99_s"] <= cell["fct_p999_s"]
        # 20 kB flows are multi-packet: no single-packet percentiles emitted.
        assert "single_packet_p99_s" not in cell

    def test_rows_without_digests_still_aggregate(self):
        # Rows cached before the digest pipeline (fields default to None)
        # aggregate fine, just without pooled percentiles.
        row = run_experiment(tiny_config()).to_row()
        legacy = ResultRow.from_dict(
            {**row.to_dict(), "fct_digest": None, "slowdown_digest": None,
             "single_packet_digest": None}
        )
        (record,) = aggregate_rows([legacy], by=("transport",))
        assert record["replicas"] == 1
        assert "fct_p99_s" not in record


class TestPlugins:
    """REPRO_PLUGINS: worker processes import named modules before cells."""

    PLUGIN = '''
from repro.workload import WORKLOADS
from repro.core.transport import Flow

def _burst(config, hosts):
    return [Flow(flow_id=i, src=hosts[0], dst=hosts[-1], size_bytes=5_000,
                 start_time=i * 1e-5) for i in range(4)]

if "plugin_burst" not in WORKLOADS.names():
    WORKLOADS.register("plugin_burst", _burst)
'''

    @pytest.fixture()
    def plugin_module(self, tmp_path, monkeypatch):
        import sys

        import repro.experiments.sweep as sweep_mod
        from repro.workload import WORKLOADS

        (tmp_path / "sweep_test_plugin.py").write_text(self.PLUGIN)
        monkeypatch.syspath_prepend(str(tmp_path))
        # PYTHONPATH so spawn-based worker processes can import it too.
        monkeypatch.setenv(
            "PYTHONPATH",
            f"{tmp_path}{':' + os.environ['PYTHONPATH'] if os.environ.get('PYTHONPATH') else ''}",
        )
        monkeypatch.setenv("REPRO_PLUGINS", "sweep_test_plugin")
        # Reset both the import memo and any leaked registration.
        monkeypatch.setattr(sweep_mod, "_PLUGINS_IMPORTED", None)
        yield "sweep_test_plugin"
        WORKLOADS._entries.pop("plugin_burst", None)
        sys.modules.pop("sweep_test_plugin", None)
        sweep_mod._PLUGINS_IMPORTED = None

    def test_import_plugins_imports_named_modules(self, plugin_module):
        from repro.experiments.sweep import import_plugins
        from repro.workload import WORKLOADS

        assert import_plugins() == [plugin_module]
        assert "plugin_burst" in WORKLOADS.names()
        # Memoized: a second call is a no-op.
        assert import_plugins() == []

    def test_import_plugins_empty_is_noop(self, monkeypatch):
        import repro.experiments.sweep as sweep_mod
        from repro.experiments.sweep import import_plugins

        monkeypatch.delenv("REPRO_PLUGINS", raising=False)
        monkeypatch.setattr(sweep_mod, "_PLUGINS_IMPORTED", None)
        assert import_plugins() == []

    def test_parallel_sweep_with_plugin_workload(self, plugin_module):
        # The coordinating process must NOT need the plugin pre-imported:
        # _run_cell pulls it in (in workers under fork/spawn, in-process on
        # the serial fallback).
        configs = {
            "plugin cell": tiny_config(workload="plugin_burst", num_flows=4),
        }
        sweep = run_sweep(configs, workers=2)
        row = sweep["plugin cell"]
        assert row.num_flows == 4
        assert row.completion_fraction() == pytest.approx(1.0)
