"""Tests for the unified report rendering (tables, tail CDFs, cache loading)."""

import pytest

from repro.experiments.config import ExperimentConfig, TopologyKind, WorkloadKind
from repro.experiments.sweep import ResultCache, aggregate_rows, run_sweep
from repro.metrics.report import (
    format_aggregate_table,
    format_metric_table,
    format_tail_cdf,
    load_cached_rows,
    main,
)
from repro.metrics.sketch import QuantileDigest


@pytest.fixture(scope="module")
def sweep_rows():
    config = ExperimentConfig(
        name="tiny",
        topology=TopologyKind.STAR,
        num_hosts=4,
        workload=WorkloadKind.FIXED,
        fixed_size_bytes=800,  # single-packet flows, so the CDF CLI has a tail to plot
        num_flows=6,
        max_sim_time_s=1.0,
    )
    configs = {f"tiny seed={seed}": config.with_overrides(seed=seed) for seed in (1, 2)}
    return run_sweep(configs, workers=1).rows


class TestTables:
    def test_metric_table_renders_each_row(self, sweep_rows):
        text = format_metric_table("title", sweep_rows)
        assert "=== title ===" in text
        for label in sweep_rows:
            assert label in text
        assert "avg slowdown" in text

    def test_aggregate_table_includes_pooled_tail(self, sweep_rows):
        records = aggregate_rows(sweep_rows.values(), by=("name",))
        text = format_aggregate_table(records)
        assert "name=tiny" in text
        assert "p99 FCT" in text
        # 2 replicas folded into one line (plus the header).
        assert len(text.splitlines()) == 2


class TestTailCdf:
    def test_accepts_digest_payload_and_samples(self):
        samples = [float(i + 1) for i in range(200)]
        digest = QuantileDigest()
        digest.add_many(samples)
        from_digest = format_tail_cdf(digest, points=5)
        from_payload = format_tail_cdf(digest.to_dict(), points=5)
        from_samples = format_tail_cdf(samples, points=5)
        assert from_digest == from_payload == from_samples
        assert "#" in from_digest

    def test_latencies_increase_down_the_tail(self):
        digest = QuantileDigest()
        digest.add_many(float(i + 1) for i in range(500))
        lines = format_tail_cdf(digest, points=6).splitlines()[2:]
        latencies = [float(line.split()[1]) for line in lines]
        assert latencies == sorted(latencies)


class TestCacheReporting:
    def test_load_cached_rows_round_trips_labels(self, sweep_rows, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        for row in sweep_rows.values():
            cache.put(row)
        loaded = load_cached_rows(str(tmp_path / "cache"))
        assert set(loaded) == set(sweep_rows)
        assert loaded["tiny seed=1"].fct_digest == sweep_rows["tiny seed=1"].fct_digest

    def test_duplicate_labels_kept_and_disambiguated(self, tmp_path):
        # Two distinct configs cached under the same scenario label (same
        # preset at two flow counts) must both survive, not collapse.
        config = ExperimentConfig(
            name="dup", topology=TopologyKind.STAR, num_hosts=4,
            workload=WorkloadKind.FIXED, fixed_size_bytes=800, max_sim_time_s=1.0,
        )
        cache = ResultCache(tmp_path / "cache")
        for num_flows in (4, 8):
            sweep = run_sweep(
                {"dup": config.with_overrides(num_flows=num_flows)},
                workers=1, cache=cache,
            )
            assert sweep["dup"].num_flows >= num_flows // 2  # both really ran
        loaded = load_cached_rows(str(tmp_path / "cache"))
        assert len(loaded) == 2
        assert all(key.startswith("dup [") for key in loaded)

    def test_cli_renders_report_from_cache(self, sweep_rows, tmp_path, capsys):
        cache = ResultCache(tmp_path / "cache")
        for row in sweep_rows.values():
            cache.put(row)
        assert main([str(tmp_path / "cache"), "--cdf"]) == 0
        out = capsys.readouterr().out
        assert "cached rows" in out
        assert "tiny seed=1" in out
        assert "single-packet latency tail" in out

    def test_cli_reports_empty_cache(self, tmp_path, capsys):
        assert main([str(tmp_path / "empty")]) == 1
        assert "no usable cached rows" in capsys.readouterr().out
        # Reporting is read-only: a mistyped path must not leave a directory.
        assert not (tmp_path / "empty").exists()
