"""Tests for PFC primitives and switch-level pause behaviour."""

import pytest

from repro.sim.pfc import PfcConfig, PfcState, headroom_for_link


class TestPfcConfig:
    def test_pause_threshold_is_buffer_minus_headroom(self):
        config = PfcConfig(enabled=True, headroom_bytes=20_000)
        assert config.pause_threshold(240_000) == 220_000

    def test_threshold_never_negative(self):
        config = PfcConfig(headroom_bytes=50_000)
        assert config.pause_threshold(10_000) == 0

    def test_resume_threshold_matches_pause_threshold(self):
        config = PfcConfig(headroom_bytes=10_000)
        assert config.resume_threshold(100_000) == config.pause_threshold(100_000)

    def test_headroom_covers_in_flight_bytes(self):
        # 40 Gbps, 2 us propagation: 2 * 40e9 * 2e-6 / 8 = 20 KB of in-flight
        # data plus slack for packets in serialization.
        headroom = headroom_for_link(40e9, 2e-6, mtu_bytes=1000)
        assert headroom >= 20_000
        assert headroom <= 30_000

    def test_headroom_scales_with_bandwidth(self):
        assert headroom_for_link(100e9, 2e-6) > headroom_for_link(10e9, 2e-6)


class TestPfcState:
    def test_pause_only_once_until_resumed(self):
        state = PfcState()
        assert state.should_pause(100, threshold=50)
        state.mark_paused()
        assert not state.should_pause(200, threshold=50)

    def test_resume_only_when_paused(self):
        state = PfcState()
        assert not state.should_resume(0, threshold=50)
        state.mark_paused()
        assert state.should_resume(10, threshold=50)
        assert not state.should_resume(60, threshold=50)

    def test_frame_counters(self):
        state = PfcState()
        state.mark_paused()
        state.mark_resumed()
        state.mark_paused()
        assert state.pause_frames_sent == 2
        assert state.resume_frames_sent == 1

    def test_below_threshold_does_not_pause(self):
        state = PfcState()
        assert not state.should_pause(49, threshold=50)
        assert state.should_pause(50, threshold=50)


class TestHeadroomWithByteCap:
    def test_unset_cap_is_byte_identical_to_historical_budget(self):
        from repro.sim.link import DEFAULT_PORT_BATCH

        for bandwidth, delay, mtu in ((40e9, 2e-6, 1000), (10e9, 1e-6, 9000)):
            in_flight = 2.0 * bandwidth * delay / 8.0
            expected = int(in_flight + (2 * DEFAULT_PORT_BATCH + 1) * mtu + 64)
            assert headroom_for_link(bandwidth, delay, mtu) == expected
            assert headroom_for_link(bandwidth, delay, mtu, port_batch_bytes=None) == expected

    def test_byte_cap_shrinks_the_batch_budget(self):
        # Jumbo MTU: the 4-packet batch budget is 36 KB of burst; a 9 KB
        # byte cap bounds one batch at cap + one straddling MTU instead.
        uncapped = headroom_for_link(40e9, 2e-6, mtu_bytes=9000)
        capped = headroom_for_link(40e9, 2e-6, mtu_bytes=9000, port_batch_bytes=9000)
        assert capped < uncapped
        assert uncapped - capped == 2 * (4 * 9000 - (9000 + 9000))

    def test_loose_cap_changes_nothing(self):
        # A cap wider than the packet-count batch cannot grow the budget.
        assert headroom_for_link(40e9, 2e-6, 1000, port_batch_bytes=1_000_000) == \
            headroom_for_link(40e9, 2e-6, 1000)
