"""Tests for packet and frame definitions."""

from repro.sim.packet import (
    CONTROL_FRAME_BYTES,
    DEFAULT_HEADER_BYTES,
    PFC_FRAME_BYTES,
    Packet,
    PacketType,
)


class TestPacketSizes:
    def test_data_packet_size_includes_header(self):
        packet = Packet(PacketType.DATA, flow_id=1, src="a", dst="b", payload_bytes=1000)
        assert packet.size_bytes == 1000 + DEFAULT_HEADER_BYTES

    def test_custom_header_size(self):
        packet = Packet(
            PacketType.DATA, flow_id=1, src="a", dst="b", payload_bytes=1000, header_bytes=64
        )
        assert packet.size_bytes == 1064

    def test_ack_is_a_fixed_size_control_frame(self):
        packet = Packet(PacketType.ACK, flow_id=1, src="a", dst="b")
        assert packet.size_bytes == CONTROL_FRAME_BYTES

    def test_nack_and_cnp_are_control_frames(self):
        for ptype in (PacketType.NACK, PacketType.CNP):
            packet = Packet(ptype, flow_id=1, src="a", dst="b", payload_bytes=5000)
            assert packet.size_bytes == CONTROL_FRAME_BYTES

    def test_pfc_frame_size(self):
        packet = Packet(PacketType.PFC_PAUSE, flow_id=-1, src="a", dst="b")
        assert packet.size_bytes == PFC_FRAME_BYTES

    def test_size_bits(self):
        packet = Packet(PacketType.DATA, flow_id=1, src="a", dst="b", payload_bytes=100)
        assert packet.size_bits == packet.size_bytes * 8


class TestPacketClassification:
    def test_is_control(self):
        assert Packet(PacketType.ACK, 1, "a", "b").is_control()
        assert Packet(PacketType.NACK, 1, "a", "b").is_control()
        assert Packet(PacketType.CNP, 1, "a", "b").is_control()
        assert not Packet(PacketType.DATA, 1, "a", "b").is_control()
        assert not Packet(PacketType.PFC_PAUSE, 1, "a", "b").is_control()

    def test_is_pfc(self):
        assert Packet(PacketType.PFC_PAUSE, 1, "a", "b").is_pfc()
        assert Packet(PacketType.PFC_RESUME, 1, "a", "b").is_pfc()
        assert not Packet(PacketType.DATA, 1, "a", "b").is_pfc()

    def test_unique_ids_assigned(self):
        a = Packet(PacketType.DATA, 1, "a", "b")
        b = Packet(PacketType.DATA, 1, "a", "b")
        assert a.uid != b.uid

    def test_default_fields(self):
        packet = Packet(PacketType.DATA, 3, "a", "b", psn=9)
        assert packet.psn == 9
        assert packet.ecn is False
        assert packet.sack_psn is None
        assert packet.retransmitted is False
