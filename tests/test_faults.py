"""Tests for declarative fault injection (repro.faults) and recovery metrics.

Plan-level semantics (validation, window merging, wire round-trips) are
pure-unit; engine-level behavior is pinned on small dumbbell experiments --
the same topology the ``availability_*`` scenario family sweeps.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.faults import (
    DegradedLink,
    FaultPlan,
    LinkFlap,
    PacketCorruption,
    PauseStorm,
    fault_from_dict,
)


# ---------------------------------------------------------------------------
# Fault-kind and plan semantics
# ---------------------------------------------------------------------------
class TestFaultKinds:
    def test_validation_rejects_bad_windows(self):
        with pytest.raises(ValueError):
            LinkFlap(src="a", dst="b", start_s=2e-4, end_s=1e-4)
        with pytest.raises(ValueError):
            PauseStorm(src="a", dst="b", start_s=-1e-6, end_s=1e-4)
        with pytest.raises(ValueError):
            DegradedLink(src="a", dst="b", start_s=0.0, end_s=1e-4,
                         bandwidth_factor=1.5)
        with pytest.raises(ValueError):
            DegradedLink(src="a", dst="b", start_s=0.0, end_s=1e-4,
                         delay_factor=0.5)

    def test_corruption_probability_bounds(self):
        with pytest.raises(ValueError):
            PacketCorruption(src="a", dst="b", probability=0.0)
        with pytest.raises(ValueError):
            PacketCorruption(src="a", dst="b", probability=1.5)
        assert PacketCorruption(src="a", dst="b", probability=1.0).end_s is None

    def test_from_dict_dispatches_on_kind(self):
        fault = fault_from_dict(
            dict(kind="degraded_link", src="a", dst="b", start_s=0.0,
                 end_s=1e-4, bandwidth_factor=0.5, delay_factor=2.0)
        )
        assert isinstance(fault, DegradedLink)
        with pytest.raises(ValueError, match="unknown fault kind"):
            fault_from_dict(dict(kind="gremlin"))


class TestFaultPlan:
    def test_rejects_non_fault_entries(self):
        with pytest.raises(ValueError, match="not a fault kind"):
            FaultPlan(faults=("not-a-fault",))

    def test_windows_merge_overlaps(self):
        plan = FaultPlan(faults=(
            LinkFlap(src="a", dst="b", start_s=1e-4, end_s=3e-4),
            LinkFlap(src="b", dst="a", start_s=2e-4, end_s=4e-4),
            PauseStorm(src="a", dst="b", start_s=6e-4, end_s=7e-4),
        ))
        assert plan.windows() == [(1e-4, 4e-4), (6e-4, 7e-4)]
        assert plan.first_fault_start_s() == 1e-4
        assert plan.last_fault_end_s() == 7e-4

    def test_open_ended_window_absorbs_later_ones(self):
        plan = FaultPlan(faults=(
            PacketCorruption(src="a", dst="b", probability=0.5, start_s=1e-4),
            LinkFlap(src="a", dst="b", start_s=2e-4, end_s=3e-4),
        ))
        assert plan.windows() == [(1e-4, None)]
        # recovery_time_s is undefined when the plan never ends.
        assert plan.last_fault_end_s() is None

    def test_wire_round_trip_preserves_types(self):
        plan = FaultPlan(
            faults=(
                LinkFlap(src="a", dst="b", start_s=1e-4, end_s=2e-4),
                PacketCorruption(src="b", dst="a", probability=0.1),
            ),
            goodput_bin_s=5e-5,
        )
        restored = FaultPlan.from_dict(plan.to_dict())
        assert restored == plan
        assert [type(f) for f in restored.faults] == [LinkFlap, PacketCorruption]

    def test_effective_goodput_bin_floor(self):
        plan = FaultPlan()
        assert plan.effective_goodput_bin_s(base_rtt_s=1e-6) == 100e-6
        assert plan.effective_goodput_bin_s(base_rtt_s=50e-6) == 500e-6
        assert FaultPlan(goodput_bin_s=1e-5).effective_goodput_bin_s(1e-3) == 1e-5


# ---------------------------------------------------------------------------
# Engine behavior on real experiments (dumbbell bottleneck)
# ---------------------------------------------------------------------------
def _config(**overrides):
    base = dict(
        name="faults-test",
        topology="dumbbell",
        num_hosts=8,
        num_flows=40,
        flow_size_scale=0.1,
        transport="irn",
        pfc_enabled=False,
        seed=1,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


class TestFaultEngineRuns:
    def test_fault_free_run_has_no_fault_observables(self):
        result = run_experiment(_config())
        assert result.faults_enabled is False
        assert result.fault_injected_drops == 0
        row = result.to_row(label="base")
        assert row.goodput_digest is None
        assert row.stall_digest is None

    def test_certain_corruption_drops_are_counted_explicitly(self):
        plan = {"faults": [dict(kind="packet_corruption", src="s0", dst="s1",
                                probability=1.0, start_s=0.0, end_s=200e-6)]}
        base = run_experiment(_config())
        faulted = run_experiment(_config(fault_plan=plan))
        assert faulted.faults_enabled is True
        assert faulted.fault_injected_drops > 0
        # Corruption drops live in their own counter, not the switch
        # buffer-drop ledger the drop_rate headline is computed from.
        assert faulted.packets_dropped <= base.packets_dropped + 1_000
        row = faulted.to_row(label="corrupt")
        assert row.fault_injected_drops == faulted.fault_injected_drops
        assert row.goodput_digest is not None

    def test_link_flap_drops_in_flight_packets_and_recovers(self):
        plan = {"faults": [
            dict(kind="link_flap", src="s0", dst="s1",
                 start_s=150e-6, end_s=250e-6),
            dict(kind="link_flap", src="s1", dst="s0",
                 start_s=150e-6, end_s=250e-6),
        ]}
        result = run_experiment(_config(fault_plan=plan))
        assert result.faults_enabled is True
        # Something was in flight on a 4-host-per-side dumbbell bottleneck.
        assert result.fault_injected_drops > 0
        # IRN retransmits and the run completes despite the outage.
        assert result.to_row(label="flap").flows_completed == 40

    def test_degraded_link_restores_exactly(self):
        plan = {"faults": [dict(kind="degraded_link", src="s0", dst="s1",
                                start_s=100e-6, end_s=300e-6,
                                bandwidth_factor=0.5, delay_factor=2.0)]}
        degraded = run_experiment(_config(fault_plan=plan))
        base = run_experiment(_config())
        assert degraded.faults_enabled is True
        # Power-of-two factors restore the link bit-exactly, so the run
        # still completes; it just takes longer than the fault-free one.
        assert degraded.to_row(label="slow").flows_completed == 40
        assert degraded.summary.avg_fct > base.summary.avg_fct

    def test_recovery_time_reported_when_traffic_outlasts_faults(self):
        plan = {"faults": [
            dict(kind="link_flap", src=src, dst=dst,
                 start_s=300e-6, end_s=400e-6)
            for src, dst in (("s0", "s1"), ("s1", "s0"))
        ]}
        result = run_experiment(_config(num_flows=400, fault_plan=plan))
        assert result.faults_enabled is True
        assert result.recovery_time_s is not None
        assert result.recovery_time_s >= 0.0
        row = result.to_row(label="flap")
        assert row.stall_digest is not None
