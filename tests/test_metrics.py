"""Tests for metric computation: percentiles, summaries, slowdowns, CDFs."""

import pytest

from repro.core.transport import Flow
from repro.metrics.collector import MetricsCollector
from repro.metrics.stats import MetricSummary, mean, percentile, summarize, tail_cdf
from repro.sim.engine import Simulator
from repro.topology.simple import build_star


class TestPercentile:
    def test_median_of_odd_sequence(self):
        assert percentile([3, 1, 2], 0.5) == 2

    def test_interpolates_between_points(self):
        assert percentile([0, 10], 0.25) == pytest.approx(2.5)

    def test_extremes(self):
        values = list(range(100))
        assert percentile(values, 0.0) == 0
        assert percentile(values, 1.0) == 99

    def test_single_value(self):
        assert percentile([7.0], 0.99) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_out_of_range_fraction_rejected(self):
        with pytest.raises(ValueError):
            percentile([1, 2], 1.5)


class TestSummaries:
    def test_summarize_matches_inputs(self):
        summary = summarize(fcts=[1.0, 2.0, 3.0], slowdowns=[2.0, 4.0, 6.0])
        assert summary.avg_fct == pytest.approx(2.0)
        assert summary.avg_slowdown == pytest.approx(4.0)
        assert summary.tail_fct == pytest.approx(2.98)
        assert summary.num_flows == 3

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            summarize([1.0], [1.0, 2.0])

    def test_ratio_to(self):
        a = MetricSummary(avg_slowdown=2.0, avg_fct=4.0, tail_fct=8.0, num_flows=10)
        b = MetricSummary(avg_slowdown=4.0, avg_fct=8.0, tail_fct=16.0, num_flows=10)
        assert a.ratio_to(b) == (0.5, 0.5, 0.5)

    def test_as_row_order(self):
        summary = MetricSummary(1.0, 2.0, 3.0, 4)
        assert summary.as_row() == (1.0, 2.0, 3.0)

    def test_tail_cdf_is_monotone(self):
        values = [float(i) for i in range(1000)]
        cdf = tail_cdf(values, start_fraction=0.9, points=20)
        latencies = [point[0] for point in cdf]
        fractions = [point[1] for point in cdf]
        assert latencies == sorted(latencies)
        assert fractions == sorted(fractions)
        assert fractions[0] == pytest.approx(0.9)

    def test_mean_rejects_empty(self):
        with pytest.raises(ValueError):
            mean([])


class TestCollector:
    def make_collector(self):
        sim = Simulator()
        network = build_star(sim, 3, bandwidth_bps=10e9, link_delay_s=1e-6)
        return MetricsCollector(network, mtu_bytes=1000, header_bytes=0)

    def test_ideal_fct_for_single_packet_flow(self):
        collector = self.make_collector()
        flow = Flow(flow_id=1, src="h0", dst="h1", size_bytes=1000)
        ideal = collector.ideal_fct(flow)
        # 1000B at 10 Gbps = 0.8 us transmission, + 2 us propagation
        # + one store-and-forward hop of 0.8 us.
        assert ideal == pytest.approx(0.8e-6 + 2e-6 + 0.8e-6, rel=1e-3)

    def test_slowdown_never_below_one(self):
        collector = self.make_collector()
        flow = Flow(flow_id=1, src="h0", dst="h1", size_bytes=1000, start_time=0.0)
        flow.completion_time = 1e-9   # impossibly fast
        collector.on_flow_complete(flow, flow.completion_time)
        assert collector.records[0].slowdown == 1.0

    def test_summary_over_completed_flows(self):
        collector = self.make_collector()
        for i, fct in enumerate((1e-5, 2e-5, 3e-5)):
            flow = Flow(flow_id=i, src="h0", dst="h1", size_bytes=5000, start_time=0.0)
            flow.completion_time = fct
            collector.on_flow_complete(flow, fct)
        summary = collector.summary()
        assert summary.num_flows == 3
        assert summary.avg_fct == pytest.approx(2e-5)

    def test_summary_requires_completions(self):
        collector = self.make_collector()
        with pytest.raises(RuntimeError):
            collector.summary()

    def test_group_filtering(self):
        collector = self.make_collector()
        for i, group in enumerate(("incast", "background", "background")):
            flow = Flow(flow_id=i, src="h0", dst="h1", size_bytes=1000, group=group)
            flow.completion_time = 1e-5 * (i + 1)
            collector.on_flow_complete(flow, flow.completion_time)
        assert collector.summary(group="background").num_flows == 2
        assert collector.summary(group="incast").num_flows == 1

    def test_single_packet_latencies(self):
        collector = self.make_collector()
        small = Flow(flow_id=1, src="h0", dst="h1", size_bytes=100)
        small.completion_time = 5e-6
        large = Flow(flow_id=2, src="h0", dst="h1", size_bytes=50_000)
        large.completion_time = 5e-4
        collector.on_flow_complete(small, 5e-6)
        collector.on_flow_complete(large, 5e-4)
        latencies = collector.single_packet_latencies()
        assert latencies == [5e-6]

    def test_completion_fraction(self):
        collector = self.make_collector()
        flow = Flow(flow_id=1, src="h0", dst="h1", size_bytes=100)
        flow.completion_time = 1e-6
        collector.on_flow_complete(flow, 1e-6)
        assert collector.completion_fraction(4) == 0.25

    def test_flow_fct_requires_completion(self):
        flow = Flow(flow_id=1, src="h0", dst="h1", size_bytes=100)
        with pytest.raises(RuntimeError):
            flow.fct()
        assert flow.num_packets(1000) == 1
        assert Flow(flow_id=2, src="a", dst="b", size_bytes=2500).num_packets(1000) == 3


class TestStreamingCollector:
    """The streaming accumulators that feed ResultRow's quantile digests."""

    def make_collector(self, **kwargs):
        sim = Simulator()
        network = build_star(sim, 3, bandwidth_bps=10e9, link_delay_s=1e-6)
        return MetricsCollector(network, mtu_bytes=1000, header_bytes=0, **kwargs)

    def complete(self, collector, flow_id, size_bytes, fct, group="default"):
        flow = Flow(
            flow_id=flow_id, src="h0", dst="h1", size_bytes=size_bytes,
            start_time=0.0, group=group,
        )
        flow.completion_time = fct
        collector.on_flow_complete(flow, fct)

    def test_streams_track_all_flows_and_groups(self):
        collector = self.make_collector()
        self.complete(collector, 1, 500, 1e-5, group="incast")
        self.complete(collector, 2, 5000, 3e-5, group="background")
        self.complete(collector, 3, 500, 2e-5, group="background")
        assert collector.completed_count == 3
        assert collector.stream().count == 3
        assert collector.stream("background").count == 2
        assert collector.stream("incast").count == 1
        assert collector.stream("unknown-group").count == 0

    def test_single_packet_digest_matches_record_filter(self):
        collector = self.make_collector()
        self.complete(collector, 1, 500, 5e-6)     # single packet
        self.complete(collector, 2, 50_000, 5e-4)  # multi packet
        stats = collector.stream()
        assert stats.single_packet_digest.count == 1
        assert stats.single_packet_digest.percentile(0.5) == 5e-6
        assert collector.single_packet_latencies() == [5e-6]

    def test_streaming_summary_matches_record_summary(self):
        collector = self.make_collector()
        for i, fct in enumerate((1e-5, 2e-5, 3e-5, 4e-5)):
            self.complete(collector, i, 5000, fct)
        exact = collector.summary()
        streamed = collector.stream().summary()
        # Digests in exact mode reproduce the record path bit for bit.
        assert streamed == exact

    def test_keep_records_false_streams_only(self):
        collector = self.make_collector(keep_records=False)
        self.complete(collector, 1, 500, 1e-5)
        self.complete(collector, 2, 500, 3e-5)
        assert collector.records == []
        assert collector.completed_count == 2
        assert collector.completion_fraction(4) == 0.5
        summary = collector.summary()
        assert summary.num_flows == 2
        assert summary.avg_fct == pytest.approx(2e-5)
        with pytest.raises(RuntimeError, match="keep_records"):
            collector.completed_flows()
        with pytest.raises(RuntimeError, match="keep_records"):
            collector.single_packet_latencies()

    def test_keep_records_false_empty_summary_raises(self):
        collector = self.make_collector(keep_records=False)
        with pytest.raises(RuntimeError, match="no completed flows"):
            collector.summary()

    def test_infinite_slowdown_does_not_crash_streaming(self):
        # A zero-byte flow with zero header bytes on a zero-delay path has
        # ideal_fct == 0, so its slowdown is inf: it must still poison the
        # mean (as it always did) without aborting the run inside the digest.
        sim = Simulator()
        network = build_star(sim, 3, bandwidth_bps=10e9, link_delay_s=0.0)
        collector = MetricsCollector(network, mtu_bytes=1000, header_bytes=0)
        self.complete(collector, 1, 0, 1e-5)
        self.complete(collector, 2, 500, 2e-5)
        stats = collector.stream()
        assert stats.count == 2
        assert stats.avg_slowdown == float("inf")
        assert stats.slowdown_digest.count == 1  # only the finite sample
        assert stats.fct_digest.count == 2


class TestFabricDigests:
    """§4.4 observability: queue-depth and PFC-pause-duration digests."""

    def run_probed(self, **overrides):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_experiment

        config = ExperimentConfig(
            name="probed",
            topology="star",
            num_hosts=4,
            workload="fixed",
            fixed_size_bytes=40_000,
            num_flows=12,
            max_sim_time_s=1.0,
            fabric_digests=True,
            **overrides,
        )
        return run_experiment(config)

    def test_fingerprint_relevant_once_enabled(self):
        # Disabled (the default) is excluded from the canonical dict, so the
        # field's introduction invalidated no caches; enabled keys its own
        # entries, so a digest-collecting sweep is never served digest-less
        # cached rows.
        from repro.experiments.config import ExperimentConfig

        on = ExperimentConfig(fabric_digests=True)
        off = ExperimentConfig(fabric_digests=False)
        assert on.fingerprint() != off.fingerprint()
        assert "fabric_digests" not in off.to_canonical_dict()
        assert on.to_canonical_dict()["fabric_digests"] is True

    def test_cached_rows_always_match_the_digest_request(self, tmp_path):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.sweep import ResultCache, run_sweep

        base = dict(
            topology="star", num_hosts=4, workload="fixed",
            fixed_size_bytes=40_000, num_flows=12, max_sim_time_s=1.0,
        )
        cache = ResultCache(tmp_path / "cache")
        run_sweep({"cell": ExperimentConfig(name="a", **base)}, workers=1, cache=cache)
        # Requesting digests after a digest-less sweep re-simulates instead
        # of serving a row without the requested fabric distributions.
        probed = run_sweep(
            {"cell": ExperimentConfig(name="a", fabric_digests=True, **base)},
            workers=1, cache=cache,
        )
        assert probed.cache_hits == 0 and probed.runs_executed == 1
        assert probed["cell"].queue_depth_digest is not None

    def test_observation_does_not_perturb_the_run(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_experiment

        base = dict(
            topology="star", num_hosts=4, workload="fixed",
            fixed_size_bytes=40_000, num_flows=12, max_sim_time_s=1.0,
        )
        plain = run_experiment(ExperimentConfig(name="a", **base)).to_row()
        probed = self.run_probed().to_row()
        for field in ("avg_fct_s", "avg_slowdown", "events_processed",
                      "pause_frames", "packets_forwarded", "sim_time_s"):
            assert getattr(plain, field) == getattr(probed, field)
        assert plain.queue_depth_digest is None
        assert plain.pfc_pause_digest is None

    def test_row_carries_pooled_fabric_digests(self):
        result = self.run_probed()
        row = result.to_row()
        depth = row.queue_depth_distribution
        assert depth is not None and depth.count > 0
        # Every sample is a post-enqueue occupancy: positive, and bounded by
        # the per-port buffer.
        assert depth.min > 0
        assert depth.max <= result.config.effective_buffer_bytes()
        # PFC fired in this congested star (pause_frames > 0), and every
        # pause episode that *resumed* was recorded with its duration.
        pause = row.pfc_pause_distribution
        assert row.pause_frames > 0
        assert pause is not None and pause.count > 0
        assert pause.count <= row.pause_frames
        assert pause.sum > 0.0

    def test_per_switch_digests_stay_readable(self):
        result = self.run_probed()
        switches = list(result.collector.network.switches.values())
        assert all(s.queue_depth_digest is not None for s in switches)
        pooled = result.collector.fabric_queue_depth_digest()
        assert pooled.count == sum(s.queue_depth_digest.count for s in switches)

    def test_aggregate_rows_pools_fabric_digests(self):
        from repro.experiments.sweep import aggregate_rows

        rows = [self.run_probed(seed=seed).to_row() for seed in (1, 2)]
        (record,) = aggregate_rows(rows, by=("transport",))
        assert record["pfc_pause_events"] == sum(
            row.pfc_pause_distribution.count for row in rows
        )
        assert record["pfc_pause_total_s"] == pytest.approx(
            sum(row.pfc_pause_distribution.sum for row in rows)
        )
        assert (record["queue_depth_p50_bytes"]
                <= record["queue_depth_p99_bytes"]
                <= record["queue_depth_p999_bytes"])
        # Rows without fabric digests omit the columns entirely.
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_experiment

        bare = run_experiment(ExperimentConfig(
            name="bare", topology="star", num_hosts=4, workload="fixed",
            fixed_size_bytes=40_000, num_flows=12, max_sim_time_s=1.0,
        )).to_row()
        (bare_record,) = aggregate_rows([bare], by=("transport",))
        assert "queue_depth_p99_bytes" not in bare_record
        assert "pfc_pause_events" not in bare_record

    def test_digests_survive_the_row_dict_roundtrip(self):
        from repro.experiments.results import ResultRow

        row = self.run_probed().to_row()
        clone = ResultRow.from_dict(row.to_dict())
        assert clone.queue_depth_digest == row.queue_depth_digest
        assert clone.pfc_pause_digest == row.pfc_pause_digest
