"""Tests for the mergeable quantile sketch (exactness, merging, error bounds)."""

import json
import random

import pytest

from repro.metrics.sketch import QuantileDigest, merge_digest_dicts
from repro.metrics.stats import percentile

FRACTIONS = (0.0, 0.10, 0.50, 0.90, 0.99, 0.999, 1.0)


def digest_of(values, **kwargs) -> QuantileDigest:
    digest = QuantileDigest(**kwargs)
    digest.add_many(values)
    return digest


def uniform_samples(n, seed=7):
    rng = random.Random(seed)
    return [rng.uniform(1e-6, 5e-3) for _ in range(n)]


def lognormal_samples(n, seed=11):
    rng = random.Random(seed)
    return [rng.lognormvariate(-9.0, 1.0) for _ in range(n)]


class TestExactMode:
    def test_small_samples_are_bit_exact(self):
        values = uniform_samples(500)
        digest = digest_of(values)
        assert digest.is_exact
        for fraction in FRACTIONS:
            assert digest.percentile(fraction) == percentile(values, fraction)

    def test_accounting(self):
        values = [3.0, 1.0, 2.0]
        digest = digest_of(values)
        assert digest.count == len(digest) == 3
        assert digest.sum == pytest.approx(6.0)
        assert digest.mean == pytest.approx(2.0)
        assert digest.min == 1.0
        assert digest.max == 3.0

    def test_zeros_are_ranked(self):
        digest = digest_of([0.0, 0.0, 1.0, 2.0])
        assert digest.percentile(0.0) == 0.0
        assert digest.percentile(1.0) == 2.0
        assert digest.percentile(0.5) == percentile([0.0, 0.0, 1.0, 2.0], 0.5)

    def test_empty_digest_is_falsy_and_rejects_queries(self):
        digest = QuantileDigest()
        assert not digest
        with pytest.raises(ValueError):
            digest.percentile(0.5)
        with pytest.raises(ValueError):
            digest.mean

    def test_invalid_samples_rejected(self):
        digest = QuantileDigest()
        with pytest.raises(ValueError):
            digest.add(-1.0)
        with pytest.raises(ValueError):
            digest.add(float("nan"))
        with pytest.raises(ValueError):
            digest.add(float("inf"))

    def test_invalid_fraction_rejected(self):
        digest = digest_of([1.0])
        with pytest.raises(ValueError):
            digest.percentile(1.5)


class TestBucketMode:
    def test_condenses_past_max_exact(self):
        digest = digest_of(uniform_samples(50), max_exact=10)
        assert not digest.is_exact
        assert digest.count == 50

    @pytest.mark.parametrize(
        "samples", [uniform_samples(5000), lognormal_samples(5000)],
        ids=["uniform", "lognormal"],
    )
    def test_percentile_error_within_documented_bound(self, samples):
        digest = digest_of(samples, max_exact=100)
        assert not digest.is_exact
        for fraction in (0.10, 0.50, 0.90, 0.99, 0.999):
            exact = percentile(samples, fraction)
            approx = digest.percentile(fraction)
            # Documented: within relative_error (1%) of a bracketing order
            # statistic; the small extra slack covers the gap between
            # adjacent order statistics at 5k samples.
            assert approx == pytest.approx(exact, rel=0.02)

    def test_point_mass(self):
        digest = digest_of([4.2e-4] * 3000, max_exact=100)
        assert not digest.is_exact
        for fraction in (0.0, 0.5, 0.99, 1.0):
            assert digest.percentile(fraction) == pytest.approx(
                4.2e-4, rel=digest.relative_error
            )

    def test_percentiles_clamped_to_observed_range(self):
        samples = uniform_samples(2000)
        digest = digest_of(samples, max_exact=10)
        assert min(samples) <= digest.percentile(0.0)
        assert digest.percentile(1.0) <= max(samples)

    def test_zeros_in_bucket_mode(self):
        digest = digest_of([0.0] * 900 + [1.0] * 100, max_exact=10)
        assert digest.percentile(0.5) == 0.0
        assert digest.percentile(0.95) == pytest.approx(1.0, rel=digest.relative_error)

    def test_tail_cdf_monotone(self):
        digest = digest_of(lognormal_samples(3000), max_exact=100)
        cdf = digest.tail_cdf(0.90, points=20)
        values = [value for value, _ in cdf]
        fractions = [fraction for _, fraction in cdf]
        assert values == sorted(values)
        assert fractions == sorted(fractions)
        assert fractions[0] == pytest.approx(0.90)


class TestMerge:
    def test_commutative_and_associative_to_serialization(self):
        chunks = [uniform_samples(700, seed=s) for s in (1, 2, 3)]
        a, b, c = (digest_of(chunk) for chunk in chunks)

        def quantile_state(digest):
            # Everything except the running sum, whose low bits depend on
            # floating-point addition order.
            return {k: v for k, v in digest.to_dict().items() if k != "sum"}

        left = a.copy().merge(b).merge(c)
        right = a.copy().merge(b.copy().merge(c))
        swapped = c.copy().merge(a).merge(b)
        # Same multiset of samples -> identical quantile state, whatever the
        # merge order or grouping (the cache returns rows in any order).
        assert quantile_state(left) == quantile_state(right) == quantile_state(swapped)

        streamed = digest_of([v for chunk in chunks for v in chunk])
        assert quantile_state(left) == quantile_state(streamed)
        assert left.sum == pytest.approx(streamed.sum)
        for fraction in FRACTIONS:
            assert left.percentile(fraction) == streamed.percentile(fraction)

    def test_merge_matches_pooled_distribution(self):
        first, second = uniform_samples(800, seed=4), lognormal_samples(800, seed=5)
        merged = digest_of(first).merge(digest_of(second))
        pooled = first + second
        assert merged.count == len(pooled)
        assert merged.sum == pytest.approx(sum(pooled))
        for fraction in (0.5, 0.99):
            assert merged.percentile(fraction) == pytest.approx(
                percentile(pooled, fraction), rel=0.02
            )

    def test_exact_merges_stay_exact_until_ceiling(self):
        a = digest_of(uniform_samples(400, seed=1))
        b = digest_of(uniform_samples(400, seed=2))
        assert a.copy().merge(b).is_exact          # 800 <= 1024
        c = digest_of(uniform_samples(400, seed=3))
        assert not a.copy().merge(b).merge(c).is_exact  # 1200 > 1024

    def test_merge_leaves_other_untouched(self):
        a, b = digest_of([1.0, 2.0]), digest_of([3.0])
        before = b.to_dict()
        a.merge(b)
        assert b.to_dict() == before

    def test_mismatched_parameters_rejected(self):
        with pytest.raises(ValueError, match="different parameters"):
            QuantileDigest(relative_error=0.01).merge(QuantileDigest(relative_error=0.02))
        with pytest.raises(ValueError, match="different parameters"):
            QuantileDigest(max_exact=10).merge(QuantileDigest(max_exact=20))

    def test_merge_digest_dicts_skips_missing(self):
        payloads = [None, digest_of([1.0, 2.0]).to_dict(), None, digest_of([3.0]).to_dict()]
        merged = merge_digest_dicts(payloads)
        assert merged is not None and merged.count == 3
        assert merge_digest_dicts([None, None]) is None


class TestSerialization:
    @pytest.mark.parametrize("max_exact", [1024, 10], ids=["exact", "buckets"])
    def test_round_trip_through_json(self, max_exact):
        digest = digest_of(lognormal_samples(300), max_exact=max_exact)
        payload = json.loads(json.dumps(digest.to_dict()))
        clone = QuantileDigest.from_dict(payload)
        assert clone == digest
        for fraction in FRACTIONS:
            assert clone.percentile(fraction) == digest.percentile(fraction)

    def test_round_trip_preserves_mergeability(self):
        digest = digest_of(uniform_samples(200))
        clone = QuantileDigest.from_dict(digest.to_dict())
        assert clone.merge(digest).count == 400

    def test_malformed_payload_rejected(self):
        payload = digest_of([1.0]).to_dict()
        payload["buckets"] = [[0, 1]]  # both exact and buckets present
        with pytest.raises(ValueError, match="exactly one"):
            QuantileDigest.from_dict(payload)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            QuantileDigest(relative_error=0.0)
        with pytest.raises(ValueError):
            QuantileDigest(max_exact=-1)
