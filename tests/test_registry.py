"""Tests for the component registries (topologies, workloads, transports,
congestion schemes) and the generic registry semantics behind them."""

import pytest

from repro.congestion.base import RateBasedControl
from repro.congestion.factory import (
    CONGESTION_SCHEMES,
    make_congestion_control,
    register_congestion_control,
)
from repro.core.factory import TRANSPORTS, TransportKind
from repro.experiments.config import (
    CongestionControl,
    ExperimentConfig,
    TopologyKind,
    WorkloadKind,
)
from repro.experiments.runner import run_experiment
from repro.registry import DuplicateNameError, Registry, UnknownNameError
from repro.sim.network import Network
from repro.topology import TOPOLOGIES, register_topology
from repro.workload import WORKLOADS


class TestRegistrySemantics:
    def test_register_and_get(self):
        registry = Registry("widget")
        registry.register("a", 1)
        assert registry.get("a") == 1
        assert "a" in registry
        assert len(registry) == 1

    def test_decorator_form_returns_the_function(self):
        registry = Registry("widget")

        @registry.register("fn")
        def fn():
            return 42

        assert fn() == 42
        assert registry.get("fn") is fn

    def test_duplicate_registration_rejected(self):
        registry = Registry("widget")
        registry.register("a", 1)
        with pytest.raises(DuplicateNameError, match="already registered"):
            registry.register("a", 2)
        # Explicit replace wins.
        registry.register("a", 3, replace=True)
        assert registry.get("a") == 3

    def test_alias_collision_rejected(self):
        registry = Registry("widget")
        registry.register("a", 1, aliases=("b",))
        with pytest.raises(DuplicateNameError):
            registry.register("b", 2)

    def test_unknown_name_lists_valid_names(self):
        registry = Registry("widget")
        registry.register("alpha", 1)
        registry.register("beta", 2)
        with pytest.raises(UnknownNameError) as excinfo:
            registry.get("gamma")
        message = str(excinfo.value)
        assert "unknown widget 'gamma'" in message
        assert "alpha" in message and "beta" in message

    def test_unknown_name_is_both_keyerror_and_valueerror(self):
        registry = Registry("widget")
        with pytest.raises(KeyError):
            registry.get("nope")
        with pytest.raises(ValueError):
            registry.get("nope")

    def test_lookup_is_case_insensitive_and_alias_aware(self):
        registry = Registry("widget")
        registry.register("Alpha", 1, aliases=("first",))
        assert registry.get("alpha") == 1
        assert registry.get("ALPHA") == 1
        assert registry.get("first") == 1
        assert registry.names() == ["alpha"]  # aliases are not canonical names

    def test_unregister(self):
        registry = Registry("widget")
        registry.register("a", 1, aliases=("b",))
        registry.unregister("a")
        assert "a" not in registry and "b" not in registry

    def test_replace_over_an_alias_promotes_it_to_canonical(self):
        registry = Registry("widget")
        registry.register("a", "old", aliases=("b",))
        registry.register("b", "new", replace=True)
        # The stale alias must not keep redirecting lookups to the old target.
        assert registry.get("b") == "new"
        assert registry.get("a") == "old"
        assert registry.names() == ["a", "b"]


class TestBuiltinRegistrations:
    def test_all_topology_kinds_registered(self):
        for kind in TopologyKind:
            assert kind.value in TOPOLOGIES

    def test_all_workload_kinds_registered(self):
        for kind in WorkloadKind:
            assert kind.value in WORKLOADS

    def test_all_transport_kinds_registered(self):
        for kind in TransportKind:
            assert kind.value in TRANSPORTS

    def test_all_congestion_kinds_registered(self):
        for kind in CongestionControl:
            assert kind.value in CONGESTION_SCHEMES

    def test_enum_members_resolve_through_registries(self):
        # The deprecated enums are thin aliases: a member and its string
        # value resolve to the same registry entry.
        assert TOPOLOGIES.get(TopologyKind.FAT_TREE) is TOPOLOGIES.get("fat_tree")
        assert TRANSPORTS.get(TransportKind.IRN) is TRANSPORTS.get("irn")
        assert CONGESTION_SCHEMES.get(CongestionControl.DCQCN) is (
            CONGESTION_SCHEMES.get("dcqcn")
        )
        assert WORKLOADS.get(WorkloadKind.NONE) is WORKLOADS.get("none")

    def test_congestion_aliases_still_work(self):
        for alias in ("none", "no_cc", "off"):
            cc = make_congestion_control(alias, 10e9, 10e-6)
            assert cc.next_send_time(0.0) == 0.0

    def test_scheme_metadata_drives_switch_config(self):
        # ECN marking follows registry metadata, not a hard-coded enum check.
        dcqcn = ExperimentConfig(congestion_control="dcqcn").switch_config()
        assert dcqcn.ecn.enabled and not dcqcn.ecn.step_marking
        dctcp = ExperimentConfig(congestion_control="dctcp").switch_config()
        assert dctcp.ecn.enabled and dctcp.ecn.step_marking
        none = ExperimentConfig(congestion_control="none").switch_config()
        assert not none.ecn.enabled


class TestConfigKindCoercion:
    def test_string_spelling_matches_enum_spelling(self):
        by_enum = ExperimentConfig(
            topology=TopologyKind.STAR,
            transport=TransportKind.ROCE,
            congestion_control=CongestionControl.TIMELY,
            workload=WorkloadKind.UNIFORM,
        )
        by_string = ExperimentConfig(
            topology="star", transport="roce",
            congestion_control="timely", workload="uniform",
        )
        assert by_string.topology is TopologyKind.STAR
        assert by_string.transport is TransportKind.ROCE
        assert by_string.fingerprint() == by_enum.fingerprint()

    def test_unknown_component_names_stay_strings(self):
        config = ExperimentConfig(topology="not_yet_registered")
        assert config.topology == "not_yet_registered"
        with pytest.raises(UnknownNameError, match="fat_tree"):
            config.max_hop_count()

    def test_alias_spellings_canonicalize(self):
        # "off"/"no_cc" are registry aliases of "none": all three spellings
        # must run identical simulations under identical fingerprints and
        # aggregate into the same cell.
        canonical = ExperimentConfig(congestion_control="none")
        for alias in ("off", "no_cc", "OFF"):
            config = ExperimentConfig(congestion_control=alias)
            assert config.congestion_control is CongestionControl.NONE, alias
            assert config.congestion_control_name == "none"
            assert config.fingerprint() == canonical.fingerprint()

    def test_unknown_component_names_normalize_case(self):
        # Registries lowercase their keys, so case variants of one custom
        # component must serialize (fingerprint, aggregate) identically.
        upper = ExperimentConfig(congestion_control="Swift")
        lower = ExperimentConfig(congestion_control="swift")
        assert upper.congestion_control == "swift"
        assert upper.fingerprint() == lower.fingerprint()

    def test_keep_flow_records_excluded_from_fingerprint(self):
        # An execution/memory knob must not invalidate warm sweep caches.
        assert (
            ExperimentConfig(keep_flow_records=False).fingerprint()
            == ExperimentConfig(keep_flow_records=True).fingerprint()
        )


class TestCustomComponentsEndToEnd:
    """A user-defined topology + congestion scheme, registered from outside
    ``src/repro`` and swept without modifying any repro module."""

    @pytest.fixture()
    def custom_components(self):
        @register_topology("test_triangle", max_hop_count=3, switch_radix=4)
        def build_triangle(sim, config, switch_config):
            network = Network(sim)
            for switch in ("s0", "s1", "s2"):
                network.add_switch(switch, config=switch_config)
            network.connect("s0", "s1", config.link_bandwidth_bps, config.link_delay_s)
            network.connect("s1", "s2", config.link_bandwidth_bps, config.link_delay_s)
            for i, switch in enumerate(("s0", "s1", "s2")):
                host = f"h{i}"
                network.add_host(host)
                network.connect(host, switch, config.link_bandwidth_bps, config.link_delay_s)
            network.build_routing()
            return network

        @register_congestion_control("test_quarter_rate")
        def make_quarter_rate(line_rate_bps, base_rtt_s, params=None):
            cc = RateBasedControl(line_rate_bps)
            cc.rate_bps = line_rate_bps / 4
            return cc

        yield
        TOPOLOGIES.unregister("test_triangle")
        CONGESTION_SCHEMES.unregister("test_quarter_rate")

    def test_custom_topology_and_scheme_run(self, custom_components):
        config = ExperimentConfig(
            name="custom",
            topology="test_triangle",
            congestion_control="test_quarter_rate",
            num_hosts=3,
            pfc_enabled=False,
            workload="fixed",
            fixed_size_bytes=20_000,
            num_flows=6,
            max_sim_time_s=1.0,
        )
        assert config.max_hop_count() == 3
        result = run_experiment(config)
        assert result.completion_fraction() == 1.0
        row = result.to_row()
        assert row.topology == "test_triangle"
        assert row.congestion_control == "test_quarter_rate"

    def test_custom_components_sweep_and_fingerprint(self, custom_components):
        from repro.experiments.sweep import run_sweep

        base = ExperimentConfig(
            topology="test_triangle",
            congestion_control="test_quarter_rate",
            num_hosts=3,
            workload="fixed",
            fixed_size_bytes=20_000,
            num_flows=4,
            max_sim_time_s=1.0,
        )
        configs = {f"seed {s}": base.with_overrides(seed=s) for s in (1, 2)}
        # Serial sweep: in-process registrations do not cross process pools.
        sweep = run_sweep(configs, workers=1)
        assert len(sweep) == 2
        assert all(row.completion_fraction() == 1.0 for row in sweep.rows.values())
        # String component names fingerprint deterministically.
        assert base.fingerprint() == base.with_overrides().fingerprint()