"""``fabric_digests`` must be pure observation: byte-neutral results.

Turning the §4.4 fabric probes on changes *what the row carries* (the two
digest payloads, and therefore the fingerprint) but must never perturb the
physics: every other :class:`ResultRow` field -- FCTs, drops, pauses,
deadlocks, event counts -- has to come out byte-identical.  Checked across
25 fuzzed configs spanning every registered topology, both transports and
both PFC settings.
"""

import random

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.results import ResultRow
from repro.experiments.runner import run_experiment

#: Fields legitimately affected by the knob: the digests it collects, and
#: the fingerprint (``fabric_digests`` joins it once enabled so a
#: digest-collecting sweep is never served digest-less cached rows).
DIGEST_ONLY_FIELDS = ("queue_depth_digest", "pfc_pause_digest", "fingerprint")


def _fuzzed_config(seed: int) -> ExperimentConfig:
    rng = random.Random(seed)
    topology = rng.choice(("star", "dumbbell", "parking_lot", "ring"))
    transport = rng.choice(("irn", "roce"))
    return ExperimentConfig(
        name=f"digest-fuzz-{seed}",
        topology=topology,
        ring_switches=3,
        num_hosts=rng.choice((4, 6, 8)),
        transport=transport,
        pfc_enabled=rng.random() < 0.5,
        workload=rng.choice(("fixed", "uniform")),
        fixed_size_bytes=rng.randrange(2_000, 20_000, 1000),
        uniform_low_bytes=2_000,
        uniform_high_bytes=20_000,
        num_flows=rng.randint(4, 10),
        target_load=rng.choice((0.3, 0.5, 0.7)),
        seed=seed,
        max_sim_time_s=0.004,
        keep_flow_records=False,
    )


@pytest.mark.parametrize("seed", range(25))
def test_fabric_digests_are_byte_neutral(seed):
    config = _fuzzed_config(seed)
    row_off = ResultRow.from_result(run_experiment(config))
    row_on = ResultRow.from_result(
        run_experiment(config.with_overrides(fabric_digests=True))
    )

    assert row_off.queue_depth_digest is None
    assert row_on.queue_depth_digest is not None

    payload_off = row_off.to_dict()
    payload_on = row_on.to_dict()
    for field in DIGEST_ONLY_FIELDS:
        payload_off.pop(field, None)
        payload_on.pop(field, None)
    assert payload_off == payload_on
