"""Unit tests for the RoCE go-back-N transport."""

import pytest

from repro.core.roce import RoceConfig, RoceReceiver, RoceSender
from repro.sim.engine import Simulator
from repro.sim.packet import Packet, PacketType

from tests.helpers import FakeHost, ack, drain, make_flow, nack


def make_sender(size_bytes=8_000, sim=None, **config_kwargs):
    sim = sim or Simulator()
    host = FakeHost()
    flow = make_flow(size_bytes)
    config = RoceConfig(mtu_bytes=1000, **config_kwargs)
    return sim, host, flow, RoceSender(sim, host, flow, config)


def data(flow, psn):
    return Packet(PacketType.DATA, flow.flow_id, flow.src, flow.dst, psn=psn, payload_bytes=1000)


class TestRoceSender:
    def test_sends_entire_flow_without_windowing(self):
        _, _, _, sender = make_sender(size_bytes=50_000)
        packets = drain(sender, 0.0)
        assert len(packets) == 50
        assert [p.psn for p in packets] == list(range(50))

    def test_nack_causes_go_back_n(self):
        _, _, flow, sender = make_sender(size_bytes=10_000)
        drain(sender, 0.0)
        sender.on_control(nack(flow, cumulative=4, sack=None), now=1e-5)
        retransmits = drain(sender, 1e-5)
        assert [p.psn for p in retransmits] == [4, 5, 6, 7, 8, 9]
        assert all(p.retransmitted for p in retransmits)
        assert sender.go_back_events == 1

    def test_redundant_retransmissions_counted(self):
        _, _, flow, sender = make_sender(size_bytes=10_000)
        drain(sender, 0.0)
        sender.on_control(nack(flow, cumulative=0, sack=None), now=1e-5)
        drain(sender, 1e-5)
        # Go-back-N resends all ten packets even if only one was lost.
        assert sender.retransmissions == 10

    def test_ack_advances_and_completes(self):
        _, _, flow, sender = make_sender(size_bytes=3_000)
        drain(sender, 0.0)
        sender.on_control(ack(flow, 3), now=1e-5)
        assert sender.completed

    def test_ack_does_not_move_backwards(self):
        _, _, flow, sender = make_sender(size_bytes=5_000)
        drain(sender, 0.0)
        sender.on_control(ack(flow, 4), now=1e-5)
        sender.on_control(ack(flow, 2), now=2e-5)
        assert sender.snd_una == 4

    def test_timeout_rewinds_to_snd_una(self):
        sim, _, flow, sender = make_sender(size_bytes=5_000, rto_s=1e-4)
        drain(sender, 0.0)
        sender.on_control(ack(flow, 2), now=1e-6)
        sim.run(until=5e-4)
        assert sender.timeouts_fired >= 1
        nxt = sender.next_packet(sim.now)
        assert nxt.psn == 2

    def test_timeouts_disabled_for_pfc_baseline(self):
        sim, _, flow, sender = make_sender(size_bytes=5_000, timeouts_enabled=False)
        drain(sender, 0.0)
        sim.run(until=1.0)
        assert sender.timeouts_fired == 0

    def test_window_limit_honoured_with_congestion_control(self):
        from repro.congestion.window import AimdParams, AimdWindow

        sim = Simulator()
        flow = make_flow(20_000)
        cc = AimdWindow(AimdParams(initial_window=4, slow_start=False))
        sender = RoceSender(sim, FakeHost(), flow, RoceConfig(mtu_bytes=1000),
                            congestion_control=cc)
        packets = drain(sender, 0.0)
        assert len(packets) == 4


class TestRoceReceiver:
    def test_discards_out_of_order_packets(self):
        sim = Simulator()
        flow = make_flow(5_000)
        receiver = RoceReceiver(sim, flow)
        receiver.on_data(data(flow, 0), 0.0)
        receiver.on_data(data(flow, 2), 1e-6)
        receiver.on_data(data(flow, 3), 2e-6)
        # Only the in-order packet counts as delivered.
        assert receiver.delivered_packets == 1
        assert not receiver.completed

    def test_nack_carries_expected_psn(self):
        sim = Simulator()
        flow = make_flow(5_000)
        receiver = RoceReceiver(sim, flow)
        receiver.on_data(data(flow, 0), 0.0)
        responses = receiver.on_data(data(flow, 3), 1e-6)
        assert responses[0].ptype is PacketType.NACK
        assert responses[0].cumulative_ack == 1

    def test_completes_after_in_order_retransmission(self):
        sim = Simulator()
        flow = make_flow(3_000)
        receiver = RoceReceiver(sim, flow)
        receiver.on_data(data(flow, 0), 0.0)
        receiver.on_data(data(flow, 2), 1e-6)       # discarded
        receiver.on_data(data(flow, 1), 2e-6)
        receiver.on_data(data(flow, 2), 3e-6)       # retransmitted in order
        assert receiver.completed

    def test_acks_suppressed_when_configured(self):
        sim = Simulator()
        flow = make_flow(2_000)
        receiver = RoceReceiver(sim, flow, RoceConfig(mtu_bytes=1000, generate_acks=False))
        responses = receiver.on_data(data(flow, 0), 0.0)
        assert responses == []
        # Completion is still tracked even without acknowledgements.
        receiver.on_data(data(flow, 1), 1e-6)
        assert receiver.completed
