"""Tests for topology builders."""

import pytest

from repro.sim.engine import Simulator
from repro.topology.fattree import FatTreeParams, build_fat_tree
from repro.topology.simple import build_dumbbell, build_parking_lot, build_star


class TestFatTreeParams:
    def test_host_and_switch_counts(self):
        params = FatTreeParams(k=4)
        assert params.num_hosts == 16
        assert params.num_core_switches == 4
        assert params.num_switches == 20

    def test_k6_matches_paper_default_scale(self):
        params = FatTreeParams(k=6)
        assert params.num_hosts == 54
        assert params.num_switches == 45

    def test_odd_arity_rejected(self):
        with pytest.raises(ValueError):
            FatTreeParams(k=5)

    def test_bdp_matches_paper_numbers(self):
        # 40 Gbps, 2 us per hop, 6-hop longest path: BDP = 120 KB = 120 packets.
        params = FatTreeParams(k=6, link_bandwidth_bps=40e9, link_delay_s=2e-6)
        assert params.bdp_bytes() == 120_000
        assert params.bdp_packets(1000) == 120

    def test_longest_path_rtt(self):
        params = FatTreeParams(k=4, link_delay_s=1e-6)
        assert params.longest_path_rtt() == pytest.approx(12e-6)


class TestFatTreeBuild:
    def test_node_counts(self):
        sim = Simulator()
        network = build_fat_tree(sim, FatTreeParams(k=4))
        assert len(network.hosts) == 16
        assert len(network.switches) == 20

    def test_every_host_has_an_uplink(self):
        sim = Simulator()
        network = build_fat_tree(sim, FatTreeParams(k=4))
        for host in network.hosts.values():
            assert host.uplink_port is not None

    def test_edge_switches_have_k_ports(self):
        sim = Simulator()
        network = build_fat_tree(sim, FatTreeParams(k=4))
        edge = network.switches["edge_p0_0"]
        assert len(edge.output_ports) == 4
        assert len(edge.input_ports) == 4

    def test_core_switches_connect_to_every_pod(self):
        sim = Simulator()
        network = build_fat_tree(sim, FatTreeParams(k=4))
        core = network.switches["core_0"]
        assert len(core.output_ports) == 4
        pods = {name.split("_")[1] for name in core.output_ports}
        assert len(pods) == 4

    def test_k6_build(self):
        sim = Simulator()
        network = build_fat_tree(sim, FatTreeParams(k=6))
        assert len(network.hosts) == 54
        assert len(network.switches) == 45


class TestSimpleTopologies:
    def test_star(self):
        sim = Simulator()
        network = build_star(sim, 5)
        assert len(network.hosts) == 5
        assert len(network.switches) == 1
        assert network.routing.hop_count("h0", "h4") == 2

    def test_star_needs_two_hosts(self):
        with pytest.raises(ValueError):
            build_star(Simulator(), 1)

    def test_dumbbell(self):
        sim = Simulator()
        network = build_dumbbell(sim, hosts_per_side=3, bottleneck_bps=5e9)
        assert len(network.hosts) == 6
        assert len(network.switches) == 2
        bandwidth, _ = network.link_params("s0", "s1")
        assert bandwidth == 5e9

    def test_parking_lot(self):
        sim = Simulator()
        network = build_parking_lot(sim, num_switches=3, hosts_per_switch=2)
        assert len(network.hosts) == 6
        assert len(network.switches) == 3
        assert network.routing.hop_count("h0", "h5") == 4

    def test_parking_lot_needs_two_switches(self):
        with pytest.raises(ValueError):
            build_parking_lot(Simulator(), num_switches=1)
