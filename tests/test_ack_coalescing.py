"""Receiver-side ACK coalescing and pacing quantization.

Unit tests drive an :class:`IrnReceiver` directly (with a stubbed
``send_control``) to pin the windowing contract: bank up to N in-order
grants, flush on the Nth grant / the flush timer / completion, and never
delay a loss signal.  End-to-end tests run full experiments to pin the
event-count reduction, byte-identity at ``ack_coalesce_n=1``, correctness
under loss, and the engine accounting identity with coalescing timers live.
"""

import math

import pytest

from repro.core.irn import IrnConfig, IrnReceiver
from repro.experiments.config import ExperimentConfig, TopologyKind, WorkloadKind
from repro.experiments.runner import run_experiment
from repro.sim.engine import Simulator
from repro.sim.packet import Packet, PacketType

from tests.helpers import make_flow


def make_receiver(size_bytes=10_000, wire_control=True, **config_kwargs):
    sim = Simulator()
    flow = make_flow(size_bytes)
    config = IrnConfig(mtu_bytes=1000, **config_kwargs)
    receiver = IrnReceiver(sim, flow, config)
    sent = []
    if wire_control:
        receiver.send_control = sent.append
    return sim, flow, receiver, sent


def data(flow, psn, ecn=False, sent_time=0.0, retransmitted=False):
    return Packet(PacketType.DATA, flow.flow_id, flow.src, flow.dst, psn=psn,
                  payload_bytes=1000, ecn=ecn, sent_time=sent_time,
                  retransmitted=retransmitted)


def feed(receiver, flow, psns, start=0.0, gap=1e-7, **kwargs):
    """Deliver ``psns`` back-to-back; returns every response packet."""
    responses = []
    now = start
    for psn in psns:
        responses += receiver.on_data(data(flow, psn, **kwargs), now)
        now += gap
    return responses


class TestWindowing:
    def test_per_packet_acks_at_n_equal_one(self):
        sim, flow, receiver, _ = make_receiver(ack_coalesce_n=1)
        responses = feed(receiver, flow, range(4))
        assert [p.ptype for p in responses] == [PacketType.ACK] * 4
        assert [p.cumulative_ack for p in responses] == [1, 2, 3, 4]
        assert receiver.acks_coalesced == 0

    def test_window_of_n_emits_one_cumulative_ack(self):
        # The first packet after idle is ACKed immediately (the adaptive
        # gate sees an infinite arrival gap); the next four fill one window.
        sim, flow, receiver, _ = make_receiver(ack_coalesce_n=4)
        responses = feed(receiver, flow, range(5))
        assert [p.ptype for p in responses] == [PacketType.ACK, PacketType.ACK]
        assert [p.cumulative_ack for p in responses] == [1, 5]
        assert receiver.acks_sent == 2
        assert receiver.acks_coalesced == 3

    def test_coalescing_disabled_until_send_control_wired(self):
        # Without an out-of-band emitter the flush timer could never send,
        # so the receiver must stay on the historical per-packet path.
        sim, flow, receiver, _ = make_receiver(ack_coalesce_n=4, wire_control=False)
        responses = feed(receiver, flow, range(4))
        assert len(responses) == 4

    def test_partial_window_flushes_on_timer(self):
        sim, flow, receiver, sent = make_receiver(ack_coalesce_n=4, ack_coalesce_s=20e-6)
        responses = feed(receiver, flow, range(3))
        assert len(responses) == 1  # the post-idle immediate ACK only
        sim.run_until_idle()
        assert len(sent) == 1
        assert sent[0].cumulative_ack == 3
        assert receiver.ack_flush_timeouts == 1

    def test_completion_flushes_immediately(self):
        # 3-packet flow with a 4-window: the final grant must not wait for
        # the timer -- the sender needs it to retire the flow.
        sim, flow, receiver, sent = make_receiver(size_bytes=3000, ack_coalesce_n=4)
        responses = feed(receiver, flow, range(3))
        assert receiver.completed
        assert [p.cumulative_ack for p in responses] == [1, 3]
        sim.run_until_idle()
        assert sent == []  # nothing left for the timer

    def test_flush_timer_cancelled_after_count_flush(self):
        sim, flow, receiver, sent = make_receiver(ack_coalesce_n=2)
        feed(receiver, flow, range(3))  # immediate ACK + one full window
        sim.run_until_idle()
        assert sent == []
        assert sim.events_scheduled == sim.events_processed + sim.events_cancelled


class TestLossSignalsFireImmediately:
    def test_ooo_arrival_nacks_and_folds_window(self):
        sim, flow, receiver, _ = make_receiver(ack_coalesce_n=8)
        banked = feed(receiver, flow, [0, 1])
        assert len(banked) == 1  # post-idle immediate ACK; packet 1 banked
        responses = receiver.on_data(data(flow, 5), 1e-6)
        assert len(responses) == 1
        assert responses[0].ptype is PacketType.NACK
        assert responses[0].cumulative_ack == 2  # carries the banked window
        assert responses[0].sack_psn == 5
        assert receiver.acks_coalesced == 1

    def test_duplicate_arrival_acks_immediately(self):
        sim, flow, receiver, _ = make_receiver(ack_coalesce_n=8)
        feed(receiver, flow, [0, 1])
        responses = receiver.on_data(data(flow, 0), 1e-6)
        assert len(responses) == 1
        assert responses[0].ptype is PacketType.ACK
        assert responses[0].cumulative_ack == 2

    def test_retransmitted_packet_flushes_through(self):
        # Recovery traffic: the sender is blocked on this cumulative
        # advance, so it must never sit in the window.
        sim, flow, receiver, _ = make_receiver(ack_coalesce_n=8)
        feed(receiver, flow, [0, 1])
        responses = receiver.on_data(data(flow, 2, retransmitted=True), 1e-6)
        assert len(responses) == 1
        assert responses[0].ptype is PacketType.ACK
        assert responses[0].cumulative_ack == 3

    def test_no_stale_timer_ack_after_absorb(self):
        sim, flow, receiver, sent = make_receiver(ack_coalesce_n=8)
        feed(receiver, flow, [0, 1])
        receiver.on_data(data(flow, 5), 1e-6)  # NACK absorbed the window
        sim.run_until_idle()
        assert sent == []

    def test_absorbing_nack_carries_banked_ecn(self):
        # Packet 1 was ECN-marked and banked; the NACK that supersedes the
        # window must echo that mark or DCTCP/DCQCN would be under-signaled
        # exactly during the loss episode.
        sim, flow, receiver, _ = make_receiver(ack_coalesce_n=8)
        receiver.on_data(data(flow, 0), 0.0)  # post-idle immediate ACK
        receiver.on_data(data(flow, 1, ecn=True), 1e-7)  # banked, marked
        responses = receiver.on_data(data(flow, 5), 2e-7)  # unmarked OOO
        assert responses[0].ptype is PacketType.NACK
        assert responses[0].ecn_echo is True

    def test_absorbing_duplicate_ack_carries_banked_ecn(self):
        sim, flow, receiver, _ = make_receiver(ack_coalesce_n=8)
        receiver.on_data(data(flow, 0), 0.0)
        receiver.on_data(data(flow, 1, ecn=True), 1e-7)
        responses = receiver.on_data(data(flow, 0), 2e-7)  # unmarked dup
        assert responses[0].ptype is PacketType.ACK
        assert responses[0].ecn_echo is True

    def test_retransmit_flush_through_carries_banked_ecn(self):
        sim, flow, receiver, _ = make_receiver(ack_coalesce_n=8)
        receiver.on_data(data(flow, 0), 0.0)
        receiver.on_data(data(flow, 1, ecn=True), 1e-7)
        responses = receiver.on_data(data(flow, 2, retransmitted=True), 2e-7)
        assert responses[0].ptype is PacketType.ACK
        assert responses[0].ecn_echo is True


class TestAdaptiveModeration:
    def test_slow_streams_keep_per_packet_acks(self):
        # Arrivals spaced wider than the flush timeout: banking would only
        # convert each ACK into a timer event plus a late ACK.
        sim, flow, receiver, _ = make_receiver(ack_coalesce_n=4, ack_coalesce_s=20e-6)
        responses = feed(receiver, flow, range(4), gap=100e-6)
        assert len(responses) == 4
        assert receiver.ack_flush_timeouts == 0

    def test_back_to_back_stream_banks(self):
        sim, flow, receiver, _ = make_receiver(ack_coalesce_n=4, ack_coalesce_s=20e-6)
        responses = feed(receiver, flow, range(5), gap=1e-6)
        assert len(responses) == 2  # immediate post-idle ACK + one window


def _e2e_config(**overrides):
    base = dict(
        topology=TopologyKind.STAR,
        num_hosts=6,
        link_bandwidth_bps=10e9,
        link_delay_s=2e-6,
        transport="irn",
        pfc_enabled=False,
        workload=WorkloadKind.HEAVY_TAILED,
        flow_size_scale=0.3,
        num_flows=60,
        target_load=1.0,
        seed=1,
        max_sim_time_s=0.3,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def _run_counting(config):
    """Run an experiment keeping receiver/engine counters visible."""
    from repro.experiments.runner import (
        _build_network,
        _FlowLauncher,
        _generate_flows,
        bucket_width_for,
    )
    from repro.metrics.collector import MetricsCollector

    sim = Simulator(seed=config.seed, bucket_width_s=bucket_width_for(config))
    network = _build_network(sim, config)
    collector = MetricsCollector(
        network,
        mtu_bytes=config.mtu_bytes,
        header_bytes=config.effective_header_bytes(),
    )
    launcher = _FlowLauncher(sim, network, config, collector)
    flows = _generate_flows(config, network)
    for flow in flows:
        sim.schedule_at(flow.start_time, launcher.launch, flow)
    sim.run(until=config.max_sim_time_s, max_events=config.max_events)
    sim.run_until_idle(max_events=config.max_events)
    return sim, launcher, flows


class TestEndToEnd:
    def test_rows_identical_at_n_equal_one(self):
        """Coalescing machinery at n=1 is byte-for-byte the historical path."""
        on = run_experiment(_e2e_config(ack_coalesce_n=1))
        off = run_experiment(_e2e_config(ack_coalesce_n=1))
        assert on.to_row(label="a").to_dict() == off.to_row(label="a").to_dict()

    def test_ack_count_reduction_is_bounded(self):
        _, per_packet, _ = _run_counting(_e2e_config(ack_coalesce_n=1))
        _, coalesced, _ = _run_counting(_e2e_config(ack_coalesce_n=4))
        acks_1 = sum(r.acks_sent for r in per_packet.receivers)
        acks_4 = sum(r.acks_sent for r in coalesced.receivers)
        grants = sum(r.acks_coalesced for r in coalesced.receivers)
        assert acks_4 < acks_1
        # A window of 4 can delete at most 3 of every 4 ACKs.
        assert acks_4 >= acks_1 / 4
        # Every deleted ACK is accounted as an absorbed grant.
        assert grants > 0

    def test_engine_event_reduction_meets_the_budget(self):
        """The PR's acceptance floor: >=30% fewer engine events at defaults."""
        sim_off, _, _ = _run_counting(_e2e_config(ack_coalesce_n=1))
        sim_on, _, _ = _run_counting(_e2e_config())  # default n=4
        reduction = 1.0 - sim_on.events_processed / sim_off.events_processed
        assert reduction >= 0.30

    def test_accounting_identity_with_coalescing_timers(self):
        sim, _, _ = _run_counting(_e2e_config())
        assert (
            sim.events_scheduled
            == sim.events_processed + sim.events_cancelled + sim.pending_events
        )
        assert sim.pending_events == 0

    def test_flows_complete_under_loss_with_coalescing(self):
        # Shallow buffers force drops; coalesced ACK state must survive
        # NACK/SACK recovery without stranding a flow.
        result = run_experiment(
            _e2e_config(buffer_bytes_per_port=6000, max_sim_time_s=2.0)
        )
        assert result.completion_fraction() == 1.0
        assert result.retransmissions > 0

    def test_coalesced_runs_are_deterministic(self):
        a = run_experiment(_e2e_config())
        b = run_experiment(_e2e_config())
        assert a.to_row(label="x").to_dict() == b.to_row(label="x").to_dict()


class TestPacingQuantization:
    def test_quantized_run_completes_and_is_deterministic(self):
        config = _e2e_config(congestion_control="dcqcn", pacing_quantum_us=3.2,
                             max_sim_time_s=2.0)
        a = run_experiment(config)
        b = run_experiment(config)
        assert a.completion_fraction() == 1.0
        assert a.to_row(label="q").to_dict() == b.to_row(label="q").to_dict()

    def test_quantization_reduces_pacing_events(self):
        base = dict(congestion_control="dcqcn", max_sim_time_s=0.3)
        sim_off, _, _ = _run_counting(_e2e_config(**base))
        sim_on, _, _ = _run_counting(_e2e_config(pacing_quantum_us=3.2, **base))
        assert sim_on.events_processed < sim_off.events_processed

    def test_quantization_preserves_average_throughput(self):
        base = dict(congestion_control="dcqcn", max_sim_time_s=2.0)
        plain = run_experiment(_e2e_config(**base))
        quantized = run_experiment(_e2e_config(pacing_quantum_us=3.2, **base))
        assert quantized.completion_fraction() == 1.0
        # The burst-credit grid preserves the average rate; allow a small
        # scheduling-granularity penalty either way.
        assert quantized.summary.avg_fct <= 1.15 * plain.summary.avg_fct
