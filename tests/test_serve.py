"""Results-service tests: endpoint schemas, byte-for-byte text parity with
the offline CLIs, warm-aggregate invalidation, the zero-simulation
guarantee, stale-code 409s, concurrent readers, and live follow streams
over a real multi-worker queue drain."""

import json
import os
import threading
import urllib.error
import urllib.request

import pytest

from repro.experiments.queue import TaskQueue, run_worker
from repro.experiments.spec import ScenarioSpec, register_scenario
from repro.experiments.sweep import ResultCache, aggregate_rows, run_sweep
from repro.serve import (
    ResultsService,
    ServiceError,
    catalog_entries,
    format_catalog,
    make_server,
)
from repro.serve.streams import follow_scenario

#: Star-topology defaults that simulate in a few milliseconds per cell.
#: Flows fit one MTU so every flow lands in the single-packet latency
#: digest the /cdf endpoint serves.
TINY_DEFAULTS = {
    "topology": "star",
    "num_hosts": 4,
    "workload": "fixed",
    "fixed_size_bytes": 800,
    "num_flows": 6,
    "max_sim_time_s": 1.0,
}

SPEC = register_scenario(
    ScenarioSpec(
        name="serve_tiny",
        description="two-cell smoke scenario for the results service",
        defaults=TINY_DEFAULTS,
        variants={
            "A": {"name": "tiny-a"},
            "B": {"name": "tiny-b", "num_flows": 8},
        },
        seeds=(1, 2),
    ),
    replace=True,
)


@pytest.fixture(scope="module")
def warm(tmp_path_factory):
    """A warm cache for serve_tiny plus its serial batch sweep result."""
    cache_dir = tmp_path_factory.mktemp("serve-cache")
    sweep = SPEC.sweep(workers=1, cache=str(cache_dir))
    return str(cache_dir), sweep


@pytest.fixture()
def server(warm):
    cache_dir, _ = warm
    srv = make_server(cache_dir, port=0, quiet=True)
    threading.Thread(target=srv.serve_forever, daemon=True).start()
    yield srv
    srv.shutdown()
    srv.server_close()


def get(srv, path):
    """``(status, body bytes)`` for a GET against the test server."""
    port = srv.server_address[1]
    try:
        with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}") as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as err:
        return err.code, err.read()


def get_json(srv, path):
    status, body = get(srv, path)
    return status, json.loads(body)


class TestCatalog:
    def test_http_catalog_is_the_shared_entries(self, server):
        status, payload = get_json(server, "/scenarios")
        assert status == 200
        assert payload["scenarios"] == catalog_entries()
        assert payload["count"] == len(payload["scenarios"])
        ours = [e for e in payload["scenarios"] if e["name"] == "serve_tiny"]
        assert ours and ours[0]["shape"] == "2 variants, seeds [1, 2]"
        assert ours[0]["variants"] == ["A", "B"]
        assert ours[0]["cells"] == 2

    def test_text_catalog_matches_cli_list_byte_for_byte(self, server, capsys):
        from repro.__main__ import main as cli_main

        assert cli_main(["list"]) == 0
        cli_output = capsys.readouterr().out
        status, body = get(server, "/scenarios?format=text")
        assert status == 200
        assert body.decode() == cli_output
        assert body.decode() == format_catalog(catalog_entries()) + "\n"

    def test_index_lists_endpoints(self, server, warm):
        status, payload = get_json(server, "/")
        assert status == 200
        assert payload["cache_dir"] == warm[0]
        assert "/scenarios/<name>/aggregate" in payload["endpoints"]


class TestAggregate:
    def test_records_equal_offline_batch_aggregate(self, server, warm):
        _, sweep = warm
        status, payload = get_json(server, "/scenarios/serve_tiny/aggregate")
        assert status == 200
        batch = aggregate_rows(list(sweep.rows.values()), by=SPEC.aggregate_by)
        # Bit-for-bit: floats survive the JSON round trip exactly.
        assert payload["records"] == batch
        assert payload["replica_rows"] == len(sweep.rows)
        assert payload["stale_rows"] == 0
        assert payload["aggregate_by"] == list(SPEC.aggregate_by)

    def test_warm_reuse_and_stat_invalidation(self, server, warm):
        cache_dir, _ = warm
        _, first = get_json(server, "/scenarios/serve_tiny/aggregate")
        assert first["warm"] is False
        _, second = get_json(server, "/scenarios/serve_tiny/aggregate")
        assert second["warm"] is True
        assert second["records"] == first["records"]
        # Any mtime change in the cache dir invalidates the warm copy.
        victim = next(entry.path for entry in ResultCache(cache_dir).scan())
        stat = victim.stat()
        os.utime(victim, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))
        _, third = get_json(server, "/scenarios/serve_tiny/aggregate")
        assert third["warm"] is False
        assert third["records"] == first["records"]

    def test_unknown_scenario_404(self, server):
        status, payload = get_json(server, "/scenarios/nope/aggregate")
        assert status == 404
        assert "nope" in payload["error"]

    def test_empty_cache_404_with_hint(self, tmp_path):
        service = ResultsService(str(tmp_path / "empty"))
        with pytest.raises(ServiceError) as err:
            service.aggregate("serve_tiny")
        assert err.value.status == 404
        assert "repro run" in err.value.payload["hint"]

    def test_unknown_path_404_lists_endpoints(self, server):
        status, payload = get_json(server, "/bogus/path")
        assert status == 404
        assert "/scenarios" in payload["endpoints"]


class TestTextParity:
    @pytest.mark.parametrize("query,flags", [
        ("?format=text", []),
        ("?format=text&cdf=1", ["--cdf"]),
    ])
    def test_aggregate_text_is_report_cli_byte_for_byte(
        self, server, warm, capsys, query, flags
    ):
        from repro.metrics.report import main as report_main

        cache_dir, _ = warm
        assert report_main([cache_dir, *flags]) == 0
        cli_output = capsys.readouterr().out
        status, body = get(server, f"/scenarios/serve_tiny/aggregate{query}")
        assert status == 200
        assert body.decode() == cli_output


class TestZeroSimulation:
    def test_read_path_never_runs_an_experiment(self, server, monkeypatch):
        import repro.experiments.runner as runner_mod

        def tripwire(*args, **kwargs):  # pragma: no cover - must not fire
            raise AssertionError("serve read path invoked run_experiment")

        monkeypatch.setattr(runner_mod, "run_experiment", tripwire)
        for path in (
            "/scenarios",
            "/scenarios/serve_tiny/aggregate",
            "/scenarios/serve_tiny/aggregate?format=text",
            "/scenarios/serve_tiny/cdf",
        ):
            status, _ = get(server, path)
            assert status == 200, path


class TestStaleCode:
    def test_all_stale_rows_answer_409(self, server, monkeypatch):
        get_json(server, "/scenarios/serve_tiny/aggregate")  # warm first
        monkeypatch.setattr(
            "repro.experiments.sweep._CODE_FINGERPRINT", "pretend-code-changed"
        )
        status, payload = get_json(server, "/scenarios/serve_tiny/aggregate")
        assert status == 409
        assert payload["stale_rows"] == 4
        assert "different simulator version" in payload["error"]

    def test_stale_cell_answers_409(self, server, warm, monkeypatch):
        _, sweep = warm
        fingerprint = next(iter(sweep.rows.values())).fingerprint
        status, payload = get_json(server, f"/cells/{fingerprint}")
        assert status == 200
        monkeypatch.setattr(
            "repro.experiments.sweep._CODE_FINGERPRINT", "pretend-code-changed"
        )
        status, payload = get_json(server, f"/cells/{fingerprint}")
        assert status == 409
        assert payload["serving_code"] == "pretend-code-changed"

    def test_any_code_service_keeps_serving(self, warm, monkeypatch):
        cache_dir, sweep = warm
        service = ResultsService(cache_dir, code_aware=False)
        monkeypatch.setattr(
            "repro.experiments.sweep._CODE_FINGERPRINT", "pretend-code-changed"
        )
        payload = service.aggregate("serve_tiny")
        assert payload["replica_rows"] == len(sweep.rows)


class TestCells:
    def test_cell_round_trips_the_row(self, server, warm):
        _, sweep = warm
        row = next(iter(sweep.rows.values()))
        status, payload = get_json(server, f"/cells/{row.fingerprint}")
        assert status == 200
        assert payload["source"] == "cache"
        assert payload["row"] == json.loads(json.dumps(row.to_dict()))

    def test_unknown_fingerprint_404(self, server):
        status, payload = get_json(server, "/cells/deadbeef")
        assert status == 404


class TestCdf:
    def test_cdf_points_come_from_the_stored_digests(self, server, warm):
        _, sweep = warm
        status, payload = get_json(server, "/scenarios/serve_tiny/cdf")
        assert status == 200
        assert payload["scenario"] == "serve_tiny"
        assert len(payload["cells"]) == len(sweep.rows)
        for cell in payload["cells"]:
            assert cell["count"] > 0
            assert len(cell["points"]) == 12
            fractions = [fraction for _, fraction in cell["points"]]
            assert fractions == sorted(fractions)

    def test_cdf_text_is_the_cli_plot_blocks(self, server):
        status, body = get(server, "/scenarios/serve_tiny/cdf?format=text")
        assert status == 200
        assert body.decode().startswith("=== ")
        assert "single-packet latency tail" in body.decode()


class TestConcurrency:
    def test_parallel_readers_agree(self, server):
        results, errors = [], []

        def read():
            try:
                for _ in range(5):
                    status, payload = get_json(
                        server, "/scenarios/serve_tiny/aggregate"
                    )
                    assert status == 200
                    results.append(payload["records"])
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=read) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(results) == 40
        assert all(records == results[0] for records in results)


class TestFollow:
    def _spooled_queue(self, tmp_path):
        queue = TaskQueue(tmp_path / "q")
        configs = SPEC.replicated()
        for label, config in configs.items():
            queue.enqueue(label, config)
        return queue, configs

    def test_stream_converges_to_serial_batch_bit_for_bit(self, tmp_path):
        queue, configs = self._spooled_queue(tmp_path)
        workers = [
            threading.Thread(
                target=run_worker,
                args=(queue,),
                kwargs={"worker_id": f"w{i}", "drain": True, "poll_interval_s": 0.05},
            )
            for i in range(2)
        ]
        for worker in workers:
            worker.start()

        service = ResultsService(
            str(tmp_path / "q" / "cache"), queue_dir=str(tmp_path / "q")
        )
        events = list(follow_scenario(
            service, SPEC, poll_interval_s=0.05, timeout_s=120.0,
            expect=len(configs),
        ))
        for worker in workers:
            worker.join()

        assert events[0][0] == "listening"
        updates = [payload for event, payload in events if event == "update"]
        assert len(updates) == len(configs)
        assert updates[-1]["completed"] == len(configs)
        assert events[-1][0] == "done"
        done = events[-1][1]
        serial = run_sweep(configs, workers=1)
        batch = aggregate_rows(list(serial.rows.values()), by=SPEC.aggregate_by)
        # The streamed final aggregate is bit-identical to the serial batch.
        assert done["records"] == batch
        assert done["completed"] == len(configs)
        assert done["failed"] == 0

    def test_http_sse_stream_over_live_drain(self, tmp_path):
        queue, configs = self._spooled_queue(tmp_path)
        srv = make_server(
            str(tmp_path / "q" / "cache"),
            queue_dir=str(tmp_path / "q"),
            port=0,
            quiet=True,
        )
        threading.Thread(target=srv.serve_forever, daemon=True).start()
        workers = [
            threading.Thread(
                target=run_worker,
                args=(queue,),
                kwargs={"worker_id": f"w{i}", "drain": True, "poll_interval_s": 0.05},
            )
            for i in range(2)
        ]
        for worker in workers:
            worker.start()
        try:
            status, body = get(
                srv,
                f"/scenarios/serve_tiny/follow?poll=0.05&expect={len(configs)}"
                "&timeout=120",
            )
            assert status == 200
            events = []
            for block in body.decode().split("\n\n"):
                if not block.strip():
                    continue
                lines = block.splitlines()
                event = lines[0].removeprefix("event: ")
                payload = json.loads(lines[1].removeprefix("data: "))
                events.append((event, payload))
            kinds = [event for event, _ in events]
            assert kinds[0] == "listening" and kinds[-1] == "done"
            assert kinds.count("update") == len(configs)
            serial = run_sweep(configs, workers=1)
            batch = aggregate_rows(list(serial.rows.values()), by=SPEC.aggregate_by)
            assert events[-1][1]["records"] == batch
        finally:
            for worker in workers:
                worker.join()
            srv.shutdown()
            srv.server_close()

    def test_follow_without_queue_is_409(self, server):
        status, payload = get_json(server, "/scenarios/serve_tiny/follow")
        assert status == 409
        assert "--queue-dir" in payload["error"]


class TestGracefulShutdown:
    def test_healthz_is_cheap_and_ok(self, server):
        status, payload = get_json(server, "/healthz")
        assert status == 200
        assert payload == {"status": "ok", "shutting_down": False}

    def test_healthz_listed_in_index(self, server):
        _, payload = get_json(server, "/")
        assert "/healthz" in payload["endpoints"]

    def test_request_shutdown_closes_follow_streams_and_stops(self, tmp_path, warm):
        # An empty spool with expect=1 makes /follow poll indefinitely: the
        # only way the stream below ends is the graceful-shutdown path
        # flushing a final well-formed ``closed`` event before the accept
        # loop exits.
        cache_dir, _ = warm
        TaskQueue(tmp_path / "q")
        srv = make_server(
            cache_dir, queue_dir=str(tmp_path / "q"), port=0, quiet=True
        )
        serve_thread = threading.Thread(target=srv.serve_forever, daemon=True)
        serve_thread.start()
        try:
            port = srv.server_address[1]
            stream = urllib.request.urlopen(
                f"http://127.0.0.1:{port}/scenarios/serve_tiny/follow"
                "?poll=0.05&expect=1"
            )
            hello = b""
            while b"\n\n" not in hello:
                hello += stream.read(1)
            assert b"event: listening" in hello

            srv.request_shutdown()
            rest = stream.read()  # EOF only once the handler finished
            assert b"event: closed" in rest
            assert json.loads(
                rest.decode().rsplit("data: ", 1)[1].split("\n")[0]
            )["completed"] == 0

            serve_thread.join(timeout=10)
            assert not serve_thread.is_alive()
            # Idempotent: a second request is a no-op, not a hang.
            srv.request_shutdown()
        finally:
            srv.server_close()
