"""The optional C engine core: build plumbing, fallback, and equivalence.

The fallback contract is tested unconditionally -- requesting
``calendar_c`` must never fail, whatever the build state.  The behavioural
tests (CEvent semantics, cross-core identity) run only when the extension
is importable; CI builds it explicitly before running them.
"""

import pytest

from repro.sim import compiled
from repro.sim.engine import Event, Simulator

needs_compiled = pytest.mark.skipif(
    not compiled.available(), reason="compiled core not built"
)


class TestFallback:
    def test_request_never_fails(self):
        sim = Simulator(queue="calendar_c")
        assert sim.queue_kind in ("calendar_c", "calendar")

    def test_degrades_to_pure_python_when_absent(self, monkeypatch):
        monkeypatch.setattr(compiled, "_cached_module", None)
        monkeypatch.setattr(compiled, "_load_failed", True)
        sim = Simulator(queue="calendar_c")
        assert sim.queue_kind == "calendar"
        assert sim._event_cls is Event

    def test_availability_probe_is_cached(self, monkeypatch):
        monkeypatch.setattr(compiled, "_cached_module", None)
        monkeypatch.setattr(compiled, "_load_failed", True)
        assert compiled.available() is False  # cached, no re-import attempt

    def test_extension_path_is_package_local(self):
        assert compiled.extension_path().startswith(
            compiled.SOURCE_PATH.rsplit("/", 1)[0]
        )


@needs_compiled
class TestCEventSemantics:
    """CEvent must be a drop-in for the Python Event class."""

    def make(self, time, seq):
        return compiled.load().CEvent(time, seq, lambda: None)

    def test_constructor_and_attributes(self):
        fn = lambda: None
        event = compiled.load().CEvent(1.5, 7, fn, ("a",))
        assert event.time == 1.5
        assert event.seq == 7
        assert event.fn is fn
        assert event.args == ("a",)
        assert not event.cancelled

    def test_args_default_to_empty_tuple(self):
        assert self.make(0.0, 0).args == ()

    def test_cancel_marks_the_event(self):
        event = self.make(0.0, 0)
        event.cancel()
        assert event.cancelled

    def test_time_seq_ordering(self):
        assert self.make(1.0, 5) < self.make(2.0, 0)
        assert self.make(1.0, 1) < self.make(1.0, 2)  # FIFO tie-break
        assert not self.make(1.0, 2) < self.make(1.0, 2)
        assert self.make(3.0, 0) > self.make(1.0, 9)

    def test_sorts_like_the_python_event(self):
        keys = [(2.0, 1), (1.0, 3), (1.0, 1), (0.5, 9), (2.0, 0)]
        fn = lambda: None
        c_sorted = sorted(compiled.load().CEvent(t, s, fn) for t, s in keys)
        py_sorted = sorted(Event(t, s, fn) for t, s in keys)
        assert [(e.time, e.seq) for e in c_sorted] == [
            (e.time, e.seq) for e in py_sorted
        ]


@needs_compiled
class TestCompiledCoreEquivalence:
    def test_selected_when_available(self):
        sim = Simulator(queue="calendar_c")
        assert sim.queue_kind == "calendar_c"
        assert sim._event_cls is compiled.load().CEvent

    def test_event_stream_matches_pure_python(self):
        def drive(queue):
            sim = Simulator(seed=3, queue=queue, bucket_width_s=0.7e-6)
            order = []
            for i in range(200):
                sim.schedule(i * 0.31e-6, order.append, i)
                dead = sim.set_timer(500e-6, order.append, -i)
                if i % 3:
                    sim.cancel(dead)
            sim.run_until_idle()
            return order, sim.events_processed, sim.events_cancelled

        assert drive("calendar") == drive("calendar_c")

    def test_experiment_row_matches_pure_python(self, monkeypatch):
        from repro.experiments.runner import run_experiment
        from repro.experiments.spec import scenario

        config = scenario("fig1").configs(num_flows=30, seed=2)["IRN (without PFC)"]
        rows = {}
        for queue in ("calendar", "calendar_c"):
            monkeypatch.setenv("REPRO_ENGINE", queue)
            rows[queue] = run_experiment(config).to_row(label="x").to_dict()
        assert rows["calendar"] == rows["calendar_c"]

    def test_accounting_identity_holds(self):
        sim = Simulator(queue="calendar_c")
        for i in range(50):
            timer = sim.set_timer(1e-6 * (i + 1), lambda: None)
            if i % 2:
                sim.cancel(timer)
        sim.run_until_idle()
        assert (
            sim.events_scheduled
            == sim.events_processed + sim.events_cancelled + sim.pending_events
        )


class TestBuilder:
    def test_build_is_idempotent_when_fresh(self, monkeypatch):
        if not compiled.available():
            pytest.skip("compiled core not built")
        calls = []
        monkeypatch.setattr(compiled.subprocess, "run", lambda *a, **k: calls.append(a))
        compiled.build()  # .so newer than source: no compiler invocation
        assert calls == []
