"""Shared test helpers for transport-level unit tests."""

from __future__ import annotations

from repro.core.transport import Flow
from repro.sim.engine import Simulator
from repro.sim.packet import Packet, PacketType


class FakeHost:
    """Stands in for a Host when testing sender state machines directly."""

    def __init__(self, name: str = "h0") -> None:
        self.name = name
        self.kicks = 0
        self.deregistered = []

    def notify_ready(self) -> None:
        self.kicks += 1

    def deregister_sender(self, flow_id: int) -> None:
        self.deregistered.append(flow_id)


def make_flow(size_bytes: int = 10_000, flow_id: int = 1, src: str = "h0", dst: str = "h1") -> Flow:
    return Flow(flow_id=flow_id, src=src, dst=dst, size_bytes=size_bytes)


def ack(flow: Flow, cumulative: int, echo_time: float = 0.0, ecn_echo: bool = False) -> Packet:
    """Build a cumulative ACK as the receiver would."""
    return Packet(
        PacketType.ACK, flow.flow_id, flow.dst, flow.src,
        cumulative_ack=cumulative, echo_time=echo_time, ecn_echo=ecn_echo,
    )


def nack(flow: Flow, cumulative: int, sack: int | None, echo_time: float = 0.0,
         error: bool = False) -> Packet:
    """Build a NACK (cumulative + SACK) as the receiver would."""
    return Packet(
        PacketType.NACK, flow.flow_id, flow.dst, flow.src,
        cumulative_ack=cumulative, sack_psn=sack, echo_time=echo_time, error_nack=error,
    )


def drain(sender, now: float, limit: int = 10_000) -> list:
    """Pull packets from a sender until it reports nothing ready."""
    packets = []
    while sender.has_packet_ready(now) and len(packets) < limit:
        packet = sender.next_packet(now)
        if packet is None:
            break
        packets.append(packet)
    return packets
