"""Unit tests for IRN's transport logic: SACK recovery, BDP-FC, dual timeouts."""

import pytest

from repro.core.irn import IrnConfig, IrnReceiver, IrnSender, LossRecovery
from repro.sim.engine import Simulator
from repro.sim.packet import Packet, PacketType

from tests.helpers import FakeHost, ack, drain, make_flow, nack


def make_sender(size_bytes=10_000, bdp_cap=8, sim=None, **config_kwargs):
    sim = sim or Simulator()
    host = FakeHost()
    flow = make_flow(size_bytes)
    config = IrnConfig(mtu_bytes=1000, bdp_cap_packets=bdp_cap, **config_kwargs)
    sender = IrnSender(sim, host, flow, config)
    return sim, host, flow, sender


def make_receiver(size_bytes=10_000, **config_kwargs):
    sim = Simulator()
    flow = make_flow(size_bytes)
    config = IrnConfig(mtu_bytes=1000, **config_kwargs)
    return sim, flow, IrnReceiver(sim, flow, config)


def data(flow, psn, ecn=False, sent_time=0.0):
    return Packet(PacketType.DATA, flow.flow_id, flow.src, flow.dst, psn=psn,
                  payload_bytes=1000, ecn=ecn, sent_time=sent_time)


class TestBdpFc:
    def test_in_flight_capped_at_bdp(self):
        sim, host, flow, sender = make_sender(size_bytes=20_000, bdp_cap=8)
        packets = drain(sender, now=0.0)
        assert len(packets) == 8
        assert sender.in_flight() == 8
        assert not sender.has_packet_ready(0.0)

    def test_window_opens_as_acks_arrive(self):
        sim, host, flow, sender = make_sender(size_bytes=20_000, bdp_cap=8)
        drain(sender, now=0.0)
        sender.on_control(ack(flow, 4), now=1e-5)
        more = drain(sender, now=1e-5)
        assert len(more) == 4
        assert sender.in_flight() == 8

    def test_bdp_fc_disabled_allows_full_burst(self):
        sim, host, flow, sender = make_sender(size_bytes=20_000, bdp_cap=8, bdp_fc_enabled=False)
        packets = drain(sender, now=0.0)
        assert len(packets) == 20

    def test_psns_are_sequential(self):
        _, _, _, sender = make_sender(size_bytes=5_000, bdp_cap=10)
        packets = drain(sender, now=0.0)
        assert [p.psn for p in packets] == list(range(5))

    def test_last_packet_flagged(self):
        _, _, _, sender = make_sender(size_bytes=3_000, bdp_cap=10)
        packets = drain(sender, now=0.0)
        assert packets[-1].last_of_message
        assert not packets[0].last_of_message


class TestSackLossRecovery:
    def test_nack_enters_recovery_and_retransmits_cumulative_ack(self):
        sim, host, flow, sender = make_sender(size_bytes=8_000, bdp_cap=16)
        drain(sender, now=0.0)
        # Packet 2 was lost; packet 3 arrived and triggered a NACK.
        sender.on_control(nack(flow, cumulative=2, sack=3), now=1e-5)
        assert sender.in_recovery
        retransmit = sender.next_packet(1e-5)
        assert retransmit.psn == 2
        assert retransmit.retransmitted

    def test_only_packets_below_highest_sack_are_considered_lost(self):
        sim, host, flow, sender = make_sender(size_bytes=8_000, bdp_cap=16)
        drain(sender, now=0.0)  # packets 0..7 in flight
        sender.on_control(nack(flow, cumulative=2, sack=5), now=1e-5)
        # Lost packets: 2, 3, 4 (5 was sacked; 6,7 not beyond a SACK).
        retransmits = drain(sender, now=1e-5)
        assert [p.psn for p in retransmits if p.retransmitted] == [2, 3, 4]

    def test_multiple_sacks_extend_the_lost_set(self):
        sim, host, flow, sender = make_sender(size_bytes=8_000, bdp_cap=16)
        drain(sender, now=0.0)
        sender.on_control(nack(flow, cumulative=2, sack=4), now=1e-5)
        sender.on_control(nack(flow, cumulative=2, sack=6), now=1.1e-5)
        retransmits = [p.psn for p in drain(sender, 1.2e-5) if p.retransmitted]
        assert retransmits == [2, 3, 5]

    def test_no_duplicate_retransmission_within_recovery(self):
        sim, host, flow, sender = make_sender(size_bytes=8_000, bdp_cap=16)
        drain(sender, now=0.0)
        sender.on_control(nack(flow, cumulative=2, sack=3), now=1e-5)
        first = drain(sender, now=1e-5)
        again = drain(sender, now=1.1e-5)
        retransmitted_psns = [p.psn for p in first + again if p.retransmitted]
        assert retransmitted_psns.count(2) == 1

    def test_exits_recovery_when_cumulative_ack_passes_recovery_seq(self):
        sim, host, flow, sender = make_sender(size_bytes=8_000, bdp_cap=16)
        drain(sender, now=0.0)
        sender.on_control(nack(flow, cumulative=2, sack=3), now=1e-5)
        assert sender.in_recovery
        sender.on_control(ack(flow, cumulative=8), now=2e-5)
        assert not sender.in_recovery

    def test_new_packets_resume_after_recovery(self):
        sim, host, flow, sender = make_sender(size_bytes=16_000, bdp_cap=4)
        drain(sender, now=0.0)  # 0..3 in flight
        sender.on_control(nack(flow, cumulative=1, sack=3), now=1e-5)
        packets = drain(sender, now=1e-5)
        # Retransmit 1 and 2, then window allows new packets.
        psns = [p.psn for p in packets]
        assert psns[0] == 1
        assert psns[1] == 2
        assert all(psn >= 4 for psn in psns[2:])

    def test_completion_callback_fires_when_all_acked(self):
        completions = []
        sim = Simulator()
        host = FakeHost()
        flow = make_flow(4_000)
        sender = IrnSender(sim, host, flow, IrnConfig(mtu_bytes=1000, bdp_cap_packets=8),
                           on_complete=lambda f, t: completions.append((f.flow_id, t)))
        drain(sender, 0.0)
        sender.on_control(ack(flow, 4), now=5e-5)
        assert sender.completed
        assert completions == [(1, 5e-5)]

    def test_error_nack_falls_back_to_go_back_n(self):
        sim, host, flow, sender = make_sender(size_bytes=8_000, bdp_cap=16)
        drain(sender, now=0.0)
        sender.on_control(nack(flow, cumulative=3, sack=None, error=True), now=1e-5)
        nxt = sender.next_packet(1e-5)
        assert nxt.psn == 3


class TestGoBackNVariant:
    def test_nack_rewinds_to_cumulative_ack(self):
        sim, host, flow, sender = make_sender(
            size_bytes=8_000, bdp_cap=16, loss_recovery=LossRecovery.GO_BACK_N
        )
        drain(sender, now=0.0)
        sender.on_control(nack(flow, cumulative=2, sack=None), now=1e-5)
        packets = drain(sender, now=1e-5)
        assert [p.psn for p in packets] == [2, 3, 4, 5, 6, 7]

    def test_go_back_n_resends_everything_after_the_loss(self):
        sim, host, flow, sender = make_sender(
            size_bytes=6_000, bdp_cap=16, loss_recovery=LossRecovery.GO_BACK_N
        )
        initial = drain(sender, now=0.0)
        sender.on_control(nack(flow, cumulative=0, sack=None), now=1e-5)
        retransmits = drain(sender, now=1e-5)
        assert len(retransmits) == len(initial)
        assert sender.retransmissions == len(initial)


class TestSelectiveNoSackVariant:
    def test_one_retransmission_per_nack(self):
        sim, host, flow, sender = make_sender(
            size_bytes=8_000, bdp_cap=16, loss_recovery=LossRecovery.SELECTIVE_NO_SACK
        )
        drain(sender, now=0.0)
        sender.on_control(nack(flow, cumulative=2, sack=5), now=1e-5)
        retransmits = [p for p in drain(sender, 1e-5) if p.retransmitted]
        assert [p.psn for p in retransmits] == [2]
        # A second loss in the window needs another round trip / NACK.
        sender.on_control(nack(flow, cumulative=3, sack=6), now=2e-5)
        retransmits = [p for p in drain(sender, 2e-5) if p.retransmitted]
        assert [p.psn for p in retransmits] == [3]


class TestTimeouts:
    def test_rto_low_used_when_few_packets_in_flight(self):
        _, _, _, sender = make_sender(size_bytes=2_000, bdp_cap=16,
                                      rto_low_s=1e-4, rto_high_s=1e-3,
                                      rto_low_threshold_packets=3)
        drain(sender, 0.0)
        assert sender.in_flight() == 2
        assert sender._rto_value(0.0) == pytest.approx(1e-4)

    def test_rto_high_used_when_many_packets_in_flight(self):
        _, _, _, sender = make_sender(size_bytes=10_000, bdp_cap=16,
                                      rto_low_s=1e-4, rto_high_s=1e-3,
                                      rto_low_threshold_packets=3)
        drain(sender, 0.0)
        assert sender.in_flight() == 10
        assert sender._rto_value(0.0) == pytest.approx(1e-3)

    def test_timeout_triggers_retransmission_of_cumulative_ack(self):
        sim, host, flow, sender = make_sender(size_bytes=4_000, bdp_cap=16,
                                              rto_low_s=1e-4, rto_high_s=1e-3)
        drain(sender, 0.0)
        sim.run(until=2e-3)
        assert sender.timeouts_fired >= 1
        assert sender.in_recovery
        retransmit = sender.next_packet(sim.now)
        assert retransmit.psn == 0
        assert retransmit.retransmitted

    def test_no_timeout_after_completion(self):
        sim, host, flow, sender = make_sender(size_bytes=2_000, bdp_cap=16)
        drain(sender, 0.0)
        sender.on_control(ack(flow, 2), now=1e-6)
        sim.run(until=1.0)
        assert sender.timeouts_fired == 0

    def test_retransmission_fetch_delay_defers_retransmissions(self):
        sim, host, flow, sender = make_sender(
            size_bytes=8_000, bdp_cap=16, retransmission_fetch_delay_s=2e-6
        )
        drain(sender, 0.0)
        sender.on_control(nack(flow, cumulative=2, sack=3), now=1e-5)
        # Immediately after the NACK the retransmission has not been fetched.
        packet = sender.next_packet(1e-5)
        assert packet is None or not packet.retransmitted
        packet = sender.next_packet(1.3e-5)
        assert packet is not None and packet.psn == 2


class TestIrnReceiver:
    def test_in_order_delivery_produces_cumulative_acks(self):
        sim, flow, receiver = make_receiver(size_bytes=3_000)
        responses = []
        for psn in range(3):
            responses.extend(receiver.on_data(data(flow, psn), now=psn * 1e-6))
        assert all(r.ptype is PacketType.ACK for r in responses)
        assert responses[-1].cumulative_ack == 3
        assert receiver.completed

    def test_out_of_order_arrival_generates_sack_nack(self):
        sim, flow, receiver = make_receiver(size_bytes=5_000)
        receiver.on_data(data(flow, 0), now=0.0)
        responses = receiver.on_data(data(flow, 2), now=1e-6)
        assert len(responses) == 1
        assert responses[0].ptype is PacketType.NACK
        assert responses[0].cumulative_ack == 1
        assert responses[0].sack_psn == 2

    def test_ooo_packets_are_not_discarded(self):
        sim, flow, receiver = make_receiver(size_bytes=5_000)
        for psn in (4, 3, 2, 1, 0):
            receiver.on_data(data(flow, psn), now=psn * 1e-6)
        assert receiver.completed
        assert receiver.expected_psn == 5
        assert receiver.ooo_degree == 0

    def test_duplicates_counted_and_acked(self):
        sim, flow, receiver = make_receiver(size_bytes=3_000)
        receiver.on_data(data(flow, 0), now=0.0)
        responses = receiver.on_data(data(flow, 0), now=1e-6)
        assert receiver.duplicates_received == 1
        assert responses[0].ptype is PacketType.ACK

    def test_completion_requires_all_packets(self):
        done = []
        sim = Simulator()
        flow = make_flow(3_000)
        receiver = IrnReceiver(sim, flow, IrnConfig(mtu_bytes=1000),
                               on_complete=lambda f, t: done.append(t))
        receiver.on_data(data(flow, 0), 0.0)
        receiver.on_data(data(flow, 2), 1e-6)
        assert not done
        receiver.on_data(data(flow, 1), 2e-6)
        assert len(done) == 1
        assert flow.completed

    def test_ecn_echoed_in_acks(self):
        sim, flow, receiver = make_receiver(size_bytes=2_000)
        responses = receiver.on_data(data(flow, 0, ecn=True), now=0.0)
        assert responses[0].ecn_echo

    def test_cnp_generated_for_marked_packets_when_enabled(self):
        sim = Simulator()
        flow = make_flow(5_000)
        receiver = IrnReceiver(sim, flow, IrnConfig(mtu_bytes=1000), cnp_interval_s=50e-6)
        responses = receiver.on_data(data(flow, 0, ecn=True), now=0.0)
        assert any(r.ptype is PacketType.CNP for r in responses)
        # A second marked packet inside the CNP interval does not produce one.
        responses = receiver.on_data(data(flow, 1, ecn=True), now=1e-6)
        assert not any(r.ptype is PacketType.CNP for r in responses)
        # After the interval, CNPs may be generated again.
        responses = receiver.on_data(data(flow, 2, ecn=True), now=60e-6)
        assert any(r.ptype is PacketType.CNP for r in responses)

    def test_gbn_receiver_discards_ooo_and_nacks_once(self):
        sim = Simulator()
        flow = make_flow(5_000)
        receiver = IrnReceiver(sim, flow, IrnConfig(mtu_bytes=1000), accept_ooo=False)
        receiver.on_data(data(flow, 0), now=0.0)
        first = receiver.on_data(data(flow, 2), now=1e-6)
        second = receiver.on_data(data(flow, 3), now=2e-6)
        assert first[0].ptype is PacketType.NACK
        assert second == []          # NACK sent only once per sequence error
        assert receiver.delivered_packets == 1
