"""Name -> builder registries that make every experiment component pluggable.

Topologies, workloads, transports, congestion-control schemes and scenarios
are all looked up by name in a :class:`Registry` instead of being dispatched
through closed ``if/elif`` chains over enums.  Third-party code registers a
new component with a decorator and never has to touch the engine::

    from repro.topology import register_topology

    @register_topology("ring", max_hop_count=4, switch_radix=4)
    def build_ring(sim, config, switch_config):
        ...

The legacy enums (:class:`~repro.experiments.config.TopologyKind` and
friends) survive as thin aliases: lookups accept an enum member and resolve
it through its ``.value``, so existing configs and their fingerprints are
unchanged.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Dict, Generic, Iterator, List, Optional, Sequence, TypeVar, Union

T = TypeVar("T")

__all__ = [
    "DuplicateNameError",
    "Registry",
    "UnknownNameError",
    "normalize_name",
]


class UnknownNameError(KeyError, ValueError):
    """Lookup of a name nothing has registered.

    The message lists every valid name so a typo is a one-glance fix.
    ``str(err)`` returns the plain message (``KeyError`` would repr it).
    Subclasses both :class:`KeyError` (mapping semantics) and
    :class:`ValueError` (what the pre-registry factories raised), so
    existing ``except`` clauses keep catching it.
    """

    def __init__(self, kind: str, name: str, valid: Sequence[str]) -> None:
        message = (
            f"unknown {kind} {name!r}; registered {kind}s: {', '.join(valid) or '(none)'}"
        )
        super().__init__(message)
        self.kind = kind
        self.name = name
        self.valid = list(valid)

    def __str__(self) -> str:  # KeyError.__str__ would quote the message
        return self.args[0]


class DuplicateNameError(ValueError):
    """Registration under a name (or alias) that is already taken."""


def normalize_name(name: Union[str, Enum]) -> str:
    """Canonical registry key: enum members collapse to their ``.value``.

    This is what keeps the deprecated kind-enums working: registries store
    plain strings, and ``TopologyKind.FAT_TREE`` resolves to ``"fat_tree"``.
    """
    if isinstance(name, Enum):
        name = name.value
    if not isinstance(name, str):
        raise TypeError(f"component names must be strings or enums, got {name!r}")
    return name.lower()


class Registry(Generic[T]):
    """An ordered name -> object mapping with decorator registration.

    Parameters
    ----------
    kind:
        Human-readable component kind (``"topology"``, ``"transport"`` ...),
        used in error messages.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, T] = {}
        self._aliases: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: Union[str, Enum],
        obj: Optional[T] = None,
        *,
        aliases: Sequence[str] = (),
        replace: bool = False,
    ) -> Union[T, Callable[[T], T]]:
        """Register ``obj`` under ``name`` (plus optional ``aliases``).

        With ``obj`` omitted, returns a decorator::

            @REGISTRY.register("fat_tree")
            def build(...): ...

        Re-registering a taken name raises :class:`DuplicateNameError`
        unless ``replace=True`` (tests and interactive notebooks swap
        components in place; libraries should pick fresh names).
        """
        if obj is None:
            def decorator(decorated: T) -> T:
                self.register(name, decorated, aliases=aliases, replace=replace)
                return decorated
            return decorator

        key = normalize_name(name)
        alias_keys = [normalize_name(alias) for alias in aliases]
        for candidate in (key, *alias_keys):
            if not replace and (candidate in self._entries or candidate in self._aliases):
                raise DuplicateNameError(
                    f"{self.kind} {candidate!r} is already registered; "
                    f"pass replace=True to override it"
                )
        # A replaced name must become canonical: drop any stale alias entry
        # that would otherwise keep redirecting lookups to the old target.
        self._aliases.pop(key, None)
        self._entries[key] = obj
        for alias_key in alias_keys:
            self._aliases[alias_key] = key
        return obj

    def unregister(self, name: Union[str, Enum]) -> None:
        """Remove ``name`` and any aliases pointing at it (test cleanup)."""
        key = normalize_name(name)
        key = self._aliases.get(key, key)
        self._entries.pop(key, None)
        self._aliases = {a: t for a, t in self._aliases.items() if t != key}

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, name: Union[str, Enum]) -> T:
        """The object registered under ``name`` (or an alias of it).

        Raises :class:`UnknownNameError` -- whose message lists every valid
        name -- when nothing matches.
        """
        key = normalize_name(name)
        key = self._aliases.get(key, key)
        try:
            return self._entries[key]
        except KeyError:
            raise UnknownNameError(self.kind, key, self.names()) from None

    def canonical_name(self, name: Union[str, Enum]) -> str:
        """The canonical spelling of ``name``: aliases resolve to the name
        they target; unregistered names pass through normalized.  Lets
        callers store one spelling per component, so alias spellings never
        split fingerprints or aggregation cells."""
        key = normalize_name(name)
        return self._aliases.get(key, key)

    def names(self) -> List[str]:
        """Canonical registered names, in registration order (no aliases)."""
        return list(self._entries)

    def items(self):
        return self._entries.items()

    def __contains__(self, name: object) -> bool:
        try:
            key = normalize_name(name)  # type: ignore[arg-type]
        except TypeError:
            return False
        return key in self._entries or key in self._aliases

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {self.names()})"
