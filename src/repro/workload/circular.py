"""The ``circular`` workload: traffic engineered to close a PFC pause cycle.

Built for the ``ring`` topology (:mod:`repro.topology.cyclic`) and its host
naming contract: with ``n = config.ring_switches`` switches and
``hps = len(hosts) // n`` hosts per switch, host ``hosts[i * hps + k]`` sits
on switch ``s{i}``.

Per switch the first local host is the *receiver*; the remaining hosts are
senders whose (fixed) destinations are the receivers of the next switches
around the ring: sender ``k`` on switch ``i`` targets the receiver of switch
``(i + k) % n``.  With two senders per switch, every receiver is fed at full
rate from **two different upstream switches**, so the shared output port
toward it drains each inter-switch input at half the arrival rate -- the
input buffers fill, each switch pauses both upstream switches, and the pause
wait-for graph contains the cycle ``s0 -> s1 -> ... -> s0`` the deadlock
detector reports.  Offered load per sender is ``target_load`` of the host
link, so the cycle only closes once ``2 * target_load > 1``: sweeping load
across that boundary produces the phase transition the ``pfc_deadlock``
scenario plots.

Flow sizes are fixed (``config.fixed_size_bytes``): steady packet trains,
not a heavy-tailed mix, keep the overload sustained instead of bursty.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.core.transport import Flow
from repro.workload.distributions import FixedSizes
from repro.workload.registry import register_workload


@register_workload("circular")
def circular_workload(config, hosts: Sequence[str]) -> List[Flow]:
    """Poisson arrivals on fixed circular sender->receiver pairs."""
    if config.num_flows <= 0:
        return []
    num_switches = max(1, getattr(config, "ring_switches", 3))
    hosts = list(hosts)
    hps = len(hosts) // num_switches
    if hps < 1:
        raise ValueError(
            f"circular workload needs at least {num_switches} hosts "
            f"(one per ring switch), got {len(hosts)}"
        )
    pairs: List[tuple] = []
    if hps == 1:
        # One host per switch: each doubles as sender and receiver.
        for i in range(num_switches):
            pairs.append((hosts[i], hosts[(i + 1) % num_switches]))
    else:
        for i in range(num_switches):
            for k in range(1, hps):
                receiver_switch = (i + k) % num_switches
                pairs.append((hosts[i * hps + k], hosts[receiver_switch * hps]))

    sizes = FixedSizes(config.fixed_size_bytes)
    rate = config.target_load * config.link_bandwidth_bps / (sizes.mean_bytes() * 8.0)
    rng = random.Random(config.seed)
    clocks = {pair: 0.0 for pair in pairs}
    flows: List[Flow] = []
    flow_id = 0
    while len(flows) < config.num_flows:
        pair = min(clocks, key=clocks.get)
        clocks[pair] += rng.expovariate(rate)
        src, dst = pair
        flows.append(
            Flow(
                flow_id=flow_id,
                src=src,
                dst=dst,
                size_bytes=sizes.sample(rng),
                start_time=clocks[pair],
                group="background",
            )
        )
        flow_id += 1
    flows.sort(key=lambda flow: flow.start_time)
    return flows
