"""Poisson flow-arrival workload generation.

Each host generates new flows with Poisson inter-arrival times; every flow
picks a destination uniformly at random (excluding itself) and a size from
the configured distribution.  The per-host arrival rate is calibrated so the
aggregate offered load equals ``target_load`` of the host link capacity, the
same methodology as the paper's 30%-90% utilization sweeps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.transport import Flow
from repro.workload.distributions import FlowSizeDistribution, HeavyTailedSizes


@dataclass
class WorkloadParams:
    """Parameters of the Poisson arrival workload."""

    #: Offered load as a fraction of host link capacity (0.7 in the default).
    target_load: float = 0.7
    #: Host link rate, used to convert load into an arrival rate.
    link_bandwidth_bps: float = 40e9
    #: Flow size distribution.
    sizes: FlowSizeDistribution = field(default_factory=HeavyTailedSizes)
    #: Total number of flows to generate across all hosts.
    num_flows: int = 1000
    #: RNG seed for reproducible workloads.
    seed: int = 1
    #: Time at which the first flows may start.
    start_time: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.target_load <= 1.5:
            raise ValueError("target_load must be in (0, 1.5]")
        if self.num_flows < 1:
            raise ValueError("num_flows must be positive")

    def per_host_arrival_rate(self, num_hosts: int) -> float:
        """Flow arrivals per second per host for the requested load."""
        mean_size_bits = self.sizes.mean_bytes() * 8.0
        return self.target_load * self.link_bandwidth_bps / mean_size_bits


class PoissonWorkload:
    """Generates the flow list for an experiment."""

    def __init__(self, params: WorkloadParams, hosts: Sequence[str]) -> None:
        if len(hosts) < 2:
            raise ValueError("a workload needs at least two hosts")
        self.params = params
        self.hosts = list(hosts)
        self.rng = random.Random(params.seed)

    def generate(self, first_flow_id: int = 0) -> List[Flow]:
        """Build the flow list (sorted by start time)."""
        params = self.params
        rate = params.per_host_arrival_rate(len(self.hosts))
        clocks = {host: params.start_time for host in self.hosts}
        flows: List[Flow] = []
        flow_id = first_flow_id
        while len(flows) < params.num_flows:
            # Advance the host with the earliest next arrival (merged Poisson
            # processes are equivalent to sampling hosts independently).
            src = min(clocks, key=clocks.get)
            clocks[src] += self.rng.expovariate(rate)
            dst = self._pick_destination(src)
            size = params.sizes.sample(self.rng)
            flows.append(
                Flow(
                    flow_id=flow_id,
                    src=src,
                    dst=dst,
                    size_bytes=size,
                    start_time=clocks[src],
                    group="background",
                )
            )
            flow_id += 1
        flows.sort(key=lambda flow: flow.start_time)
        return flows

    def _pick_destination(self, src: str) -> str:
        dst = src
        while dst == src:
            dst = self.rng.choice(self.hosts)
        return dst


# ---------------------------------------------------------------------------
# Registry entries (the runner resolves ``ExperimentConfig.workload`` by name)
# ---------------------------------------------------------------------------
from repro.workload.distributions import FixedSizes, UniformSizes  # noqa: E402
from repro.workload.registry import register_workload  # noqa: E402


def _poisson_flows(config, hosts: Sequence[str], sizes: FlowSizeDistribution) -> List[Flow]:
    """Shared Poisson-arrival body of the built-in background workloads."""
    if config.num_flows <= 0:
        return []
    params = WorkloadParams(
        target_load=config.target_load,
        link_bandwidth_bps=config.link_bandwidth_bps,
        sizes=sizes,
        num_flows=config.num_flows,
        seed=config.seed,
    )
    return PoissonWorkload(params, hosts).generate(first_flow_id=0)


@register_workload("heavy_tailed")
def _heavy_tailed_workload(config, hosts: Sequence[str]) -> List[Flow]:
    return _poisson_flows(config, hosts, HeavyTailedSizes(scale=config.flow_size_scale))


@register_workload("uniform")
def _uniform_workload(config, hosts: Sequence[str]) -> List[Flow]:
    return _poisson_flows(
        config, hosts, UniformSizes(config.uniform_low_bytes, config.uniform_high_bytes)
    )


@register_workload("fixed")
def _fixed_workload(config, hosts: Sequence[str]) -> List[Flow]:
    return _poisson_flows(config, hosts, FixedSizes(config.fixed_size_bytes))


@register_workload("none")
def _no_background_workload(config, hosts: Sequence[str]) -> List[Flow]:
    """No background traffic (incast-only experiments)."""
    return []
