"""Poisson flow-arrival workload generation.

Each host generates new flows with Poisson inter-arrival times; every flow
picks a destination uniformly at random (excluding itself) and a size from
the configured distribution.  The per-host arrival rate is calibrated so the
aggregate offered load equals ``target_load`` of the host link capacity, the
same methodology as the paper's 30%-90% utilization sweeps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.transport import Flow
from repro.workload.distributions import FlowSizeDistribution, HeavyTailedSizes


@dataclass
class WorkloadParams:
    """Parameters of the Poisson arrival workload."""

    #: Offered load as a fraction of host link capacity (0.7 in the default).
    target_load: float = 0.7
    #: Host link rate, used to convert load into an arrival rate.
    link_bandwidth_bps: float = 40e9
    #: Flow size distribution.
    sizes: FlowSizeDistribution = field(default_factory=HeavyTailedSizes)
    #: Total number of flows to generate across all hosts.
    num_flows: int = 1000
    #: RNG seed for reproducible workloads.
    seed: int = 1
    #: Time at which the first flows may start.
    start_time: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.target_load <= 1.5:
            raise ValueError("target_load must be in (0, 1.5]")
        if self.num_flows < 1:
            raise ValueError("num_flows must be positive")

    def per_host_arrival_rate(self, num_hosts: int) -> float:
        """Flow arrivals per second per host for the requested load."""
        mean_size_bits = self.sizes.mean_bytes() * 8.0
        return self.target_load * self.link_bandwidth_bps / mean_size_bits


class PoissonWorkload:
    """Generates the flow list for an experiment."""

    def __init__(self, params: WorkloadParams, hosts: Sequence[str]) -> None:
        if len(hosts) < 2:
            raise ValueError("a workload needs at least two hosts")
        self.params = params
        self.hosts = list(hosts)
        self.rng = random.Random(params.seed)

    def generate(self, first_flow_id: int = 0) -> List[Flow]:
        """Build the flow list (sorted by start time)."""
        params = self.params
        rate = params.per_host_arrival_rate(len(self.hosts))
        clocks = {host: params.start_time for host in self.hosts}
        flows: List[Flow] = []
        flow_id = first_flow_id
        while len(flows) < params.num_flows:
            # Advance the host with the earliest next arrival (merged Poisson
            # processes are equivalent to sampling hosts independently).
            src = min(clocks, key=clocks.get)
            clocks[src] += self.rng.expovariate(rate)
            dst = self._pick_destination(src)
            size = params.sizes.sample(self.rng)
            flows.append(
                Flow(
                    flow_id=flow_id,
                    src=src,
                    dst=dst,
                    size_bytes=size,
                    start_time=clocks[src],
                    group="background",
                )
            )
            flow_id += 1
        flows.sort(key=lambda flow: flow.start_time)
        return flows

    def _pick_destination(self, src: str) -> str:
        dst = src
        while dst == src:
            dst = self.rng.choice(self.hosts)
        return dst
