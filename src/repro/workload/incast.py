"""Incast workloads (§4.4.3).

The paper's incast experiment stripes a fixed amount of data across M
randomly chosen senders that all transmit to one destination; the metric is
the request completion time (RCT), i.e. when the last of the M flows
finishes.  Optionally a background Poisson workload provides cross traffic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.transport import Flow


@dataclass
class IncastParams:
    """Incast configuration.

    Attributes
    ----------
    total_bytes:
        Data striped across the senders (150 MB in the paper; benchmarks use
        a scaled-down value).
    fan_in:
        Number of senders M.
    destination:
        Receiving host (chosen randomly when ``None``).
    start_time:
        Time at which all senders start simultaneously.
    """

    total_bytes: int = 150_000_000
    fan_in: int = 30
    destination: Optional[str] = None
    start_time: float = 0.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.fan_in < 1:
            raise ValueError("fan_in must be at least 1")
        if self.total_bytes < self.fan_in:
            raise ValueError("total_bytes must be at least one byte per sender")


def build_incast_flows(
    params: IncastParams,
    hosts: Sequence[str],
    first_flow_id: int = 0,
) -> List[Flow]:
    """Create the M synchronized flows of an incast request."""
    if len(hosts) < params.fan_in + 1:
        raise ValueError(
            f"need at least fan_in+1={params.fan_in + 1} hosts, got {len(hosts)}"
        )
    rng = random.Random(params.seed)
    hosts = list(hosts)
    destination = params.destination or rng.choice(hosts)
    if destination not in hosts:
        raise ValueError(f"destination {destination!r} is not a host in the topology")
    candidates = [h for h in hosts if h != destination]
    senders = rng.sample(candidates, params.fan_in)
    per_sender = params.total_bytes // params.fan_in
    flows = []
    for index, sender in enumerate(senders):
        flows.append(
            Flow(
                flow_id=first_flow_id + index,
                src=sender,
                dst=destination,
                size_bytes=per_sender,
                start_time=params.start_time,
                group="incast",
            )
        )
    return flows


def request_completion_time(flows: Sequence[Flow]) -> float:
    """RCT of an incast: completion time of the last flow minus the start."""
    incast_flows = [flow for flow in flows if flow.group == "incast"]
    if not incast_flows:
        raise ValueError("no incast flows present")
    if any(not flow.completed for flow in incast_flows):
        raise RuntimeError("not all incast flows completed")
    start = min(flow.start_time for flow in incast_flows)
    end = max(flow.completion_time for flow in incast_flows)
    return end - start
