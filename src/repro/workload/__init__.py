"""Workload generation: flow-size distributions, Poisson arrivals, incast.

Workloads are pluggable: each background traffic pattern registers itself in
:data:`WORKLOADS` (see :func:`register_workload`), and the experiment runner
resolves ``ExperimentConfig.workload`` through that registry by name.
"""

from repro.workload.registry import WORKLOADS, register_workload
from repro.workload.distributions import (
    FlowSizeDistribution,
    HeavyTailedSizes,
    UniformSizes,
    FixedSizes,
)
from repro.workload.circular import circular_workload
from repro.workload.generator import PoissonWorkload, WorkloadParams
from repro.workload.incast import IncastParams, build_incast_flows

__all__ = [
    "WORKLOADS",
    "register_workload",
    "FlowSizeDistribution",
    "HeavyTailedSizes",
    "UniformSizes",
    "FixedSizes",
    "PoissonWorkload",
    "WorkloadParams",
    "circular_workload",
    "IncastParams",
    "build_incast_flows",
]
