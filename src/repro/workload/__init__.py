"""Workload generation: flow-size distributions, Poisson arrivals, incast."""

from repro.workload.distributions import (
    FlowSizeDistribution,
    HeavyTailedSizes,
    UniformSizes,
    FixedSizes,
)
from repro.workload.generator import PoissonWorkload, WorkloadParams
from repro.workload.incast import IncastParams, build_incast_flows

__all__ = [
    "FlowSizeDistribution",
    "HeavyTailedSizes",
    "UniformSizes",
    "FixedSizes",
    "PoissonWorkload",
    "WorkloadParams",
    "IncastParams",
    "build_incast_flows",
]
