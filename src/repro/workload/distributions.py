"""Flow-size distributions.

The paper's default workload is a realistic heavy-tailed mix derived from
datacenter measurements (Benson et al.):

* 50% of flows are single-packet messages of 32 bytes to 1 KB (small RPCs,
  e.g. RDMA key-value lookups),
* 15% of flows are 200 KB to 3 MB (background/storage traffic) and carry most
  of the bytes,
* the remaining 35% fall in between.

The appendix also evaluates a uniform 500 KB-5 MB workload representing pure
storage/background traffic.  Sizes inside each band are drawn log-uniformly,
which preserves the "most flows small, most bytes in large flows" shape.
All distributions accept a ``scale`` factor so benchmarks can shrink flow
sizes while keeping the same shape (the simulator substitutes for the paper's
OMNET++ testbed, see DESIGN.md).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Protocol, Sequence, Tuple


class FlowSizeDistribution(Protocol):
    """Samples flow sizes in bytes."""

    def sample(self, rng: random.Random) -> int:
        """Draw one flow size."""

    def mean_bytes(self) -> float:
        """Expected flow size (used to calibrate the arrival rate for a load)."""


def _log_uniform(rng: random.Random, low: float, high: float) -> float:
    if low <= 0 or high < low:
        raise ValueError(f"invalid log-uniform range [{low}, {high}]")
    if high == low:
        return low
    return math.exp(rng.uniform(math.log(low), math.log(high)))


def _log_uniform_mean(low: float, high: float) -> float:
    if high == low:
        return low
    return (high - low) / (math.log(high) - math.log(low))


@dataclass
class HeavyTailedSizes:
    """The paper's default heavy-tailed RPC + storage mix.

    ``bands`` is a list of ``(probability, low_bytes, high_bytes)`` tuples.
    The default bands follow §4.1; ``scale`` multiplies the byte ranges of the
    medium and large bands (small RPCs stay small so they remain single-packet
    messages).
    """

    scale: float = 1.0
    bands: Sequence[Tuple[float, float, float]] = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.bands is None:
            self.bands = (
                (0.50, 32, 1_000),                                  # single-packet RPCs
                (0.35, 1_000 * self.scale, 200_000 * self.scale),   # mid-size flows
                (0.15, 200_000 * self.scale, 3_000_000 * self.scale),  # storage/background
            )
        total = sum(p for p, _, _ in self.bands)
        if not math.isclose(total, 1.0, rel_tol=1e-6):
            raise ValueError(f"band probabilities must sum to 1 (got {total})")

    def sample(self, rng: random.Random) -> int:
        roll = rng.random()
        cumulative = 0.0
        for probability, low, high in self.bands:
            cumulative += probability
            if roll <= cumulative:
                return max(1, int(_log_uniform(rng, low, high)))
        probability, low, high = self.bands[-1]
        return max(1, int(_log_uniform(rng, low, high)))

    def mean_bytes(self) -> float:
        return sum(p * _log_uniform_mean(low, high) for p, low, high in self.bands)


@dataclass
class UniformSizes:
    """Uniformly distributed flow sizes (the appendix's 500KB-5MB workload)."""

    low_bytes: float = 500_000
    high_bytes: float = 5_000_000

    def __post_init__(self) -> None:
        if self.low_bytes <= 0 or self.high_bytes < self.low_bytes:
            raise ValueError("invalid uniform size range")

    def sample(self, rng: random.Random) -> int:
        return max(1, int(rng.uniform(self.low_bytes, self.high_bytes)))

    def mean_bytes(self) -> float:
        return (self.low_bytes + self.high_bytes) / 2.0


@dataclass
class FixedSizes:
    """Every flow has the same size (used by unit tests and microbenchmarks)."""

    size_bytes: int = 100_000

    def sample(self, rng: random.Random) -> int:
        return self.size_bytes

    def mean_bytes(self) -> float:
        return float(self.size_bytes)
