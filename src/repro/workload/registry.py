"""The workload registry: name -> flow-list builder.

A registered workload is a callable ``(config, hosts) -> List[Flow]`` that
builds the *background* flow list for an experiment (the incast request, when
configured, is layered on top by the runner).  ``config`` is duck-typed --
builders read whatever :class:`~repro.experiments.config.ExperimentConfig`
fields they need -- so this module never imports the experiment layer.

Register a new traffic pattern without touching the runner::

    from repro.workload import register_workload

    @register_workload("all_to_one")
    def all_to_one(config, hosts):
        return [Flow(...), ...]
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Sequence

from repro.registry import Registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.transport import Flow

__all__ = ["WORKLOADS", "register_workload"]

#: ``(config, hosts) -> flows`` builders for background traffic.
WorkloadBuilder = Callable[[Any, Sequence[str]], List["Flow"]]

WORKLOADS: Registry[WorkloadBuilder] = Registry("workload")


def register_workload(name: str, *, aliases: Sequence[str] = (), replace: bool = False):
    """Decorator registering a background-workload builder under ``name``."""
    return WORKLOADS.register(name, aliases=aliases, replace=replace)
