"""Randomized simulation-case generation and execution.

A :class:`FuzzCase` is derived *entirely* from one integer seed: topology
(including cyclic rings and random meshes the preset families never
produce), workload, transport scheme and fault schedule.  Reproducing a
counterexample therefore needs nothing but its seed
(``python -m repro.verify --seed N``).

``run_case`` executes a case on one engine core and returns a
:class:`CaseOutcome` -- the raw observations (execution trace, fabric and
host counters, per-QP ordering violations) that
:mod:`repro.verify.invariants` judges.  The harness in
:mod:`repro.verify.harness` runs every case on *both* cores and also checks
cross-core event-order identity.

Fault kinds (all deterministic, all scheduled before the run starts).
The packet-touching kinds are the shared :mod:`repro.faults` dataclasses --
the same ``FaultPlan`` machinery experiment configs carry -- installed
through one :class:`~repro.faults.FaultEngine` per case:

* **pause storm** (:class:`~repro.faults.PauseStorm`) -- pause/resume an
  output port for a window (a transient link stall).
* **packet corruption** (:class:`~repro.faults.PacketCorruption`) -- seeded
  Bernoulli CRC drops on one directed link, counted in the engine's
  ``fault_drops`` (never as congestion drops).  The harness's known-bad
  self-test injects a probability-1.0 corruption into a *lossless* case on
  purpose to prove the losslessness invariant catches it.
* **link flap** (:class:`~repro.faults.LinkFlap`) / **degraded link**
  (:class:`~repro.faults.DegradedLink`) -- drawn at seed-tail.
* **timer storm** (fuzzer-private :class:`TimerStormFault`) -- a burst of
  set-then-mostly-cancel timers (the retransmission pattern at adversarial
  volume), stressing the calendar core's wheel-flush and overflow-band
  accounting.

All packet-touching faults are restricted to non-lossless cases: under PFC
an injected drop (or a resume fighting the PFC state machine) would make
losslessness violations the *fuzzer's* fault rather than the simulator's.

Seed-corpus note: promoting the fault kinds to :mod:`repro.faults`
replaced the fuzzer-private ``PauseFault``/``DropFault`` draws with
``PauseStorm``/``PacketCorruption`` (same draw positions) and added
seed-tail ``LinkFlap``/``DegradedLink`` draws, so seeds generate different
fault schedules than they did before that change.  A seed remains a
complete reproduction against the current code -- that is the contract --
and counterexample files record the seed, not the schedule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.core.transport import Flow
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import _FlowLauncher, bucket_width_for
from repro.faults import (
    DegradedLink,
    FaultEngine,
    FaultPlan,
    LinkFlap,
    PacketCorruption,
    PauseStorm,
)
from repro.metrics.collector import MetricsCollector
from repro.sim.engine import Simulator
from repro.sim.network import Network

#: Topology families the fuzzer samples.  ``mesh`` is built directly (a
#: random connected switch graph); the rest resolve through ``TOPOLOGIES``.
TOPOLOGY_FAMILIES = ("star", "dumbbell", "parking_lot", "ring", "mesh")

#: Transports the fuzzer samples (each paired with a pfc on/off coin).
TRANSPORT_CHOICES = ("irn", "roce")

#: Event budget per run; a case that exceeds it is reported as undrained
#: (conservation is then skipped -- in-flight packets are unaccountable).
DEFAULT_MAX_EVENTS = 2_000_000


# ---------------------------------------------------------------------------
# Fault schedule
# ---------------------------------------------------------------------------
# The packet-touching kinds (PauseStorm, PacketCorruption, LinkFlap,
# DegradedLink) are the shared repro.faults dataclasses; only the timer
# storm stays fuzzer-private -- it stresses the engine's timer wheel, not
# the fabric, and has no meaning in an experiment's fault plan.
@dataclass(frozen=True)
class TimerStormFault:
    """At ``time_s`` set ``len(delays)`` timers; cancel ``cancel_now`` of
    them immediately and another batch ``cancel_later`` after a delay."""

    time_s: float
    delays: Tuple[float, ...]
    cancel_now: Tuple[int, ...]
    cancel_later: Tuple[int, ...]
    cancel_later_delay_s: float


# ---------------------------------------------------------------------------
# The case itself
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FuzzCase:
    """One fully-determined simulation case (pure function of ``seed``)."""

    seed: int
    topology: str
    transport: str
    pfc_enabled: bool
    num_hosts: int
    ring_switches: int
    mtu_bytes: int
    bandwidth_bps: float
    link_delay_s: float
    buffer_bytes: int
    #: (flow_id, src, dst, size_bytes, start_time) tuples.
    flows: Tuple[Tuple[int, str, str, int, float], ...]
    faults: Tuple[Any, ...] = ()
    #: Mesh wiring, only for ``topology == "mesh"``: switch count, the
    #: switch-switch edges, and each host's switch index.
    mesh_links: Tuple[Tuple[int, int], ...] = ()
    host_attach: Tuple[int, ...] = ()
    max_sim_time_s: float = 0.05
    max_events: int = DEFAULT_MAX_EVENTS
    #: Receiver ACK coalescing window (1 = per-packet ACKs).  Fuzzing this
    #: exercises the flush-timer path against the accounting identity and
    #: the cross-core trace pin.
    ack_coalesce_n: int = 1
    ack_coalesce_us: float = 25.0
    #: Heterogeneous per-link delays: when non-zero, every switch-switch
    #: link is stretched to this propagation delay (100-1000x the host
    #: links), pushing propagation-scale events into the hierarchical
    #: calendar's upper levels.  0 keeps the fabric homogeneous.
    wan_delay_s: float = 0.0

    # ------------------------------------------------------------------
    @classmethod
    def generate(cls, seed: int) -> "FuzzCase":
        """Derive a case from ``seed`` (and nothing else)."""
        rng = random.Random(seed)
        topology = rng.choice(TOPOLOGY_FAMILIES)
        transport = rng.choice(TRANSPORT_CHOICES)
        pfc_enabled = rng.random() < 0.5
        mtu = rng.choice((500, 1000, 1500))
        bandwidth = rng.choice((5e9, 10e9))
        delay = rng.choice((5e-7, 1e-6, 2e-6))
        buffer_bytes = rng.randrange(8_000, 40_000, 1000)
        ring_switches = rng.randint(3, 4)

        mesh_links: Tuple[Tuple[int, int], ...] = ()
        host_attach: Tuple[int, ...] = ()
        if topology == "star":
            num_hosts = rng.randint(3, 8)
            hosts = [f"h{i}" for i in range(num_hosts)]
            links = [("h%d" % i, "s0") for i in range(num_hosts)]
            links += [("s0", "h%d" % i) for i in range(num_hosts)]
        elif topology == "dumbbell":
            num_hosts = rng.randint(4, 8)
            hps = max(1, num_hosts // 2)
            hosts = [f"h{i}" for i in range(2 * hps)]
            links = [("s0", "s1"), ("s1", "s0")]
            for i in range(hps):
                links += [(f"h{i}", "s0"), ("s0", f"h{i}")]
            for i in range(hps, 2 * hps):
                links += [(f"h{i}", "s1"), ("s1", f"h{i}")]
        elif topology == "parking_lot":
            # The registered builder ignores num_hosts: 3 switches x 2 hosts.
            num_hosts = 6
            hosts = [f"h{i}" for i in range(6)]
            links = [("s0", "s1"), ("s1", "s0"), ("s1", "s2"), ("s2", "s1")]
            for i, s in enumerate((0, 0, 1, 1, 2, 2)):
                links += [(f"h{i}", f"s{s}"), (f"s{s}", f"h{i}")]
        elif topology == "ring":
            hps = rng.randint(1, 3)
            num_hosts = ring_switches * hps
            hosts = [f"h{i}" for i in range(num_hosts)]
            links = []
            for s in range(ring_switches):
                nxt = (s + 1) % ring_switches
                links += [(f"s{s}", f"s{nxt}"), (f"s{nxt}", f"s{s}")]
            for i in range(num_hosts):
                s = i // hps
                links += [(f"h{i}", f"s{s}"), (f"s{s}", f"h{i}")]
        else:  # mesh
            num_switches = rng.randint(2, 5)
            edges = set()
            # Random spanning tree keeps the graph connected...
            for s in range(1, num_switches):
                edges.add((rng.randrange(s), s))
            # ...plus a few chords, which may close cycles.
            for _ in range(rng.randint(0, num_switches)):
                a = rng.randrange(num_switches)
                b = rng.randrange(num_switches)
                if a != b:
                    edges.add((min(a, b), max(a, b)))
            mesh_links = tuple(sorted(edges))
            num_hosts = rng.randint(2, 6)
            host_attach = tuple(rng.randrange(num_switches) for _ in range(num_hosts))
            hosts = [f"h{i}" for i in range(num_hosts)]
            links = []
            for a, b in mesh_links:
                links += [(f"m{a}", f"m{b}"), (f"m{b}", f"m{a}")]
            for i, s in enumerate(host_attach):
                links += [(f"h{i}", f"m{s}"), (f"m{s}", f"h{i}")]

        # Workload: random pairs, sizes and start times.
        num_flows = rng.randint(3, 14)
        flows = []
        for flow_id in range(num_flows):
            src = rng.choice(hosts)
            dst = src
            while dst == src:
                dst = rng.choice(hosts)
            size = rng.randrange(mtu, 30_000)
            start = rng.uniform(0.0, 200e-6)
            flows.append((flow_id, src, dst, size, start))

        # Fault schedule (packet-touching kinds only on non-lossless cases;
        # see the module docstring's seed-corpus note).
        faults: List[Any] = []
        if not pfc_enabled:
            for _ in range(rng.randint(0, 2)):
                src, dst = rng.choice(links)
                start = rng.uniform(0.0, 150e-6)
                faults.append(
                    PauseStorm(src, dst, start, start + rng.uniform(20e-6, 200e-6))
                )
            if rng.random() < 0.5:
                src, dst = rng.choice(links)
                probability = rng.uniform(0.05, 0.5)
                start = rng.uniform(0.0, 150e-6)
                faults.append(
                    PacketCorruption(
                        src, dst, probability,
                        start_s=start, end_s=start + rng.uniform(50e-6, 400e-6),
                    )
                )
        for _ in range(rng.randint(0, 2)):
            count = rng.randint(40, 250)
            delays = tuple(rng.uniform(1e-6, 4e-3) for _ in range(count))
            ids = list(range(count))
            rng.shuffle(ids)
            split = int(count * 0.6)
            faults.append(
                TimerStormFault(
                    time_s=rng.uniform(0.0, 200e-6),
                    delays=delays,
                    cancel_now=tuple(sorted(ids[:split])),
                    cancel_later=tuple(sorted(ids[split:split + count // 5])),
                    cancel_later_delay_s=rng.uniform(10e-6, 100e-6),
                )
            )

        # New draws go at the END so earlier seeds keep reproducing the
        # same topology/workload/fault schedule they always did.
        ack_coalesce_n = rng.choice((1, 2, 4, 8))
        ack_coalesce_us = rng.choice((5.0, 25.0, 60.0))
        if not pfc_enabled:
            if rng.random() < 0.4:
                src, dst = rng.choice(links)
                start = rng.uniform(0.0, 150e-6)
                faults.append(
                    LinkFlap(src, dst, start, start + rng.uniform(20e-6, 150e-6))
                )
            if rng.random() < 0.3:
                src, dst = rng.choice(links)
                start = rng.uniform(0.0, 150e-6)
                faults.append(
                    DegradedLink(
                        src, dst, start, start + rng.uniform(50e-6, 300e-6),
                        # Powers of two, so the end-of-window division
                        # restores the link's rate and delay bit-exactly.
                        bandwidth_factor=rng.choice((0.25, 0.5)),
                        delay_factor=rng.choice((1.0, 2.0, 4.0)),
                    )
                )

        # Heterogeneous delays, also at seed-tail: about a third of the
        # cases stretch every switch-switch link to WAN scale, exercising
        # the hierarchical calendar's upper levels and the cross-width
        # cascade/rebase paths against the same invariants.  (Star fabrics
        # have no switch-switch links; the draw still happens so later
        # seeds stay position-stable.)
        wan_delay_s = 0.0
        if rng.random() < 0.35:
            wan_delay_s = delay * rng.choice((100.0, 1000.0))

        return cls(
            seed=seed,
            topology=topology,
            transport=transport,
            pfc_enabled=pfc_enabled,
            num_hosts=num_hosts,
            ring_switches=ring_switches,
            mtu_bytes=mtu,
            bandwidth_bps=bandwidth,
            link_delay_s=delay,
            buffer_bytes=buffer_bytes,
            flows=tuple(flows),
            faults=tuple(faults),
            mesh_links=mesh_links,
            host_attach=host_attach,
            ack_coalesce_n=ack_coalesce_n,
            ack_coalesce_us=ack_coalesce_us,
            wan_delay_s=wan_delay_s,
        )

    def with_faults(self, *faults: Any) -> "FuzzCase":
        """A copy with a replaced fault schedule (known-bad self-test)."""
        return replace(self, faults=tuple(faults))

    # ------------------------------------------------------------------
    def experiment_config(self) -> ExperimentConfig:
        """The transport/switch settings as an :class:`ExperimentConfig`.

        RTOs, the BDP cap and the buffer are explicit, so nothing consults
        the topology registry -- meshes have no registered entry.  The
        ``topology`` field is only cosmetic here (``_FlowLauncher`` never
        reads it once those are pinned); ``workload`` is ``none`` because
        the case carries its own flow list.
        """
        bdp = max(1, int(self.bandwidth_bps * 6 * self.link_delay_s / 8.0))
        # WAN-stretched cases budget the long-haul RTT into the explicit
        # RTOs (at most ~4 stretched hops each way on the fuzzed fabrics);
        # homogeneous cases keep the exact pre-WAN values, so their seeds
        # reproduce the same runs they always did.
        wan = self.wan_delay_s
        return ExperimentConfig(
            name=f"fuzz-{self.seed}",
            topology="star",
            num_hosts=self.num_hosts,
            link_bandwidth_bps=self.bandwidth_bps,
            link_delay_s=self.link_delay_s,
            pfc_enabled=self.pfc_enabled,
            buffer_bytes_per_port=self.buffer_bytes,
            transport=self.transport,
            mtu_bytes=self.mtu_bytes,
            rto_low_s=100e-6 + 4.0 * wan,
            rto_high_s=320e-6 + 8.0 * wan,
            bdp_cap_packets=max(2, bdp // self.mtu_bytes),
            congestion_control="none",
            workload="none",
            ack_coalesce_n=self.ack_coalesce_n,
            ack_coalesce_us=self.ack_coalesce_us,
            seed=self.seed,
            max_sim_time_s=self.max_sim_time_s,
            max_events=self.max_events,
            keep_flow_records=False,
        )

    def build_network(self, sim: Simulator) -> Network:
        """Wire the case's fabric (registry builders where one exists)."""
        config = self.experiment_config()
        switch_config = config.switch_config()
        if self.topology == "mesh":
            network = Network(sim)
            num_switches = 1 + max(
                (max(a, b) for a, b in self.mesh_links), default=0
            )
            num_switches = max(num_switches, max(self.host_attach, default=0) + 1)
            for s in range(num_switches):
                network.add_switch(f"m{s}", config=switch_config)
            for a, b in self.mesh_links:
                network.connect(f"m{a}", f"m{b}", self.bandwidth_bps, self.link_delay_s)
            for i, s in enumerate(self.host_attach):
                network.add_host(f"h{i}")
                network.connect(f"h{i}", f"m{s}", self.bandwidth_bps, self.link_delay_s)
            network.build_routing()
            return self._stretch_fabric_links(network)
        from repro.topology import TOPOLOGIES

        builder = TOPOLOGIES.get(self.topology)
        shaped = config.with_overrides(
            topology=self.topology, ring_switches=self.ring_switches
        )
        return self._stretch_fabric_links(builder.build(sim, shaped, switch_config))

    def _stretch_fabric_links(self, network: Network) -> Network:
        """Apply the case's WAN stretch to every switch-switch link."""
        if self.wan_delay_s:
            for a in network.switches:
                for b in network.adjacency[a]:
                    if b in network.switches:
                        network.set_link_delay(a, b, self.wan_delay_s)
        return network

    def build_flows(self) -> List[Flow]:
        return [
            Flow(flow_id=fid, src=src, dst=dst, size_bytes=size, start_time=start)
            for fid, src, dst, size, start in self.flows
        ]

    def describe(self) -> Dict[str, Any]:
        """JSON-safe summary for counterexample repro files."""
        return {
            "seed": self.seed,
            "topology": self.topology,
            "transport": self.transport,
            "pfc_enabled": self.pfc_enabled,
            "num_hosts": self.num_hosts,
            "num_flows": len(self.flows),
            "faults": [type(f).__name__ for f in self.faults],
            "ack_coalesce_n": self.ack_coalesce_n,
            "ack_coalesce_us": self.ack_coalesce_us,
            "wan_delay_s": self.wan_delay_s,
        }


# ---------------------------------------------------------------------------
# Fault installation
# ---------------------------------------------------------------------------
def _noop() -> None:
    return None


def install_faults(
    sim: Simulator, network: Network, case: FuzzCase
) -> Optional[FaultEngine]:
    """Install every fault in ``case``.

    The packet-touching kinds go through one shared
    :class:`~repro.faults.FaultEngine` (the same machinery experiment runs
    use), whose ``fault_drops`` counter the conservation invariant balances
    against; timer storms are scheduled directly.  Returns the engine, or
    ``None`` when the case carries only timer storms.
    """
    promoted = tuple(
        fault for fault in case.faults if not isinstance(fault, TimerStormFault)
    )
    engine: Optional[FaultEngine] = None
    if promoted:
        engine = FaultEngine(
            sim, network, FaultPlan(faults=promoted), seed=case.seed
        )
        engine.install()
    for fault in case.faults:
        if isinstance(fault, TimerStormFault):
            sim.schedule_at(fault.time_s, _fire_timer_storm, sim, fault)
    return engine


def _fire_timer_storm(sim: Simulator, fault: TimerStormFault) -> None:
    timers = [sim.set_timer(delay, _noop) for delay in fault.delays]
    for index in fault.cancel_now:
        sim.cancel(timers[index])
    if fault.cancel_later:
        later = [timers[index] for index in fault.cancel_later]
        sim.schedule(
            fault.cancel_later_delay_s,
            lambda: [sim.cancel(timer) for timer in later],
        )


# ---------------------------------------------------------------------------
# Per-QP delivery-ordering tap
# ---------------------------------------------------------------------------
class OrderingTracker:
    """Watches every receiver's in-order delivery frontier.

    The per-QP contract shared by all transports: the receiver's
    ``expected_psn`` (the in-order frontier acknowledged back to the
    sender) never regresses, whatever the arrival order.  Violations are
    recorded, not raised, so a single run reports every broken QP.
    """

    def __init__(self) -> None:
        self.violations: List[str] = []

    def tap(self, receiver, flow: Flow) -> None:
        if not hasattr(receiver, "expected_psn"):
            return
        orig_on_data = receiver.on_data
        frontier = [receiver.expected_psn]
        violations = self.violations

        def tapped(packet, now):
            result = orig_on_data(packet, now)
            current = receiver.expected_psn
            if current < frontier[0]:
                violations.append(
                    f"flow {flow.flow_id} ({flow.src}->{flow.dst}): expected_psn "
                    f"regressed {frontier[0]} -> {current} at t={now}"
                )
            frontier[0] = current
            return result

        receiver.on_data = tapped


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------
@dataclass
class CaseOutcome:
    """Raw observations from one run of one case on one engine core."""

    queue_kind: str
    trace: List[Tuple[float, int]]
    events_scheduled: int
    events_processed: int
    events_cancelled: int
    pending_events: int
    drained: bool
    packets_committed: int      # host NIC pulls (data + control)
    packets_delivered: int      # host receives (data + control)
    switch_drops: int
    #: Packets consumed by the shared fault engine (corruption + flap);
    #: conservation balances against this counter, and losslessness treats
    #: it exactly like a switch drop.
    fault_drops: int
    queued_packets: int
    flows_total: int
    flows_completed: int
    completions_recorded: int
    ordering_violations: List[str] = field(default_factory=list)
    deadlock_events: int = 0
    time_to_deadlock_s: Optional[float] = None
    pause_frames: int = 0


def run_case(case: FuzzCase, queue: Optional[str] = None) -> CaseOutcome:
    """Execute ``case`` on the requested engine core."""
    config = case.experiment_config()
    # Bucket width comes from the shared derivation the experiment runner
    # uses (the departure-batch quantum), not a fuzzer-private formula, so
    # the fuzzed calendars are sized exactly like production ones.  Width
    # only affects speed, never event order.
    sim = Simulator(
        seed=case.seed,
        queue=queue,
        bucket_width_s=bucket_width_for(config),
    )
    trace = sim.enable_trace()
    network = case.build_network(sim)
    collector = MetricsCollector(
        network,
        mtu_bytes=case.mtu_bytes,
        header_bytes=config.effective_header_bytes(),
        keep_records=False,
    )
    detector = collector.install_deadlock_detector()
    launcher = _FlowLauncher(sim, network, config, collector)
    ordering = OrderingTracker()

    def launch(flow: Flow) -> None:
        launcher.launch(flow)
        ordering.tap(launcher.receivers[-1], flow)

    flows = case.build_flows()
    for flow in flows:
        sim.schedule_at(flow.start_time, launch, flow)
    fault_engine = install_faults(sim, network, case)

    sim.run(until=case.max_sim_time_s, max_events=case.max_events)
    # Let retransmissions and queued traffic drain to quiescence (bounded by
    # the event valve); conservation is only judged on fully-drained runs.
    sim.run_until_idle(max_events=case.max_events)

    hosts = network.hosts.values()
    return CaseOutcome(
        queue_kind=sim.queue_kind,
        trace=trace,
        events_scheduled=sim.events_scheduled,
        events_processed=sim.events_processed,
        events_cancelled=sim.events_cancelled,
        pending_events=sim.pending_events,
        drained=sim.pending_events == 0,
        packets_committed=sum(
            h.data_packets_sent + h.control_packets_sent for h in hosts
        ),
        packets_delivered=sum(
            h.data_packets_received + h.control_packets_received for h in hosts
        ),
        switch_drops=network.total_dropped_packets(),
        fault_drops=0 if fault_engine is None else fault_engine.fault_drops,
        queued_packets=network.total_queued_packets(),
        flows_total=len(flows),
        flows_completed=sum(1 for flow in flows if flow.completed),
        completions_recorded=collector.completed_count,
        ordering_violations=ordering.violations,
        deadlock_events=detector.deadlock_events,
        time_to_deadlock_s=detector.time_to_deadlock_s,
        pause_frames=network.total_pause_frames(),
    )
