"""Invariant predicates over fuzzed-run outcomes.

Each check returns a list of violation strings (empty == invariant holds),
so a single run reports *every* broken property rather than stopping at the
first.  ``check_outcome`` judges one run; ``check_pair`` judges the
calendar-vs-heap pair of runs of the same case.

The invariants (the harness contract documented in
``docs/architecture.md``):

1. **Monotone clock** -- execution-trace times never decrease.
2. **Accounting identity** -- ``events_scheduled == events_processed +
   events_cancelled + pending_events``, at any stopping point.
3. **PFC losslessness** -- a lossless fabric never drops: with
   ``pfc_enabled`` the switch drop counters *and* the fault engine's
   injected-drop counter stay zero (counting injected drops is how the
   known-bad self-test is caught).
4. **Conservation modulo counted fault drops** -- once the fabric is fully
   drained, every packet committed to the wire by a host NIC was delivered
   to a host, dropped by a switch, consumed by an injected fault
   (corruption / link flap, tallied in ``fault_drops``), or is still
   sitting in a switch queue (the queued term covers PFC-deadlocked
   fabrics, which go event-idle with packets wedged).
5. **Per-QP ordering** -- no receiver's in-order delivery frontier
   (``expected_psn``) ever regresses.
6. **Completion sanity** -- completed flows never exceed launched flows,
   and the collector's completion count matches the flow objects.
7. **Event-order identity** -- both cores execute byte-identical
   ``(time, seq)`` traces and agree on every physical counter.  (Cancelled
   vs pending tallies legitimately differ between cores mid-run -- a
   tombstone discarded by one core's compaction may still be queued in the
   other -- so only their *sum* is compared, via invariant 2.)
"""

from __future__ import annotations

from typing import List

from repro.verify.fuzz import CaseOutcome, FuzzCase


def check_outcome(case: FuzzCase, outcome: CaseOutcome) -> List[str]:
    """All single-run invariant violations for ``case`` on one core."""
    violations: List[str] = []
    core = outcome.queue_kind

    # 1. Monotone simulator clock.
    trace = outcome.trace
    for i in range(1, len(trace)):
        if trace[i][0] < trace[i - 1][0]:
            violations.append(
                f"[{core}] clock regressed: event #{i} at t={trace[i][0]} "
                f"after t={trace[i - 1][0]}"
            )
            break

    # 2. Engine accounting identity.
    accounted = (
        outcome.events_processed + outcome.events_cancelled + outcome.pending_events
    )
    if outcome.events_scheduled != accounted:
        violations.append(
            f"[{core}] event accounting leak: scheduled={outcome.events_scheduled} "
            f"!= processed={outcome.events_processed} "
            f"+ cancelled={outcome.events_cancelled} "
            f"+ pending={outcome.pending_events} (= {accounted})"
        )

    # 3. PFC losslessness: a lossless fabric never drops, ever -- injected
    # fault drops included.
    if case.pfc_enabled and (outcome.switch_drops + outcome.fault_drops) != 0:
        violations.append(
            f"[{core}] losslessness violated: {outcome.switch_drops} switch "
            f"drop(s) + {outcome.fault_drops} fault drop(s) on a PFC-enabled "
            f"fabric"
        )

    # 4. Conservation of packets, judged only at full drain (an undrained
    # run stopped mid-flight by the event valve cannot balance).
    if outcome.drained:
        balance = (
            outcome.packets_delivered
            + outcome.switch_drops
            + outcome.fault_drops
            + outcome.queued_packets
        )
        if outcome.packets_committed != balance:
            violations.append(
                f"[{core}] conservation violated: committed="
                f"{outcome.packets_committed} != delivered={outcome.packets_delivered}"
                f" + dropped={outcome.switch_drops}"
                f" + fault_dropped={outcome.fault_drops}"
                f" + queued={outcome.queued_packets} (= {balance})"
            )

    # 5. Per-QP delivery ordering.
    for message in outcome.ordering_violations:
        violations.append(f"[{core}] ordering violated: {message}")

    # 6. Completion sanity.
    if outcome.flows_completed > outcome.flows_total:
        violations.append(
            f"[{core}] {outcome.flows_completed} completions out of "
            f"{outcome.flows_total} flows"
        )
    if outcome.completions_recorded != outcome.flows_completed:
        violations.append(
            f"[{core}] collector recorded {outcome.completions_recorded} "
            f"completions but {outcome.flows_completed} flows completed"
        )

    return violations


def check_pair(case: FuzzCase, calendar: CaseOutcome, heap: CaseOutcome) -> List[str]:
    """Cross-core identity violations between the two runs of ``case``."""
    violations: List[str] = []

    if calendar.trace != heap.trace:
        detail = _first_trace_divergence(calendar.trace, heap.trace)
        violations.append(f"[cross] event order diverged: {detail}")

    for field in (
        "events_scheduled",
        "events_processed",
        "packets_committed",
        "packets_delivered",
        "switch_drops",
        "fault_drops",
        "queued_packets",
        "flows_completed",
        "completions_recorded",
        "deadlock_events",
        "time_to_deadlock_s",
        "pause_frames",
    ):
        a = getattr(calendar, field)
        b = getattr(heap, field)
        if a != b:
            violations.append(f"[cross] {field} diverged: calendar={a} heap={b}")

    return violations


def _first_trace_divergence(a: list, b: list) -> str:
    if len(a) != len(b):
        prefix = f"calendar ran {len(a)} events, heap ran {len(b)}"
    else:
        prefix = f"{len(a)} events each"
    for i, (ea, eb) in enumerate(zip(a, b)):
        if ea != eb:
            return f"{prefix}; first divergence at #{i}: calendar={ea} heap={eb}"
    return f"{prefix}; one trace is a prefix of the other"
