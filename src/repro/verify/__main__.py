"""CLI for the simulation fuzzer: ``python -m repro.verify``.

Exit status is nonzero when any invariant is violated (or the self-test
fails), so CI can gate on it directly.  The fuzz budget defaults to the
``REPRO_FUZZ_BUDGET`` environment variable (CI's nightly-depth knob), then
to 25 cases.
"""

from __future__ import annotations

import argparse
import sys

from repro.verify.harness import (
    BUDGET_ENV_VAR,
    check_case,
    default_budget,
    run_fuzz,
    self_test,
    write_counterexample,
)
from repro.verify.fuzz import FuzzCase


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Randomized invariant fuzzing of the simulator "
        "(both engine cores, every case).",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=None,
        help=f"number of fuzz cases (default: ${BUDGET_ENV_VAR} or "
        f"{default_budget()})",
    )
    parser.add_argument(
        "--start-seed",
        type=int,
        default=0,
        help="first seed of the fuzzed range (default: 0)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="reproduce exactly one case by seed (skips the sweep)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="write a JSON repro file per counterexample into DIR",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="check the harness catches a seeded known-bad case, then exit",
    )
    args = parser.parse_args(argv)

    if args.self_test:
        return 0 if self_test() else 1

    if args.seed is not None:
        case = FuzzCase.generate(args.seed)
        print(f"case seed={args.seed}: {case.describe()}")
        report = check_case(case)
        if report.passed:
            print("all invariants hold on both cores")
            return 0
        for violation in report.violations:
            print(f"  {violation}")
        if args.out:
            print(f"repro written to {write_counterexample(report, args.out)}")
        return 1

    report = run_fuzz(budget=args.budget, start_seed=args.start_seed, out_dir=args.out)
    return 0 if report.passed else 1


if __name__ == "__main__":
    sys.exit(main())
