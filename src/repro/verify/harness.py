"""The fuzz harness: run cases on both cores, judge, report, reproduce.

``run_fuzz`` is the entry point the CLI (``python -m repro.verify``) and CI
use.  It generates ``budget`` seed-derived cases, runs each on the calendar
*and* heap engine cores, applies every invariant from
:mod:`repro.verify.invariants`, and writes a JSON repro file per
counterexample (the seed inside it is a complete reproduction:
``python -m repro.verify --seed N``).

``self_test`` guards the guard: it corrupts packets on a *lossless* case
and fails unless the losslessness invariant catches the resulting fault
drops -- proof the harness can still detect the class of bug it exists for.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import List, Optional

from repro.faults import PacketCorruption
from repro.verify.fuzz import FuzzCase, run_case
from repro.verify.invariants import check_outcome, check_pair

#: Environment knob CI uses to deepen nightly runs without a workflow edit.
BUDGET_ENV_VAR = "REPRO_FUZZ_BUDGET"
DEFAULT_BUDGET = 25


@dataclass
class CaseReport:
    """Verdict for one case across both engine cores."""

    case: FuzzCase
    violations: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations


@dataclass
class FuzzReport:
    """Verdict for a whole fuzz run."""

    budget: int
    start_seed: int
    reports: List[CaseReport] = field(default_factory=list)

    @property
    def failures(self) -> List[CaseReport]:
        return [report for report in self.reports if not report.passed]

    @property
    def passed(self) -> bool:
        return not self.failures


def check_case(case: FuzzCase) -> CaseReport:
    """Run ``case`` on both cores and apply every invariant."""
    calendar = run_case(case, queue="calendar")
    heap = run_case(case, queue="heap")
    violations = (
        check_outcome(case, calendar)
        + check_outcome(case, heap)
        + check_pair(case, calendar, heap)
    )
    return CaseReport(case=case, violations=violations)


def default_budget() -> int:
    """CI depth knob: ``REPRO_FUZZ_BUDGET`` env var, else 25 cases."""
    raw = os.environ.get(BUDGET_ENV_VAR, "")
    try:
        return max(1, int(raw))
    except ValueError:
        return DEFAULT_BUDGET


def run_fuzz(
    budget: Optional[int] = None,
    start_seed: int = 0,
    out_dir: Optional[str] = None,
    log=print,
) -> FuzzReport:
    """Fuzz ``budget`` cases; write one repro file per counterexample."""
    if budget is None:
        budget = default_budget()
    report = FuzzReport(budget=budget, start_seed=start_seed)
    for seed in range(start_seed, start_seed + budget):
        case = FuzzCase.generate(seed)
        case_report = check_case(case)
        report.reports.append(case_report)
        if case_report.passed:
            continue
        log(f"FAIL seed={seed}: {len(case_report.violations)} violation(s)")
        for violation in case_report.violations:
            log(f"  {violation}")
        if out_dir:
            path = write_counterexample(case_report, out_dir)
            log(f"  repro written to {path}")
    passed = len(report.reports) - len(report.failures)
    log(f"fuzz: {passed}/{len(report.reports)} cases passed "
        f"(seeds {start_seed}..{start_seed + budget - 1})")
    return report


def write_counterexample(case_report: CaseReport, out_dir: str) -> str:
    """Persist a failing case as a JSON repro file; returns its path."""
    os.makedirs(out_dir, exist_ok=True)
    case = case_report.case
    path = os.path.join(out_dir, f"counterexample-seed-{case.seed}.json")
    payload = {
        "reproduce": f"python -m repro.verify --seed {case.seed}",
        "case": case.describe(),
        "violations": case_report.violations,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


# ---------------------------------------------------------------------------
# Known-bad self-test
# ---------------------------------------------------------------------------
def known_bad_case(seed: int = 0) -> FuzzCase:
    """A deliberately broken case: corruption injected on a *lossless* fabric.

    The fuzzer itself never generates this combination (packet-touching
    faults are restricted to non-lossless cases); constructing it by hand
    checks that the losslessness invariant actually fires when the property
    is broken.
    """
    base = FuzzCase.generate(seed)
    # Force a lossless star so the dropped packet sits on a lossless port.
    lossless = FuzzCase(
        seed=base.seed,
        topology="star",
        transport="roce",
        pfc_enabled=True,
        num_hosts=4,
        ring_switches=base.ring_switches,
        mtu_bytes=1000,
        bandwidth_bps=10e9,
        link_delay_s=1e-6,
        buffer_bytes=20_000,
        flows=(
            (0, "h0", "h1", 8_000, 0.0),
            (1, "h2", "h3", 8_000, 1e-6),
        ),
    )
    return lossless.with_faults(
        PacketCorruption(src="h0", dst="s0", probability=1.0, start_s=0.0, end_s=None)
    )


def self_test(log=print) -> bool:
    """True iff the harness still catches the known-bad seeded case."""
    report = check_case(known_bad_case())
    caught = any("losslessness violated" in v for v in report.violations)
    if caught:
        log("self-test: losslessness invariant caught the injected corruption")
    else:
        log("self-test FAILED: injected lossless corruption went undetected")
        for violation in report.violations:
            log(f"  (saw only) {violation}")
    return caught
