"""Adversarial simulation fuzzing and invariant verification.

This package is the simulator's randomized test harness: it generates
arbitrary fabrics (including cyclic ones), workloads and fault schedules
from a single integer seed, runs every case on *both* engine cores, and
asserts the invariant contract documented in ``docs/architecture.md`` --
conservation of packets, PFC losslessness, per-QP delivery ordering, a
monotone simulator clock, the engine accounting identity, and
calendar-vs-heap event-order identity.

Run it from the command line::

    python -m repro.verify --budget 50          # fuzz 50 seeds
    python -m repro.verify --seed 1234          # reproduce one case
    python -m repro.verify --self-test          # prove the harness catches bugs
"""

from repro.verify.fuzz import (
    CaseOutcome,
    FuzzCase,
    TimerStormFault,
    run_case,
)
from repro.verify.invariants import check_outcome, check_pair
from repro.verify.harness import (
    CaseReport,
    FuzzReport,
    check_case,
    default_budget,
    known_bad_case,
    run_fuzz,
    self_test,
    write_counterexample,
)

__all__ = [
    "CaseOutcome",
    "CaseReport",
    "FuzzCase",
    "FuzzReport",
    "TimerStormFault",
    "check_case",
    "check_outcome",
    "check_pair",
    "default_budget",
    "known_bad_case",
    "run_case",
    "run_fuzz",
    "self_test",
    "write_counterexample",
]
