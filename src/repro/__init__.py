"""repro: a reproduction of "Revisiting Network Support for RDMA" (IRN, SIGCOMM 2018).

The package provides:

* :mod:`repro.sim` -- a discrete-event, packet-level datacenter network
  simulator (links, input-queued switches with virtual output queues, PFC,
  ECN marking, ECMP routing).
* :mod:`repro.topology` -- topology builders (three-tier fat-tree, dumbbell,
  star, parking-lot).
* :mod:`repro.core` -- the transport logic under study: IRN (the paper's
  contribution), RoCE go-back-N, iWARP-style TCP, and the factor-analysis
  variants.
* :mod:`repro.congestion` -- DCQCN, Timely, TCP AIMD and DCTCP congestion
  control, pluggable into any transport.
* :mod:`repro.rdma` -- the RDMA verbs layer from §5 of the paper: queue
  pairs, WQEs/CQEs, out-of-order packet placement, message-completion
  bookkeeping, shared receive queues and end-to-end credits.
* :mod:`repro.hw` -- the NIC hardware models from §6: bitmap datapath,
  packet-processing modules, NIC state accounting, FPGA resource model and
  the iWARP/RoCE raw-NIC pipeline model.
* :mod:`repro.workload`, :mod:`repro.metrics`, :mod:`repro.experiments` --
  workload generators, metric collection and the experiment harness that
  regenerates every figure and table in the paper.
* :mod:`repro.registry`, :mod:`repro.api` -- the name->builder registries
  that make topologies/workloads/transports/congestion schemes pluggable,
  and the facade (``load_scenario(name).sweep(...)``) behind the
  ``python -m repro run`` CLI.
"""

from repro.version import __version__

from repro.sim.engine import Simulator
from repro.experiments.config import ExperimentConfig, TransportKind, CongestionControl
from repro.experiments.runner import ExperimentResult, run_experiment

__all__ = [
    "__version__",
    "Simulator",
    "ExperimentConfig",
    "TransportKind",
    "CongestionControl",
    "ExperimentResult",
    "run_experiment",
]
