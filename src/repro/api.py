"""The one-stop facade over the experiment stack.

Everything a user (or an orchestration layer) needs to define, resolve and
run scenarios, in one import::

    import repro.api as repro

    # Run a paper scenario end-to-end: sweep -> aggregate -> report.
    sweep = repro.load_scenario("fig8").sweep(seeds=3, workers=4,
                                              cache=".sweep-cache/fig8")
    print(repro.format_metric_table("Figure 8", sweep.rows))

    # Plug in new components without touching any repro module.
    @repro.register_topology("ring", max_hop_count=4, switch_radix=4)
    def build_ring(sim, config, switch_config): ...

    @repro.register_congestion_control("swift", rtt_based=True)
    def make_swift(line_rate_bps, base_rtt_s, params=None): ...

    spec = repro.ScenarioSpec(name="mine", defaults={"topology": "ring"},
                              variants={"swift": {"congestion_control": "swift"}})
    repro.register_scenario(spec)
    repro.load_scenario("mine").sweep(workers=1)   # see note below

The same surface drives the command line: ``python -m repro run <scenario>``
(see :mod:`repro.__main__`).

Note: registrations are process-local.  Components registered in a script
(rather than an importable module) require ``workers=1`` when sweeping --
parallel worker processes re-import a clean registry, and on spawn-based
platforms (macOS/Windows) every cell would fail with an unknown-name error.
"""

from __future__ import annotations

from typing import List

from repro.congestion.factory import (
    CONGESTION_SCHEMES,
    CongestionScheme,
    make_congestion_control,
    register_congestion_control,
)
from repro.core.factory import TRANSPORTS, TransportKind, register_transport
from repro.experiments.backends import (
    EXECUTION_BACKENDS,
    ExecutionBackend,
    SweepProgress,
    register_execution_backend,
)
from repro.experiments.config import CongestionControl, ExperimentConfig
from repro.experiments.queue import QueueBackend, TaskQueue, run_worker
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.experiments.spec import (
    SCENARIOS,
    ScenarioSpec,
    register_scenario,
    scenario as load_scenario,
)
from repro.experiments.sweep import (
    ParameterGrid,
    ResultCache,
    SweepResult,
    aggregate_rows,
    run_sweep,
)
from repro.metrics.partial import PartialAggregator, aggregate_partial
from repro.metrics.report import (
    format_aggregate_table,
    format_incast_table,
    format_metric_table,
    format_tail_cdf,
)
from repro.serve import ResultsService, catalog_entries, format_catalog, make_server
from repro.topology import TOPOLOGIES, register_topology
from repro.workload import WORKLOADS, register_workload

__all__ = [
    # scenarios
    "SCENARIOS",
    "ScenarioSpec",
    "list_scenarios",
    "load_scenario",
    "register_scenario",
    # execution
    "EXECUTION_BACKENDS",
    "ExecutionBackend",
    "ExperimentConfig",
    "ExperimentResult",
    "ParameterGrid",
    "QueueBackend",
    "ResultCache",
    "SweepProgress",
    "SweepResult",
    "TaskQueue",
    "aggregate_partial",
    "aggregate_rows",
    "register_execution_backend",
    "run_experiment",
    "run_sweep",
    "run_worker",
    # component registries
    "CONGESTION_SCHEMES",
    "CongestionControl",
    "CongestionScheme",
    "PartialAggregator",
    "TOPOLOGIES",
    "TRANSPORTS",
    "TransportKind",
    "WORKLOADS",
    "make_congestion_control",
    "register_congestion_control",
    "register_topology",
    "register_transport",
    "register_workload",
    # reporting & serving
    "ResultsService",
    "catalog_entries",
    "format_aggregate_table",
    "format_catalog",
    "format_incast_table",
    "format_metric_table",
    "format_tail_cdf",
    "make_server",
]


def list_scenarios() -> List[str]:
    """Names of every registered scenario (paper presets load on demand)."""
    import repro.experiments.scenarios  # noqa: F401  (self-registration)

    return SCENARIOS.names()
