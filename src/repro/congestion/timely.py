"""Timely: RTT-gradient rate control (Mittal et al., SIGCOMM 2015).

Timely measures per-ACK round-trip times in the NIC and adjusts the sending
rate from the *gradient* of the RTT series: rising RTTs indicate queue
build-up and trigger multiplicative decrease, falling or flat RTTs allow
additive increase.  Two guard thresholds bypass the gradient logic: below
``t_low`` the rate always increases, above ``t_high`` it always decreases.

The defaults follow the paper's parameters; experiments on scaled-down
fabrics pass thresholds proportional to their own base RTT.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.congestion.base import RateBasedControl


@dataclass
class TimelyParams:
    """Timely parameters.

    Attributes
    ----------
    t_low_s / t_high_s:
        RTT guard thresholds (50 us / 500 us in the paper).
    ewma_alpha:
        Weight of the new RTT difference in the gradient EWMA.
    additive_increase_fraction:
        Additive step (delta) as a fraction of line rate (10 Mbps on 10G).
    beta:
        Multiplicative decrease factor.
    hai_threshold:
        Number of consecutive gradient-negative completions after which
        hyper-active increase (N * delta) kicks in.
    min_rtt_s:
        Minimum RTT used to normalize the gradient.
    """

    t_low_s: float = 50e-6
    t_high_s: float = 500e-6
    ewma_alpha: float = 0.3
    additive_increase_fraction: float = 0.001
    beta: float = 0.8
    hai_threshold: int = 5
    min_rtt_s: float = 20e-6


class Timely(RateBasedControl):
    """Timely reaction logic (one instance per flow/queue pair)."""

    def __init__(self, line_rate_bps: float, params: TimelyParams | None = None) -> None:
        self.params = params or TimelyParams()
        super().__init__(line_rate_bps)
        self._prev_rtt: float | None = None
        self._rtt_gradient = 0.0
        self._consecutive_increases = 0

        # Statistics
        self.rtt_samples = 0
        self.decreases = 0
        self.increases = 0

    def on_ack(
        self, rtt: float, now: float, ecn_echo: bool = False, newly_acked: int = 1
    ) -> None:
        """Update the rate from a new RTT sample (one sample per ACK frame;
        ``newly_acked`` never multiplies the gradient input, which is why the
        scheme registers ``max_ack_coalesce=1``)."""
        if rtt <= 0:
            return
        self.rtt_samples += 1
        params = self.params
        if self._prev_rtt is None:
            self._prev_rtt = rtt
            return

        rtt_diff = rtt - self._prev_rtt
        self._prev_rtt = rtt
        self._rtt_gradient = (
            (1.0 - params.ewma_alpha) * self._rtt_gradient + params.ewma_alpha * rtt_diff
        )
        normalized_gradient = self._rtt_gradient / params.min_rtt_s
        delta = params.additive_increase_fraction * self.line_rate_bps

        if rtt < params.t_low_s:
            self._additive_increase(delta)
            return
        if rtt > params.t_high_s:
            self.rate_bps *= 1.0 - params.beta * (1.0 - params.t_high_s / rtt)
            self.decreases += 1
            self._consecutive_increases = 0
            self.clamp_rate()
            return
        if normalized_gradient <= 0:
            self._consecutive_increases += 1
            steps = 5 if self._consecutive_increases >= params.hai_threshold else 1
            self._additive_increase(steps * delta)
        else:
            self.rate_bps *= 1.0 - params.beta * min(1.0, normalized_gradient)
            self.decreases += 1
            self._consecutive_increases = 0
            self.clamp_rate()

    def _additive_increase(self, delta: float) -> None:
        self.rate_bps += delta
        self.increases += 1
        self.clamp_rate()
