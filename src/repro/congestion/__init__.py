"""Congestion control algorithms pluggable into any transport.

The paper evaluates RoCE and IRN with and without explicit congestion
control: DCQCN (the ECN/CNP rate control deployed on ConnectX-4 NICs),
Timely (RTT-gradient rate control), and -- in §4.4.4/§4.6 -- conventional
window-based schemes (TCP AIMD and DCTCP) layered on IRN.
"""

from repro.congestion.base import CongestionControl, NoCongestionControl
from repro.congestion.dcqcn import Dcqcn, DcqcnParams
from repro.congestion.timely import Timely, TimelyParams
from repro.congestion.window import AimdWindow, AimdParams, DctcpWindow, DctcpParams
from repro.congestion.factory import (
    CONGESTION_SCHEMES,
    CongestionScheme,
    make_congestion_control,
    register_congestion_control,
)

__all__ = [
    "CONGESTION_SCHEMES",
    "CongestionScheme",
    "register_congestion_control",
    "CongestionControl",
    "NoCongestionControl",
    "Dcqcn",
    "DcqcnParams",
    "Timely",
    "TimelyParams",
    "AimdWindow",
    "AimdParams",
    "DctcpWindow",
    "DctcpParams",
    "make_congestion_control",
]
