"""Congestion-control registry and per-flow instance construction.

Schemes are pluggable: each algorithm registers a :class:`CongestionScheme`
in :data:`CONGESTION_SCHEMES` under a name.  A scheme bundles the per-flow
factory with the metadata the rest of the stack needs to wire it up without
hard-coded per-algorithm branches:

* ``needs_ecn`` -- switches must ECN-mark packets (DCQCN, DCTCP);
* ``step_marking`` -- mark by instantaneous queue threshold instead of the
  RED-style probabilistic profile (DCTCP);
* ``rtt_based`` -- the sender needs per-packet ACKs for RTT samples even on
  a lossless fabric (Timely);
* ``wants_cnp`` -- receivers send DCQCN-style congestion notification
  packets when they see marked traffic.

Register a new algorithm from outside this package and every transport and
scenario can use it by name::

    from repro.congestion import register_congestion_control

    @register_congestion_control("swift", rtt_based=True)
    def make_swift(line_rate_bps, base_rtt_s, params=None):
        return Swift(line_rate_bps, params or SwiftParams(base_rtt_s))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.congestion.base import CongestionControl, NoCongestionControl
from repro.congestion.dcqcn import Dcqcn, DcqcnParams
from repro.congestion.timely import Timely, TimelyParams
from repro.congestion.window import AimdParams, AimdWindow, DctcpParams, DctcpWindow
from repro.registry import Registry

__all__ = [
    "CONGESTION_SCHEMES",
    "CongestionScheme",
    "make_congestion_control",
    "register_congestion_control",
]

#: ``(line_rate_bps, base_rtt_s, params=None) -> CongestionControl``.
SchemeFactory = Callable[..., CongestionControl]


@dataclass(frozen=True)
class CongestionScheme:
    """A registered congestion-control algorithm plus its fabric needs."""

    name: str
    factory: SchemeFactory
    #: Switches must ECN-mark packets for this scheme to see congestion.
    needs_ecn: bool = False
    #: ECN marking is by instantaneous-queue step threshold (DCTCP style).
    step_marking: bool = False
    #: The sender needs per-packet ACKs for RTT samples regardless of PFC.
    rtt_based: bool = False
    #: Receivers emit DCQCN-style CNPs when they receive marked packets.
    wants_cnp: bool = False
    #: Hard cap on receiver-side cumulative-ACK coalescing while this scheme
    #: is active (``None`` = no scheme-imposed cap).  RTT-based schemes read
    #: their congestion signal out of the per-packet ACK stream, so they pin
    #: the coalescing window to 1; purely timer/CNP-driven schemes tolerate
    #: any degree.
    max_ack_coalesce: Optional[int] = None
    #: CNP pacing for ``wants_cnp`` schemes: the minimum spacing between
    #: CNPs a receiver emits, in units of the fabric's base RTT (the wiring
    #: floors the product at 5 us so scaled-down fabrics keep a sane
    #: notification-point interval).
    cnp_interval_rtts: float = 1.0

    def build(
        self, line_rate_bps: float, base_rtt_s: float, params: Optional[Any] = None
    ) -> CongestionControl:
        return self.factory(line_rate_bps, base_rtt_s, params=params)


CONGESTION_SCHEMES: Registry[CongestionScheme] = Registry("congestion control")


def register_congestion_control(
    name: str,
    *,
    needs_ecn: bool = False,
    step_marking: bool = False,
    rtt_based: bool = False,
    wants_cnp: bool = False,
    max_ack_coalesce: Optional[int] = None,
    cnp_interval_rtts: float = 1.0,
    aliases: Sequence[str] = (),
    replace: bool = False,
):
    """Decorator registering a scheme factory under ``name``.

    The decorated callable takes ``(line_rate_bps, base_rtt_s, params=None)``
    and returns a fresh per-flow :class:`CongestionControl` instance.
    """

    def decorator(factory: SchemeFactory) -> SchemeFactory:
        CONGESTION_SCHEMES.register(
            name,
            CongestionScheme(
                name=name,
                factory=factory,
                needs_ecn=needs_ecn,
                step_marking=step_marking,
                rtt_based=rtt_based,
                wants_cnp=wants_cnp,
                max_ack_coalesce=max_ack_coalesce,
                cnp_interval_rtts=cnp_interval_rtts,
            ),
            aliases=aliases,
            replace=replace,
        )
        return factory

    return decorator


def make_congestion_control(
    kind: str,
    line_rate_bps: float,
    base_rtt_s: float,
    dcqcn_params: Optional[DcqcnParams] = None,
    timely_params: Optional[TimelyParams] = None,
    aimd_params: Optional[AimdParams] = None,
    dctcp_params: Optional[DctcpParams] = None,
    params: Optional[Any] = None,
) -> CongestionControl:
    """Build a per-flow congestion-control object by registered name.

    Parameters
    ----------
    kind:
        A registered scheme name (``"none"``, ``"dcqcn"``, ``"timely"``,
        ``"aimd"``, ``"dctcp"``, or anything added via
        :func:`register_congestion_control`).  A
        :class:`~repro.experiments.config.CongestionControl` enum member is
        accepted and resolves through the registry.
    line_rate_bps:
        Host link rate (rate-based algorithms start at line rate).
    base_rtt_s:
        Unloaded RTT of the longest path; used to scale Timely's thresholds
        and the DCQCN timers when explicit parameters are not supplied, so
        the algorithms remain meaningful on scaled-down test fabrics.
    params:
        Optional algorithm-specific parameter object forwarded to the
        factory; the legacy ``*_params`` keywords keep working for the
        built-in schemes.
    """
    scheme = CONGESTION_SCHEMES.get(kind)
    if params is None:
        params = {
            "dcqcn": dcqcn_params,
            "timely": timely_params,
            "aimd": aimd_params,
            "dctcp": dctcp_params,
        }.get(scheme.name)
    return scheme.build(line_rate_bps, base_rtt_s, params=params)


# ---------------------------------------------------------------------------
# Built-in schemes
# ---------------------------------------------------------------------------

@register_congestion_control("none", aliases=("no_cc", "off"))
def _make_none(line_rate_bps: float, base_rtt_s: float, params=None) -> CongestionControl:
    return NoCongestionControl()


@register_congestion_control("dcqcn", needs_ecn=True, wants_cnp=True)
def _make_dcqcn(line_rate_bps: float, base_rtt_s: float, params=None) -> CongestionControl:
    params = params or DcqcnParams(
        alpha_timer_s=max(base_rtt_s, 5e-6),
        rate_increase_timer_s=max(3.0 * base_rtt_s, 15e-6),
        cnp_interval_s=max(base_rtt_s, 5e-6),
    )
    return Dcqcn(line_rate_bps, params)


@register_congestion_control("timely", rtt_based=True, max_ack_coalesce=1)
def _make_timely(line_rate_bps: float, base_rtt_s: float, params=None) -> CongestionControl:
    params = params or TimelyParams(
        t_low_s=1.5 * base_rtt_s,
        t_high_s=6.0 * base_rtt_s,
        min_rtt_s=max(base_rtt_s, 1e-6),
    )
    return Timely(line_rate_bps, params)


@register_congestion_control("aimd")
def _make_aimd(line_rate_bps: float, base_rtt_s: float, params=None) -> CongestionControl:
    return AimdWindow(params or AimdParams())


@register_congestion_control("dctcp", needs_ecn=True, step_marking=True)
def _make_dctcp(line_rate_bps: float, base_rtt_s: float, params=None) -> CongestionControl:
    return DctcpWindow(params or DctcpParams())
