"""Construct congestion-control instances from an experiment configuration."""

from __future__ import annotations

from typing import Optional

from repro.congestion.base import CongestionControl, NoCongestionControl
from repro.congestion.dcqcn import Dcqcn, DcqcnParams
from repro.congestion.timely import Timely, TimelyParams
from repro.congestion.window import AimdParams, AimdWindow, DctcpParams, DctcpWindow


def make_congestion_control(
    kind: str,
    line_rate_bps: float,
    base_rtt_s: float,
    dcqcn_params: Optional[DcqcnParams] = None,
    timely_params: Optional[TimelyParams] = None,
    aimd_params: Optional[AimdParams] = None,
    dctcp_params: Optional[DctcpParams] = None,
) -> CongestionControl:
    """Build a per-flow congestion-control object.

    Parameters
    ----------
    kind:
        One of ``"none"``, ``"dcqcn"``, ``"timely"``, ``"aimd"``, ``"dctcp"``.
    line_rate_bps:
        Host link rate (rate-based algorithms start at line rate).
    base_rtt_s:
        Unloaded RTT of the longest path; used to scale Timely's thresholds
        and the DCQCN timers when explicit parameters are not supplied, so
        the algorithms remain meaningful on scaled-down test fabrics.
    """
    kind = kind.lower()
    if kind in ("none", "no_cc", "off"):
        return NoCongestionControl()
    if kind == "dcqcn":
        params = dcqcn_params or DcqcnParams(
            alpha_timer_s=max(base_rtt_s, 5e-6),
            rate_increase_timer_s=max(3.0 * base_rtt_s, 15e-6),
            cnp_interval_s=max(base_rtt_s, 5e-6),
        )
        return Dcqcn(line_rate_bps, params)
    if kind == "timely":
        params = timely_params or TimelyParams(
            t_low_s=1.5 * base_rtt_s,
            t_high_s=6.0 * base_rtt_s,
            min_rtt_s=max(base_rtt_s, 1e-6),
        )
        return Timely(line_rate_bps, params)
    if kind == "aimd":
        return AimdWindow(aimd_params or AimdParams())
    if kind == "dctcp":
        return DctcpWindow(dctcp_params or DctcpParams())
    raise ValueError(f"unknown congestion control kind {kind!r}")
