"""DCQCN: the ECN-based rate control of Zhu et al. (SIGCOMM 2015).

The algorithm has three participants:

* the *congestion point* (switch) marks packets with ECN when its queue
  exceeds a RED-like threshold (implemented in :mod:`repro.sim.switch`);
* the *notification point* (receiver NIC) converts marked arrivals into CNP
  frames, rate limited to one per interval (implemented in the receivers);
* the *reaction point* (sender NIC), modelled here, cuts its rate
  multiplicatively when CNPs arrive and recovers through fast-recovery /
  additive-increase / hyper-increase stages.

Parameters follow the published defaults, expressed relative to the line rate
so the algorithm behaves sensibly on the scaled-down fabrics used in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.congestion.base import RateBasedControl


@dataclass
class DcqcnParams:
    """DCQCN reaction-point parameters.

    Attributes
    ----------
    g:
        EWMA gain used to update ``alpha`` (the congestion estimate).
    alpha_timer_s:
        Interval after which ``alpha`` decays when no CNP arrives (55 us).
    rate_increase_timer_s:
        Period of the rate-increase state machine (the ConnectX-4
        implementation uses 300 us; we keep it configurable because scaled
        topologies have much smaller RTTs).
    fast_recovery_rounds:
        Number of increase iterations spent in fast recovery before additive
        increase starts.
    additive_increase_fraction:
        Additive rate step (R_AI) expressed as a fraction of line rate.
    hyper_increase_fraction:
        Hyper-increase rate step (R_HAI) as a fraction of line rate.
    min_rate_fraction:
        Floor on the sending rate as a fraction of line rate.
    cnp_interval_s:
        Notification-point CNP generation interval (50 us); exposed here so
        the experiment wiring can hand it to receivers.
    """

    g: float = 1.0 / 16.0
    alpha_timer_s: float = 55e-6
    rate_increase_timer_s: float = 300e-6
    fast_recovery_rounds: int = 5
    additive_increase_fraction: float = 0.005
    hyper_increase_fraction: float = 0.05
    min_rate_fraction: float = 0.001
    cnp_interval_s: float = 50e-6


class Dcqcn(RateBasedControl):
    """DCQCN reaction point (sender-side rate control)."""

    def __init__(self, line_rate_bps: float, params: DcqcnParams | None = None) -> None:
        self.params = params or DcqcnParams()
        super().__init__(
            line_rate_bps,
            min_rate_bps=line_rate_bps * self.params.min_rate_fraction,
        )
        #: Target rate the current rate converges toward during recovery.
        self.target_rate_bps = line_rate_bps
        #: Congestion estimate in [0, 1].
        self.alpha = 1.0
        #: Number of completed rate-increase iterations since the last cut.
        self._increase_iterations = 0
        self._last_cnp_time = -float("inf")
        self._last_alpha_update = 0.0
        self._last_rate_increase = 0.0

        # Statistics
        self.cnps_received = 0
        self.rate_cuts = 0

    # ------------------------------------------------------------------
    # Feedback
    # ------------------------------------------------------------------
    def on_cnp(self, now: float) -> None:
        """Cut the rate multiplicatively and restart the recovery stages."""
        self._advance_timers(now)
        self.cnps_received += 1
        self.rate_cuts += 1
        self._last_cnp_time = now
        self.target_rate_bps = self.rate_bps
        self.rate_bps *= 1.0 - self.alpha / 2.0
        self.alpha = (1.0 - self.params.g) * self.alpha + self.params.g
        self._increase_iterations = 0
        self._last_rate_increase = now
        self._last_alpha_update = now
        self.clamp_rate()

    def on_ack(
        self, rtt: float, now: float, ecn_echo: bool = False, newly_acked: int = 1
    ) -> None:
        """ACKs drive the timer-based alpha decay and rate increase.

        The timers advance on wall-clock ``now``; how many packets the ACK
        covers is irrelevant, so ``newly_acked`` is ignored.
        """
        self._advance_timers(now)

    def on_timeout(self, now: float) -> None:
        self._advance_timers(now)

    # ------------------------------------------------------------------
    # Internal state machines
    # ------------------------------------------------------------------
    def _advance_timers(self, now: float) -> None:
        self._decay_alpha(now)
        self._increase_rate(now)

    def _decay_alpha(self, now: float) -> None:
        interval = self.params.alpha_timer_s
        while now - self._last_alpha_update >= interval:
            self._last_alpha_update += interval
            if self._last_alpha_update > self._last_cnp_time:
                self.alpha *= 1.0 - self.params.g

    def _increase_rate(self, now: float) -> None:
        interval = self.params.rate_increase_timer_s
        while now - self._last_rate_increase >= interval:
            self._last_rate_increase += interval
            self._one_increase_step()

    def _one_increase_step(self) -> None:
        params = self.params
        self._increase_iterations += 1
        if self._increase_iterations <= params.fast_recovery_rounds:
            # Fast recovery: converge halfway toward the target rate.
            pass
        elif self._increase_iterations <= 2 * params.fast_recovery_rounds:
            # Additive increase.
            self.target_rate_bps += params.additive_increase_fraction * self.line_rate_bps
        else:
            # Hyper increase.
            self.target_rate_bps += params.hyper_increase_fraction * self.line_rate_bps
        self.target_rate_bps = min(self.target_rate_bps, self.line_rate_bps)
        self.rate_bps = (self.rate_bps + self.target_rate_bps) / 2.0
        self.clamp_rate()
