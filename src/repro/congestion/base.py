"""Congestion control interface.

Transports call into a :class:`CongestionControl` object at well-defined
points (packet sent, ACK received, CNP received, loss detected, timeout) and
consult it for two things:

* ``next_send_time`` -- rate-based algorithms (DCQCN, Timely) pace packets by
  returning the earliest time the next packet may leave the NIC;
* ``window_limit`` -- window-based algorithms (AIMD, DCTCP) bound the number
  of packets in flight.

An algorithm implements whichever dimension it controls and leaves the other
unconstrained, matching the paper's observation that IRN's changes are
orthogonal to the choice of explicit congestion control.
"""

from __future__ import annotations


class CongestionControl:
    """Base class: unlimited rate and window (i.e. no congestion control)."""

    # --- transmit-side hooks -------------------------------------------------
    def on_packet_sent(self, size_bits: int, now: float) -> None:
        """Called after every data packet is handed to the NIC."""

    def next_send_time(self, now: float) -> float:
        """Earliest time the next packet may be sent (``now`` if unpaced)."""
        return now

    def window_limit(self, base: float) -> float:
        """Maximum packets in flight (``base`` if the algorithm is rate based)."""
        return base

    # --- feedback hooks -------------------------------------------------------
    def on_ack(
        self, rtt: float, now: float, ecn_echo: bool = False, newly_acked: int = 1
    ) -> None:
        """Called for every acknowledgement carrying an RTT sample.

        ``newly_acked`` is how many packets this acknowledgement newly
        covers.  With receiver-side ACK coalescing one cumulative ACK stands
        in for a whole window of per-packet ACKs; window-based schemes credit
        the full count so their growth dynamics do not depend on the
        coalescing degree.  Rate-based schemes (one RTT sample per ACK
        *frame*) may ignore it.
        """

    def on_cnp(self, now: float) -> None:
        """Called when a DCQCN congestion notification packet arrives."""

    def on_loss(self, now: float) -> None:
        """Called when the transport detects a lost packet (NACK/dup-SACK)."""

    def on_timeout(self, now: float) -> None:
        """Called when the transport's retransmission timer fires."""

    # --- introspection ---------------------------------------------------------
    def current_rate_bps(self) -> float:
        """Current sending rate (``inf`` for pure window-based algorithms)."""
        return float("inf")


class NoCongestionControl(CongestionControl):
    """Explicit no-op used when the experiment disables congestion control."""


class RateBasedControl(CongestionControl):
    """Shared pacing machinery for rate-based algorithms.

    Subclasses adjust :attr:`rate_bps`; this class turns the rate into
    inter-packet gaps.  The rate starts at line rate, as the paper starts all
    flows at line rate for fair comparison with PFC-based proposals.
    """

    def __init__(self, line_rate_bps: float, min_rate_bps: float | None = None) -> None:
        if line_rate_bps <= 0:
            raise ValueError("line rate must be positive")
        self.line_rate_bps = line_rate_bps
        self.min_rate_bps = min_rate_bps if min_rate_bps is not None else line_rate_bps / 1000.0
        self.rate_bps = line_rate_bps
        self._next_tx_time = 0.0
        #: Sending credit (seconds) the pacer may accumulate while its
        #: wake-up is deferred onto a quantized grid: a sender woken late may
        #: burst through at most this much backlog at the current rate, which
        #: preserves the average rate under batched wake-ups.  0 keeps strict
        #: per-packet pacing (no credit survives an idle gap).
        self.burst_credit_s = 0.0

    def clamp_rate(self) -> None:
        """Keep the rate within [min_rate, line_rate]."""
        self.rate_bps = max(self.min_rate_bps, min(self.line_rate_bps, self.rate_bps))

    def on_packet_sent(self, size_bits: int, now: float) -> None:
        gap = size_bits / self.rate_bps
        self._next_tx_time = max(self._next_tx_time, now - self.burst_credit_s) + gap

    def next_send_time(self, now: float) -> float:
        return max(now, self._next_tx_time)

    def current_rate_bps(self) -> float:
        return self.rate_bps
