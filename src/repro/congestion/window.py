"""Window-based congestion control: TCP AIMD and DCTCP.

§4.4.4 of the paper layers "conventional window-based congestion control
schemes such as TCP's AIMD and DCTCP" on top of IRN, and §4.6 augments IRN
with TCP's AIMD logic for the iWARP comparison.  These classes bound the
number of packets in flight (on top of IRN's static BDP-FC cap) rather than
pacing the sending rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.congestion.base import CongestionControl


@dataclass
class AimdParams:
    """Additive-increase / multiplicative-decrease parameters.

    ``initial_window`` of one packet with ``slow_start=True`` reproduces TCP
    behaviour; IRN-style deployments start at the BDP (the flow starts at
    line rate) and only use the decrease/recovery dynamics.
    """

    initial_window: float = 1.0
    slow_start: bool = True
    ssthresh: float = float("inf")
    min_window: float = 1.0
    max_window: float = float("inf")
    multiplicative_decrease: float = 0.5


class AimdWindow(CongestionControl):
    """TCP-style AIMD congestion window (in packets)."""

    def __init__(self, params: AimdParams | None = None) -> None:
        self.params = params or AimdParams()
        self.cwnd = self.params.initial_window
        self.ssthresh = self.params.ssthresh

        # Statistics
        self.loss_events = 0
        self.timeout_events = 0

    def window_limit(self, base: float) -> float:
        return min(base, self.cwnd)

    def on_ack(
        self, rtt: float, now: float, ecn_echo: bool = False, newly_acked: int = 1
    ) -> None:
        """Grow the window: exponentially in slow start, else 1/cwnd per ACK.

        A coalesced cumulative ACK covering ``newly_acked`` packets grows the
        window exactly as the equivalent per-packet ACK train would.
        """
        for _ in range(max(1, newly_acked)):
            if self.params.slow_start and self.cwnd < self.ssthresh:
                self.cwnd += 1.0
            else:
                self.cwnd += 1.0 / max(self.cwnd, 1.0)
        self.cwnd = min(self.cwnd, self.params.max_window)

    def on_loss(self, now: float) -> None:
        """Multiplicative decrease on a loss signal (fast-retransmit style)."""
        self.loss_events += 1
        self.ssthresh = max(self.params.min_window, self.cwnd * self.params.multiplicative_decrease)
        self.cwnd = max(self.params.min_window, self.cwnd * self.params.multiplicative_decrease)

    def on_timeout(self, now: float) -> None:
        """Collapse to one packet and re-enter slow start on a timeout."""
        self.timeout_events += 1
        self.ssthresh = max(self.params.min_window, self.cwnd * self.params.multiplicative_decrease)
        self.cwnd = self.params.min_window


@dataclass
class DctcpParams:
    """DCTCP parameters (Alizadeh et al., SIGCOMM 2010)."""

    initial_window: float = 10.0
    ewma_gain: float = 1.0 / 16.0
    min_window: float = 1.0
    max_window: float = float("inf")


class DctcpWindow(CongestionControl):
    """DCTCP: scale the window cut by the fraction of ECN-marked ACKs."""

    def __init__(self, params: DctcpParams | None = None) -> None:
        self.params = params or DctcpParams()
        self.cwnd = self.params.initial_window
        #: Smoothed fraction of marked packets.
        self.alpha = 0.0
        self._acked_in_window = 0
        self._marked_in_window = 0
        self._window_acks_target = int(self.cwnd)

        # Statistics
        self.loss_events = 0
        self.window_cuts = 0

    def window_limit(self, base: float) -> float:
        return min(base, self.cwnd)

    def on_ack(
        self, rtt: float, now: float, ecn_echo: bool = False, newly_acked: int = 1
    ) -> None:
        """Accumulate mark statistics; every cwnd ACKs update alpha and cwnd.

        A coalesced ACK is unrolled into its per-packet equivalents; the
        receiver ORs ECN marks over the coalescing window, so the mark
        fraction is a (conservative) upper bound under coalescing.
        """
        for _ in range(max(1, newly_acked)):
            self._acked_in_window += 1
            if ecn_echo:
                self._marked_in_window += 1
            # Additive increase each RTT (approximated per-ACK).
            self.cwnd += 1.0 / max(self.cwnd, 1.0)
            self.cwnd = min(self.cwnd, self.params.max_window)

            if self._acked_in_window >= self._window_acks_target:
                fraction = self._marked_in_window / max(1, self._acked_in_window)
                gain = self.params.ewma_gain
                self.alpha = (1.0 - gain) * self.alpha + gain * fraction
                if self._marked_in_window > 0:
                    self.cwnd = max(self.params.min_window, self.cwnd * (1.0 - self.alpha / 2.0))
                    self.window_cuts += 1
                self._acked_in_window = 0
                self._marked_in_window = 0
                self._window_acks_target = max(1, int(self.cwnd))

    def on_loss(self, now: float) -> None:
        self.loss_events += 1
        self.cwnd = max(self.params.min_window, self.cwnd * 0.5)

    def on_timeout(self, now: float) -> None:
        self.loss_events += 1
        self.cwnd = self.params.min_window
