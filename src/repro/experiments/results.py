"""Lightweight, picklable experiment results.

:class:`~repro.experiments.runner.ExperimentResult` is deliberately
heavyweight: it keeps the :class:`~repro.metrics.collector.MetricsCollector`
(with its back-reference into the live network) and every :class:`Flow`
object, so post-hoc analyses such as tail CDFs stay possible.  That payload
cannot cross a process boundary cheaply, and a sweep over hundreds of cells
must not hold hundreds of simulated networks alive.

:class:`ResultRow` is the flat record that the sweep subsystem ships between
worker processes and stores in the on-disk cache: plain strings, numbers,
booleans and JSON-safe digest payloads only, so it pickles in microseconds
and round-trips through JSON.  It mirrors the parts of ``ExperimentResult``
the benchmarks assert against (``summary``, ``drop_rate``, fabric counters,
``completion_fraction()``), so code written against one works against the
other, and carries serialized
:class:`~repro.metrics.sketch.QuantileDigest` sketches of the FCT, slowdown
and single-packet-latency distributions so tail metrics survive process
boundaries, disk caching and seed aggregation.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from functools import cached_property
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.metrics.sketch import QuantileDigest
from repro.metrics.stats import MetricSummary

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import ExperimentResult


@dataclass(frozen=True)
class ResultRow:
    """Flat, immutable outcome of one simulation run.

    Every field is a JSON-representable scalar; see
    :meth:`from_result` / :meth:`to_dict` / :meth:`from_dict`.
    """

    # --- identity ---------------------------------------------------------
    label: str
    name: str
    fingerprint: str
    transport: str
    congestion_control: str
    topology: str
    pfc_enabled: bool
    seed: int

    # --- headline metrics (the paper's three, over completed flows) -------
    avg_slowdown: float
    avg_fct_s: float
    tail_fct_s: float
    num_flows: int

    # --- completion accounting --------------------------------------------
    flows_total: int
    flows_completed: int

    # --- simulation / fabric counters --------------------------------------
    sim_time_s: float
    events_processed: int
    packets_dropped: int
    pause_frames: int
    packets_forwarded: int
    data_packets_sent: int
    retransmissions: int
    timeouts: int

    # --- PFC deadlock detection (§2's circular buffer dependency) -----------
    #: Wait-for-graph cycles observed by the online detector (0 on rows
    #: predating the detector, and always 0 when PFC is disabled).
    deadlock_events: int = 0
    #: Simulation time of the first deadlock event (``None`` if none fired).
    time_to_deadlock_s: Optional[float] = None

    # --- fault injection / recovery (``ExperimentConfig.fault_plan``) -------
    #: True when the run carried a non-empty fault plan (0/None defaults on
    #: all of these keep rows cached before fault injection deserializable).
    faults_enabled: bool = False
    #: Packets dropped by injected faults (flap + corruption), counted
    #: separately from switch buffer drops.
    fault_injected_drops: int = 0
    #: Retransmissions triggered while a fault window was open.
    retransmissions_during_fault: int = 0
    #: Last-fault-end to first full-goodput instant; ``None`` if never.
    recovery_time_s: Optional[float] = None

    # --- optional incast / cross-traffic metrics (§4.4.3) ------------------
    incast_rct_s: Optional[float] = None
    background_avg_slowdown: Optional[float] = None
    background_avg_fct_s: Optional[float] = None
    background_tail_fct_s: Optional[float] = None
    background_num_flows: Optional[int] = None

    # --- mergeable latency digests -----------------------------------------
    #: Serialized :class:`~repro.metrics.sketch.QuantileDigest` payloads
    #: (``QuantileDigest.to_dict()``): plain JSON-safe dicts, so the row still
    #: pickles cheaply and round-trips through the sweep cache.  ``None`` on
    #: rows predating the digest pipeline.  Excluded from ``__hash__`` (dicts
    #: are unhashable) so rows stay usable in sets/dict keys; they still
    #: participate in ``==``.
    fct_digest: Optional[Dict[str, Any]] = field(default=None, hash=False)
    slowdown_digest: Optional[Dict[str, Any]] = field(default=None, hash=False)
    #: Digest over single-packet message FCTs only (Figure 8's metric).
    single_packet_digest: Optional[Dict[str, Any]] = field(default=None, hash=False)
    #: §4.4 fabric observability (``ExperimentConfig.fabric_digests``):
    #: per-switch input-port occupancy sampled at every enqueue, and the
    #: duration of every PFC pause episode across switch and host ports.
    #: ``None`` when the run did not collect them.
    queue_depth_digest: Optional[Dict[str, Any]] = field(default=None, hash=False)
    pfc_pause_digest: Optional[Dict[str, Any]] = field(default=None, hash=False)
    #: Fault-run recovery observables: per-time-bin goodput (bits/s) over
    #: the whole run, and per-flow total stall seconds.  ``None`` on
    #: fault-free rows.
    goodput_digest: Optional[Dict[str, Any]] = field(default=None, hash=False)
    stall_digest: Optional[Dict[str, Any]] = field(default=None, hash=False)
    #: Per-flow c-latency ratios -- FCT over the path's speed-of-light
    #: propagation bound (``ExperimentConfig.c_latency_ratios``).  ``None``
    #: when the run did not collect them.
    c_latency_digest: Optional[Dict[str, Any]] = field(default=None, hash=False)

    # ------------------------------------------------------------------
    # ExperimentResult-compatible views
    # ------------------------------------------------------------------
    @property
    def summary(self) -> MetricSummary:
        """The headline metrics in :class:`MetricSummary` form."""
        return MetricSummary(
            avg_slowdown=self.avg_slowdown,
            avg_fct=self.avg_fct_s,
            tail_fct=self.tail_fct_s,
            num_flows=self.num_flows,
        )

    @property
    def background_summary(self) -> Optional[MetricSummary]:
        """Metrics restricted to background traffic, when recorded."""
        if self.background_avg_slowdown is None:
            return None
        return MetricSummary(
            avg_slowdown=self.background_avg_slowdown,
            avg_fct=self.background_avg_fct_s or 0.0,
            tail_fct=self.background_tail_fct_s or 0.0,
            num_flows=self.background_num_flows or 0,
        )

    @property
    def drop_rate(self) -> float:
        """Dropped packets as a fraction of data packets sent."""
        if self.data_packets_sent == 0:
            return 0.0
        return self.packets_dropped / self.data_packets_sent

    def completion_fraction(self) -> float:
        """Fraction of injected flows that completed."""
        if self.flows_total == 0:
            return 0.0
        return self.flows_completed / self.flows_total

    # ------------------------------------------------------------------
    # Digest views
    # ------------------------------------------------------------------
    @cached_property
    def fct_distribution(self) -> Optional[QuantileDigest]:
        """The FCT digest, deserialized (``None`` on pre-digest rows)."""
        return QuantileDigest.from_dict(self.fct_digest) if self.fct_digest else None

    @cached_property
    def slowdown_distribution(self) -> Optional[QuantileDigest]:
        """The slowdown digest, deserialized."""
        return QuantileDigest.from_dict(self.slowdown_digest) if self.slowdown_digest else None

    @cached_property
    def single_packet_distribution(self) -> Optional[QuantileDigest]:
        """The single-packet message latency digest, deserialized."""
        return (
            QuantileDigest.from_dict(self.single_packet_digest)
            if self.single_packet_digest
            else None
        )

    @cached_property
    def queue_depth_distribution(self) -> Optional[QuantileDigest]:
        """Pooled per-switch queue-depth digest (``None`` unless collected)."""
        return (
            QuantileDigest.from_dict(self.queue_depth_digest)
            if self.queue_depth_digest
            else None
        )

    @cached_property
    def pfc_pause_distribution(self) -> Optional[QuantileDigest]:
        """PFC pause-episode duration digest (``None`` unless collected)."""
        return (
            QuantileDigest.from_dict(self.pfc_pause_digest)
            if self.pfc_pause_digest
            else None
        )

    @cached_property
    def goodput_distribution(self) -> Optional[QuantileDigest]:
        """Per-bin goodput timeline digest (``None`` on fault-free rows)."""
        return (
            QuantileDigest.from_dict(self.goodput_digest)
            if self.goodput_digest
            else None
        )

    @cached_property
    def stall_distribution(self) -> Optional[QuantileDigest]:
        """Per-flow stall-time digest (``None`` on fault-free rows)."""
        return (
            QuantileDigest.from_dict(self.stall_digest)
            if self.stall_digest
            else None
        )

    @cached_property
    def c_latency_distribution(self) -> Optional[QuantileDigest]:
        """Per-flow c-latency-ratio digest (``None`` unless collected)."""
        return (
            QuantileDigest.from_dict(self.c_latency_digest)
            if self.c_latency_digest
            else None
        )

    @property
    def single_packet_count(self) -> int:
        """Completed single-packet messages (0 when the digest is absent)."""
        digest = self.single_packet_distribution
        return digest.count if digest is not None else 0

    def fct_percentile(self, fraction: float) -> float:
        """Any FCT percentile, from the digest (exact for small samples)."""
        digest = self.fct_distribution
        if digest is None or digest.count == 0:
            raise ValueError(f"row {self.label!r} carries no FCT digest")
        return digest.percentile(fraction)

    def single_packet_percentile(self, fraction: float) -> float:
        """Single-packet latency percentile (Figure 8's y axis)."""
        digest = self.single_packet_distribution
        if digest is None or digest.count == 0:
            raise ValueError(f"row {self.label!r} carries no single-packet digest")
        return digest.percentile(fraction)

    # ------------------------------------------------------------------
    # Construction and serialization
    # ------------------------------------------------------------------
    @classmethod
    def from_result(
        cls,
        result: "ExperimentResult",
        label: Optional[str] = None,
        fingerprint: Optional[str] = None,
    ) -> "ResultRow":
        """Flatten a heavyweight :class:`ExperimentResult` into a row."""
        config = result.config
        background = result.background_summary
        stats = result.collector.stream()
        fabric_depth = result.collector.fabric_queue_depth_digest()
        fabric_pause = result.collector.fabric_pfc_pause_digest()
        goodput = result.collector.goodput_timeline_digest()
        stall = result.collector.flow_stall_digest()
        c_latency = result.collector.c_latency_digest()
        return cls(
            label=label if label is not None else config.name,
            name=config.name,
            fingerprint=fingerprint if fingerprint is not None else config.fingerprint(),
            transport=config.transport_name,
            congestion_control=config.congestion_control_name,
            topology=config.topology_name,
            pfc_enabled=config.pfc_enabled,
            seed=config.seed,
            avg_slowdown=result.summary.avg_slowdown,
            avg_fct_s=result.summary.avg_fct,
            tail_fct_s=result.summary.tail_fct,
            num_flows=result.summary.num_flows,
            flows_total=len(result.flows),
            flows_completed=sum(1 for flow in result.flows if flow.completed),
            sim_time_s=result.sim_time_s,
            events_processed=result.events_processed,
            packets_dropped=result.packets_dropped,
            pause_frames=result.pause_frames,
            packets_forwarded=result.packets_forwarded,
            data_packets_sent=result.data_packets_sent,
            retransmissions=result.retransmissions,
            timeouts=result.timeouts,
            deadlock_events=result.deadlock_events,
            time_to_deadlock_s=result.time_to_deadlock_s,
            faults_enabled=result.faults_enabled,
            fault_injected_drops=result.fault_injected_drops,
            retransmissions_during_fault=result.retransmissions_during_fault,
            recovery_time_s=result.recovery_time_s,
            incast_rct_s=result.incast_rct_s,
            background_avg_slowdown=background.avg_slowdown if background else None,
            background_avg_fct_s=background.avg_fct if background else None,
            background_tail_fct_s=background.tail_fct if background else None,
            background_num_flows=background.num_flows if background else None,
            fct_digest=stats.fct_digest.to_dict() if stats.fct_digest else None,
            slowdown_digest=stats.slowdown_digest.to_dict() if stats.slowdown_digest else None,
            single_packet_digest=(
                stats.single_packet_digest.to_dict() if stats.single_packet_digest else None
            ),
            queue_depth_digest=(
                fabric_depth.to_dict() if fabric_depth is not None else None
            ),
            pfc_pause_digest=(
                fabric_pause.to_dict() if fabric_pause is not None else None
            ),
            goodput_digest=goodput.to_dict() if goodput is not None else None,
            stall_digest=stall.to_dict() if stall is not None else None,
            c_latency_digest=c_latency.to_dict() if c_latency is not None else None,
        )

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ResultRow":
        """Rebuild a row from :meth:`to_dict` output (extra keys rejected)."""
        return cls(**data)
