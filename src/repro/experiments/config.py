"""Experiment configuration.

An :class:`ExperimentConfig` fully describes one simulation run: topology,
switch/PFC settings, transport, congestion control, workload and the IRN
parameters under study.  Presets for the paper's scenarios live in
:mod:`repro.experiments.scenarios` (declarative :class:`ScenarioSpec` data in
the ``SCENARIOS`` registry).

The component fields (``topology``, ``transport``, ``congestion_control``,
``workload``) name entries in the corresponding registries
(:data:`repro.topology.TOPOLOGIES`, :data:`repro.core.factory.TRANSPORTS`,
:data:`repro.congestion.factory.CONGESTION_SCHEMES`,
:data:`repro.workload.WORKLOADS`).  They accept either a plain string -- the
open, pluggable surface -- or one of the legacy kind enums below, which are
kept as thin aliases: a string matching an enum value is normalized to the
enum member, and both serialize identically, so config fingerprints (and
therefore warm sweep caches) are unaffected by which spelling a caller uses.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace
from enum import Enum
from typing import Any, Dict, Optional, Union

from repro.congestion.factory import CONGESTION_SCHEMES
from repro.core.factory import TRANSPORTS, TransportKind
from repro.faults import FaultPlan
from repro.sim.pfc import PfcConfig, headroom_for_link
from repro.sim.switch import EcnConfig, SwitchConfig
from repro.topology import TOPOLOGIES
from repro.workload import WORKLOADS
from repro.topology.fattree import FatTreeParams
from repro.workload.distributions import (
    FixedSizes,
    FlowSizeDistribution,
    HeavyTailedSizes,
    UniformSizes,
)
from repro.workload.incast import IncastParams


class CongestionControl(Enum):
    """Congestion-control schemes evaluated in the paper.

    .. deprecated::
        Thin alias over the congestion-control registry; members resolve
        through it via their ``.value``.  Use plain string names for schemes
        registered outside :mod:`repro.congestion`.
    """

    NONE = "none"
    TIMELY = "timely"
    DCQCN = "dcqcn"
    AIMD = "aimd"
    DCTCP = "dctcp"


class TopologyKind(Enum):
    """Topology families shipped with the harness.

    .. deprecated::
        Thin alias over :data:`repro.topology.TOPOLOGIES`; members resolve
        through the registry via their ``.value``.
    """

    FAT_TREE = "fat_tree"
    STAR = "star"
    DUMBBELL = "dumbbell"
    PARKING_LOT = "parking_lot"


class WorkloadKind(Enum):
    """Workload families from the paper's evaluation.

    .. deprecated::
        Thin alias over :data:`repro.workload.WORKLOADS`; members resolve
        through the registry via their ``.value``.
    """

    HEAVY_TAILED = "heavy_tailed"
    UNIFORM = "uniform"
    FIXED = "fixed"
    NONE = "none"


def _coerce_kind(value: Union[str, Enum], enum_cls, registry) -> Union[str, Enum]:
    """Normalize a component name so every spelling of one component
    serializes (and therefore fingerprints and aggregates) identically:
    registry aliases resolve to their canonical name (``"off"`` ->
    ``"none"``), case folds like registry keys, and strings matching an
    enum value become the enum member (so identity checks like
    ``config.transport is TransportKind.IRN`` keep working).  Unknown
    strings -- components registered later -- pass through lowercased."""
    if isinstance(value, (str, Enum)):
        value = registry.canonical_name(value)
        try:
            return enum_cls(value)
        except ValueError:
            return value
    return value


def _kind_name(value: Union[str, Enum]) -> str:
    """The registry name of a component field (enum member or string)."""
    return value.value if isinstance(value, Enum) else value


#: Config fields that never influence the physics of a run *or* the cached
#: row contents, and are therefore excluded from the canonical serialization
#: (and the fingerprint): ``name`` is cosmetic and ``keep_flow_records``
#: only controls whether per-flow records are materialized in memory (the
#: streaming digests that populate
#: :class:`~repro.experiments.results.ResultRow` are kept either way).
_NON_PHYSICAL_FIELDS = ("name", "keep_flow_records")


@dataclass
class ExperimentConfig:
    """Everything needed to run one simulation."""

    name: str = "default"

    # --- topology ---------------------------------------------------------
    topology: Union[TopologyKind, str] = TopologyKind.FAT_TREE
    fat_tree_k: int = 4
    num_hosts: int = 8            # used by star/dumbbell topologies
    #: Switches on the ``ring`` topology's cycle (the circular-dependency
    #: fabric behind the ``pfc_deadlock`` scenario).  Like
    #: ``port_batch_bytes``, the default is dropped from the canonical
    #: serialization so its introduction left existing cache entries valid.
    ring_switches: int = 3
    link_bandwidth_bps: float = 10e9
    link_delay_s: float = 1e-6
    #: Long-haul propagation delay for the WAN topologies (``wan_dumbbell``'s
    #: inter-switch bottleneck, ``inter_dc_fattree``'s core-to-core links).
    #: The default is 1 ms -- 1000x the intra-DC ``link_delay_s`` default,
    #: roughly 200 km of fiber.  Homogeneous topologies never read it, and
    #: the default is dropped from the canonical serialization (like
    #: ``ring_switches``) so its introduction left existing caches valid.
    wan_delay_s: float = 1e-3

    # --- switch / PFC -------------------------------------------------------
    pfc_enabled: bool = True
    #: Per-input-port buffer.  ``None`` means twice the network BDP (§4.1).
    buffer_bytes_per_port: Optional[int] = None
    #: PFC headroom.  ``None`` derives it from the upstream link's BDP.
    pfc_headroom_bytes: Optional[int] = None
    #: Bytes-based cap on one output-port departure batch.  Ports normally
    #: commit up to :data:`~repro.sim.link.DEFAULT_PORT_BATCH` *packets* per
    #: pull; with jumbo MTUs that bursts several MTUs past a PFC pause, so
    #: this caps the committed bytes instead (a batch stops once it reaches
    #: the cap; it always commits at least one packet).  ``None`` keeps the
    #: packet-count-only behavior -- and is excluded from the fingerprint,
    #: so setting it never invalidates existing caches retroactively, while
    #: any explicit value *is* fingerprinted (it changes departure timing
    #: and the derived PFC headroom).
    port_batch_bytes: Optional[int] = None

    # --- transport ------------------------------------------------------------
    transport: Union[TransportKind, str] = TransportKind.IRN
    mtu_bytes: int = 1000
    header_bytes: int = 48
    #: IRN timeouts.  ``None`` derives them with the paper's rule (§4.1):
    #: RTO_high is the longest-path propagation delay plus the time to drain a
    #: completely full switch buffer (320 us for the paper's 40 Gbps fabric);
    #: RTO_low is the desired upper bound on short-message tail latency
    #: (100 us in the paper, about a third of RTO_high).
    rto_low_s: Optional[float] = None
    rto_high_s: Optional[float] = None
    rto_low_threshold_packets: int = 3
    #: Explicit BDP-FC cap; ``None`` computes it from the topology.
    bdp_cap_packets: Optional[int] = None
    #: §6.3 worst-case implementation overheads (extra headers + PCIe fetch
    #: delay for retransmissions).
    worst_case_overheads: bool = False
    #: Receiver-side cumulative-ACK coalescing window (packets): real
    #: RoCE/IRN NICs aggregate in-order acknowledgements, so the default
    #: models the hardware and deletes most per-packet ACK events.  1
    #: restores the per-packet ACK stream exactly.  RTT-based schemes cap
    #: the effective window through their registry metadata
    #: (``CongestionScheme.max_ack_coalesce``).  Fingerprint-relevant at
    #: every value except 1 -- including this default, which changes ACK
    #: timing vs the per-packet stream; only 1 (physics identical to
    #: pre-knob runs) is dropped from the canonical dict (see
    #: :meth:`to_canonical_dict`).
    ack_coalesce_n: int = 4
    #: Flush timeout (microseconds) for a partially filled coalescing
    #: window; clamped to half of the effective RTO_low so the total
    #: loss-detection latency stays near RTO_low (the sender budgets the
    #: flush delay into its retransmission timer).
    ack_coalesce_us: float = 25.0
    #: Pacing wake-up quantization grid (microseconds).  0 (default)
    #: disables quantization: every paced QP schedules its own per-packet
    #: wake-up.  Positive values round wake-ups up onto the grid and share
    #: one timer per host; the pacer accumulates burst credit over the
    #: quantum, preserving the average rate.
    pacing_quantum_us: float = 0.0

    # --- congestion control ------------------------------------------------------
    congestion_control: Union[CongestionControl, str] = CongestionControl.NONE

    # --- workload ------------------------------------------------------------------
    workload: Union[WorkloadKind, str] = WorkloadKind.HEAVY_TAILED
    target_load: float = 0.7
    num_flows: int = 200
    #: Scale factor applied to the medium/large bands of the heavy-tailed mix
    #: (benchmarks shrink flows so pure-Python simulation stays fast).
    flow_size_scale: float = 0.1
    uniform_low_bytes: float = 50_000
    uniform_high_bytes: float = 500_000
    fixed_size_bytes: int = 100_000
    incast: Optional[IncastParams] = None

    # --- simulation control ----------------------------------------------------------
    seed: int = 1
    #: Hard wall on simulated time (seconds); ``None`` runs to completion.
    max_sim_time_s: Optional[float] = 5.0
    #: Safety valve on the number of processed events.
    max_events: Optional[int] = 50_000_000
    #: Materialize per-flow :class:`~repro.metrics.collector.FlowMetrics`
    #: records during the run.  ``False`` keeps only the O(1) streaming
    #: accumulators and digests -- the memory-safe setting for million-flow
    #: scenarios.  Execution knob only: excluded from the fingerprint.
    keep_flow_records: bool = True
    #: Collect §4.4 congestion-spreading observability: per-switch
    #: queue-depth and PFC-pause-duration :class:`~repro.metrics.sketch.
    #: QuantileDigest`s, exported on :class:`~repro.experiments.results.
    #: ResultRow` and pooled by ``aggregate_rows``.  Pure observation (no
    #: event, ordering or RNG impact: results are byte-identical either
    #: way), but unlike ``keep_flow_records`` it changes what the cached
    #: *row* carries -- so it joins the fingerprint once enabled (the
    #: ``False`` default is excluded, keeping old caches valid), and a
    #: digest-collecting sweep never gets served digest-less rows.
    fabric_digests: bool = False
    #: Collect per-flow c-latency ratios (FCT divided by the speed-of-light
    #: lower bound: the path's one-way propagation delay from the topology's
    #: hop delays), the "Towards a Speed of Light Internet" metric for
    #: propagation-dominated fabrics.  Streaming digest only (no event,
    #: ordering or RNG impact), but like ``fabric_digests`` it changes what
    #: the cached row carries, so it joins the fingerprint once enabled.
    c_latency_ratios: bool = False
    #: Deterministic fault schedule (:class:`repro.faults.FaultPlan`).
    #: ``None`` -- and an *empty* plan, which normalizes to ``None`` -- run
    #: fault-free and are excluded from the canonical serialization, so the
    #: field's introduction keeps every existing cache entry valid.  Any
    #: non-empty plan changes both the physics and what the cached row
    #: carries (recovery observables), so it joins the fingerprint.
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        self.topology = _coerce_kind(self.topology, TopologyKind, TOPOLOGIES)
        self.transport = _coerce_kind(self.transport, TransportKind, TRANSPORTS)
        self.congestion_control = _coerce_kind(
            self.congestion_control, CongestionControl, CONGESTION_SCHEMES
        )
        self.workload = _coerce_kind(self.workload, WorkloadKind, WORKLOADS)
        if isinstance(self.incast, dict):
            self.incast = IncastParams(**self.incast)
        if isinstance(self.fault_plan, dict):
            self.fault_plan = FaultPlan(**self.fault_plan)
        if self.fault_plan is not None and self.fault_plan.is_empty:
            # An empty plan is physically identical to no plan; normalizing
            # here keeps it fingerprint-neutral (old cache rows still hit).
            self.fault_plan = None
        if self.port_batch_bytes is not None and self.port_batch_bytes < 1:
            # A zero cap would silently stop every port from ever pulling a
            # packet; fail here, at the earliest surface.
            raise ValueError("port_batch_bytes must be >= 1 (or None to disable)")
        if self.ack_coalesce_n < 1:
            raise ValueError("ack_coalesce_n must be >= 1 (1 = per-packet ACKs)")
        if self.ack_coalesce_us <= 0:
            raise ValueError("ack_coalesce_us must be positive")
        if self.pacing_quantum_us < 0:
            raise ValueError("pacing_quantum_us must be >= 0 (0 disables quantization)")

    # ------------------------------------------------------------------
    # Component registry names
    # ------------------------------------------------------------------
    @property
    def topology_name(self) -> str:
        return _kind_name(self.topology)

    @property
    def transport_name(self) -> str:
        return _kind_name(self.transport)

    @property
    def congestion_control_name(self) -> str:
        return _kind_name(self.congestion_control)

    @property
    def workload_name(self) -> str:
        return _kind_name(self.workload)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def fat_tree_params(self) -> FatTreeParams:
        return FatTreeParams(
            k=self.fat_tree_k,
            link_bandwidth_bps=self.link_bandwidth_bps,
            link_delay_s=self.link_delay_s,
        )

    def max_hop_count(self) -> int:
        """Longest-path hop count, from the registered topology's metadata."""
        return TOPOLOGIES.get(self.topology).max_hop_count(self)

    def path_delay_s(self) -> float:
        """One-way propagation delay of the longest host-to-host path.

        Homogeneous topologies derive it as ``max_hop_count * link_delay_s``;
        WAN topologies override it through their registry metadata
        (:attr:`~repro.topology.registry.TopologyBuilder.path_delay_s`) so
        RTO and BDP derivations stay sane under 1000x delay heterogeneity.
        """
        delay = TOPOLOGIES.get(self.topology).path_delay_s
        if delay is not None:
            return delay(self)
        return self.max_hop_count() * self.link_delay_s

    def base_rtt_s(self) -> float:
        """Unloaded round-trip propagation time of the longest path."""
        return 2.0 * self.path_delay_s()

    def bdp_bytes(self) -> int:
        """Bandwidth-delay product of the longest path."""
        return int(self.link_bandwidth_bps * self.base_rtt_s() / 8.0)

    def effective_bdp_cap_packets(self) -> int:
        """The BDP-FC cap in packets (explicit override or derived)."""
        if self.bdp_cap_packets is not None:
            return self.bdp_cap_packets
        return max(2, self.bdp_bytes() // self.mtu_bytes)

    def effective_buffer_bytes(self) -> int:
        """Per-port buffer (defaults to twice the BDP, as in §4.1)."""
        if self.buffer_bytes_per_port is not None:
            return self.buffer_bytes_per_port
        return max(2 * self.mtu_bytes, 2 * self.bdp_bytes())

    def effective_headroom_bytes(self) -> int:
        """PFC headroom (defaults to the upstream link's in-flight bytes,
        budgeting the configured departure-batch bound)."""
        if self.pfc_headroom_bytes is not None:
            return self.pfc_headroom_bytes
        return headroom_for_link(
            self.link_bandwidth_bps,
            self.link_delay_s,
            self.mtu_bytes,
            port_batch_bytes=self.port_batch_bytes,
        )

    def switch_radix(self) -> int:
        """Number of ports per switch (bounds how many inputs feed one output)."""
        return TOPOLOGIES.get(self.topology).switch_radix(self)

    def effective_rto_high_s(self) -> float:
        """RTO_high per the paper's rule: longest-path propagation plus the
        maximum queueing delay a packet can see at one congested link (all of
        the other input-port buffers of that switch completely full)."""
        if self.rto_high_s is not None:
            return self.rto_high_s
        one_way_prop = self.path_delay_s()
        buffer_drain = self.effective_buffer_bytes() * 8.0 / self.link_bandwidth_bps
        return one_way_prop + max(1, self.switch_radix() - 1) * buffer_drain

    def effective_rto_low_s(self) -> float:
        """RTO_low: the desired bound on short-message tail latency (the
        paper uses roughly a third of RTO_high and several base RTTs)."""
        if self.rto_low_s is not None:
            return self.rto_low_s
        return max(2.0 * self.base_rtt_s(), self.effective_rto_high_s() / 3.0)

    def effective_header_bytes(self) -> int:
        """Per-packet header, inflated by 16B under worst-case overheads."""
        if self.worst_case_overheads:
            return self.header_bytes + 16
        return self.header_bytes

    def congestion_scheme(self):
        """The registered :class:`~repro.congestion.factory.CongestionScheme`."""
        return CONGESTION_SCHEMES.get(self.congestion_control)

    def effective_ack_coalesce_n(self) -> int:
        """The ACK coalescing window, after the congestion scheme's cap.

        RTT-based schemes need per-packet RTT samples (Timely registers
        ``max_ack_coalesce=1``), so the scheme metadata bounds the knob
        rather than each call site special-casing scheme names.
        """
        n = self.ack_coalesce_n
        cap = self.congestion_scheme().max_ack_coalesce
        if cap is not None:
            n = min(n, cap)
        return max(1, n)

    def effective_ack_coalesce_s(self) -> float:
        """Flush timeout for a partial ACK window, clamped below half of
        RTO_low.  The sender budgets this delay into its retransmission
        timer (see ``BaseSender._arm_rto``), so the clamp only has to keep
        the *total* loss-detection latency near RTO_low, not hide the flush
        entirely beneath it."""
        return min(self.ack_coalesce_us * 1e-6, 0.5 * self.effective_rto_low_s())

    def effective_pacing_quantum_s(self) -> float:
        """Pacing wake-up quantization grid in seconds (0 = per-packet)."""
        return self.pacing_quantum_us * 1e-6

    def switch_config(self) -> SwitchConfig:
        """Build the per-switch configuration implied by this experiment.

        ECN marking follows the registered scheme's declared needs (DCQCN and
        DCTCP among the built-ins), not a hard-coded enum check, so schemes
        registered by third parties get marked traffic automatically.
        """
        buffer_bytes = self.effective_buffer_bytes()
        scheme = self.congestion_scheme()
        bdp = max(1, self.bdp_bytes())
        ecn = EcnConfig(
            enabled=scheme.needs_ecn,
            kmin_bytes=max(self.mtu_bytes, bdp // 4),
            kmax_bytes=max(2 * self.mtu_bytes, bdp),
            pmax=0.2,
            step_marking=scheme.step_marking,
        )
        pfc = PfcConfig(
            enabled=self.pfc_enabled,
            headroom_bytes=min(self.effective_headroom_bytes(), buffer_bytes // 2),
        )
        return SwitchConfig(
            buffer_bytes_per_port=buffer_bytes,
            pfc=pfc,
            ecn=ecn,
        )

    def size_distribution(self) -> Optional[FlowSizeDistribution]:
        """The flow-size distribution for the built-in background workloads.

        Custom registered workloads build their own flow lists; for them (and
        for ``"none"``) this returns ``None``.
        """
        if self.workload is WorkloadKind.HEAVY_TAILED:
            return HeavyTailedSizes(scale=self.flow_size_scale)
        if self.workload is WorkloadKind.UNIFORM:
            return UniformSizes(self.uniform_low_bytes, self.uniform_high_bytes)
        if self.workload is WorkloadKind.FIXED:
            return FixedSizes(self.fixed_size_bytes)
        return None

    # ------------------------------------------------------------------
    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """A copy of the config with the given fields replaced."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # Wire format (work-queue task files)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """*Every* field as JSON-safe values -- the wire format a work-queue
        task file carries to a worker on another machine.

        Unlike :meth:`to_canonical_dict` this keeps the non-physical fields
        (``name`` binds the aggregation cell on the rebuilt side) and
        preserves declaration order.  Enums collapse to their string values
        and nested dataclasses to dicts; :meth:`from_dict` coerces both back,
        so ``from_dict(to_dict())`` reconstructs an equal config with a
        byte-identical :meth:`fingerprint`.
        """
        return {key: _wire_safe(value) for key, value in asdict(self).items()}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentConfig":
        """Rebuild a config from :meth:`to_dict` output (extra keys rejected,
        so schema drift between coordinator and worker fails loudly)."""
        return cls(**data)

    # ------------------------------------------------------------------
    # Stable serialization (sweep cache keys)
    # ------------------------------------------------------------------
    def to_canonical_dict(self) -> Dict[str, Any]:
        """All simulation-relevant fields as JSON-safe values, stably ordered.

        Enums collapse to their ``.value`` (identical to the plain-string
        spelling of the same component) and nested dataclasses (e.g.
        :class:`IncastParams`) to sorted dicts, so two configs that would run
        identical simulations serialize identically across processes and
        Python versions.  Fields in :data:`_NON_PHYSICAL_FIELDS` are
        excluded: they never influence a run's physics, and including them
        would make physically identical simulations miss the sweep cache.
        """
        payload = asdict(self)
        for field_name in _NON_PHYSICAL_FIELDS:
            del payload[field_name]
        # Fingerprint-relevant *once set*: the inert defaults are dropped so
        # these fields' introduction did not invalidate every pre-existing
        # cache entry, while any explicit value keys its own entries
        # (``port_batch_bytes`` changes the physics; ``fabric_digests``
        # changes what the cached row carries).
        if payload.get("port_batch_bytes") is None:
            del payload["port_batch_bytes"]
        if not payload.get("fabric_digests"):
            del payload["fabric_digests"]
        if payload.get("ring_switches") == 3:
            del payload["ring_switches"]
        if payload.get("wan_delay_s") == 1e-3:
            del payload["wan_delay_s"]
        if not payload.get("c_latency_ratios"):
            del payload["c_latency_ratios"]
        if payload.get("ack_coalesce_n") == 1:
            # Coalescing off: the run is byte-identical to the pre-knob
            # per-packet ACK stream, so both keys (the then-irrelevant
            # flush timeout too) collapse onto the fingerprints of rows
            # cached before the knobs existed.  Any other window changes
            # ACK timing and must key its own cache entries -- *including*
            # the default of 4, which is behavior-changing and so cannot
            # share fingerprints with per-packet rows.  The raw knob is
            # used rather than ``effective_ack_coalesce_n`` so the
            # fingerprint never depends on which schemes happen to be
            # registered in this process (a scheme cap, e.g. Timely's,
            # just costs one conservative cache miss).
            del payload["ack_coalesce_n"]
            del payload["ack_coalesce_us"]
        if not payload.get("pacing_quantum_us"):
            del payload["pacing_quantum_us"]
        if payload.get("fault_plan") is None:
            # ``__post_init__`` already collapsed empty plans to ``None``,
            # so only genuinely fault-enabled configs key new cache entries.
            del payload["fault_plan"]
        return _canonical(payload)

    def fingerprint(self) -> str:
        """Stable content hash of this config (the sweep cache key)."""
        payload = json.dumps(
            self.to_canonical_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _json_normalize(value: Any, sort_keys: bool) -> Any:
    """One JSON-normalizer for both serializations (enums -> values, nested
    dataclass dicts/lists -> plain structures), so the canonical
    (fingerprint) and wire (task-file) forms can never drift on value
    handling -- they differ only in mapping-key order."""
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, dict):
        items = sorted(value.items()) if sort_keys else value.items()
        return {key: _json_normalize(item, sort_keys) for key, item in items}
    if isinstance(value, (list, tuple)):
        return [_json_normalize(item, sort_keys) for item in value]
    return value


def _canonical(value: Any) -> Any:
    return _json_normalize(value, sort_keys=True)


def _wire_safe(value: Any) -> Any:
    """JSON-normalize one field value, preserving mapping order."""
    return _json_normalize(value, sort_keys=False)
