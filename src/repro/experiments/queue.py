"""Durable on-disk work queue: sweeps that shard across worker machines.

The ``queue`` execution backend turns one sweep into files under a shared
*queue directory* (local disk, NFS, anything POSIX-rename-atomic), so any
number of worker processes -- started on this machine by the coordinator, or
by hand on other machines with ``python -m repro worker <queue-dir>`` --
drain it cooperatively and the sweep survives every participant crashing.

Task lifecycle (all transitions are atomic renames or atomic
write-temp-then-rename, so concurrent workers never observe half states)::

    tasks/<fp>.json  --claim-->  leases/<fp>.json  --complete-->  parts/<fp>.json
         ^                            |                 (ResultRow part-file)
         |                            +--fail------>  failed/<fp>.json
         +------reclaim (stale lease: crashed worker)--+

* ``tasks/`` holds pending work: one JSON file per cell, named by the
  config's :meth:`~repro.experiments.config.ExperimentConfig.fingerprint`
  and carrying the label plus the full config wire format
  (:meth:`~repro.experiments.config.ExperimentConfig.to_dict`), so a worker
  on another machine rebuilds the exact fingerprinted config.
* A worker *claims* a task by renaming it into ``leases/`` -- exactly one
  concurrent claimer can win the rename -- then stamps the lease with its
  identity.  While executing, the worker *touches* a heartbeat file
  (``leases/<fp>.hb``) on its poll cadence; a lease is presumed orphaned
  (and renamed back into ``tasks/``) only when **both** the lease and its
  heartbeat have gone untouched for ``lease_timeout_s`` -- so a slow cell
  on a live worker is never stolen, while a dead worker's lease is
  reclaimed one timeout after its last beat.
* A finished cell becomes a *part-file*: the flat
  :class:`~repro.experiments.results.ResultRow` wrapped in the same
  ``{schema, code, row}`` envelope as sweep-cache entries, so parts are
  code-aware exactly like the cache.  Workers also write through the shared
  :class:`~repro.experiments.sweep.ResultCache` (``<queue-dir>/cache`` by
  default), so a later sweep over the same configs is served without
  re-simulating.
* A cell that raises becomes a *failure marker* (``failed/<fp>.json``); the
  coordinating sweep surfaces it as an error instead of waiting forever.

* Completions are additionally recorded in an append-only, fsync'd
  ``parts/MANIFEST`` (one fingerprint per line), so pollers -- the
  coordinator below, and the ``repro serve`` follow stream -- discover new
  parts by tailing one file instead of rescanning a 10k-entry directory on
  every poll (:class:`PartsTail`).

The coordinator (:class:`QueueBackend`) streams parts as they land into the
sweep's progress/partial-aggregation layer and resumes from whatever parts a
previous, interrupted coordinator left behind.
"""

from __future__ import annotations

import json
import os
import random
import socket
import subprocess
import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.experiments.backends import (
    Cell,
    ExecutionBackend,
    OnResult,
    register_execution_backend,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.results import ResultRow
from repro.experiments.sweep import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    _rebind_row,
    _run_cell,
    code_fingerprint,
    import_plugins,
)

__all__ = [
    "PartsTail",
    "QueueBackend",
    "Task",
    "TaskQueue",
    "run_worker",
]

#: Bumped when the task-file wire format changes incompatibly.
TASK_SCHEMA_VERSION = 1

#: Leases untouched for this long are presumed orphaned by a dead worker.
#: Must comfortably exceed the longest single cell (cells are seconds-long;
#: slow shared filesystems and swapped machines get a wide margin).
DEFAULT_LEASE_TIMEOUT_S = 600.0


def _write_json_atomic(path: Path, payload: Dict[str, Any]) -> None:
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(payload, indent=1, sort_keys=True))
    tmp.replace(path)


@dataclass
class Task:
    """One leased (or pending) unit of sweep work."""

    fingerprint: str
    label: str
    config: ExperimentConfig
    #: Set while this process holds the lease.
    lease_path: Optional[Path] = None

    def to_payload(self) -> Dict[str, Any]:
        return {
            "schema": TASK_SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "label": self.label,
            "config": self.config.to_dict(),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "Task":
        if payload.get("schema") != TASK_SCHEMA_VERSION:
            raise ValueError(
                f"task schema {payload.get('schema')!r} != {TASK_SCHEMA_VERSION} "
                "(coordinator and worker run different repro versions)"
            )
        return cls(
            fingerprint=payload["fingerprint"],
            label=payload["label"],
            config=ExperimentConfig.from_dict(payload["config"]),
        )


class TaskQueue:
    """The on-disk queue: four spool directories plus the shared cache."""

    def __init__(
        self,
        directory: Union[str, Path],
        lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S,
    ) -> None:
        if lease_timeout_s <= 0:
            raise ValueError("lease_timeout_s must be positive")
        self.directory = Path(directory)
        self.lease_timeout_s = lease_timeout_s
        self.tasks_dir = self.directory / "tasks"
        self.leases_dir = self.directory / "leases"
        self.parts_dir = self.directory / "parts"
        self.failed_dir = self.directory / "failed"
        #: Append-only completion log: one fingerprint per line, fsync'd by
        #: :meth:`complete`, so pollers tail this file instead of rescanning
        #: the parts directory (see :class:`PartsTail`).
        self.manifest_path = self.parts_dir / "MANIFEST"
        for sub in (self.tasks_dir, self.leases_dir, self.parts_dir, self.failed_dir):
            sub.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def task_path(self, fingerprint: str) -> Path:
        return self.tasks_dir / f"{fingerprint}.json"

    def lease_path(self, fingerprint: str) -> Path:
        return self.leases_dir / f"{fingerprint}.json"

    def part_path(self, fingerprint: str) -> Path:
        return self.parts_dir / f"{fingerprint}.json"

    def failed_path(self, fingerprint: str) -> Path:
        return self.failed_dir / f"{fingerprint}.json"

    def heartbeat_path(self, fingerprint: str) -> Path:
        """The lease's liveness file (``.hb`` so lease globs ignore it)."""
        return self.leases_dir / f"{fingerprint}.hb"

    def default_cache(self) -> ResultCache:
        """The cache workers share by default (``<queue-dir>/cache``)."""
        return ResultCache(self.directory / "cache")

    # ------------------------------------------------------------------
    # Producing
    # ------------------------------------------------------------------
    def enqueue(self, label: str, config: ExperimentConfig) -> bool:
        """Spool one cell as a pending task file.

        Returns ``False`` (without writing) when the cell is already pending,
        leased, or completed -- so two coordinators sharing a queue directory
        do not duplicate work.  Any stale failure marker for the fingerprint
        is cleared: enqueueing is an explicit fresh attempt.  A part-file
        that no longer *reads* as completed (written by a different source
        tree or schema version) is deleted and the cell re-spooled --
        otherwise an invalid part would pin the task as "done" while every
        read of it misses, and the sweep could never finish.
        """
        task = Task(fingerprint=config.fingerprint(), label=label, config=config)
        self.failed_path(task.fingerprint).unlink(missing_ok=True)
        part = self.part_path(task.fingerprint)
        if part.exists():
            if self.part_row(task.fingerprint) is not None:
                return False
            part.unlink(missing_ok=True)  # stale part: recompute
        for existing in (
            self.task_path(task.fingerprint),
            self.lease_path(task.fingerprint),
        ):
            if existing.exists():
                return False
        _write_json_atomic(self.task_path(task.fingerprint), task.to_payload())
        return True

    # ------------------------------------------------------------------
    # Consuming
    # ------------------------------------------------------------------
    def claim(self, worker_id: str) -> Optional[Task]:
        """Lease the first pending task (by sorted name); ``None`` when empty.

        The claim is one atomic rename into ``leases/``: when several workers
        race for the same task exactly one rename succeeds and the others
        simply move on to the next file.  Tasks whose *valid* part-file
        already exists (a reclaimed lease whose original worker finished
        after all) are retired on sight instead of re-run; a part that no
        longer reads (different source tree) does not retire its task --
        completing the task overwrites it.
        """
        for path in sorted(self.tasks_dir.glob("*.json")):
            fingerprint = path.stem
            if self.part_row(fingerprint) is not None:
                path.unlink(missing_ok=True)
                continue
            lease = self.lease_path(fingerprint)
            now = time.time()
            try:
                # Refresh the mtime *before* the rename (which preserves
                # it): orphan reclaim judges staleness by lease mtime, and
                # a task that sat pending longer than the lease timeout
                # must not be born already reclaim-eligible.
                os.utime(path, (now, now))
                path.rename(lease)
            except (FileNotFoundError, PermissionError):
                continue  # another worker won the rename
            try:
                lease_text = lease.read_text()
            except FileNotFoundError:
                # Reclaimed out from under us in the instant after the
                # rename: the task is back in the pending spool, someone
                # will claim it.  Not a failure.
                continue
            try:
                payload = json.loads(lease_text)
                task = Task.from_payload(payload)
            except (ValueError, KeyError, TypeError) as exc:
                # Genuinely unreadable task: surface as a failure marker,
                # not a hang.
                _write_json_atomic(
                    self.failed_path(fingerprint),
                    {"fingerprint": fingerprint, "label": "?", "worker": worker_id,
                     "error": f"unreadable task file: {exc!r}"},
                )
                lease.unlink(missing_ok=True)
                continue
            task.lease_path = lease
            # Stamp the lease with the claimer (refreshing its mtime again;
            # long-running cells get the full lease_timeout_s from here).
            _write_json_atomic(
                lease,
                {**payload, "worker": worker_id, "claimed_at": now},
            )
            return task
        return None

    def heartbeat(self, task: Union[Task, str]) -> None:
        """Touch the lease's heartbeat file: "I am alive and still on it".

        Workers call this on their poll cadence while a cell executes (see
        :func:`run_worker`), so :meth:`reclaim_orphans` can tell a slow cell
        on a live worker from a lease whose holder died mid-cell.
        """
        fingerprint = task if isinstance(task, str) else task.fingerprint
        path = self.heartbeat_path(fingerprint)
        try:
            path.touch()
            now = time.time()
            os.utime(path, (now, now))
        except OSError:
            pass  # liveness signal only; never fail the cell over it

    def _append_manifest(self, fingerprint: str) -> None:
        """Append one completion line, durably (O_APPEND + fsync).

        Single-line appends are atomic on POSIX, so concurrent workers
        interleave whole lines; duplicate lines (a cell completed twice
        after an over-eager reclaim) are fine -- readers de-duplicate.
        """
        try:
            with open(self.manifest_path, "a", encoding="ascii") as handle:
                handle.write(f"{fingerprint}\n")
                handle.flush()
                os.fsync(handle.fileno())
        except OSError:
            pass  # the part-file itself is durable; directory scans still find it

    def complete(self, task: Task, row: ResultRow) -> None:
        """Publish ``row`` as the task's durable part-file and drop the lease."""
        _write_json_atomic(
            self.part_path(task.fingerprint),
            {
                "schema": CACHE_SCHEMA_VERSION,
                "code": code_fingerprint(),
                "row": row.to_dict(),
            },
        )
        self._append_manifest(task.fingerprint)
        if task.lease_path is not None:
            task.lease_path.unlink(missing_ok=True)
            task.lease_path = None
        self.heartbeat_path(task.fingerprint).unlink(missing_ok=True)

    def fail(self, task: Task, error: BaseException, worker_id: str = "?") -> None:
        """Record a cell failure so coordinators stop waiting for it."""
        _write_json_atomic(
            self.failed_path(task.fingerprint),
            {
                "fingerprint": task.fingerprint,
                "label": task.label,
                "worker": worker_id,
                "error": f"{type(error).__name__}: {error}",
            },
        )
        if task.lease_path is not None:
            task.lease_path.unlink(missing_ok=True)
            task.lease_path = None
        self.heartbeat_path(task.fingerprint).unlink(missing_ok=True)

    def release(self, task: Task) -> None:
        """Return a leased task to the pending spool (interrupted worker)."""
        if task.lease_path is None:
            return
        try:
            task.lease_path.rename(self.task_path(task.fingerprint))
        except FileNotFoundError:
            pass
        task.lease_path = None
        self.heartbeat_path(task.fingerprint).unlink(missing_ok=True)

    def reclaim_orphans(self, now: Optional[float] = None) -> List[str]:
        """Requeue every lease whose worker has stopped heartbeating.

        A worker that died (or lost its machine) leaves its lease behind;
        renaming it back into ``tasks/`` lets surviving workers pick the
        cell up.  Staleness is judged on the *most recent* liveness signal
        -- the lease file's own mtime or its heartbeat file's, whichever is
        newer -- so a cell that runs longer than ``lease_timeout_s`` is
        never stolen from a worker that is still beating, while a dead
        worker's lease is reclaimed one timeout after its final beat.

        Safe to call from any participant: the rename is atomic, and a
        completed-after-reclaim duplicate execution writes a byte-identical
        part-file (cells are deterministic), so the race is wasteful at
        worst, never wrong.
        """
        if now is None:
            now = time.time()
        reclaimed: List[str] = []
        for lease in sorted(self.leases_dir.glob("*.json")):
            fingerprint = lease.stem
            try:
                freshest = lease.stat().st_mtime
            except FileNotFoundError:
                continue
            try:
                beat = self.heartbeat_path(fingerprint).stat().st_mtime
            except FileNotFoundError:
                beat = None
            if beat is not None:
                freshest = max(freshest, beat)
            if now - freshest < self.lease_timeout_s:
                continue
            try:
                lease.rename(self.task_path(fingerprint))
            except FileNotFoundError:
                continue
            self.heartbeat_path(fingerprint).unlink(missing_ok=True)
            reclaimed.append(fingerprint)
        return reclaimed

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def part_row(self, fingerprint: str, code_aware: bool = True) -> Optional[ResultRow]:
        """The completed row for ``fingerprint``, or ``None``.

        Parts are validated exactly like cache entries: a part written by a
        different source tree (or schema version) reads as missing, so a
        resumed sweep never mixes rows from two simulator versions.
        """
        try:
            payload = json.loads(self.part_path(fingerprint).read_text())
            if payload.get("schema") != CACHE_SCHEMA_VERSION:
                return None
            if code_aware and payload.get("code") != code_fingerprint():
                return None
            return ResultRow.from_dict(payload["row"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def part_fingerprints(self) -> List[str]:
        return sorted(path.stem for path in self.parts_dir.glob("*.json"))

    def failures(self) -> Dict[str, str]:
        """``fingerprint -> error text`` for every recorded failure."""
        failures: Dict[str, str] = {}
        for path in sorted(self.failed_dir.glob("*.json")):
            try:
                payload = json.loads(path.read_text())
                failures[path.stem] = (
                    f"{payload.get('label', '?')}: {payload.get('error', 'unknown error')}"
                )
            except (OSError, ValueError):
                failures[path.stem] = "unreadable failure marker"
        return failures

    def counts(self) -> Dict[str, int]:
        """Spool sizes, for observability (``repro worker`` status lines)."""
        return {
            "tasks": sum(1 for _ in self.tasks_dir.glob("*.json")),
            "leases": sum(1 for _ in self.leases_dir.glob("*.json")),
            "parts": sum(1 for _ in self.parts_dir.glob("*.json")),
            "failed": sum(1 for _ in self.failed_dir.glob("*.json")),
        }


class PartsTail:
    """Incrementally discover completed parts without rescanning the spool.

    A 10k-cell sweep polled every 200ms costs a 10k-entry directory listing
    per poll if completion is discovered by globbing ``parts/``.  This tail
    instead reads only the *newly appended* lines of ``parts/MANIFEST`` per
    :meth:`poll` -- O(completions since last poll), independent of sweep
    size -- and falls back to a full directory scan when the manifest is
    absent or short (a part written by a participant that predates the
    manifest, or a manifest lost to a crash between the part rename and the
    append): once on the first poll, whenever the manifest file is missing,
    and periodically every ``rescan_every`` polls as a safety net.

    Each fingerprint is reported exactly once; callers that find a reported
    part unreadable (stale code, still-propagating network filesystem) call
    :meth:`forget` so a later poll re-reports it.
    """

    def __init__(self, queue: TaskQueue, rescan_every: int = 50) -> None:
        self.queue = queue
        self.rescan_every = max(1, int(rescan_every))
        self._offset = 0
        self._seen: set = set()
        self._polls_since_scan = self.rescan_every  # first poll always scans

    def forget(self, fingerprint: str) -> None:
        """Allow ``fingerprint`` to be reported again by a later poll."""
        self._seen.discard(fingerprint)

    def _read_manifest(self) -> List[str]:
        """Whole new manifest lines since the last poll (partial trailing
        lines -- an append caught mid-write -- are left for the next poll)."""
        try:
            with open(self.queue.manifest_path, "rb") as handle:
                handle.seek(self._offset)
                chunk = handle.read()
        except OSError:
            return []
        head, newline, _partial = chunk.rpartition(b"\n")
        if not newline:
            return []
        self._offset += len(head) + 1
        return [
            line.strip().decode("ascii", "replace")
            for line in head.split(b"\n")
            if line.strip()
        ]

    def poll(self, force_scan: bool = False) -> List[str]:
        """Fingerprints of parts completed since the last poll."""
        new: List[str] = []
        for fingerprint in self._read_manifest():
            if fingerprint not in self._seen:
                self._seen.add(fingerprint)
                new.append(fingerprint)
        self._polls_since_scan += 1
        if (
            force_scan
            or self._polls_since_scan > self.rescan_every
            or not self.queue.manifest_path.exists()
        ):
            for path in sorted(self.queue.parts_dir.glob("*.json")):
                fingerprint = path.stem
                if fingerprint not in self._seen:
                    self._seen.add(fingerprint)
                    new.append(fingerprint)
            self._polls_since_scan = 0
        return new


# ---------------------------------------------------------------------------
# Worker
# ---------------------------------------------------------------------------

def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


@contextmanager
def _heartbeating(queue: TaskQueue, task: Task, interval_s: float):
    """Touch the task's heartbeat on a cadence while the body executes.

    The beat runs on a daemon thread so a cell that outlives
    ``lease_timeout_s`` keeps signalling liveness; the lease is then only
    reclaimable once the worker actually dies (thread and process die
    together).  The first beat lands before the cell starts, so a lease is
    never observable without a fresh heartbeat.
    """
    queue.heartbeat(task)
    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(interval_s):
            queue.heartbeat(task)

    thread = threading.Thread(target=beat, name=f"hb-{task.fingerprint[:8]}", daemon=True)
    thread.start()
    try:
        yield
    finally:
        stop.set()
        thread.join(timeout=interval_s + 1.0)


def _execute_task(task: Task, cache: Optional[ResultCache]) -> ResultRow:
    """Run one task through the shared cache (hit = no simulation)."""
    cached = cache.get(task.config) if cache is not None else None
    if cached is not None:
        return _rebind_row(cached, task.label, task.config.name)
    row = _run_cell((task.label, task.config))
    if cache is not None:
        cache.put(row)
    return row


def run_worker(
    queue: Union[TaskQueue, str, Path],
    cache: Optional[Union[ResultCache, str, Path]] = None,
    *,
    worker_id: Optional[str] = None,
    poll_interval_s: float = 0.5,
    drain: bool = False,
    max_tasks: Optional[int] = None,
) -> int:
    """Lease and execute tasks until stopped; returns cells executed.

    This is what ``python -m repro worker <queue-dir>`` runs.  The loop:

    1. claim the next task (atomic rename);
    2. serve it from the shared cache, or simulate and write the cache back
       -- touching the lease's heartbeat file every ``poll_interval_s``
       while the cell runs, so ``--lease-timeout`` measures *silence since
       the last heartbeat*, not cell duration: a cell may legitimately run
       far longer than the lease timeout without being stolen;
    3. publish the durable part-file (and its fsync'd ``parts/MANIFEST``
       line) and drop the lease;
    4. on an idle queue, reclaim orphaned leases, then either exit (with
       ``drain=True``, once no pending tasks remain) or sleep and re-poll --
       a long-lived worker keeps serving sweeps as coordinators spool them.
       Idle sleeps back off exponentially (with jitter, so a fleet of
       workers doesn't poll in lockstep) from ``poll_interval_s / 16`` up
       to ``poll_interval_s``, and reset to the floor the moment a task is
       claimed: a worker that just went idle re-polls quickly for the next
       spooled batch, while a long-idle worker converges to the configured
       cadence.  The in-flight heartbeat cadence is unaffected.

    A cell that raises is recorded as a failure marker and the worker moves
    on; ``KeyboardInterrupt`` releases the in-flight task back to the
    pending spool before propagating, so nothing is lost to a Ctrl-C.
    ``cache=None`` selects the queue's default ``<queue-dir>/cache``.
    """
    if not isinstance(queue, TaskQueue):
        queue = TaskQueue(queue)
    if cache is None:
        cache = queue.default_cache()
    elif not isinstance(cache, ResultCache):
        cache = ResultCache(cache)
    if worker_id is None:
        worker_id = default_worker_id()
    import_plugins()

    executed = 0
    idle_polls = 0
    jitter_rng = random.Random()
    while max_tasks is None or executed < max_tasks:
        task = queue.claim(worker_id)
        if task is None:
            if queue.reclaim_orphans():
                continue
            if drain:
                break
            delay = min(poll_interval_s, (poll_interval_s / 16) * 2 ** idle_polls)
            idle_polls = min(idle_polls + 1, 8)
            time.sleep(delay * (0.5 + jitter_rng.random() * 0.5))
            continue
        idle_polls = 0
        try:
            with _heartbeating(queue, task, poll_interval_s):
                row = _execute_task(task, cache)
        except KeyboardInterrupt:
            queue.release(task)
            raise
        except Exception as exc:
            queue.fail(task, exc, worker_id)
            continue
        queue.complete(task, row)
        executed += 1
    return executed


# ---------------------------------------------------------------------------
# Coordinator backend
# ---------------------------------------------------------------------------

@register_execution_backend("queue")
class QueueBackend(ExecutionBackend):
    """Execute sweep cells through a durable work-queue directory.

    Parameters
    ----------
    queue_dir:
        The shared queue directory (created on demand).  Every participant
        -- this coordinator, workers it spawns, and any ``python -m repro
        worker`` started elsewhere against the same path -- must see the
        same filesystem.
    workers:
        Local worker processes to spawn for this sweep (each runs
        ``python -m repro worker <queue-dir> --drain`` and exits when the
        spool is empty).  ``None`` or ``0`` spawns none: the coordinator
        itself drains tasks inline between polls, while still absorbing
        parts contributed by external workers -- so a bare
        ``QueueBackend(dir)`` works standalone and speeds up the moment
        extra machines join.
    poll_interval_s / lease_timeout_s / wait_timeout_s:
        Part-scan cadence, orphan-lease threshold, and an optional hard
        bound on how long to wait without any progress (``None`` = forever;
        useful for unattended CI).
    """

    def __init__(
        self,
        queue_dir: Optional[Union[str, Path]] = None,
        *,
        workers: Optional[int] = None,
        poll_interval_s: float = 0.2,
        lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S,
        wait_timeout_s: Optional[float] = None,
        cache: Optional[Union[ResultCache, str, Path]] = None,
    ) -> None:
        if queue_dir is None:
            raise ValueError(
                "the queue backend needs a queue directory: construct it as "
                "QueueBackend('path/to/queue') (or pass --queue-dir on the CLI); "
                "plain backend='queue' cannot guess where workers rendezvous"
            )
        self.queue = TaskQueue(queue_dir, lease_timeout_s=lease_timeout_s)
        self.workers = int(workers) if workers else 0
        self.poll_interval_s = poll_interval_s
        self.wait_timeout_s = wait_timeout_s
        if cache is None:
            self.worker_cache = self.queue.default_cache()
        elif isinstance(cache, ResultCache):
            self.worker_cache = cache
        else:
            self.worker_cache = ResultCache(cache)
        self._worker_id = f"coordinator-{default_worker_id()}"

    # ------------------------------------------------------------------
    def _spawn_workers(self) -> List["subprocess.Popen"]:
        """Start local drain-mode workers as real OS processes.

        They run the same CLI entry point a by-hand worker uses, so what CI
        exercises is exactly the multi-machine recipe; logs land under
        ``<queue-dir>/logs/``.
        """
        import repro

        env = dict(os.environ)
        package_root = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH", "")
        if package_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                f"{package_root}{os.pathsep}{existing}" if existing else package_root
            )
        logs_dir = self.queue.directory / "logs"
        logs_dir.mkdir(exist_ok=True)
        procs: List[subprocess.Popen] = []
        for index in range(self.workers):
            log = open(logs_dir / f"worker-{index}.log", "a")
            procs.append(
                subprocess.Popen(
                    [
                        sys.executable, "-m", "repro", "worker",
                        str(self.queue.directory),
                        "--drain",
                        "--cache", str(self.worker_cache.directory),
                        "--poll", str(self.poll_interval_s),
                        "--lease-timeout", str(self.queue.lease_timeout_s),
                    ],
                    stdout=log,
                    stderr=subprocess.STDOUT,
                    env=env,
                )
            )
            log.close()
        return procs

    def _deliver(
        self,
        row: ResultRow,
        cells: Sequence[Cell],
        on_result: OnResult,
    ) -> None:
        # One part-file can satisfy several labels (fingerprint-identical
        # cells under different scenario names); rebind per requester.
        for label, config in cells:
            on_result(_rebind_row(row, label, config.name))

    def execute(self, pending: List[Cell], on_result: OnResult) -> int:
        queue = self.queue
        by_fp: Dict[str, List[Cell]] = {}
        for label, config in pending:
            by_fp.setdefault(config.fingerprint(), []).append((label, config))
        outstanding = set(by_fp)

        # Resume-from-parts: an interrupted sweep left durable rows behind;
        # serve them before spooling anything.
        for fingerprint in sorted(outstanding):
            row = queue.part_row(fingerprint)
            if row is not None:
                self._deliver(row, by_fp[fingerprint], on_result)
                outstanding.discard(fingerprint)

        # A previous coordinator's crash may also have left stale leases.
        queue.reclaim_orphans()
        for fingerprint in sorted(outstanding):
            label, config = by_fp[fingerprint][0]
            queue.enqueue(label, config)

        procs = self._spawn_workers() if (self.workers and outstanding) else []
        deadline = (
            time.monotonic() + self.wait_timeout_s
            if self.wait_timeout_s is not None
            else None
        )
        # Completion discovery tails parts/MANIFEST (O(new completions) per
        # poll) instead of globbing the parts dir per poll, which a 10k-cell
        # sweep cannot afford; the tail's periodic rescan still absorbs
        # parts from manifest-less writers.
        tail = PartsTail(queue)

        def absorb(fingerprints: List[str]) -> bool:
            progressed = False
            for fingerprint in fingerprints:
                if fingerprint not in outstanding:
                    continue
                row = queue.part_row(fingerprint)
                if row is None:
                    # Stale-code or still-materializing part: let a later
                    # poll rediscover it once a worker rewrites it.
                    tail.forget(fingerprint)
                    continue
                self._deliver(row, by_fp[fingerprint], on_result)
                outstanding.discard(fingerprint)
                progressed = True
            return progressed

        try:
            while outstanding:
                progressed = absorb(tail.poll())
                if not outstanding:
                    break

                failures = queue.failures()
                broken = sorted(outstanding & set(failures))
                if broken:
                    details = "; ".join(failures[fp] for fp in broken)
                    raise RuntimeError(
                        f"{len(broken)} queue task(s) failed: {details} "
                        f"(markers under {queue.failed_dir})"
                    )

                if not procs:
                    # No local workers: participate instead of just waiting.
                    task = queue.claim(self._worker_id)
                    if task is not None:
                        try:
                            with _heartbeating(queue, task, self.poll_interval_s):
                                row = _execute_task(task, self.worker_cache)
                        except KeyboardInterrupt:
                            queue.release(task)
                            raise
                        except Exception as exc:
                            queue.fail(task, exc, self._worker_id)
                            raise
                        queue.complete(task, row)
                        progressed = True
                elif all(proc.poll() is not None for proc in procs):
                    # Every spawned worker exited while cells are missing.
                    # A worker's final part may have landed *after* this
                    # iteration's scan but before the poll() check, so
                    # rescan before concluding they died -- otherwise a
                    # sweep could fail spuriously at its very last cell.
                    if absorb(tail.poll(force_scan=True)):
                        progressed = True
                    if progressed or not outstanding:
                        continue
                    counts = queue.counts()
                    if counts["leases"]:
                        # A live lease means some worker -- an external
                        # `repro worker` on another machine, most likely --
                        # is still mid-cell: keep waiting.  If its holder is
                        # actually dead, orphan reclaim requeues it after
                        # lease_timeout_s and the no-lease branch below
                        # fires on a later iteration.
                        pass
                    else:
                        codes = [proc.returncode for proc in procs]
                        raise RuntimeError(
                            f"all {len(procs)} queue workers exited (codes {codes}) "
                            f"with {len(outstanding)} cell(s) unfinished; spool: "
                            f"{counts}; logs under {queue.directory / 'logs'}"
                        )

                if progressed:
                    if deadline is not None:
                        deadline = time.monotonic() + self.wait_timeout_s
                    continue
                queue.reclaim_orphans()
                if deadline is not None and time.monotonic() > deadline:
                    raise TimeoutError(
                        f"queue sweep made no progress for {self.wait_timeout_s}s; "
                        f"{len(outstanding)} cell(s) outstanding, spool: {queue.counts()}"
                    )
                time.sleep(self.poll_interval_s)
        finally:
            for proc in procs:
                if proc.poll() is None:
                    # Drain-mode workers exit on their own once the spool is
                    # empty; an abnormal coordinator exit must not leave
                    # them running forever.
                    try:
                        proc.wait(timeout=2 * self.poll_interval_s + 5.0)
                    except subprocess.TimeoutExpired:
                        proc.terminate()
                        try:
                            proc.wait(timeout=5.0)
                        except subprocess.TimeoutExpired:
                            proc.kill()
        return max(1, len(procs))
