"""Pluggable sweep execution backends.

:func:`~repro.experiments.sweep.run_sweep` decides *what* to run (expand
cells, serve cache hits); an :class:`ExecutionBackend` decides *how* the
remaining cells execute.  Three ship with the harness, registered in
:data:`EXECUTION_BACKENDS`:

``serial``
    Run every cell in-process, in order.  Deterministic and debugger-friendly
    (what ``workers=1`` always selected).

``process``
    Fan cells out over a local :class:`~concurrent.futures.ProcessPoolExecutor`
    (what ``workers=N`` always selected), falling back to ``serial`` when
    process pools are unavailable (sandboxes) or die mid-sweep.

``queue``
    Drain a durable on-disk work queue (:mod:`repro.experiments.queue`) that
    any number of worker processes -- on this machine or others sharing the
    directory -- lease tasks from.  Survives crashes and resumes from the
    part-files already written.

Every backend reports each finished :class:`ResultRow` through a single
``on_result`` callback as it lands, so the caller can cache rows and stream
partial aggregates (:class:`SweepProgress`) without waiting for the sweep to
finish.  Third-party backends (SLURM submitters, cloud batch APIs ...)
register the same way every other component does::

    from repro.experiments.backends import ExecutionBackend, register_execution_backend

    @register_execution_backend("slurm")
    class SlurmBackend(ExecutionBackend):
        def execute(self, pending, on_result): ...
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.experiments.config import ExperimentConfig
from repro.experiments.results import ResultRow
from repro.metrics.partial import PartialAggregator
from repro.registry import Registry

__all__ = [
    "EXECUTION_BACKENDS",
    "ExecutionBackend",
    "ProcessBackend",
    "SerialBackend",
    "SweepProgress",
    "register_execution_backend",
    "resolve_backend",
]

#: Upper bound on auto-selected worker processes (per-cell runs are seconds
#: long, so more workers than this mostly adds fork/teardown overhead).
MAX_AUTO_WORKERS = 8

#: One unit of sweep work: ``(label, config)``.
Cell = Tuple[str, ExperimentConfig]

#: Callback invoked once per finished row, as it lands.
OnResult = Callable[[ResultRow], None]


class SweepProgress:
    """Live view of a running sweep: completed rows + streaming aggregates.

    The sweep layer feeds every row (cache hits up front, then backend
    results as they land) into :meth:`add`; observers handed to
    ``run_sweep(progress=...)`` receive ``(progress, row)`` after each
    backend row and can read converging pooled aggregates off
    :meth:`aggregate` long before the sweep finishes.
    """

    def __init__(self, total: int, by: Sequence[str] = ("name",)) -> None:
        self.total = total
        self.rows: Dict[str, ResultRow] = {}
        self.by = tuple(by)
        self._partial = PartialAggregator(self.by)
        #: The partial aggregate record of the most recently updated cell
        #: (what :meth:`add` returned) -- observers print this instead of
        #: rescanning the full :meth:`aggregate` snapshot per row.
        self.last_update: Optional[Dict[str, Any]] = None

    @property
    def completed(self) -> int:
        return len(self.rows)

    @property
    def remaining(self) -> int:
        return self.total - len(self.rows)

    @property
    def done(self) -> bool:
        return len(self.rows) >= self.total

    def add(self, row: ResultRow) -> Dict[str, Any]:
        """Absorb one finished row; returns its cell's updated partial
        aggregate record (true pooled digests over the rows seen so far)."""
        self.rows[row.label] = row
        self.last_update = self._partial.add(row)
        return self.last_update

    def aggregate(self) -> List[Dict[str, Any]]:
        """Partial per-cell aggregates over every row absorbed so far."""
        return self._partial.snapshot()


class ExecutionBackend:
    """How a set of pending sweep cells gets executed.

    Subclasses implement :meth:`execute`; it must call ``on_result(row)``
    once per finished cell, as each finishes (not batched at the end), so
    completed work is cached/streamed even if a later cell fails, and return
    the number of workers that participated (1 for serial execution).
    """

    #: Registry name (set by :func:`register_execution_backend`).
    name: str = "?"

    def execute(self, pending: List[Cell], on_result: OnResult) -> int:
        raise NotImplementedError


EXECUTION_BACKENDS: Registry[Callable[..., ExecutionBackend]] = Registry("execution backend")


def register_execution_backend(name: str, *, replace: bool = False):
    """Class decorator: register an :class:`ExecutionBackend` factory."""

    def decorator(factory: Callable[..., ExecutionBackend]):
        EXECUTION_BACKENDS.register(name, factory, replace=replace)
        if isinstance(factory, type) and issubclass(factory, ExecutionBackend):
            factory.name = name
        return factory

    return decorator


@register_execution_backend("serial")
class SerialBackend(ExecutionBackend):
    """Run every cell in-process, in submission order."""

    def __init__(self, workers: Optional[int] = None) -> None:
        # ``workers`` accepted (and ignored) so every backend constructs
        # uniformly from run_sweep's arguments.
        del workers

    def execute(self, pending: List[Cell], on_result: OnResult) -> int:
        from repro.experiments.sweep import _run_cell

        for item in pending:
            on_result(_run_cell(item))
        return 1


@register_execution_backend("process")
class ProcessBackend(ExecutionBackend):
    """Fan cells out over a local process pool (serial fallback built in)."""

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = workers

    def pick_workers(self, num_pending: int) -> int:
        workers = self.workers
        if workers is None:
            workers = min(os.cpu_count() or 1, MAX_AUTO_WORKERS)
        return max(1, min(workers, num_pending))

    def execute(self, pending: List[Cell], on_result: OnResult) -> int:
        from repro.experiments.sweep import _run_cell

        workers_used = self.pick_workers(len(pending))
        done: set = set()

        def store(row: ResultRow) -> None:
            done.add(row.label)
            on_result(row)

        def fall_back_to_serial(exc: BaseException) -> None:
            # Fork/spawn denied (sandboxes) or workers died.  Any real
            # per-cell error will resurface from the serial run.
            nonlocal workers_used
            warnings.warn(
                f"process pool unavailable ({exc!r}); falling back to serial sweep",
                RuntimeWarning,
                stacklevel=4,
            )
            workers_used = 1

        if pending and workers_used > 1:
            # The try blocks cover only pool machinery: store() runs outside
            # them so a cache-write failure propagates as itself instead of
            # being misread as a broken pool.
            try:
                pool = ProcessPoolExecutor(max_workers=workers_used)
            except OSError as exc:
                fall_back_to_serial(exc)
            else:
                with pool:
                    # pool.map yields in submission order; consume lazily so
                    # every completed cell is stored (and cached) even if a
                    # later one fails.
                    completed = pool.map(_run_cell, pending, chunksize=1)
                    while True:
                        try:
                            row = next(completed)
                        except StopIteration:
                            break
                        except (OSError, BrokenExecutor) as exc:
                            fall_back_to_serial(exc)
                            break
                        store(row)
        if pending and workers_used <= 1:
            for item in pending:
                if item[0] not in done:
                    store(_run_cell(item))
        return workers_used


def resolve_backend(
    backend: Union[str, ExecutionBackend, None],
    workers: Optional[int] = None,
) -> ExecutionBackend:
    """Normalize ``run_sweep``'s backend argument to an instance.

    ``None`` preserves the historical behavior: ``workers <= 1`` selects the
    deterministic ``serial`` backend, anything else the local ``process``
    pool.  A string resolves through :data:`EXECUTION_BACKENDS` and is
    constructed with ``workers=`` (the ``queue`` backend additionally needs a
    queue directory, so it must be constructed explicitly or through the
    CLI's ``--queue-dir``).
    """
    # Imported for its registration side effect: the "queue" entry lives in
    # the queue module, which this module must not import at its own top
    # level (the queue machinery imports the sweep layer).
    import repro.experiments.queue  # noqa: F401

    if isinstance(backend, ExecutionBackend):
        return backend
    if backend is None:
        backend = "serial" if (workers is not None and workers <= 1) else "process"
    factory = EXECUTION_BACKENDS.get(backend)
    return factory(workers=workers)
