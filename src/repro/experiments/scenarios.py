"""Scenario presets for every figure and table in the paper.

Each ``figN_configs`` / ``tableN_configs`` function returns an ordered
mapping from a human-readable label (matching the paper's legend) to an
:class:`ExperimentConfig`.  The label-to-config mappings feed directly into
:func:`repro.experiments.sweep.run_sweep`, which the benchmarks use to run
and print the regenerated rows.

The *scaled default scenario* mirrors the paper's default (three-tier
fat-tree, heavy-tailed workload at 70% load, buffers of twice the BDP, ECMP)
but shrinks the fabric and flow sizes so a pure-Python packet simulation
finishes in seconds; see README.md for the substitution rationale.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.factory import TransportKind
from repro.experiments.config import (
    CongestionControl,
    ExperimentConfig,
    TopologyKind,
    WorkloadKind,
)
from repro.workload.incast import IncastParams


#: Flow count used by the scaled-down default scenario.
DEFAULT_NUM_FLOWS = 250
#: Scale factor applied to the heavy-tailed flow-size bands.
DEFAULT_SIZE_SCALE = 0.2


def default_config(
    transport: TransportKind = TransportKind.IRN,
    congestion_control: CongestionControl = CongestionControl.NONE,
    pfc_enabled: bool = False,
    name: Optional[str] = None,
    num_flows: int = DEFAULT_NUM_FLOWS,
    seed: int = 1,
    **overrides,
) -> ExperimentConfig:
    """The scaled-down version of the paper's default scenario (§4.1)."""
    config = ExperimentConfig(
        name=name or f"{transport.value}-{congestion_control.value}-{'pfc' if pfc_enabled else 'nopfc'}",
        topology=TopologyKind.FAT_TREE,
        fat_tree_k=4,
        link_bandwidth_bps=10e9,
        link_delay_s=1e-6,
        pfc_enabled=pfc_enabled,
        transport=transport,
        congestion_control=congestion_control,
        workload=WorkloadKind.HEAVY_TAILED,
        target_load=0.7,
        num_flows=num_flows,
        flow_size_scale=DEFAULT_SIZE_SCALE,
        seed=seed,
    )
    if overrides:
        config = config.with_overrides(**overrides)
    return config


# ---------------------------------------------------------------------------
# §4.2 basic results
# ---------------------------------------------------------------------------
def fig1_configs(**overrides) -> Dict[str, ExperimentConfig]:
    """Figure 1: IRN (without PFC) vs RoCE (with PFC), no congestion control."""
    return {
        "RoCE (with PFC)": default_config(TransportKind.ROCE, pfc_enabled=True, **overrides),
        "IRN (without PFC)": default_config(TransportKind.IRN, pfc_enabled=False, **overrides),
    }


def fig2_configs(**overrides) -> Dict[str, ExperimentConfig]:
    """Figure 2: impact of enabling PFC with IRN."""
    return {
        "IRN with PFC": default_config(TransportKind.IRN, pfc_enabled=True, **overrides),
        "IRN (without PFC)": default_config(TransportKind.IRN, pfc_enabled=False, **overrides),
    }


def fig3_configs(**overrides) -> Dict[str, ExperimentConfig]:
    """Figure 3: impact of disabling PFC with RoCE."""
    return {
        "RoCE (with PFC)": default_config(TransportKind.ROCE, pfc_enabled=True, **overrides),
        "RoCE without PFC": default_config(TransportKind.ROCE, pfc_enabled=False, **overrides),
    }


def _cc_pair(
    transport_a: TransportKind,
    pfc_a: bool,
    label_a: str,
    transport_b: TransportKind,
    pfc_b: bool,
    label_b: str,
    congestion_controls: Sequence[CongestionControl],
    **overrides,
) -> Dict[str, ExperimentConfig]:
    configs: Dict[str, ExperimentConfig] = {}
    for cc in congestion_controls:
        configs[f"{label_a} +{cc.value}"] = default_config(
            transport_a, cc, pfc_enabled=pfc_a, **overrides
        )
        configs[f"{label_b} +{cc.value}"] = default_config(
            transport_b, cc, pfc_enabled=pfc_b, **overrides
        )
    return configs


def fig4_configs(**overrides) -> Dict[str, ExperimentConfig]:
    """Figure 4: IRN vs RoCE with Timely and DCQCN."""
    return _cc_pair(
        TransportKind.ROCE, True, "RoCE",
        TransportKind.IRN, False, "IRN",
        (CongestionControl.TIMELY, CongestionControl.DCQCN),
        **overrides,
    )


def fig5_configs(**overrides) -> Dict[str, ExperimentConfig]:
    """Figure 5: impact of enabling PFC with IRN under Timely and DCQCN."""
    return _cc_pair(
        TransportKind.IRN, True, "IRN with PFC",
        TransportKind.IRN, False, "IRN",
        (CongestionControl.TIMELY, CongestionControl.DCQCN),
        **overrides,
    )


def fig6_configs(**overrides) -> Dict[str, ExperimentConfig]:
    """Figure 6: impact of disabling PFC with RoCE under Timely and DCQCN."""
    return _cc_pair(
        TransportKind.ROCE, True, "RoCE with PFC",
        TransportKind.ROCE, False, "RoCE without PFC",
        (CongestionControl.TIMELY, CongestionControl.DCQCN),
        **overrides,
    )


# ---------------------------------------------------------------------------
# §4.3 factor analysis
# ---------------------------------------------------------------------------
def fig7_configs(
    congestion_control: CongestionControl = CongestionControl.NONE, **overrides
) -> Dict[str, ExperimentConfig]:
    """Figure 7: IRN vs IRN-with-go-back-N vs IRN-without-BDP-FC."""
    return {
        "IRN": default_config(TransportKind.IRN, congestion_control, False, **overrides),
        "IRN with Go-Back-N": default_config(
            TransportKind.IRN_GO_BACK_N, congestion_control, False, **overrides
        ),
        "IRN without BDP-FC": default_config(
            TransportKind.IRN_NO_BDPFC, congestion_control, False, **overrides
        ),
    }


def no_sack_configs(**overrides) -> Dict[str, ExperimentConfig]:
    """§4.3(2): selective retransmission without SACK state vs full IRN."""
    return {
        "IRN": default_config(TransportKind.IRN, pfc_enabled=False, **overrides),
        "IRN without SACK": default_config(TransportKind.IRN_NO_SACK, pfc_enabled=False, **overrides),
    }


# ---------------------------------------------------------------------------
# §4.4 robustness and tail latency
# ---------------------------------------------------------------------------
def fig8_configs(**overrides) -> Dict[str, ExperimentConfig]:
    """Figure 8: tail latency of single-packet messages, per CC scheme."""
    configs: Dict[str, ExperimentConfig] = {}
    for cc in (CongestionControl.NONE, CongestionControl.TIMELY, CongestionControl.DCQCN):
        configs[f"RoCE (with PFC) +{cc.value}"] = default_config(
            TransportKind.ROCE, cc, True, **overrides
        )
        configs[f"IRN with PFC +{cc.value}"] = default_config(
            TransportKind.IRN, cc, True, **overrides
        )
        configs[f"IRN (without PFC) +{cc.value}"] = default_config(
            TransportKind.IRN, cc, False, **overrides
        )
    return configs


def fig9_configs(
    fan_ins: Iterable[int] = (5, 10, 20),
    congestion_control: CongestionControl = CongestionControl.NONE,
    total_bytes: int = 3_000_000,
    **overrides,
) -> Dict[str, ExperimentConfig]:
    """Figure 9: incast request completion time, IRN vs RoCE, vs fan-in M."""
    configs: Dict[str, ExperimentConfig] = {}
    for fan_in in fan_ins:
        incast = IncastParams(total_bytes=total_bytes, fan_in=fan_in, destination="h0")
        common = dict(
            workload=WorkloadKind.NONE,
            num_flows=0,
            incast=incast,
        )
        common.update(overrides)
        configs[f"RoCE M={fan_in}"] = default_config(
            TransportKind.ROCE, congestion_control, True,
            name=f"incast-roce-m{fan_in}", **common,
        )
        configs[f"IRN M={fan_in}"] = default_config(
            TransportKind.IRN, congestion_control, False,
            name=f"incast-irn-m{fan_in}", **common,
        )
    return configs


def incast_with_cross_traffic_configs(
    fan_in: int = 10,
    total_bytes: int = 3_000_000,
    **overrides,
) -> Dict[str, ExperimentConfig]:
    """§4.4.3: incast plus a 50%-load background workload."""
    incast = IncastParams(total_bytes=total_bytes, fan_in=fan_in, destination="h0", start_time=1e-4)
    common = dict(target_load=0.5, incast=incast)
    common.update(overrides)
    return {
        "RoCE (with PFC)": default_config(TransportKind.ROCE, pfc_enabled=True, **common),
        "IRN (without PFC)": default_config(TransportKind.IRN, pfc_enabled=False, **common),
    }


# ---------------------------------------------------------------------------
# §4.5 / §4.6 comparisons with Resilient RoCE and iWARP
# ---------------------------------------------------------------------------
def fig10_configs(**overrides) -> Dict[str, ExperimentConfig]:
    """Figure 10: Resilient RoCE (RoCE+DCQCN without PFC) vs plain IRN."""
    return {
        "Resilient RoCE": default_config(
            TransportKind.ROCE, CongestionControl.DCQCN, False, **overrides
        ),
        "IRN": default_config(TransportKind.IRN, CongestionControl.NONE, False, **overrides),
    }


def fig11_configs(**overrides) -> Dict[str, ExperimentConfig]:
    """Figure 11: iWARP's TCP stack vs IRN (no explicit congestion control)."""
    return {
        "iWARP": default_config(TransportKind.IWARP, CongestionControl.NONE, False, **overrides),
        "IRN": default_config(TransportKind.IRN, CongestionControl.NONE, False, **overrides),
        "IRN + AIMD": default_config(TransportKind.IRN, CongestionControl.AIMD, False, **overrides),
    }


def fig12_configs(
    congestion_control: CongestionControl = CongestionControl.NONE, **overrides
) -> Dict[str, ExperimentConfig]:
    """Figure 12: IRN with worst-case implementation overheads (§6.3)."""
    return {
        "RoCE (with PFC)": default_config(
            TransportKind.ROCE, congestion_control, True, **overrides
        ),
        "IRN (no overheads)": default_config(
            TransportKind.IRN, congestion_control, False, **overrides
        ),
        "IRN (worst-case overheads)": default_config(
            TransportKind.IRN, congestion_control, False, worst_case_overheads=True, **overrides
        ),
    }


# ---------------------------------------------------------------------------
# Appendix A sweeps (Tables 3-9)
# ---------------------------------------------------------------------------
def _comparison_triple(
    congestion_control: CongestionControl, **overrides
) -> Dict[str, ExperimentConfig]:
    """IRN (no PFC), IRN + PFC and RoCE + PFC -- the appendix table columns."""
    return {
        "IRN": default_config(TransportKind.IRN, congestion_control, False, **overrides),
        "IRN+PFC": default_config(TransportKind.IRN, congestion_control, True, **overrides),
        "RoCE+PFC": default_config(TransportKind.ROCE, congestion_control, True, **overrides),
    }


def table3_configs(
    utilizations: Iterable[float] = (0.3, 0.5, 0.7, 0.9),
    congestion_control: CongestionControl = CongestionControl.NONE,
    **overrides,
) -> Dict[str, Dict[str, ExperimentConfig]]:
    """Table 3: link utilization sweep."""
    return {
        f"{int(util * 100)}%": _comparison_triple(
            congestion_control, target_load=util, **overrides
        )
        for util in utilizations
    }


def table4_configs(
    bandwidths_gbps: Iterable[float] = (5, 10, 25),
    congestion_control: CongestionControl = CongestionControl.NONE,
    **overrides,
) -> Dict[str, Dict[str, ExperimentConfig]]:
    """Table 4: link bandwidth sweep (paper: 10/40/100 Gbps)."""
    return {
        f"{int(bw)}Gbps": _comparison_triple(
            congestion_control, link_bandwidth_bps=bw * 1e9, **overrides
        )
        for bw in bandwidths_gbps
    }


def table5_configs(
    arities: Iterable[int] = (4, 6),
    congestion_control: CongestionControl = CongestionControl.NONE,
    **overrides,
) -> Dict[str, Dict[str, ExperimentConfig]]:
    """Table 5: fat-tree scale sweep (paper: k = 6, 8, 10)."""
    return {
        f"k={k} ({k ** 3 // 4} hosts)": _comparison_triple(
            congestion_control, fat_tree_k=k, **overrides
        )
        for k in arities
    }


def table6_configs(
    congestion_control: CongestionControl = CongestionControl.NONE, **overrides
) -> Dict[str, Dict[str, ExperimentConfig]]:
    """Table 6: heavy-tailed vs uniform workload."""
    return {
        "Heavy-tailed": _comparison_triple(congestion_control, **overrides),
        "Uniform": _comparison_triple(
            congestion_control,
            workload=WorkloadKind.UNIFORM,
            uniform_low_bytes=50_000,
            uniform_high_bytes=500_000,
            **overrides,
        ),
    }


def table7_configs(
    buffer_bytes: Iterable[int] = (15_000, 30_000, 60_000),
    congestion_control: CongestionControl = CongestionControl.NONE,
    **overrides,
) -> Dict[str, Dict[str, ExperimentConfig]]:
    """Table 7: per-port buffer size sweep (paper: 60-480 KB at 40 Gbps)."""
    return {
        f"{size // 1000}KB": _comparison_triple(
            congestion_control, buffer_bytes_per_port=size, **overrides
        )
        for size in buffer_bytes
    }


def table8_configs(
    rto_high_values_s: Iterable[float] = (320e-6, 640e-6, 1280e-6),
    congestion_control: CongestionControl = CongestionControl.NONE,
    **overrides,
) -> Dict[str, Dict[str, ExperimentConfig]]:
    """Table 8: RTO_high sweep."""
    return {
        f"{int(value * 1e6)}us": _comparison_triple(
            congestion_control, rto_high_s=value, **overrides
        )
        for value in rto_high_values_s
    }


def table9_configs(
    n_values: Iterable[int] = (3, 10, 15),
    congestion_control: CongestionControl = CongestionControl.NONE,
    **overrides,
) -> Dict[str, Dict[str, ExperimentConfig]]:
    """Table 9: threshold N for using RTO_low."""
    return {
        f"N={n}": _comparison_triple(
            congestion_control, rto_low_threshold_packets=n, **overrides
        )
        for n in n_values
    }
