"""Scenario presets for every figure and table in the paper, as data.

Each scenario is a declarative :class:`~repro.experiments.spec.ScenarioSpec`
registered in :data:`~repro.experiments.spec.SCENARIOS`: a shared baseline
(the *scaled default scenario* below), an ordered set of scheme *variants*
(the figure legend / table columns) and, for the appendix tables and the
incast figure, a set of *rows* (the swept parameter).  Resolve one by name::

    from repro.api import load_scenario

    sweep = load_scenario("fig8").sweep(workers=4)

The ``figN_configs`` / ``tableN_configs`` functions that predate the spec
layer survive as thin wrappers over ``scenario(name)`` with their historical
signatures; they return the same labels and :class:`ExperimentConfig`
contents (and therefore the same cache fingerprints) as the hand-written
builders they replaced.

The *scaled default scenario* mirrors the paper's default (three-tier
fat-tree, heavy-tailed workload at 70% load, buffers of twice the BDP, ECMP)
but shrinks the fabric and flow sizes so a pure-Python packet simulation
finishes in seconds; see README.md for the substitution rationale.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Optional

from repro.core.factory import TransportKind
from repro.experiments.config import CongestionControl, ExperimentConfig
from repro.experiments.spec import (
    ScenarioSpec,
    auto_cell_name,
    register_scenario,
    scenario,
)

__all__ = [
    "DEFAULT_NUM_FLOWS",
    "DEFAULT_SIZE_SCALE",
    "default_config",
    "scenario",
]

#: Flow count used by the scaled-down default scenario.
DEFAULT_NUM_FLOWS = 250
#: Scale factor applied to the heavy-tailed flow-size bands.
DEFAULT_SIZE_SCALE = 0.2

#: The scaled-down version of the paper's default scenario (§4.1): every
#: registered spec layers its variants/rows on top of this baseline.
SCALED_DEFAULTS: Dict[str, Any] = dict(
    topology="fat_tree",
    fat_tree_k=4,
    link_bandwidth_bps=10e9,
    link_delay_s=1e-6,
    pfc_enabled=False,
    transport="irn",
    congestion_control="none",
    workload="heavy_tailed",
    target_load=0.7,
    num_flows=DEFAULT_NUM_FLOWS,
    flow_size_scale=DEFAULT_SIZE_SCALE,
    seed=1,
)


def default_config(
    transport: TransportKind = TransportKind.IRN,
    congestion_control: CongestionControl = CongestionControl.NONE,
    pfc_enabled: bool = False,
    name: Optional[str] = None,
    num_flows: int = DEFAULT_NUM_FLOWS,
    seed: int = 1,
    **overrides,
) -> ExperimentConfig:
    """One config on the scaled-down default scenario (§4.1)."""
    fields = dict(SCALED_DEFAULTS)
    fields.update(
        transport=transport,
        congestion_control=congestion_control,
        pfc_enabled=pfc_enabled,
        num_flows=num_flows,
        seed=seed,
    )
    fields.update(overrides)
    config = ExperimentConfig(name=name or "default", **fields)
    if name is None:
        config.name = auto_cell_name(
            config.transport_name, config.congestion_control_name, config.pfc_enabled
        )
    return config


def _scheme(
    transport: str = "irn", cc: str = "none", pfc: bool = False, **extra: Any
) -> Dict[str, Any]:
    """Variant shorthand: the three fields every scheme column sets."""
    return dict(transport=transport, congestion_control=cc, pfc_enabled=pfc, **extra)


def _paper_scenario(
    name: str,
    description: str,
    variants: Mapping[str, Mapping[str, Any]],
    rows: Optional[Mapping[str, Mapping[str, Any]]] = None,
    defaults: Optional[Mapping[str, Any]] = None,
    **kwargs: Any,
) -> ScenarioSpec:
    """Register a spec whose defaults are the scaled default scenario."""
    merged = dict(SCALED_DEFAULTS)
    merged.update(defaults or {})
    return register_scenario(
        ScenarioSpec(
            name=name,
            description=description,
            defaults=merged,
            variants=dict(variants),
            rows=None if rows is None else dict(rows),
            **kwargs,
        )
    )


# ---------------------------------------------------------------------------
# §4.2 basic results
# ---------------------------------------------------------------------------
_paper_scenario(
    "fig1",
    "Figure 1: IRN (without PFC) vs RoCE (with PFC), no congestion control",
    {
        "RoCE (with PFC)": _scheme("roce", pfc=True),
        "IRN (without PFC)": _scheme("irn", pfc=False),
    },
    seeds=(1, 2, 3),
)

_paper_scenario(
    "fig2",
    "Figure 2: impact of enabling PFC with IRN",
    {
        "IRN with PFC": _scheme("irn", pfc=True),
        "IRN (without PFC)": _scheme("irn", pfc=False),
    },
    seeds=(1, 2, 3),
)

_paper_scenario(
    "fig3",
    "Figure 3: impact of disabling PFC with RoCE",
    {
        "RoCE (with PFC)": _scheme("roce", pfc=True),
        "RoCE without PFC": _scheme("roce", pfc=False),
    },
    seeds=(1, 2, 3),
)


def _cc_pair_variants(
    scheme_a: Dict[str, Any], label_a: str,
    scheme_b: Dict[str, Any], label_b: str,
    ccs: Iterable[str] = ("timely", "dcqcn"),
) -> Dict[str, Dict[str, Any]]:
    """Two schemes crossed with explicit CC algorithms (cc varies slowest)."""
    variants: Dict[str, Dict[str, Any]] = {}
    for cc in ccs:
        variants[f"{label_a} +{cc}"] = dict(scheme_a, congestion_control=cc)
        variants[f"{label_b} +{cc}"] = dict(scheme_b, congestion_control=cc)
    return variants


_paper_scenario(
    "fig4",
    "Figure 4: IRN vs RoCE with Timely and DCQCN",
    _cc_pair_variants(
        _scheme("roce", pfc=True), "RoCE",
        _scheme("irn", pfc=False), "IRN",
    ),
    seeds=(1, 2, 3),
)

_paper_scenario(
    "fig5",
    "Figure 5: impact of enabling PFC with IRN under Timely and DCQCN",
    _cc_pair_variants(
        _scheme("irn", pfc=True), "IRN with PFC",
        _scheme("irn", pfc=False), "IRN",
    ),
    seeds=(1, 2, 3),
)

_paper_scenario(
    "fig6",
    "Figure 6: impact of disabling PFC with RoCE under Timely and DCQCN",
    _cc_pair_variants(
        _scheme("roce", pfc=True), "RoCE with PFC",
        _scheme("roce", pfc=False), "RoCE without PFC",
    ),
    seeds=(1, 2, 3),
)


# ---------------------------------------------------------------------------
# §4.3 factor analysis
# ---------------------------------------------------------------------------
_paper_scenario(
    "fig7",
    "Figure 7: IRN vs IRN-with-go-back-N vs IRN-without-BDP-FC",
    {
        "IRN": _scheme("irn"),
        "IRN with Go-Back-N": _scheme("irn_go_back_n"),
        "IRN without BDP-FC": _scheme("irn_no_bdpfc"),
    },
    seeds=(1, 2, 3),
)

_paper_scenario(
    "no_sack",
    "§4.3(2): selective retransmission without SACK state vs full IRN",
    {
        "IRN": _scheme("irn"),
        "IRN without SACK": _scheme("irn_no_sack"),
    },
    seeds=(1, 2, 3),
)


# ---------------------------------------------------------------------------
# §4.4 robustness and tail latency
# ---------------------------------------------------------------------------
_paper_scenario(
    "fig8",
    "Figure 8: tail latency of single-packet messages, per CC scheme",
    {
        f"{label} +{cc}": dict(base, congestion_control=cc)
        for cc in ("none", "timely", "dcqcn")
        for label, base in (
            ("RoCE (with PFC)", _scheme("roce", pfc=True)),
            ("IRN with PFC", _scheme("irn", pfc=True)),
            ("IRN (without PFC)", _scheme("irn", pfc=False)),
        )
    },
    seeds=(1, 2, 3),
)


def _incast_rows(
    fan_ins: Iterable[int], total_bytes: int, start_time: float = 0.0
) -> Dict[str, Dict[str, Any]]:
    return {
        f"M={fan_in}": {
            "incast": {
                "total_bytes": total_bytes,
                "fan_in": fan_in,
                "destination": "h0",
                "start_time": start_time,
            }
        }
        for fan_in in fan_ins
    }


_paper_scenario(
    "fig9",
    "Figure 9: incast request completion time, IRN vs RoCE, vs fan-in M",
    {
        "RoCE": _scheme("roce", pfc=True),
        "IRN": _scheme("irn", pfc=False),
    },
    # The registered default tops out at M=15: the k=4 default fabric has 16
    # hosts, and an incast needs fan_in+1 of them.  (The paper's larger
    # fan-ins run via fig9_configs(fan_ins=...) on scaled-up fabrics.)
    rows=_incast_rows(fan_ins=(5, 10, 15), total_bytes=3_000_000),
    defaults={"workload": "none", "num_flows": 0},
    cell_label="{variant} {row}",
    name_template="incast-{transport}-m{incast.fan_in}",
    seeds=(1, 2, 3),
)

_paper_scenario(
    "incast_cross_traffic",
    "§4.4.3: incast plus a 50%-load background workload",
    {
        "RoCE (with PFC)": _scheme("roce", pfc=True),
        "IRN (without PFC)": _scheme("irn", pfc=False),
    },
    defaults={
        "target_load": 0.5,
        "incast": {
            "total_bytes": 3_000_000,
            "fan_in": 10,
            "destination": "h0",
            "start_time": 1e-4,
        },
    },
    seeds=(1, 2, 3),
)


# ---------------------------------------------------------------------------
# §4.5 / §4.6 comparisons with Resilient RoCE and iWARP
# ---------------------------------------------------------------------------
_paper_scenario(
    "fig10",
    "Figure 10: Resilient RoCE (RoCE+DCQCN without PFC) vs plain IRN",
    {
        "Resilient RoCE": _scheme("roce", cc="dcqcn", pfc=False),
        "IRN": _scheme("irn", pfc=False),
    },
    seeds=(1, 2, 3),
)

_paper_scenario(
    "fig11",
    "Figure 11: iWARP's TCP stack vs IRN (no explicit congestion control)",
    {
        "iWARP": _scheme("iwarp"),
        "IRN": _scheme("irn"),
        "IRN + AIMD": _scheme("irn", cc="aimd"),
    },
    seeds=(1, 2, 3),
)

_paper_scenario(
    "fig12",
    "Figure 12: IRN with worst-case implementation overheads (§6.3)",
    {
        "RoCE (with PFC)": _scheme("roce", pfc=True),
        "IRN (no overheads)": _scheme("irn"),
        "IRN (worst-case overheads)": _scheme("irn", worst_case_overheads=True),
    },
    seeds=(1, 2, 3),
)


# ---------------------------------------------------------------------------
# Appendix A sweeps (Tables 3-9)
# ---------------------------------------------------------------------------

#: IRN (no PFC), IRN + PFC and RoCE + PFC -- the appendix table columns.
COMPARISON_TRIPLE: Dict[str, Dict[str, Any]] = {
    "IRN": _scheme("irn", pfc=False),
    "IRN+PFC": _scheme("irn", pfc=True),
    "RoCE+PFC": _scheme("roce", pfc=True),
}


def _load_rows(utilizations: Iterable[float]) -> Dict[str, Dict[str, Any]]:
    return {f"{int(util * 100)}%": {"target_load": util} for util in utilizations}


def _bandwidth_rows(bandwidths_gbps: Iterable[float]) -> Dict[str, Dict[str, Any]]:
    return {f"{int(bw)}Gbps": {"link_bandwidth_bps": bw * 1e9} for bw in bandwidths_gbps}


def _arity_rows(arities: Iterable[int]) -> Dict[str, Dict[str, Any]]:
    return {f"k={k} ({k ** 3 // 4} hosts)": {"fat_tree_k": k} for k in arities}


def _buffer_rows(buffer_bytes: Iterable[int]) -> Dict[str, Dict[str, Any]]:
    return {f"{size // 1000}KB": {"buffer_bytes_per_port": size} for size in buffer_bytes}


def _rto_rows(rto_high_values_s: Iterable[float]) -> Dict[str, Dict[str, Any]]:
    return {f"{int(value * 1e6)}us": {"rto_high_s": value} for value in rto_high_values_s}


def _threshold_rows(n_values: Iterable[int]) -> Dict[str, Dict[str, Any]]:
    return {f"N={n}": {"rto_low_threshold_packets": n} for n in n_values}


_paper_scenario(
    "table3",
    "Table 3: link utilization sweep",
    COMPARISON_TRIPLE,
    rows=_load_rows((0.3, 0.5, 0.7, 0.9)),
    seeds=(1, 2, 3),
)

_paper_scenario(
    "table4",
    "Table 4: link bandwidth sweep (paper: 10/40/100 Gbps)",
    COMPARISON_TRIPLE,
    rows=_bandwidth_rows((5, 10, 25)),
    seeds=(1, 2, 3),
)

_paper_scenario(
    "table5",
    "Table 5: fat-tree scale sweep (paper: k = 6, 8, 10)",
    COMPARISON_TRIPLE,
    rows=_arity_rows((4, 6)),
    seeds=(1, 2, 3),
)

_paper_scenario(
    "table6",
    "Table 6: heavy-tailed vs uniform workload",
    COMPARISON_TRIPLE,
    rows={
        "Heavy-tailed": {},
        "Uniform": {
            "workload": "uniform",
            "uniform_low_bytes": 50_000,
            "uniform_high_bytes": 500_000,
        },
    },
    seeds=(1, 2, 3),
)

_paper_scenario(
    "table7",
    "Table 7: per-port buffer size sweep (paper: 60-480 KB at 40 Gbps)",
    COMPARISON_TRIPLE,
    rows=_buffer_rows((15_000, 30_000, 60_000)),
    seeds=(1, 2, 3),
)

_paper_scenario(
    "table8",
    "Table 8: RTO_high sweep",
    COMPARISON_TRIPLE,
    rows=_rto_rows((320e-6, 640e-6, 1280e-6)),
    seeds=(1, 2, 3),
)

_paper_scenario(
    "table9",
    "Table 9: threshold N for using RTO_low",
    COMPARISON_TRIPLE,
    rows=_threshold_rows((3, 10, 15)),
    seeds=(1, 2, 3),
)


# ---------------------------------------------------------------------------
# §2 PFC pathologies: circular buffer-dependency deadlock
# ---------------------------------------------------------------------------
# A ring of switches with the ``circular`` workload: every receiver is fed
# at full rate from two different upstream switches, so once the per-sender
# load crosses 0.5 the inter-switch input buffers fill, every switch pauses
# both upstream switches and the PFC wait-for graph closes into a cycle --
# the online detector (repro.sim.deadlock) reports it as ``deadlock_events``
# / ``min_time_to_deadlock_s``.  IRN runs the identical fabric lossless-off:
# it drops and retransmits instead of pausing, so its deadlock count is an
# exact zero -- the paper's §2 motivation as a reproducible figure.
_paper_scenario(
    "pfc_deadlock",
    "§2 CBD deadlock: circular ring fabric, RoCE+PFC wedges, IRN does not",
    {
        "RoCE (with PFC)": _scheme("roce", pfc=True),
        "IRN (without PFC)": _scheme("irn", pfc=False),
    },
    rows=_load_rows((0.3, 0.6, 0.9)),
    defaults=dict(
        topology="ring",
        ring_switches=3,
        workload="circular",
        num_hosts=9,
        num_flows=60,
        fixed_size_bytes=100_000,
        target_load=0.9,
    ),
    seeds=(1, 2, 3),
)


# ---------------------------------------------------------------------------
# Availability under explicit faults (repro.faults)
# ---------------------------------------------------------------------------
# The paper's §2/§5 story re-asked with faults made explicit: on a dumbbell
# whose bottleneck link misbehaves, how do FCT tails and completion degrade
# for IRN (loss-tolerant, no PFC) vs RoCE+PFC (loss-intolerant)?  Faults are
# declarative ``FaultPlan``s riding the config (and its fingerprint), so
# these sweep/cache/serve exactly like every other scenario.  Timing: 400
# heavy-tailed flows arrive over roughly the first 1.2 ms, so fault windows
# start at 300 us (leaving a fault-free warm-up that anchors the recovery
# reference goodput) and end by 1 ms, while traffic is still flowing.

_AVAILABILITY_DEFAULTS: Dict[str, Any] = dict(
    topology="dumbbell",
    num_hosts=8,
    num_flows=400,
    flow_size_scale=0.1,
)

#: Both directions of the dumbbell's s0<->s1 bottleneck link.
_BOTTLENECK = (("s0", "s1"), ("s1", "s0"))


def _flap_rows(counts: Iterable[int]) -> Dict[str, Dict[str, Any]]:
    """One row per flap count: 100 us outages every 200 us from t=300 us."""
    rows: Dict[str, Dict[str, Any]] = {}
    for count in counts:
        faults = [
            dict(kind="link_flap", src=src, dst=dst,
                 start_s=300e-6 + 200e-6 * i, end_s=400e-6 + 200e-6 * i)
            for i in range(count)
            for src, dst in _BOTTLENECK
        ]
        rows[f"{count} flap{'s' if count != 1 else ''}"] = {
            "fault_plan": {"faults": faults}
        }
    return rows


def _corruption_rows(probabilities: Iterable[float]) -> Dict[str, Dict[str, Any]]:
    """One row per corruption rate: a marginal cable from 300 us to 900 us."""
    rows: Dict[str, Dict[str, Any]] = {}
    for probability in probabilities:
        faults = [
            dict(kind="packet_corruption", src=src, dst=dst,
                 probability=probability, start_s=300e-6, end_s=900e-6)
            for src, dst in _BOTTLENECK
        ]
        rows[f"p={probability:g}"] = {"fault_plan": {"faults": faults}}
    return rows


_paper_scenario(
    "availability_flap",
    "Availability: IRN vs RoCE+PFC FCT/p99 vs bottleneck link-flap rate",
    {
        "RoCE (with PFC)": _scheme("roce", pfc=True),
        "IRN (without PFC)": _scheme("irn", pfc=False),
    },
    rows=_flap_rows((1, 2, 4)),
    defaults=_AVAILABILITY_DEFAULTS,
    seeds=(1, 2, 3),
)

_paper_scenario(
    "availability_corruption",
    "Availability: IRN vs RoCE+PFC FCT/p99 vs bottleneck corruption rate",
    {
        "RoCE (with PFC)": _scheme("roce", pfc=True),
        "IRN (without PFC)": _scheme("irn", pfc=False),
    },
    rows=_corruption_rows((0.001, 0.01, 0.05)),
    defaults=_AVAILABILITY_DEFAULTS,
    seeds=(1, 2, 3),
)


# ---------------------------------------------------------------------------
# Propagation-dominated (WAN) fabrics
# ---------------------------------------------------------------------------
# The paper's evaluation is intra-DC (homogeneous microsecond hops); these
# scenarios re-ask its IRN-vs-RoCE question on fabrics where propagation
# dominates -- the "Towards a Speed of Light Internet" regime.  Both use the
# per-link delay overrides (``wan_delay_s``) of the WAN topologies, collect
# c-latency-ratio digests (FCT over the speed-of-light bound), and sweep the
# delay heterogeneity from 100x to 1000x the intra-DC hop -- the workloads
# whose event mix exercises the hierarchical calendar's upper levels.


def _wan_delay_rows(delays_s: Iterable[float]) -> Dict[str, Dict[str, Any]]:
    """One row per long-haul delay (labeled as the ratio to the 1 us hop)."""
    return {
        f"{int(delay / 1e-6)}x": {"wan_delay_s": delay} for delay in delays_s
    }


_paper_scenario(
    "wan_incast",
    "WAN incast: fan-in across a long-haul dumbbell bottleneck, IRN vs RoCE",
    {
        "RoCE (with PFC)": _scheme("roce", pfc=True),
        "IRN (without PFC)": _scheme("irn", pfc=False),
    },
    rows=_wan_delay_rows((100e-6, 1e-3)),
    defaults=dict(
        topology="wan_dumbbell",
        num_hosts=8,
        workload="none",
        num_flows=0,
        c_latency_ratios=True,
        incast={
            "total_bytes": 1_000_000,
            "fan_in": 6,
            "destination": "h0",
            "start_time": 0.0,
        },
    ),
    cell_label="{variant} {row}",
    seeds=(1, 2, 3),
)

_paper_scenario(
    "cross_dc",
    "Cross-DC traffic: two fat-tree DCs over a long haul, IRN vs RoCE",
    {
        "RoCE (with PFC)": _scheme("roce", pfc=True),
        "IRN (without PFC)": _scheme("irn", pfc=False),
    },
    rows=_wan_delay_rows((100e-6, 1e-3)),
    defaults=dict(
        topology="inter_dc_fattree",
        fat_tree_k=4,
        num_flows=150,
        c_latency_ratios=True,
    ),
    cell_label="{variant} {row}",
    seeds=(1, 2, 3),
)


# ---------------------------------------------------------------------------
# Legacy builder functions
# ---------------------------------------------------------------------------
# Thin wrappers over the registered specs, kept with their historical
# signatures.  They return the same labels and configs (hence the same cache
# fingerprints) the hand-written builders produced.

def fig1_configs(**overrides) -> Dict[str, ExperimentConfig]:
    """Figure 1: IRN (without PFC) vs RoCE (with PFC), no congestion control."""
    return scenario("fig1").configs(**overrides)


def fig2_configs(**overrides) -> Dict[str, ExperimentConfig]:
    """Figure 2: impact of enabling PFC with IRN."""
    return scenario("fig2").configs(**overrides)


def fig3_configs(**overrides) -> Dict[str, ExperimentConfig]:
    """Figure 3: impact of disabling PFC with RoCE."""
    return scenario("fig3").configs(**overrides)


def fig4_configs(**overrides) -> Dict[str, ExperimentConfig]:
    """Figure 4: IRN vs RoCE with Timely and DCQCN."""
    return scenario("fig4").configs(**overrides)


def fig5_configs(**overrides) -> Dict[str, ExperimentConfig]:
    """Figure 5: impact of enabling PFC with IRN under Timely and DCQCN."""
    return scenario("fig5").configs(**overrides)


def fig6_configs(**overrides) -> Dict[str, ExperimentConfig]:
    """Figure 6: impact of disabling PFC with RoCE under Timely and DCQCN."""
    return scenario("fig6").configs(**overrides)


def fig7_configs(
    congestion_control: CongestionControl = CongestionControl.NONE, **overrides
) -> Dict[str, ExperimentConfig]:
    """Figure 7: IRN vs IRN-with-go-back-N vs IRN-without-BDP-FC."""
    return scenario("fig7").configs(congestion_control=congestion_control, **overrides)


def no_sack_configs(**overrides) -> Dict[str, ExperimentConfig]:
    """§4.3(2): selective retransmission without SACK state vs full IRN."""
    return scenario("no_sack").configs(**overrides)


def fig8_configs(**overrides) -> Dict[str, ExperimentConfig]:
    """Figure 8: tail latency of single-packet messages, per CC scheme."""
    return scenario("fig8").configs(**overrides)


def fig9_configs(
    fan_ins: Iterable[int] = (5, 10, 20),
    congestion_control: CongestionControl = CongestionControl.NONE,
    total_bytes: int = 3_000_000,
    **overrides,
) -> Dict[str, ExperimentConfig]:
    """Figure 9: incast request completion time, IRN vs RoCE, vs fan-in M."""
    spec = scenario("fig9").with_rows(_incast_rows(fan_ins, total_bytes))
    return spec.configs(congestion_control=congestion_control, **overrides)


def incast_with_cross_traffic_configs(
    fan_in: int = 10,
    total_bytes: int = 3_000_000,
    **overrides,
) -> Dict[str, ExperimentConfig]:
    """§4.4.3: incast plus a 50%-load background workload."""
    incast = {
        "total_bytes": total_bytes,
        "fan_in": fan_in,
        "destination": "h0",
        "start_time": 1e-4,
    }
    return scenario("incast_cross_traffic").configs(**{"incast": incast, **overrides})


def fig10_configs(**overrides) -> Dict[str, ExperimentConfig]:
    """Figure 10: Resilient RoCE (RoCE+DCQCN without PFC) vs plain IRN."""
    return scenario("fig10").configs(**overrides)


def fig11_configs(**overrides) -> Dict[str, ExperimentConfig]:
    """Figure 11: iWARP's TCP stack vs IRN (no explicit congestion control)."""
    return scenario("fig11").configs(**overrides)


def fig12_configs(
    congestion_control: CongestionControl = CongestionControl.NONE, **overrides
) -> Dict[str, ExperimentConfig]:
    """Figure 12: IRN with worst-case implementation overheads (§6.3)."""
    return scenario("fig12").configs(congestion_control=congestion_control, **overrides)


def table3_configs(
    utilizations: Iterable[float] = (0.3, 0.5, 0.7, 0.9),
    congestion_control: CongestionControl = CongestionControl.NONE,
    **overrides,
) -> Dict[str, Dict[str, ExperimentConfig]]:
    """Table 3: link utilization sweep."""
    return scenario("table3").with_rows(_load_rows(utilizations)).tables(
        congestion_control=congestion_control, **overrides
    )


def table4_configs(
    bandwidths_gbps: Iterable[float] = (5, 10, 25),
    congestion_control: CongestionControl = CongestionControl.NONE,
    **overrides,
) -> Dict[str, Dict[str, ExperimentConfig]]:
    """Table 4: link bandwidth sweep (paper: 10/40/100 Gbps)."""
    return scenario("table4").with_rows(_bandwidth_rows(bandwidths_gbps)).tables(
        congestion_control=congestion_control, **overrides
    )


def table5_configs(
    arities: Iterable[int] = (4, 6),
    congestion_control: CongestionControl = CongestionControl.NONE,
    **overrides,
) -> Dict[str, Dict[str, ExperimentConfig]]:
    """Table 5: fat-tree scale sweep (paper: k = 6, 8, 10)."""
    return scenario("table5").with_rows(_arity_rows(arities)).tables(
        congestion_control=congestion_control, **overrides
    )


def table6_configs(
    congestion_control: CongestionControl = CongestionControl.NONE, **overrides
) -> Dict[str, Dict[str, ExperimentConfig]]:
    """Table 6: heavy-tailed vs uniform workload."""
    return scenario("table6").tables(congestion_control=congestion_control, **overrides)


def table7_configs(
    buffer_bytes: Iterable[int] = (15_000, 30_000, 60_000),
    congestion_control: CongestionControl = CongestionControl.NONE,
    **overrides,
) -> Dict[str, Dict[str, ExperimentConfig]]:
    """Table 7: per-port buffer size sweep (paper: 60-480 KB at 40 Gbps)."""
    return scenario("table7").with_rows(_buffer_rows(buffer_bytes)).tables(
        congestion_control=congestion_control, **overrides
    )


def table8_configs(
    rto_high_values_s: Iterable[float] = (320e-6, 640e-6, 1280e-6),
    congestion_control: CongestionControl = CongestionControl.NONE,
    **overrides,
) -> Dict[str, Dict[str, ExperimentConfig]]:
    """Table 8: RTO_high sweep."""
    return scenario("table8").with_rows(_rto_rows(rto_high_values_s)).tables(
        congestion_control=congestion_control, **overrides
    )


def table9_configs(
    n_values: Iterable[int] = (3, 10, 15),
    congestion_control: CongestionControl = CongestionControl.NONE,
    **overrides,
) -> Dict[str, Dict[str, ExperimentConfig]]:
    """Table 9: threshold N for using RTO_low."""
    return scenario("table9").with_rows(_threshold_rows(n_values)).tables(
        congestion_control=congestion_control, **overrides
    )
