"""Declarative scenario specifications.

A :class:`ScenarioSpec` is a data-only description of one paper figure/table
(or any user experiment): a set of baseline config fields, an ordered mapping
of *variants* (the schemes being compared -- the figure legend / table
columns), an optional ordered mapping of *rows* (a swept parameter -- the
table rows), seed replicas, and an aggregation policy.  Everything in a spec
is JSON-safe, so specs round-trip through ``to_dict``/``from_dict`` and can
be shipped to other processes or machines as the unit of sweep work.

Cells are built as ``defaults < row < variant < call overrides`` (rightmost
wins), exactly mirroring how the retired hand-written ``figN_configs``
builders layered :func:`~repro.experiments.scenarios.default_config` and
``**overrides`` -- so the :class:`ExperimentConfig` objects (and their cache
fingerprints) are identical to what those builders produced.

Specs register themselves in the :data:`SCENARIOS` registry; resolve one
with :func:`scenario` (or :func:`repro.api.load_scenario`)::

    from repro.experiments.spec import scenario

    rows = scenario("fig8").sweep(seeds=3, workers=4).rows
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import asdict, dataclass, field, fields, is_dataclass, replace
from enum import Enum
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.experiments.config import ExperimentConfig
from repro.registry import Registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.sweep import SweepResult

__all__ = [
    "SCENARIOS",
    "ScenarioSpec",
    "auto_cell_name",
    "register_scenario",
    "replica_label",
    "scenario",
]


def auto_cell_name(transport: str, congestion_control: str, pfc_enabled: bool) -> str:
    """The historical auto-derived cell name, ``{transport}-{cc}-{pfc|nopfc}``.

    One definition shared by :meth:`ScenarioSpec._build_cell` and the legacy
    :func:`~repro.experiments.scenarios.default_config`: names group
    aggregation cells, so the two construction paths must never drift.
    """
    return f"{transport}-{congestion_control}-{'pfc' if pfc_enabled else 'nopfc'}"


def replica_label(label: str, seed: int) -> str:
    """The label of one seed replica of a cell (``"<label> [seed=N]"``).

    Shared with ``benchmarks/conftest.py``'s ``seed_replicas`` -- benchmark
    assertions index results by this exact format.
    """
    return f"{label} [seed={seed}]"

#: Valid override keys: every ExperimentConfig field (including ``name``).
_CONFIG_FIELDS = frozenset(f.name for f in fields(ExperimentConfig))

_PLACEHOLDER = re.compile(r"\{([^{}]+)\}")


def _json_safe(value: Any) -> Any:
    """Normalize an override value to plain JSON types (enums collapse to
    their ``.value``, nested dataclasses to dicts, tuples to lists), so a
    spec serializes identically however its overrides were spelled."""
    if isinstance(value, Enum):
        return value.value
    if is_dataclass(value) and not isinstance(value, type):
        return _json_safe(asdict(value))
    if isinstance(value, Mapping):
        return {str(key): _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    return value


def _check_override_keys(where: str, overrides: Mapping[str, Any]) -> None:
    unknown = sorted(set(overrides) - _CONFIG_FIELDS)
    if unknown:
        raise ValueError(
            f"{where}: unknown ExperimentConfig field(s) {unknown}; "
            f"valid fields: {sorted(_CONFIG_FIELDS)}"
        )


def _flatten(mapping: Mapping[str, Any], prefix: str = "") -> Dict[str, Any]:
    flat: Dict[str, Any] = {}
    for key, value in mapping.items():
        dotted = f"{prefix}{key}"
        if isinstance(value, Mapping):
            flat.update(_flatten(value, f"{dotted}."))
        else:
            flat[dotted] = value
    return flat


def _render(template: str, mapping: Mapping[str, Any]) -> str:
    """Fill ``{key}`` placeholders (dotted keys reach into nested dicts)."""

    def substitute(match: "re.Match[str]") -> str:
        key = match.group(1)
        if key not in mapping:
            raise KeyError(
                f"template {template!r} references unknown key {key!r}; "
                f"available: {sorted(mapping)}"
            )
        return str(mapping[key])

    return _PLACEHOLDER.sub(substitute, template)


@dataclass(frozen=True)
class ScenarioSpec:
    """A declarative, JSON-round-trippable experiment scenario.

    Attributes
    ----------
    name:
        Registry name (``"fig8"``, ``"table3"`` ...).
    description:
        One-line human description (shown by ``python -m repro list``).
    defaults:
        Config fields shared by every cell (on top of
        :class:`ExperimentConfig` defaults).
    variants:
        Ordered ``label -> config overrides`` for the compared schemes.
    rows:
        Optional ordered ``label -> config overrides`` for a swept parameter
        (appendix-table rows, incast fan-in ...).  ``None`` means a flat
        scenario.
    cell_label:
        Template for flat cell labels when ``rows`` is set.  Defaults to
        ``"{row}|{variant}"`` (the shape the benchmarks always used);
        Figure 9 uses ``"{variant} {row}"``.
    name_template:
        Template for each cell's ``config.name``.  ``None`` derives the
        historical default: ``{transport}-{cc}-{pfc|nopfc}`` for flat
        scenarios, ``{scenario}|{row}|{variant}`` for row scenarios (unique
        per cell, so seed replicas aggregate per cell by ``name``).
    seeds:
        Default seed replicas for :meth:`replicated` / :meth:`sweep`.
    aggregate_by:
        :class:`~repro.experiments.results.ResultRow` fields that define an
        aggregation cell for :func:`~repro.experiments.sweep.aggregate_rows`.
    """

    name: str
    description: str = ""
    defaults: Dict[str, Any] = field(default_factory=dict)
    variants: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    rows: Optional[Dict[str, Dict[str, Any]]] = None
    cell_label: Optional[str] = None
    name_template: Optional[str] = None
    seeds: Optional[Tuple[int, ...]] = None
    aggregate_by: Tuple[str, ...] = ("name",)

    def __post_init__(self) -> None:
        if not self.variants:
            raise ValueError(f"scenario {self.name!r} declares no variants")
        object.__setattr__(self, "defaults", _json_safe(self.defaults))
        object.__setattr__(
            self, "variants", {label: _json_safe(ov) for label, ov in self.variants.items()}
        )
        if self.rows is not None:
            object.__setattr__(
                self, "rows", {label: _json_safe(ov) for label, ov in self.rows.items()}
            )
        if self.seeds is not None:
            object.__setattr__(self, "seeds", tuple(int(seed) for seed in self.seeds))
        object.__setattr__(self, "aggregate_by", tuple(self.aggregate_by))
        _check_override_keys(f"scenario {self.name!r} defaults", self.defaults)
        for label, overrides in self.variants.items():
            _check_override_keys(f"scenario {self.name!r} variant {label!r}", overrides)
        for label, overrides in (self.rows or {}).items():
            _check_override_keys(f"scenario {self.name!r} row {label!r}", overrides)

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    def variant_labels(self) -> Tuple[str, ...]:
        return tuple(self.variants)

    def row_labels(self) -> Tuple[str, ...]:
        return tuple(self.rows or {})

    def shape(self) -> str:
        """The one-line shape summary (``"3 variants x 4 rows, seeds [...]"``).

        Shared by ``python -m repro list`` and the results service's
        ``GET /scenarios`` catalog (via :func:`repro.serve.catalog_entries`),
        so the two descriptions cannot drift.
        """
        shape = f"{len(self.variants)} variants"
        if self.rows:
            shape += f" x {len(self.rows)} rows"
        if self.seeds:
            shape += f", seeds {list(self.seeds)}"
        return shape

    @property
    def effective_cell_label(self) -> str:
        if self.cell_label is not None:
            return self.cell_label
        return "{variant}" if self.rows is None else "{row}|{variant}"

    # ------------------------------------------------------------------
    # Derived specs
    # ------------------------------------------------------------------
    def with_rows(self, rows: Mapping[str, Mapping[str, Any]]) -> "ScenarioSpec":
        """A copy sweeping different rows (custom utilizations, fan-ins ...)."""
        return replace(self, rows={label: dict(ov) for label, ov in rows.items()})

    def with_defaults(self, **defaults: Any) -> "ScenarioSpec":
        """A copy with extra all-cell defaults layered on top."""
        return replace(self, defaults={**self.defaults, **defaults})

    def with_seeds(self, seeds: Optional[Sequence[int]]) -> "ScenarioSpec":
        """A copy with a different default seed-replica axis."""
        return replace(self, seeds=None if seeds is None else tuple(seeds))

    # ------------------------------------------------------------------
    # Config construction
    # ------------------------------------------------------------------
    def _build_cell(
        self, row_label: Optional[str], variant_label: str, call_overrides: Mapping[str, Any]
    ) -> Tuple[str, ExperimentConfig, bool]:
        """One cell: ``(label, config, name_was_auto_derived)``."""
        merged: Dict[str, Any] = dict(self.defaults)
        if row_label is not None:
            merged.update(self.rows[row_label])
        merged.update(self.variants[variant_label])
        merged.update(call_overrides)
        explicit_name = merged.pop("name", None)

        mapping = _flatten(_json_safe(merged))
        mapping["scenario"] = self.name
        mapping["variant"] = variant_label
        mapping["row"] = row_label if row_label is not None else ""
        mapping["pfc"] = "pfc" if merged.get("pfc_enabled", True) else "nopfc"

        label = _render(self.effective_cell_label, mapping)
        auto_named = False
        if explicit_name is not None:
            name = explicit_name
        elif self.name_template is not None:
            name = _render(self.name_template, mapping)
        elif self.rows is None:
            name = auto_cell_name(
                mapping.get("transport", "irn"),
                mapping.get("congestion_control", "none"),
                merged.get("pfc_enabled", True),
            )
            auto_named = True
        else:
            name = f"{self.name}|{mapping['row']}|{variant_label}"
        return label, ExperimentConfig(name=name, **merged), auto_named

    def _expand(
        self, call_overrides: Mapping[str, Any]
    ) -> List[Tuple[Optional[str], str, str, ExperimentConfig]]:
        """Every cell as ``(row_label, variant_label, label, config)``,
        rows outer / variants inner, with unique labels and unique names.

        The auto-derived flat name encodes only transport/cc/pfc; when two
        variants differ in some other field (e.g. fig12's overheads flag)
        the colliding names gain a ``|variant`` suffix so seed replicas of
        *different* cells never silently aggregate together (names group
        aggregation cells; labels are already checked for uniqueness).
        """
        _check_override_keys(f"scenario {self.name!r} overrides", call_overrides)
        cells: List[Tuple[Optional[str], str, str, ExperimentConfig, bool]] = []
        seen_labels: set = set()
        for row_label in (self.row_labels() or (None,)):
            for variant_label in self.variants:
                label, config, auto = self._build_cell(row_label, variant_label, call_overrides)
                if label in seen_labels:
                    raise ValueError(f"scenario {self.name!r}: duplicate cell label {label!r}")
                seen_labels.add(label)
                cells.append((row_label, variant_label, label, config, auto))
        name_counts = Counter(cell[3].name for cell in cells)
        expanded = []
        for row_label, variant_label, label, config, auto in cells:
            if auto and name_counts[config.name] > 1:
                config = config.with_overrides(name=f"{config.name}|{variant_label}")
            expanded.append((row_label, variant_label, label, config))
        return expanded

    def configs(self, **overrides: Any) -> Dict[str, ExperimentConfig]:
        """Flat ``label -> ExperimentConfig`` for every cell (rows outer,
        variants inner).  ``overrides`` apply to every cell and win over the
        spec's own layers, exactly like the old builders' ``**overrides``."""
        return {label: config for _, _, label, config in self._expand(overrides)}

    def tables(self, **overrides: Any) -> Dict[str, Dict[str, ExperimentConfig]]:
        """Nested ``row -> variant -> config`` (the appendix-table shape)."""
        if self.rows is None:
            raise ValueError(f"scenario {self.name!r} has no rows; use .configs()")
        table: Dict[str, Dict[str, ExperimentConfig]] = {}
        for row_label, variant_label, _, config in self._expand(overrides):
            table.setdefault(row_label, {})[variant_label] = config
        return table

    def _resolve_seeds(
        self, seeds: Optional[Union[int, Sequence[int]]]
    ) -> Optional[Tuple[int, ...]]:
        if seeds is None:
            return self.seeds
        if isinstance(seeds, int):
            return tuple(range(1, seeds + 1))
        return tuple(int(seed) for seed in seeds)

    def replicated(
        self, seeds: Optional[Union[int, Sequence[int]]] = None, **overrides: Any
    ) -> Dict[str, ExperimentConfig]:
        """:meth:`configs` expanded over a seed axis.

        ``seeds`` may be a sequence, an int ``N`` (meaning seeds ``1..N``)
        or ``None`` (the spec's own ``seeds``; no expansion when unset).
        Labels gain a `` [seed=N]`` suffix; cell names are untouched, so
        replicas of one cell share a ``name`` and aggregate together.

        An explicit ``seed=...`` override disables the spec's *default*
        axis (the caller pinned one seed; silently replacing it with the
        axis seeds would run everything except what was asked for).  An
        explicit ``seeds=`` argument still wins over a ``seed`` override.
        """
        if seeds is None and "seed" in overrides:
            return self.configs(**overrides)
        resolved = self._resolve_seeds(seeds)
        base = self.configs(**overrides)
        if not resolved:
            return base
        return {
            replica_label(label, seed): config.with_overrides(seed=seed)
            for label, config in base.items()
            for seed in resolved
        }

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def sweep(
        self,
        *,
        seeds: Optional[Union[int, Sequence[int]]] = None,
        workers: Optional[int] = None,
        cache: Optional[Any] = None,
        backend: Optional[Any] = None,
        progress: Optional[Any] = None,
        **overrides: Any,
    ) -> "SweepResult":
        """Run every cell (x seed replicas) through
        :func:`~repro.experiments.sweep.run_sweep` and return its
        :class:`~repro.experiments.sweep.SweepResult`.

        ``backend`` selects how uncached cells execute (a registered
        execution-backend name or instance -- e.g. a
        :class:`~repro.experiments.queue.QueueBackend` that shards cells
        across worker machines); ``progress`` observes every completed row
        with streaming partial aggregates.  Both default to the historical
        local behavior driven by ``workers``.  The partial aggregates are
        grouped by this spec's ``aggregate_by`` policy.

        Registrations are process-local: if this spec references components
        registered in the current script (not an importable module), pass
        ``workers=1`` -- parallel worker processes re-import a clean
        registry and, on spawn-based platforms (macOS/Windows), would fail
        each cell with an unknown-name error.  (``REPRO_PLUGINS`` lifts
        this for importable modules, including queue-backend workers on
        other machines.)
        """
        from repro.experiments.sweep import run_sweep

        return run_sweep(
            self.replicated(seeds=seeds, **overrides),
            workers=workers,
            cache=cache,
            backend=backend,
            progress=progress,
            progress_by=self.aggregate_by,
        )

    def aggregate(self, result: Any) -> Any:
        """Fold a :class:`SweepResult` (or iterable of rows) per the spec's
        ``aggregate_by`` policy."""
        from repro.experiments.sweep import aggregate_rows

        rows = result.rows.values() if hasattr(result, "rows") else result
        return aggregate_rows(rows, by=self.aggregate_by)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict (inverse of :meth:`from_dict`)."""
        payload = asdict(self)
        payload["seeds"] = list(self.seeds) if self.seeds is not None else None
        payload["aggregate_by"] = list(self.aggregate_by)
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (extra keys rejected)."""
        payload = dict(data)
        if payload.get("seeds") is not None:
            payload["seeds"] = tuple(payload["seeds"])
        if payload.get("aggregate_by") is not None:
            payload["aggregate_by"] = tuple(payload["aggregate_by"])
        return cls(**payload)


# ---------------------------------------------------------------------------
# The scenario registry
# ---------------------------------------------------------------------------

SCENARIOS: Registry[ScenarioSpec] = Registry("scenario")


def register_scenario(spec: ScenarioSpec, *, replace: bool = False) -> ScenarioSpec:
    """Add ``spec`` to :data:`SCENARIOS` under its own name."""
    SCENARIOS.register(spec.name, spec, replace=replace)
    return spec


def scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario by name (loading the paper presets)."""
    # The paper presets register themselves on import; pulling the module in
    # here keeps `scenario("fig1")` working from a cold interpreter.
    import repro.experiments.scenarios  # noqa: F401

    return SCENARIOS.get(name)
