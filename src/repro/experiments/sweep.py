"""Parallel experiment sweeps with on-disk result caching.

Reproducing one figure of the paper means running many independent
simulations (transports x congestion-control schemes x seeds).  This module
turns that embarrassingly parallel work into one call:

1. :class:`ParameterGrid` expands a base :class:`ExperimentConfig` and a
   mapping of ``field -> values`` into labelled configs (the *cells*);
2. :func:`run_sweep` hands the cells to a pluggable execution backend
   (:mod:`repro.experiments.backends`): ``workers <= 1`` selects the
   deterministic in-process ``serial`` backend, ``workers=N`` the local
   ``process`` pool (with a serial fallback when pools are unavailable),
   and ``backend=`` anything registered -- including the durable ``queue``
   backend (:mod:`repro.experiments.queue`) whose tasks any number of
   worker machines drain;
3. completed cells are flattened to picklable :class:`ResultRow` records and,
   when a :class:`ResultCache` is given, stored on disk keyed by
   ``ExperimentConfig.fingerprint()`` so repeated invocations only run the
   cells that changed;
4. :func:`aggregate_rows` folds seed replicas into per-cell mean/p99 rows the
   benchmark suite can assert against.

Worked example::

    from repro.experiments import ExperimentConfig, TransportKind
    from repro.experiments.sweep import ParameterGrid, ResultCache, run_sweep

    grid = ParameterGrid(
        ExperimentConfig(num_flows=100),
        axes={
            "transport": [TransportKind.IRN, TransportKind.ROCE],
            "pfc_enabled": [False, True],
            "seed": [1, 2, 3],
        },
    )
    sweep = run_sweep(grid, cache=ResultCache(".sweep-cache"))
    table = sweep.aggregate(by=("transport", "pfc_enabled"))

Cache entries are invalidated automatically when simulator code changes:
every stored row carries a fingerprint of the installed ``repro`` source
tree (see :func:`code_fingerprint`) alongside the schema version, and rows
written by a different source tree read as misses.
"""

from __future__ import annotations

import hashlib
import importlib
import itertools
import json
import os
from collections import Counter
from dataclasses import dataclass, field, fields
from enum import Enum
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.experiments.config import ExperimentConfig
from repro.experiments.results import ResultRow
from repro.metrics.partial import PartialAggregator

#: Bumped whenever the ``ResultRow`` schema or run semantics change in a way
#: that invalidates previously cached rows.  (2: rows carry quantile-digest
#: payloads for FCT / slowdown / single-packet latency.)
CACHE_SCHEMA_VERSION = 2

#: Kept as an alias for the backend module's constant (historical home).
from repro.experiments.backends import (  # noqa: E402, F401
    MAX_AUTO_WORKERS as _MAX_AUTO_WORKERS,
)


def _format_axis_value(value: Any) -> str:
    if isinstance(value, Enum):
        return str(value.value)
    return str(value)


_CODE_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """SHA-256 over the installed ``repro`` source tree (paths + contents).

    Mixed into every cache entry so rows computed by one version of the
    simulator stop being served once any file under ``src/repro`` changes --
    the ROADMAP's code-aware invalidation.  Computed once per process
    (hashing the ~100-file tree takes single-digit milliseconds).
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode("utf-8"))
            digest.update(b"\x00")
            digest.update(path.read_bytes())
            digest.update(b"\x00")
        _CODE_FINGERPRINT = digest.hexdigest()
    return _CODE_FINGERPRINT


class ParameterGrid:
    """The cross product of per-field value lists over a base config.

    Parameters
    ----------
    base:
        Config supplying every field not named in ``axes``.
    axes:
        Mapping of :class:`ExperimentConfig` field name to the sequence of
        values that axis takes.  Axis order is preserved: the last axis
        varies fastest, like :func:`itertools.product`.
    """

    def __init__(self, base: ExperimentConfig, axes: Mapping[str, Sequence[Any]]) -> None:
        valid = {f.name for f in fields(ExperimentConfig)}
        unknown = [name for name in axes if name not in valid]
        if unknown:
            raise ValueError(
                f"unknown ExperimentConfig field(s) in grid axes: {sorted(unknown)}"
            )
        empty = [name for name, values in axes.items() if not values]
        if empty:
            raise ValueError(f"grid axes with no values: {sorted(empty)}")
        self.base = base
        self.axes: Dict[str, List[Any]] = {name: list(values) for name, values in axes.items()}

    def __len__(self) -> int:
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    def label_for(self, overrides: Mapping[str, Any]) -> str:
        """The human-readable cell label, e.g. ``"transport=irn, seed=1"``."""
        return ", ".join(
            f"{name}={_format_axis_value(overrides[name])}" for name in self.axes
        )

    def expand(self) -> Dict[str, ExperimentConfig]:
        """Labelled configs for every cell, in deterministic grid order.

        Raises :class:`ValueError` when two cells produce the same label
        (e.g. a duplicated axis value), which would otherwise silently
        collapse replicas.
        """
        cells: Dict[str, ExperimentConfig] = {}
        names = list(self.axes)
        for combo in itertools.product(*self.axes.values()):
            overrides = dict(zip(names, combo))
            label = self.label_for(overrides)
            if label in cells:
                raise ValueError(
                    f"grid cells collide on label {label!r}; remove duplicate axis values"
                )
            if "name" not in overrides:
                overrides["name"] = label
            cells[label] = self.base.with_overrides(**overrides)
        return cells


@dataclass(frozen=True)
class CacheEntry:
    """One parsed cache (or queue-part) file, staleness visible to callers.

    :meth:`ResultCache.get` conflates every failure mode into a miss because
    the sweep layer only asks "can I skip this simulation?".  The results
    service (:mod:`repro.serve`) needs to *distinguish* rows written by a
    different source tree (serve an HTTP 409, not a silent 404) from rows
    that are genuinely absent or corrupt, so :meth:`ResultCache.scan` /
    :meth:`ResultCache.load_entry` expose this richer view.
    """

    fingerprint: str
    path: Path
    #: Schema version recorded in the file (``None`` when unreadable).
    schema: Optional[int]
    #: Code fingerprint of the source tree that wrote the row.
    code: Optional[str]
    #: The parsed row -- present even when ``code`` is stale, ``None`` only
    #: when the file is corrupt or from an incompatible schema version.
    row: Optional[ResultRow]

    @property
    def stale_code(self) -> bool:
        """The row parsed but was produced by a different source tree."""
        return self.row is not None and self.code != code_fingerprint()

    @property
    def fresh(self) -> bool:
        """The row parsed and matches the running simulator's code."""
        return self.row is not None and not self.stale_code


class ResultCache:
    """On-disk store of :class:`ResultRow` records keyed by config fingerprint.

    Each row lives in its own JSON file, so concurrent sweeps sharing a cache
    directory never corrupt each other: writes go through a temp file and an
    atomic rename.

    Entries are *code-aware*: every file records the :func:`code_fingerprint`
    of the source tree that produced it, and entries from a different tree
    (or an older :data:`CACHE_SCHEMA_VERSION`) read as misses, so editing the
    simulator can never serve stale rows.  Pass ``code_aware=False`` to keep
    serving rows across code changes (e.g. archived result directories).
    """

    def __init__(self, directory: Union[str, Path], code_aware: bool = True) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.code_aware = code_aware

    def path_for(self, fingerprint: str) -> Path:
        return self.directory / f"{fingerprint}.json"

    def _load(self, path: Path) -> Optional[ResultRow]:
        try:
            payload = json.loads(path.read_text())
            if payload.get("schema") != CACHE_SCHEMA_VERSION:
                return None
            if self.code_aware and payload.get("code") != code_fingerprint():
                return None
            return ResultRow.from_dict(payload["row"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def get(self, config: ExperimentConfig) -> Optional[ResultRow]:
        """The cached row for ``config``, or ``None`` (corrupt files = miss)."""
        return self._load(self.path_for(config.fingerprint()))

    # ------------------------------------------------------------------
    # Indexing / iteration (the read-path surface of ``repro serve``)
    # ------------------------------------------------------------------
    def load_entry(self, fingerprint: str) -> Optional[CacheEntry]:
        """The parsed :class:`CacheEntry` for ``fingerprint``, or ``None``
        when no such file exists.  Unlike :meth:`get`, a stale-code entry is
        *returned* (with ``stale_code`` set) rather than hidden."""
        path = self.path_for(fingerprint)
        if not path.exists():
            return None
        return self._read_entry(path)

    def scan(self) -> Iterator[CacheEntry]:
        """Every cache file as a :class:`CacheEntry`, in fingerprint order.

        Stale-code and corrupt entries are included (``stale_code`` /
        ``row is None``), so callers can count and report them instead of
        silently skipping -- the results service turns stale entries into
        HTTP 409s rather than pretending they do not exist.
        """
        for path in sorted(self.directory.glob("*.json")):
            yield self._read_entry(path)

    def signature(self) -> Tuple[Tuple[str, int, int], ...]:
        """A cheap stat-based fingerprint of the cache contents.

        Sorted ``(filename, mtime_ns, size)`` triples: any row added,
        replaced or removed changes the signature without reading a single
        file body.  The results service re-stats this per request to decide
        whether its in-process warm aggregates are still valid.
        """
        entries = []
        try:
            with os.scandir(self.directory) as it:
                for dirent in it:
                    if dirent.name.endswith(".json"):
                        try:
                            stat = dirent.stat()
                        except FileNotFoundError:
                            continue  # deleted mid-scan
                        entries.append((dirent.name, stat.st_mtime_ns, stat.st_size))
        except FileNotFoundError:
            pass
        return tuple(sorted(entries))

    def _read_entry(self, path: Path) -> CacheEntry:
        fingerprint = path.stem
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            payload = None
        if not isinstance(payload, dict):
            return CacheEntry(fingerprint, path, schema=None, code=None, row=None)
        schema = payload.get("schema")
        code = payload.get("code")
        row: Optional[ResultRow] = None
        if schema == CACHE_SCHEMA_VERSION:
            try:
                row = ResultRow.from_dict(payload["row"])
            except (KeyError, TypeError, ValueError):
                row = None
        return CacheEntry(fingerprint, path, schema=schema, code=code, row=row)

    def put(self, row: ResultRow) -> None:
        """Store ``row`` under its fingerprint (atomic rename)."""
        path = self.path_for(row.fingerprint)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "code": code_fingerprint(),
            "row": row.to_dict(),
        }
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload, indent=1, sort_keys=True))
        tmp.replace(path)

    def rows(self) -> List[ResultRow]:
        """Every valid cached row, sorted by label (reporting without
        re-simulating; stale/corrupt entries are skipped)."""
        loaded = (self._load(path) for path in sorted(self.directory.glob("*.json")))
        return sorted((row for row in loaded if row is not None), key=lambda row: row.label)

    def clear(self) -> int:
        """Delete every cached row; returns how many were removed."""
        removed = 0
        for path in self.directory.glob("*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))


#: Environment variable naming plugin modules to import before running cells.
PLUGINS_ENV_VAR = "REPRO_PLUGINS"

_PLUGINS_IMPORTED: Optional[str] = None


def import_plugins(spec: Optional[str] = None) -> List[str]:
    """Import the comma-separated modules named in ``REPRO_PLUGINS``.

    Registrations made in a script are process-local: a parallel sweep's
    worker processes re-import a clean registry, so custom components used
    to require ``workers=1``.  Naming the registering module(s) in the
    ``REPRO_PLUGINS`` environment variable lifts that: every worker (and
    the coordinating process) imports them before running cells, so
    registered components resolve everywhere.  The modules must be
    importable in the workers (on ``PYTHONPATH``) and must register
    **idempotently** -- the coordinator may import them alongside the
    ``__main__`` script that already ran the registrations (guard with
    ``if "name" not in REGISTRY.names():`` or pass ``replace=True``).

    ``spec`` overrides the environment (used by tests).  Returns the list
    of module names imported.  Memoized per value, so calling this once
    per cell costs a string comparison after the first import.
    """
    global _PLUGINS_IMPORTED
    value = os.environ.get(PLUGINS_ENV_VAR, "") if spec is None else spec
    if value == _PLUGINS_IMPORTED:
        return []
    names = [name.strip() for name in value.split(",") if name.strip()]
    for name in names:
        importlib.import_module(name)
    _PLUGINS_IMPORTED = value
    return names


def _run_cell(item: Tuple[str, ExperimentConfig]) -> ResultRow:
    """Worker entry point: run one cell, return only the flat row.

    Module-level (not a closure) so it pickles under every multiprocessing
    start method; the heavyweight ``ExperimentResult`` never leaves the
    worker process.
    """
    # Plugin modules first: under "spawn" this worker has a clean registry
    # and custom components must be re-registered before the config resolves.
    import_plugins()
    # Imported here so workers under "spawn" pay the import cost once, and so
    # this module does not import the runner (and the whole sim stack) just
    # to expand grids or read caches.
    from repro.experiments.runner import run_experiment

    label, config = item
    result = run_experiment(config)
    return ResultRow.from_result(result, label=label)


@dataclass
class SweepResult:
    """Outcome of one :func:`run_sweep` call.

    ``rows`` preserves the input cell order regardless of which worker
    finished first, so iteration order is deterministic.
    """

    rows: Dict[str, ResultRow]
    cache_hits: int
    cache_misses: int
    #: Worker processes used (1 == the serial fallback).
    workers_used: int
    #: Name of the execution backend that ran the uncached cells.
    backend: str = field(default="serial")

    @property
    def runs_executed(self) -> int:
        """Simulations executed by this invocation (0 == fully cached)."""
        return self.cache_misses

    def __getitem__(self, label: str) -> ResultRow:
        return self.rows[label]

    def __len__(self) -> int:
        return len(self.rows)

    def labels(self) -> List[str]:
        return list(self.rows)

    def aggregate(self, by: Sequence[str]) -> List[Dict[str, Any]]:
        return aggregate_rows(self.rows.values(), by=by)


def _normalize_cells(
    configs: Union[ParameterGrid, Mapping[str, ExperimentConfig], Iterable[ExperimentConfig]],
) -> List[Tuple[str, ExperimentConfig]]:
    if isinstance(configs, ParameterGrid):
        return list(configs.expand().items())
    if isinstance(configs, Mapping):
        return list(configs.items())
    cells: List[Tuple[str, ExperimentConfig]] = []
    seen: Dict[str, int] = {}
    for config in configs:
        label = config.name
        if label in seen:  # keep labels unique when presets share a name
            seen[label] += 1
            label = f"{label} #{seen[label]}"
        else:
            seen[label] = 1
        cells.append((label, config))
    return cells


def _rebind_row(row: ResultRow, label: str, name: str) -> ResultRow:
    """Serve a stored row under the *requesting* cell's identity fields.

    ``label`` and ``name`` are deliberately excluded from the config
    fingerprint, so a row computed (and cached, or written as a queue part)
    by one sweep may be served to a fingerprint-identical cell of another
    scenario that uses different ones.  ``name`` groups aggregation cells:
    serving a foreign stale name would split or merge aggregates.
    """
    if row.label == label and row.name == name:
        return row
    return ResultRow.from_dict({**row.to_dict(), "label": label, "name": name})


def run_sweep(
    configs: Union[ParameterGrid, Mapping[str, ExperimentConfig], Iterable[ExperimentConfig]],
    *,
    workers: Optional[int] = None,
    cache: Optional[Union[ResultCache, str, Path]] = None,
    backend: Optional[Union[str, "ExecutionBackend"]] = None,
    progress: Optional[Callable[["SweepProgress", ResultRow], None]] = None,
    progress_by: Sequence[str] = ("name",),
) -> SweepResult:
    """Run every cell of a sweep through an execution backend, reusing cached rows.

    Parameters
    ----------
    configs:
        A :class:`ParameterGrid`, a mapping of label to config (the shape the
        ``scenarios`` presets produce), or a plain iterable of configs
        (labelled by their ``name``).
    workers:
        Worker process count for the built-in backends.  ``None`` picks the
        CPU count (bounded by ``MAX_AUTO_WORKERS``) capped at the number of
        uncached cells; ``<= 1`` selects the deterministic serial path.
        Parallel and serial execution produce bit-identical rows (each cell
        is an independent, seeded simulation).
    cache:
        A :class:`ResultCache` (or a directory path for one).  Cells whose
        config fingerprint is present are served from disk without running;
        freshly computed rows are written back.  ``None`` disables caching.
    backend:
        How uncached cells execute: an :class:`ExecutionBackend` instance, a
        registered backend name (``"serial"``, ``"process"``, ``"queue"``),
        or ``None`` for the historical mapping of ``workers`` onto
        serial/process.  See :mod:`repro.experiments.backends`.
    progress:
        Optional observer called as ``progress(state, row)`` after every row
        the backend completes, with ``state`` a :class:`SweepProgress`
        carrying all completed rows and streaming partial aggregates
        (grouped by ``progress_by``).  This is how ``--follow`` watches
        pooled tails converge while a queue sweep is still running.
    """
    from repro.experiments.backends import SweepProgress, resolve_backend

    cells = _normalize_cells(configs)
    label_counts = Counter(label for label, _ in cells)
    duplicates = [label for label, count in label_counts.items() if count > 1]
    if duplicates:
        raise ValueError(f"duplicate sweep labels: {sorted(duplicates)}")

    if cache is not None and not isinstance(cache, ResultCache):
        cache = ResultCache(cache)

    rows: Dict[str, Optional[ResultRow]] = {label: None for label, _ in cells}
    # The streaming tracker does real per-row aggregation work (digest
    # merges, partial records); only pay for it when someone is watching.
    tracker = SweepProgress(total=len(cells), by=progress_by) if progress is not None else None
    pending: List[Tuple[str, ExperimentConfig]] = []
    cache_hits = 0
    for label, config in cells:
        cached = cache.get(config) if cache is not None else None
        if cached is not None:
            row = _rebind_row(cached, label, config.name)
            rows[label] = row
            if tracker is not None:
                tracker.add(row)
            cache_hits += 1
        else:
            pending.append((label, config))

    backend_obj = resolve_backend(backend, workers)

    def _store(row: ResultRow) -> None:
        # Called as each cell completes, so one failing (or interrupted) cell
        # never discards finished sibling work: everything stored so far is
        # already on disk and a retry resumes from there.
        rows[row.label] = row
        if cache is not None:
            cache.put(row)
        if tracker is not None:
            tracker.add(row)
            progress(tracker, row)

    workers_used = backend_obj.execute(pending, _store) if pending else 1

    return SweepResult(
        rows={label: row for label, row in rows.items() if row is not None},
        cache_hits=cache_hits,
        cache_misses=len(pending),
        workers_used=workers_used,
        backend=backend_obj.name,
    )


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------

#: Kept as aliases: the aggregation math lives in :mod:`repro.metrics.partial`
#: so the streaming (work-queue) path and this batch path can never drift.
from repro.metrics.partial import (  # noqa: E402, F401
    MEAN_P99_METRICS as _MEAN_P99_METRICS,
    SUMMED_COUNTERS as _SUMMED_COUNTERS,
)


def aggregate_rows(
    rows: Iterable[ResultRow],
    by: Sequence[str] = ("transport", "congestion_control", "pfc_enabled"),
) -> List[Dict[str, Any]]:
    """Fold seed replicas into one tidy record per parameter cell.

    Rows sharing the ``by`` fields form one cell.  Each output record holds
    the ``by`` columns, the replica count and seed list, ``<metric>_mean`` /
    ``<metric>_p99`` for the three headline metrics -- plus
    ``<metric>_stderr`` (standard error of the mean over replicas) and
    ``<metric>_ci95`` (the t-based 95% confidence half-width, 0.0 with a
    single replica) -- ``drop_rate_mean`` and summed fabric counters: plain
    scalars throughout, so records compare directly in tests.

    When the member rows carry quantile digests, those digests are *merged*
    across replicas and the record additionally reports true pooled-
    distribution percentiles -- ``fct_p50_s`` / ``fct_p99_s`` / ``fct_p999_s``
    over every flow of every replica (not a mean of per-replica tails, which
    understates the tail), ``num_flows_total``, and, when single-packet
    messages completed, ``single_packet_p90_s`` / ``_p99_s`` / ``_p999_s``
    with ``single_packet_flows``.  Runs collected with
    ``fabric_digests=True`` additionally pool §4.4 congestion-spreading
    distributions: ``queue_depth_p50/p99/p999_bytes`` (per-switch input-port
    occupancy at enqueue) and ``pfc_pause_p50/p99/p999_s`` with
    ``pfc_pause_events`` / ``pfc_pause_total_s`` (PFC pause episode
    durations).

    This is the batch entry point of :class:`repro.metrics.partial.
    PartialAggregator` -- the same reduction the work-queue backend applies
    incrementally as part-files land -- so a streamed aggregate and a
    post-hoc one over the same rows are identical.
    """
    return PartialAggregator(by).add_all(rows).snapshot()
