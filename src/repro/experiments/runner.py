"""Experiment runner: build the fabric, inject the workload, collect metrics.

``run_experiment`` is the single entry point the examples and every benchmark
use.  It translates an :class:`ExperimentConfig` into a concrete simulation:

1. build the topology and switch configuration (PFC/ECN settings),
2. generate the background and/or incast flows,
3. at each flow's start time, instantiate the configured transport endpoints
   (with a per-flow congestion-control object when enabled) and register them
   with the hosts,
4. run the event loop and return an :class:`ExperimentResult` with the
   paper's metrics plus fabric statistics (drops, PFC pauses, retransmissions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.congestion.factory import make_congestion_control
from repro.core.factory import make_flow_endpoints
from repro.core.irn import IrnConfig
from repro.core.iwarp import TcpConfig
from repro.core.roce import RoceConfig
from repro.core.transport import BaseReceiver, BaseSender, Flow
from repro.experiments.config import ExperimentConfig
from repro.experiments.results import ResultRow
from repro.faults import FaultEngine
from repro.metrics.collector import MetricsCollector
from repro.metrics.stats import MetricSummary
from repro.sim.engine import Simulator
from repro.sim.link import DEFAULT_PORT_BATCH
from repro.sim.network import Network
from repro.topology import TOPOLOGIES
from repro.workload import WORKLOADS
from repro.workload.incast import build_incast_flows, request_completion_time


@dataclass
class ExperimentResult:
    """Outcome of one simulation run."""

    config: ExperimentConfig
    summary: MetricSummary
    collector: MetricsCollector
    flows: List[Flow]
    #: Simulated time at which the run ended.
    sim_time_s: float
    #: Events executed by the simulator (throughput accounting).
    events_processed: int
    #: Fabric statistics.
    packets_dropped: int
    pause_frames: int
    packets_forwarded: int
    #: Transport statistics aggregated over all flows.
    data_packets_sent: int
    retransmissions: int
    timeouts: int
    #: PFC wait-for-graph deadlock events (see ``repro.sim.deadlock``).
    deadlock_events: int = 0
    #: Simulation time of the first deadlock event, if any.
    time_to_deadlock_s: Optional[float] = None
    #: Request completion time of the incast request (if one was configured).
    incast_rct_s: Optional[float] = None
    #: Summary restricted to the background traffic (when incast + cross
    #: traffic are mixed, as in §4.4.3).
    background_summary: Optional[MetricSummary] = None
    #: True when the config carried a non-empty fault plan.
    faults_enabled: bool = False
    #: Packets dropped by injected faults (link flaps + CRC corruption);
    #: counted separately from switch buffer drops so packet conservation
    #: holds modulo these explicit counters.
    fault_injected_drops: int = 0
    #: Retransmissions triggered while some fault window was open.
    retransmissions_during_fault: int = 0
    #: Last-fault-end to first full-goodput instant (``None`` if the run
    #: never recovered, had no pre-fault reference, or ran fault-free).
    recovery_time_s: Optional[float] = None

    @property
    def drop_rate(self) -> float:
        """Dropped packets as a fraction of data packets sent."""
        if self.data_packets_sent == 0:
            return 0.0
        return self.packets_dropped / self.data_packets_sent

    def completion_fraction(self) -> float:
        """Fraction of injected flows that completed."""
        if not self.flows:
            return 0.0
        return sum(1 for flow in self.flows if flow.completed) / len(self.flows)

    def to_row(self, label: Optional[str] = None) -> "ResultRow":
        """Flatten to a picklable :class:`ResultRow` (drops collector/flows)."""
        return ResultRow.from_result(self, label=label)


class _FlowLauncher:
    """Creates transport endpoints for a flow at its start time."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        config: ExperimentConfig,
        collector: MetricsCollector,
    ) -> None:
        self.sim = sim
        self.network = network
        self.config = config
        self.collector = collector
        self.senders: List[BaseSender] = []
        self.receivers: List[BaseReceiver] = []
        self._scheme = config.congestion_scheme()
        self._ack_coalesce_n = config.effective_ack_coalesce_n()
        self._ack_coalesce_s = config.effective_ack_coalesce_s()
        self._pacing_quantum_s = config.effective_pacing_quantum_s()
        self._irn_config = self._build_irn_config()
        self._roce_config = self._build_roce_config()
        self._tcp_config = self._build_tcp_config()
        self._cnp_interval = self._cnp_interval_s()

    # ------------------------------------------------------------------
    # Transport configuration
    # ------------------------------------------------------------------
    def _build_irn_config(self) -> IrnConfig:
        cfg = self.config
        return IrnConfig(
            mtu_bytes=cfg.mtu_bytes,
            header_bytes=cfg.effective_header_bytes(),
            generate_acks=True,
            timeouts_enabled=True,
            bdp_cap_packets=cfg.effective_bdp_cap_packets(),
            bdp_fc_enabled=True,
            rto_low_s=cfg.effective_rto_low_s(),
            rto_high_s=cfg.effective_rto_high_s(),
            rto_low_threshold_packets=cfg.rto_low_threshold_packets,
            retransmission_fetch_delay_s=2e-6 if cfg.worst_case_overheads else 0.0,
            ack_coalesce_n=self._ack_coalesce_n,
            ack_coalesce_s=self._ack_coalesce_s,
            pacing_quantum_s=self._pacing_quantum_s,
        )

    def _build_roce_config(self) -> RoceConfig:
        cfg = self.config
        # With PFC the paper's RoCE baseline sends no ACKs and disables
        # timeouts; without PFC it uses a fixed RTO_high and needs ACKs for
        # go-back-N progress.  RTT-based schemes (Timely among the built-ins)
        # additionally need per-packet RTT samples, hence ACKs, regardless
        # of PFC.
        needs_acks = (not cfg.pfc_enabled) or self._scheme.rtt_based
        return RoceConfig(
            mtu_bytes=cfg.mtu_bytes,
            header_bytes=cfg.header_bytes,
            rto_s=cfg.effective_rto_high_s(),
            generate_acks=needs_acks,
            timeouts_enabled=not cfg.pfc_enabled,
            ack_coalesce_n=self._ack_coalesce_n,
            ack_coalesce_s=self._ack_coalesce_s,
            pacing_quantum_s=self._pacing_quantum_s,
        )

    def _build_tcp_config(self) -> TcpConfig:
        cfg = self.config
        return TcpConfig(
            mtu_bytes=cfg.mtu_bytes,
            header_bytes=cfg.header_bytes,
            generate_acks=True,
            timeouts_enabled=True,
            rto_low_s=cfg.effective_rto_low_s(),
            rto_high_s=cfg.effective_rto_high_s(),
            min_rto_s=cfg.effective_rto_low_s(),
            initial_rto_s=cfg.effective_rto_high_s(),
            ack_coalesce_n=self._ack_coalesce_n,
            ack_coalesce_s=self._ack_coalesce_s,
            pacing_quantum_s=self._pacing_quantum_s,
        )

    def _cnp_interval_s(self) -> Optional[float]:
        # The batching interval is scheme metadata (expressed in RTTs), not
        # a runner constant, so third-party schemes can tune how aggressively
        # their marks are batched into notification frames.
        if self._scheme.wants_cnp:
            return max(self._scheme.cnp_interval_rtts * self.config.base_rtt_s(), 5e-6)
        return None

    def _make_cc(self):
        cfg = self.config
        if cfg.congestion_control_name == "none":
            return None
        cc = make_congestion_control(
            cfg.congestion_control_name,
            line_rate_bps=cfg.link_bandwidth_bps,
            base_rtt_s=cfg.base_rtt_s() + 8.0 * cfg.mtu_bytes * cfg.max_hop_count() / cfg.link_bandwidth_bps,
        )
        if self._pacing_quantum_s > 0 and hasattr(cc, "burst_credit_s"):
            # Quantized wake-ups round release times *up*; letting the pacer
            # bank one quantum of credit preserves the average rate.
            cc.burst_credit_s = self._pacing_quantum_s
        return cc

    # ------------------------------------------------------------------
    # Flow lifecycle
    # ------------------------------------------------------------------
    def launch(self, flow: Flow) -> None:
        src_host = self.network.hosts[flow.src]
        dst_host = self.network.hosts[flow.dst]

        def on_sender_complete(completed_flow: Flow, now: float) -> None:
            src_host.deregister_sender(completed_flow.flow_id)

        sender, receiver = make_flow_endpoints(
            self.sim,
            src_host,
            flow,
            self.config.transport,
            irn_config=self._irn_config,
            roce_config=self._roce_config,
            tcp_config=self._tcp_config,
            congestion_control=self._make_cc(),
            cnp_interval_s=self._cnp_interval,
            on_sender_complete=on_sender_complete,
            on_receiver_complete=self.collector.on_flow_complete,
        )
        dst_host.register_receiver(receiver)
        src_host.register_sender(sender)
        self.senders.append(sender)
        self.receivers.append(receiver)


def _build_network(sim: Simulator, config: ExperimentConfig) -> Network:
    """Resolve the configured topology through the registry and build it."""
    builder = TOPOLOGIES.get(config.topology)
    return builder.build(sim, config, config.switch_config())


def _generate_flows(config: ExperimentConfig, network: Network) -> List[Flow]:
    """Resolve the configured workload through the registry; add the incast."""
    hosts = list(network.hosts.keys())
    generate = WORKLOADS.get(config.workload)
    flows: List[Flow] = list(generate(config, hosts))
    if config.incast is not None:
        flows.extend(
            build_incast_flows(config.incast, hosts, first_flow_id=len(flows) + 1_000_000)
        )
    if not flows:
        raise ValueError("experiment generates no flows")
    return flows


def bucket_width_for(config: ExperimentConfig) -> float:
    """Calendar bucket width for ``config``: the departure-batch quantum.

    Ports release serialization events one *batch* (``DEFAULT_PORT_BATCH``
    MTUs) at a time, so keying buckets on the batch serialization time --
    rather than a single MTU's -- puts each port's next departure in or near
    the current bucket instead of four buckets ahead.  Measured ~17% faster
    on incast fan-in and neutral elsewhere.  (The width only affects speed,
    never event order.)
    """
    return DEFAULT_PORT_BATCH * config.mtu_bytes * 8.0 / config.link_bandwidth_bps


def _make_simulator(config: ExperimentConfig) -> Simulator:
    """Build the engine for ``config`` (heap escape hatch via REPRO_ENGINE)."""
    return Simulator(seed=config.seed, bucket_width_s=bucket_width_for(config))


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Run one simulation described by ``config`` and collect its metrics."""
    sim = _make_simulator(config)
    network = _build_network(sim, config)
    if config.port_batch_bytes is not None:
        # Bytes-based departure-batch cap, fabric-wide (host NICs source
        # the bursts PFC has to absorb, so they are capped too).
        network.set_port_batch_bytes(config.port_batch_bytes)
    collector = MetricsCollector(
        network,
        mtu_bytes=config.mtu_bytes,
        header_bytes=config.effective_header_bytes(),
        keep_records=config.keep_flow_records,
    )
    if config.fabric_digests:
        collector.install_fabric_probes()
    if config.c_latency_ratios:
        collector.install_c_latency_probe()
    # The deadlock detector is pure observation (no events, no randomness),
    # so it is always on -- the paper's §2 CBD pathology should never be
    # able to hide behind a disabled knob.
    collector.install_deadlock_detector()
    launcher = _FlowLauncher(sim, network, config, collector)

    fault_engine: Optional[FaultEngine] = None
    plan = config.fault_plan
    if plan is not None and not plan.is_empty:
        # Recovery probes wrap host receivers first (inner), the fault
        # engine second (outer): a fault-dropped packet must never count
        # as delivered goodput.
        collector.install_recovery_probes(
            bin_s=plan.effective_goodput_bin_s(config.base_rtt_s()),
            stall_threshold_s=plan.stall_threshold_s or config.effective_rto_low_s(),
        )
        fault_engine = FaultEngine(sim, network, plan, seed=config.seed)
        fault_engine.retransmission_probe = lambda: sum(
            sender.retransmissions for sender in launcher.senders
        )
        fault_engine.install()

    flows = _generate_flows(config, network)

    for flow in flows:
        sim.schedule_at(flow.start_time, launcher.launch, flow)

    sim.run(until=config.max_sim_time_s, max_events=config.max_events)

    recovery_time: Optional[float] = None
    if fault_engine is not None:
        fault_engine.finalize()
        tracker = collector.recovery_tracker
        if tracker is not None:
            recovery_time = tracker.recovery_time_s(
                plan.first_fault_start_s(), plan.last_fault_end_s()
            )

    incast_rct: Optional[float] = None
    background_summary: Optional[MetricSummary] = None
    if config.incast is not None:
        incast_flows = [flow for flow in flows if flow.group == "incast"]
        if incast_flows and all(flow.completed for flow in incast_flows):
            incast_rct = request_completion_time(flows)
        if collector.stream("background").count:
            background_summary = collector.summary(group="background")

    summary = (
        collector.summary() if collector.completed_count else MetricSummary(0.0, 0.0, 0.0, 0)
    )

    return ExperimentResult(
        config=config,
        summary=summary,
        collector=collector,
        flows=flows,
        sim_time_s=sim.now,
        events_processed=sim.events_processed,
        packets_dropped=network.total_dropped_packets(),
        pause_frames=network.total_pause_frames(),
        packets_forwarded=network.total_forwarded_packets(),
        data_packets_sent=sum(sender.packets_sent for sender in launcher.senders),
        retransmissions=sum(sender.retransmissions for sender in launcher.senders),
        timeouts=sum(sender.timeouts_fired for sender in launcher.senders),
        deadlock_events=collector.deadlock_events,
        time_to_deadlock_s=collector.time_to_deadlock_s,
        incast_rct_s=incast_rct,
        background_summary=background_summary,
        faults_enabled=fault_engine is not None,
        fault_injected_drops=0 if fault_engine is None else fault_engine.fault_drops,
        retransmissions_during_fault=(
            0 if fault_engine is None else fault_engine.retransmissions_during_fault
        ),
        recovery_time_s=recovery_time,
    )
