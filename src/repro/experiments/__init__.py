"""Experiment harness: configurations, runner and paper scenario presets."""

from repro.experiments.config import (
    CongestionControl,
    ExperimentConfig,
    TopologyKind,
    TransportKind,
    WorkloadKind,
)
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.experiments import scenarios

__all__ = [
    "CongestionControl",
    "ExperimentConfig",
    "TopologyKind",
    "TransportKind",
    "WorkloadKind",
    "ExperimentResult",
    "run_experiment",
    "scenarios",
]
