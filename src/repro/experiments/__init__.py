"""Experiment harness: configurations, runner and paper scenario presets."""

from repro.experiments.config import (
    CongestionControl,
    ExperimentConfig,
    TopologyKind,
    TransportKind,
    WorkloadKind,
)
from repro.experiments.results import ResultRow
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.experiments.spec import (
    SCENARIOS,
    ScenarioSpec,
    register_scenario,
    scenario,
)
from repro.experiments.sweep import (
    ParameterGrid,
    ResultCache,
    SweepResult,
    aggregate_rows,
    run_sweep,
)
from repro.experiments import scenarios

__all__ = [
    "CongestionControl",
    "ExperimentConfig",
    "TopologyKind",
    "TransportKind",
    "WorkloadKind",
    "ExperimentResult",
    "ResultRow",
    "SCENARIOS",
    "ScenarioSpec",
    "register_scenario",
    "scenario",
    "ParameterGrid",
    "ResultCache",
    "SweepResult",
    "aggregate_rows",
    "run_experiment",
    "run_sweep",
    "scenarios",
]
