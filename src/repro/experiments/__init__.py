"""Experiment harness: configurations, runner and paper scenario presets."""

from repro.experiments.config import (
    CongestionControl,
    ExperimentConfig,
    TopologyKind,
    TransportKind,
    WorkloadKind,
)
from repro.experiments.backends import (
    EXECUTION_BACKENDS,
    ExecutionBackend,
    SweepProgress,
    register_execution_backend,
)
from repro.experiments.queue import QueueBackend, TaskQueue, run_worker
from repro.experiments.results import ResultRow
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.experiments.spec import (
    SCENARIOS,
    ScenarioSpec,
    register_scenario,
    scenario,
)
from repro.experiments.sweep import (
    ParameterGrid,
    ResultCache,
    SweepResult,
    aggregate_rows,
    run_sweep,
)
from repro.experiments import scenarios

__all__ = [
    "CongestionControl",
    "ExperimentConfig",
    "TopologyKind",
    "TransportKind",
    "WorkloadKind",
    "ExperimentResult",
    "ResultRow",
    "SCENARIOS",
    "ScenarioSpec",
    "register_scenario",
    "scenario",
    "EXECUTION_BACKENDS",
    "ExecutionBackend",
    "ParameterGrid",
    "QueueBackend",
    "ResultCache",
    "SweepProgress",
    "SweepResult",
    "TaskQueue",
    "aggregate_rows",
    "register_execution_backend",
    "run_experiment",
    "run_sweep",
    "run_worker",
    "scenarios",
]
