"""Experiment harness: configurations, runner and paper scenario presets."""

from repro.experiments.config import (
    CongestionControl,
    ExperimentConfig,
    TopologyKind,
    TransportKind,
    WorkloadKind,
)
from repro.experiments.results import ResultRow
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.experiments.sweep import (
    ParameterGrid,
    ResultCache,
    SweepResult,
    aggregate_rows,
    run_sweep,
)
from repro.experiments import scenarios

__all__ = [
    "CongestionControl",
    "ExperimentConfig",
    "TopologyKind",
    "TransportKind",
    "WorkloadKind",
    "ExperimentResult",
    "ResultRow",
    "ParameterGrid",
    "ResultCache",
    "SweepResult",
    "aggregate_rows",
    "run_experiment",
    "run_sweep",
    "scenarios",
]
