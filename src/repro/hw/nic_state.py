"""NIC state overhead accounting (§6.1).

The paper itemizes the additional state IRN adds to a RoCE NIC:

* 52 bits of per-QP transport state at each of the requester and responder
  (24 bits each for the retransmission and recovery sequences plus 4 flag
  bits), plus 56 bits at the responder for the Read timeout timer and the
  in-progress Read tracking -- 160 bits per QP in total;
* five BDP-sized bitmaps per QP (the responder's 2-bitmap, the requester's
  Read-response bitmap and one SACK bitmap at each end);
* 3 bytes of WQE sequence numbers per WQE;
* 10 bytes of state shared across QPs (the BDP cap, RTO_low and N).

This module reproduces that arithmetic so the "3-10% of NIC cache" claim can
be regenerated for arbitrary QP/WQE counts and link speeds.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class NicStateParams:
    """Inputs to the state-overhead model."""

    num_qps: int = 2000
    num_wqes: int = 20_000
    #: Link bandwidth and worst-case two-way propagation delay used to size
    #: the BDP bitmaps (the paper uses 40/100 Gbps and 24 us).
    link_bandwidth_bps: float = 40e9
    round_trip_delay_s: float = 24e-6
    mtu_bytes: int = 1000
    #: NIC cache available for metadata (Mellanox NICs have "several MBs").
    nic_cache_bytes: int = 4 * 1024 * 1024
    #: Current per-WQE context size on RoCE NICs.
    base_wqe_context_bytes: int = 64


@dataclass
class IrnStateOverhead:
    """Computed overhead breakdown."""

    bdp_cap_packets: int
    bitmap_bits_each: int
    per_qp_state_bits: int
    per_qp_bitmap_bits: int
    per_qp_total_bits: int
    per_wqe_bytes: int
    shared_bytes: int
    total_bytes: int
    fraction_of_cache: float

    def as_rows(self) -> list[tuple[str, str]]:
        """Human-readable breakdown (used by the benchmark harness)."""
        return [
            ("BDP cap (packets)", str(self.bdp_cap_packets)),
            ("Bitmap size (bits each)", str(self.bitmap_bits_each)),
            ("Per-QP state (bits)", str(self.per_qp_state_bits)),
            ("Per-QP bitmaps (bits)", str(self.per_qp_bitmap_bits)),
            ("Per-QP total (bits)", str(self.per_qp_total_bits)),
            ("Per-WQE overhead (bytes)", str(self.per_wqe_bytes)),
            ("Shared state (bytes)", str(self.shared_bytes)),
            ("Total additional state (bytes)", str(self.total_bytes)),
            ("Fraction of NIC cache", f"{self.fraction_of_cache:.1%}"),
        ]


#: Per-QP transport state bits: 24 (retransmission sequence) + 24 (recovery
#: sequence) + 4 (flags) at each end.
REQUESTER_STATE_BITS = 52
RESPONDER_STATE_BITS = 52
#: Read timeout timer + in-progress Read tracking at the responder.
RESPONDER_READ_STATE_BITS = 56
#: Number of BDP-sized bitmaps per QP (2-bitmap at the responder, Read
#: response bitmap at the requester, one SACK bitmap at each end).
BITMAPS_PER_QP = 5
#: WQE sequence numbers added to each WQE context.
PER_WQE_OVERHEAD_BYTES = 3
#: BDP cap, RTO_low and N shared across QPs.
SHARED_STATE_BYTES = 10


def compute_state_overhead(params: NicStateParams | None = None) -> IrnStateOverhead:
    """Reproduce the §6.1 accounting for the given NIC parameters."""
    params = params or NicStateParams()
    bdp_bytes = params.link_bandwidth_bps * params.round_trip_delay_s / 8.0
    bdp_cap = max(1, int(bdp_bytes // params.mtu_bytes))
    # Bitmaps are sized to the next multiple of 32 bits (the chunk width).
    bitmap_bits = ((bdp_cap + 31) // 32) * 32

    per_qp_state = REQUESTER_STATE_BITS + RESPONDER_STATE_BITS + RESPONDER_READ_STATE_BITS
    per_qp_bitmaps = BITMAPS_PER_QP * bitmap_bits
    per_qp_total = per_qp_state + per_qp_bitmaps

    total_bits = params.num_qps * per_qp_total
    total_bytes = total_bits / 8.0
    total_bytes += params.num_wqes * PER_WQE_OVERHEAD_BYTES
    total_bytes += SHARED_STATE_BYTES

    return IrnStateOverhead(
        bdp_cap_packets=bdp_cap,
        bitmap_bits_each=bitmap_bits,
        per_qp_state_bits=per_qp_state,
        per_qp_bitmap_bits=per_qp_bitmaps,
        per_qp_total_bits=per_qp_total,
        per_wqe_bytes=PER_WQE_OVERHEAD_BYTES,
        shared_bytes=SHARED_STATE_BYTES,
        total_bytes=int(total_bytes),
        fraction_of_cache=total_bytes / params.nic_cache_bytes,
    )
