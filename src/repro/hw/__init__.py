"""NIC hardware models (§6): bitmaps, packet-processing modules, state and
FPGA resource accounting, and the raw iWARP-vs-RoCE NIC pipeline model."""

from repro.hw.bitmap import RingBitmap, TwoBitmap
from repro.hw.packet_modules import (
    QpContext,
    ReceiveAckModule,
    ReceiveDataModule,
    TimeoutModule,
    TxFreeModule,
)
from repro.hw.nic_state import IrnStateOverhead, NicStateParams
from repro.hw.fpga_model import FpgaSynthesisModel, ModuleEstimate
from repro.hw.nic_model import NicPipelineModel, NicKind, raw_performance_table

__all__ = [
    "RingBitmap",
    "TwoBitmap",
    "QpContext",
    "ReceiveDataModule",
    "TxFreeModule",
    "ReceiveAckModule",
    "TimeoutModule",
    "IrnStateOverhead",
    "NicStateParams",
    "FpgaSynthesisModel",
    "ModuleEstimate",
    "NicPipelineModel",
    "NicKind",
    "raw_performance_table",
]
