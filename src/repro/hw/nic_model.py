"""Raw NIC pipeline model: iWARP vs RoCE (Table 1, §2.3).

The paper's Table 1 measures two real NICs (a Chelsio T-580-CR iWARP NIC and
a Mellanox MCX416A-BCAT RoCE NIC) issuing 64-byte batched RDMA Writes on one
queue pair: the iWARP NIC shows roughly 3x the latency and a quarter of the
message rate.  The explanation offered is architectural: the iWARP datapath
funnels every message through a hardware TCP stack plus the translation
layers (DDP/MPA) needed to map TCP's byte-stream onto RDMA segments, while
the RoCE datapath applies a single lightweight transport layer.

This module models both datapaths as pipelines of processing stages so the
Table 1 shape (who is faster, by roughly what factor) can be regenerated,
and so IRN can be shown to sit at RoCE-like message rates (§6.2's bottleneck
module throughput is well above the RoCE NIC's measured rate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Tuple


class NicKind(Enum):
    """NIC architectures compared in Table 1."""

    ROCE = "roce"
    IWARP = "iwarp"
    IRN = "irn"


@dataclass
class PipelineStage:
    """One stage of the NIC transmit/receive datapath."""

    name: str
    latency_ns: float
    #: Per-message occupancy of the stage (bounds the message rate).
    occupancy_ns: float


#: Stage latencies, loosely calibrated so the end-to-end numbers land near
#: Table 1 (RoCE: 0.94 us, 14.7 Mpps; iWARP: 2.89 us, 3.24 Mpps for 64B).
_ROCE_STAGES: List[PipelineStage] = [
    PipelineStage("doorbell+wqe_fetch", 150.0, 65.0),
    PipelineStage("dma_read_payload", 200.0, 50.0),
    PipelineStage("roce_transport", 120.0, 40.0),
    PipelineStage("packetize+mac", 80.0, 20.0),
]

_IWARP_EXTRA_STAGES: List[PipelineStage] = [
    PipelineStage("tcp_bytestream", 450.0, 300.0),
    PipelineStage("mpa_framing", 300.0, 150.0),
    PipelineStage("ddp_translation", 350.0, 200.0),
    PipelineStage("tcp_timers_and_cc", 250.0, 100.0),
]

#: IRN adds its bitmap manipulations to the RoCE pipeline; §6.2 measures
#: at most 16.5 ns of added latency and a 45 Mpps bottleneck, i.e. the added
#: stage never becomes the message-rate bottleneck.
_IRN_EXTRA_STAGES: List[PipelineStage] = [
    PipelineStage("irn_bitmap_logic", 16.5, 22.0),
]


@dataclass
class NicPerformance:
    """Raw single-QP performance of a NIC."""

    kind: NicKind
    latency_us: float
    message_rate_mpps: float


class NicPipelineModel:
    """Computes latency and message rate from a pipeline of stages."""

    def __init__(self, kind: NicKind, wire_rate_gbps: float = 40.0) -> None:
        self.kind = kind
        self.wire_rate_gbps = wire_rate_gbps
        self.stages = list(_ROCE_STAGES)
        if kind is NicKind.IWARP:
            self.stages += _IWARP_EXTRA_STAGES
        elif kind is NicKind.IRN:
            self.stages += _IRN_EXTRA_STAGES

    def one_way_latency_us(self, message_bytes: int = 64) -> float:
        """Half-RTT latency of a small Write: pipeline + wire time."""
        pipeline_ns = sum(stage.latency_ns for stage in self.stages)
        wire_ns = (message_bytes + 60) * 8.0 / self.wire_rate_gbps
        # The measurement traverses the requester pipeline, the wire, and the
        # responder's (shorter) receive pipeline, approximated as half.
        return (pipeline_ns * 1.5 + wire_ns) / 1000.0

    def message_rate_mpps(self, message_bytes: int = 64, batched: bool = True) -> float:
        """Sustained message rate for small batched Writes."""
        bottleneck_ns = max(stage.occupancy_ns for stage in self.stages)
        if not batched:
            bottleneck_ns = sum(stage.occupancy_ns for stage in self.stages)
        wire_ns = (message_bytes + 60) * 8.0 / self.wire_rate_gbps
        per_message_ns = max(bottleneck_ns, wire_ns)
        return 1000.0 / per_message_ns

    def performance(self, message_bytes: int = 64) -> NicPerformance:
        return NicPerformance(
            kind=self.kind,
            latency_us=self.one_way_latency_us(message_bytes),
            message_rate_mpps=self.message_rate_mpps(message_bytes),
        )


def raw_performance_table(message_bytes: int = 64) -> Dict[str, NicPerformance]:
    """Regenerate Table 1 (plus the IRN row §6.2 argues for)."""
    return {
        "Chelsio T-580-CR (iWARP)": NicPipelineModel(NicKind.IWARP).performance(message_bytes),
        "Mellanox MCX416A-BCAT (RoCE)": NicPipelineModel(NicKind.ROCE).performance(message_bytes),
        "IRN (RoCE + bitmap logic)": NicPipelineModel(NicKind.IRN).performance(message_bytes),
    }
