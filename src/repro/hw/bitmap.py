"""BDP-sized ring-buffer bitmaps (§6.2.1).

IRN's per-packet processing reduces to three bitmap operations on ring
buffers whose head corresponds to the expected sequence number (receiver) or
the cumulative acknowledgement (sender):

* *find first zero* -- next expected sequence / next packet to retransmit,
* *popcount* of a prefix -- MSN increment and number of Receive WQEs to expire,
* *bit shifts* -- advancing the head when the cumulative ack moves.

As in the paper's FPGA implementation, the bitmap is stored in 32-bit chunks
that can be scanned in parallel; the chunked layout is kept here so the FPGA
resource model can count chunk operations.
"""

from __future__ import annotations

from typing import List, Optional

CHUNK_BITS = 32


class RingBitmap:
    """A fixed-capacity bitmap over a sliding window of sequence numbers.

    ``head_seq`` is the sequence number of bit 0.  Bits may only be set for
    sequence numbers in ``[head_seq, head_seq + capacity)``.
    """

    def __init__(self, capacity_bits: int = 128, head_seq: int = 0) -> None:
        if capacity_bits <= 0:
            raise ValueError("bitmap capacity must be positive")
        self.capacity = capacity_bits
        self.head_seq = head_seq
        self._bits = 0
        #: Number of 32-bit chunks (drives the FPGA resource model).
        self.num_chunks = (capacity_bits + CHUNK_BITS - 1) // CHUNK_BITS

    # ------------------------------------------------------------------
    def _index(self, seq: int) -> int:
        offset = seq - self.head_seq
        if offset < 0 or offset >= self.capacity:
            raise IndexError(
                f"sequence {seq} outside bitmap window [{self.head_seq}, "
                f"{self.head_seq + self.capacity})"
            )
        return offset

    def set(self, seq: int) -> None:
        """Mark ``seq`` as received/acknowledged."""
        self._bits |= 1 << self._index(seq)

    def clear(self, seq: int) -> None:
        """Clear the bit for ``seq``."""
        self._bits &= ~(1 << self._index(seq))

    def test(self, seq: int) -> bool:
        """Whether the bit for ``seq`` is set."""
        return bool((self._bits >> self._index(seq)) & 1)

    def in_window(self, seq: int) -> bool:
        """Whether ``seq`` falls inside the bitmap's current window."""
        return self.head_seq <= seq < self.head_seq + self.capacity

    # ------------------------------------------------------------------
    # The three §6.2.1 operations
    # ------------------------------------------------------------------
    def find_first_zero(self) -> int:
        """Offset of the first unset bit (capacity if every bit is set)."""
        bits = self._bits
        for chunk_index in range(self.num_chunks):
            chunk = (bits >> (chunk_index * CHUNK_BITS)) & (2 ** CHUNK_BITS - 1)
            if chunk != 2 ** CHUNK_BITS - 1:
                # Scan inside the chunk.
                for bit in range(CHUNK_BITS):
                    offset = chunk_index * CHUNK_BITS + bit
                    if offset >= self.capacity:
                        return self.capacity
                    if not (chunk >> bit) & 1:
                        return offset
        return self.capacity

    def popcount_prefix(self, length: Optional[int] = None) -> int:
        """Number of set bits in the first ``length`` positions."""
        if length is None:
            length = self.capacity
        length = min(length, self.capacity)
        mask = (1 << length) - 1
        return (self._bits & mask).bit_count()

    def shift(self, count: int) -> int:
        """Advance the head by ``count`` positions; returns bits shifted out."""
        if count < 0:
            raise ValueError("cannot shift backwards")
        count = min(count, self.capacity)
        shifted_out = (self._bits & ((1 << count) - 1)).bit_count()
        self._bits >>= count
        self.head_seq += count
        return shifted_out

    def advance_head_to(self, seq: int) -> int:
        """Slide the window forward so bit 0 corresponds to ``seq``."""
        if seq < self.head_seq:
            raise ValueError("cannot move the head backwards")
        return self.shift(seq - self.head_seq)

    # ------------------------------------------------------------------
    def set_bits(self) -> List[int]:
        """Sequence numbers currently marked (ascending)."""
        return [
            self.head_seq + offset
            for offset in range(self.capacity)
            if (self._bits >> offset) & 1
        ]

    def occupancy(self) -> int:
        """Number of bits currently set."""
        return self._bits.bit_count()

    def storage_bits(self) -> int:
        """NIC storage consumed by the bitmap."""
        return self.num_chunks * CHUNK_BITS


class TwoBitmap:
    """The responder's 2-bitmap (§5.3.3).

    For every sequence number in the window it tracks (a) whether the packet
    has arrived and (b) whether it is the last packet of a message whose
    completion actions must fire once all earlier packets have arrived.
    """

    def __init__(self, capacity_bits: int = 128, head_seq: int = 0) -> None:
        self.arrived = RingBitmap(capacity_bits, head_seq)
        self.is_last = RingBitmap(capacity_bits, head_seq)

    @property
    def head_seq(self) -> int:
        return self.arrived.head_seq

    def record(self, seq: int, last_of_message: bool) -> None:
        """Record an arrival (and whether it ends a message)."""
        self.arrived.set(seq)
        if last_of_message:
            self.is_last.set(seq)

    def test(self, seq: int) -> bool:
        return self.arrived.test(seq)

    def in_window(self, seq: int) -> bool:
        return self.arrived.in_window(seq)

    def advance(self) -> tuple[int, int]:
        """Advance past the contiguous received prefix.

        Returns ``(packets_passed, messages_completed)``: the number of
        positions the head moved and how many of them were last-of-message
        packets (the MSN increment / number of Receive WQEs to expire).
        """
        prefix = self.arrived.find_first_zero()
        messages = self.is_last.popcount_prefix(prefix)
        self.arrived.shift(prefix)
        self.is_last.shift(prefix)
        return prefix, messages

    def storage_bits(self) -> int:
        return self.arrived.storage_bits() + self.is_last.storage_bits()
