"""The four IRN packet-processing modules synthesized in §6.2.

Each module is modelled exactly as in the paper's HLS implementation: it
receives the relevant packet metadata and the queue-pair context as inputs,
manipulates the BDP-sized bitmaps, and returns the updated context together
with its module-specific outputs:

* ``receiveData`` -- triggered on a data-packet arrival; outputs the
  information needed to generate an ACK/NACK and the number of Receive WQEs
  to expire (MSN increment).
* ``txFree`` -- triggered when the link is free; outputs the sequence number
  to (re)transmit, performing the SACK-bitmap look-ahead during recovery.
* ``receiveAck`` -- triggered on ACK/NACK arrival; updates the SACK bitmap
  and the cumulative acknowledgement.
* ``timeout`` -- triggered when the timer fires with the RTO_low value; if
  the RTO_low condition no longer holds it asks for the timer to be extended
  to RTO_high, otherwise it executes the timeout action.

The modules also count the bitmap operations they perform so the FPGA
resource/latency model can be driven from real event traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hw.bitmap import RingBitmap, TwoBitmap


@dataclass
class QpContext:
    """The per-QP context streamed in and out of every module."""

    #: BDP cap in packets; sizes every bitmap.
    bdp_cap: int = 128

    # Requester-side state.
    snd_una: int = 0                 # cumulative acknowledgement
    snd_nxt: int = 0                 # next new sequence to send
    highest_sent: int = 0
    in_recovery: bool = False
    recovery_seq: int = 0
    retransmit_scan: int = 0
    #: N and the two static timeout values (§3.1).
    rto_low_threshold: int = 3
    rto_low_armed: bool = True

    # Responder-side state.
    expected_psn: int = 0
    msn: int = 0

    # Bitmaps (allocated lazily so a context is cheap to create).
    sack_bitmap: RingBitmap = field(default=None)        # type: ignore[assignment]
    receive_bitmap: TwoBitmap = field(default=None)      # type: ignore[assignment]

    # Operation counters (consumed by the FPGA model).
    find_first_zero_ops: int = 0
    popcount_ops: int = 0
    shift_ops: int = 0

    def __post_init__(self) -> None:
        if self.sack_bitmap is None:
            self.sack_bitmap = RingBitmap(self.bdp_cap, head_seq=self.snd_una)
        if self.receive_bitmap is None:
            self.receive_bitmap = TwoBitmap(self.bdp_cap, head_seq=self.expected_psn)

    def in_flight(self) -> int:
        return max(0, self.snd_nxt - self.snd_una)


@dataclass
class ReceiveDataOutput:
    """Outputs of the receiveData module."""

    send_ack: bool
    send_nack: bool
    ack_psn: int
    sack_psn: Optional[int]
    msn_increment: int
    receive_wqes_to_expire: int
    duplicate: bool = False


class ReceiveDataModule:
    """Responder-side handling of an arriving data packet."""

    def process(self, ctx: QpContext, psn: int, last_of_message: bool) -> ReceiveDataOutput:
        bitmap = ctx.receive_bitmap
        if psn < ctx.expected_psn or (bitmap.in_window(psn) and bitmap.test(psn)):
            return ReceiveDataOutput(
                send_ack=True, send_nack=False, ack_psn=ctx.expected_psn,
                sack_psn=None, msn_increment=0, receive_wqes_to_expire=0, duplicate=True,
            )
        if not bitmap.in_window(psn):
            # Beyond the BDP cap -- cannot be tracked; drop silently.
            return ReceiveDataOutput(
                send_ack=False, send_nack=False, ack_psn=ctx.expected_psn,
                sack_psn=None, msn_increment=0, receive_wqes_to_expire=0, duplicate=True,
            )
        bitmap.record(psn, last_of_message)
        if psn == ctx.expected_psn:
            passed, messages = bitmap.advance()
            ctx.find_first_zero_ops += 1
            ctx.popcount_ops += 1
            ctx.shift_ops += 1
            ctx.expected_psn += passed
            ctx.msn += messages
            return ReceiveDataOutput(
                send_ack=True, send_nack=False, ack_psn=ctx.expected_psn,
                sack_psn=None, msn_increment=messages, receive_wqes_to_expire=messages,
            )
        return ReceiveDataOutput(
            send_ack=False, send_nack=True, ack_psn=ctx.expected_psn,
            sack_psn=psn, msn_increment=0, receive_wqes_to_expire=0,
        )


@dataclass
class TxFreeOutput:
    """Outputs of the txFree module."""

    psn_to_send: Optional[int]
    is_retransmission: bool


class TxFreeModule:
    """Requester-side selection of the next packet when the link is free."""

    def process(self, ctx: QpContext, new_packets_available: bool) -> TxFreeOutput:
        if ctx.in_recovery:
            # Look ahead in the SACK bitmap for the next lost packet.
            ctx.find_first_zero_ops += 1
            sacked = ctx.sack_bitmap
            max_sacked_offset = -1
            for seq in sacked.set_bits():
                max_sacked_offset = max(max_sacked_offset, seq)
            scan = max(ctx.retransmit_scan, ctx.snd_una)
            while scan < ctx.highest_sent:
                if scan == ctx.snd_una and not sacked.in_window(scan):
                    break
                in_window = sacked.in_window(scan)
                is_sacked = in_window and sacked.test(scan)
                if not is_sacked and (scan == ctx.snd_una or scan < max_sacked_offset):
                    ctx.retransmit_scan = scan + 1
                    return TxFreeOutput(psn_to_send=scan, is_retransmission=True)
                scan += 1
            ctx.retransmit_scan = scan
        if new_packets_available and ctx.in_flight() < ctx.bdp_cap:
            psn = ctx.snd_nxt
            ctx.snd_nxt += 1
            ctx.highest_sent = max(ctx.highest_sent, ctx.snd_nxt)
            return TxFreeOutput(psn_to_send=psn, is_retransmission=False)
        return TxFreeOutput(psn_to_send=None, is_retransmission=False)


@dataclass
class ReceiveAckOutput:
    """Outputs of the receiveAck module."""

    new_cumulative_ack: int
    entered_recovery: bool
    exited_recovery: bool


class ReceiveAckModule:
    """Requester-side handling of an arriving ACK/NACK."""

    def process(
        self,
        ctx: QpContext,
        cumulative_ack: int,
        sack_psn: Optional[int],
        is_nack: bool,
    ) -> ReceiveAckOutput:
        entered = False
        exited = False
        if cumulative_ack > ctx.snd_una:
            advance = cumulative_ack - ctx.snd_una
            ctx.sack_bitmap.advance_head_to(cumulative_ack)
            ctx.shift_ops += 1
            ctx.snd_una = cumulative_ack
            ctx.snd_nxt = max(ctx.snd_nxt, cumulative_ack)
            ctx.retransmit_scan = max(ctx.retransmit_scan, cumulative_ack)
        if sack_psn is not None and ctx.sack_bitmap.in_window(sack_psn):
            ctx.sack_bitmap.set(sack_psn)
        if is_nack and not ctx.in_recovery:
            ctx.in_recovery = True
            ctx.recovery_seq = max(ctx.snd_nxt - 1, ctx.snd_una)
            ctx.retransmit_scan = ctx.snd_una
            entered = True
        if ctx.in_recovery and ctx.snd_una > ctx.recovery_seq:
            ctx.in_recovery = False
            exited = True
        return ReceiveAckOutput(
            new_cumulative_ack=ctx.snd_una,
            entered_recovery=entered,
            exited_recovery=exited,
        )


@dataclass
class TimeoutOutput:
    """Outputs of the timeout module."""

    #: True when the RTO_low condition did not hold and the hardware timer
    #: should simply be extended to RTO_high instead of acting.
    extend_to_rto_high: bool
    #: True when the timeout action (enter recovery, rewind the scan) ran.
    acted: bool


class TimeoutModule:
    """Requester-side timeout handling with the dual RTO_low/RTO_high scheme."""

    def process(self, ctx: QpContext, fired_with_rto_low: bool) -> TimeoutOutput:
        if fired_with_rto_low and ctx.in_flight() > ctx.rto_low_threshold:
            # The RTO_low precondition no longer holds: extend the timer.
            return TimeoutOutput(extend_to_rto_high=True, acted=False)
        if ctx.in_flight() == 0:
            return TimeoutOutput(extend_to_rto_high=False, acted=False)
        ctx.in_recovery = True
        ctx.recovery_seq = max(ctx.snd_nxt - 1, ctx.snd_una)
        ctx.retransmit_scan = ctx.snd_una
        return TimeoutOutput(extend_to_rto_high=False, acted=True)
