"""FPGA synthesis estimates for IRN's packet-processing modules (Table 2).

We obviously cannot run Vivado here, so this module is an analytical stand-in
calibrated to the paper's published synthesis results on the Kintex
UltraScale KU060: resource usage and latency are expressed per 32-bit bitmap
chunk, anchored so a 128-bit bitmap (the 40 Gbps BDP cap) reproduces the
Table 2 numbers, and scaled up for wider bitmaps (the paper reports that the
100 Gbps configuration roughly doubles resource usage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


#: Device totals for the Kintex UltraScale XCKU060.
KU060_FLIP_FLOPS = 663_360
KU060_LUTS = 331_680

#: Table 2 anchor points for a 128-bit bitmap (fractions of device resources,
#: worst-case latency in ns and minimum throughput in Mpps).
_TABLE2_ANCHORS: Dict[str, Dict[str, float]] = {
    "receiveData": {"ff": 0.0062, "lut": 0.0193, "latency_ns": 16.5, "throughput_mpps": 45.45},
    "txFree": {"ff": 0.0032, "lut": 0.0095, "latency_ns": 15.9, "throughput_mpps": 47.17},
    "receiveAck": {"ff": 0.0040, "lut": 0.0105, "latency_ns": 15.96, "throughput_mpps": 46.99},
    "timeout": {"ff": 0.0001, "lut": 0.0008, "latency_ns": 6.3, "throughput_mpps": 318.47},
}

#: Fraction of each module's resources that scales with the bitmap width
#: (the rest is fixed control logic).  The timeout module has no bitmap.
_BITMAP_SCALED_FRACTION: Dict[str, float] = {
    "receiveData": 0.75,
    "txFree": 0.7,
    "receiveAck": 0.7,
    "timeout": 0.0,
}

_REFERENCE_CHUNKS = 4  # 128-bit bitmaps = four 32-bit chunks


@dataclass
class ModuleEstimate:
    """Synthesis estimate for one packet-processing module."""

    name: str
    flip_flop_fraction: float
    lut_fraction: float
    latency_ns: float
    throughput_mpps: float

    @property
    def flip_flops(self) -> int:
        return int(self.flip_flop_fraction * KU060_FLIP_FLOPS)

    @property
    def luts(self) -> int:
        return int(self.lut_fraction * KU060_LUTS)

    def sustains_line_rate(self, bandwidth_bps: float, mtu_bytes: int = 1000) -> bool:
        """Whether the module's packet rate sustains MTU packets at line rate."""
        required_mpps = bandwidth_bps / (mtu_bytes * 8.0) / 1e6
        return self.throughput_mpps >= required_mpps


class FpgaSynthesisModel:
    """Scales the Table 2 anchors to an arbitrary bitmap size."""

    def __init__(self, bitmap_bits: int = 128) -> None:
        if bitmap_bits <= 0:
            raise ValueError("bitmap size must be positive")
        self.bitmap_bits = bitmap_bits
        self.num_chunks = max(1, (bitmap_bits + 31) // 32)

    def estimate(self, module: str) -> ModuleEstimate:
        """Estimate resources/latency/throughput for one module."""
        try:
            anchor = _TABLE2_ANCHORS[module]
        except KeyError as exc:
            raise KeyError(f"unknown module {module!r}") from exc
        scale = self.num_chunks / _REFERENCE_CHUNKS
        scaled_fraction = _BITMAP_SCALED_FRACTION[module]

        def grow(value: float) -> float:
            return value * ((1.0 - scaled_fraction) + scaled_fraction * scale)

        # Latency grows logarithmically with chunk count (parallel scan tree);
        # throughput is its inverse behaviour, bounded by the anchor.
        import math

        latency_scale = 1.0 + 0.15 * math.log2(max(1.0, scale)) if scale > 1 else 1.0
        return ModuleEstimate(
            name=module,
            flip_flop_fraction=grow(anchor["ff"]),
            lut_fraction=grow(anchor["lut"]),
            latency_ns=anchor["latency_ns"] * latency_scale,
            throughput_mpps=anchor["throughput_mpps"] / latency_scale,
        )

    def table(self) -> List[ModuleEstimate]:
        """Estimates for all four modules (the rows of Table 2)."""
        return [self.estimate(name) for name in _TABLE2_ANCHORS]

    def totals(self) -> ModuleEstimate:
        """Aggregate resource usage and bottleneck throughput."""
        rows = self.table()
        return ModuleEstimate(
            name="total",
            flip_flop_fraction=sum(row.flip_flop_fraction for row in rows),
            lut_fraction=sum(row.lut_fraction for row in rows),
            latency_ns=max(row.latency_ns for row in rows),
            throughput_mpps=min(row.throughput_mpps for row in rows),
        )
