"""Declarative, deterministic fault injection.

A :class:`FaultPlan` is a JSON-round-trippable description of *what goes
wrong and when* during an experiment: link flaps, seeded per-link packet
corruption, degraded (slow/lossy-adjacent) links, and PFC pause storms.
Plans ride on :class:`~repro.experiments.config.ExperimentConfig` and are
fingerprinted whenever non-empty, so fault-free runs keep hitting warm
sweep caches while any fault-enabled cell gets its own cache identity.

The :class:`FaultEngine` turns a plan into ordinary simulator events on the
shared timer wheel — no side channel, no wall clock — so fault-enabled runs
stay byte-identical across the heap, calendar, and compiled calendar
scheduler cores.  Fault drops are counted in dedicated counters
(``flap_drops`` / ``corruption_drops``), *never* folded into switch buffer
drops: the verifier's packet-conservation invariant holds modulo these
explicit counters, and the losslessness invariant treats an injected drop
on a PFC fabric exactly like a buffer overrun (a violation).

Semantics, per kind:

``link_flap``
    Between ``start_s`` and ``end_s`` the directed link ``src -> dst`` is
    down: the sender-side port is paused (so nothing new is serialized) and
    every non-PFC packet that *arrives* at ``dst`` during the window — i.e.
    anything in flight when the link went down — is dropped and counted in
    ``flap_drops``.  PFC control frames pass through (they never enter the
    commit/deliver packet-conservation ledger).  If PFC had already paused
    the port, the flap does not fight the PFC state machine: it only
    resumes the port at up-time if the flap itself paused it.

``packet_corruption``
    A seeded Bernoulli coin per DATA packet arriving over the link inside
    the window; heads means the frame fails CRC at the receiver and is
    dropped (counted in ``corruption_drops``) — never silently delivered.
    The coin stream is ``random.Random(sha256(seed, src, dst))``, private
    per directed link, so ECN's shared ``sim.rng`` draw sequence is
    untouched and the stream replays identically on every scheduler core.
    ``end_s`` of ``None`` means "until the end of the run" (a marginal
    cable, not a transient).

``degraded_link``
    Over the window the link's bandwidth is multiplied by
    ``bandwidth_factor`` and its propagation delay by ``delay_factor``.
    Output ports re-read link attributes at every serialization batch, so
    the change takes effect at the next batch boundary.  Overlapping
    windows on the same link compose multiplicatively.

``pause_storm``
    The fuzzer's pause fault, promoted: the ``src``-side port towards
    ``dst`` is force-paused over the window regardless of PFC state,
    modeling a misbehaving peer that spams PFC PAUSE frames.

Scheduling: every window boundary is a plain ``sim.schedule_at`` event, so
fault actions interleave with traffic in deterministic ``(time, seq)``
order.  Windows whose start lies past the end of the run simply never
fire; :meth:`FaultEngine.finalize` closes any window still open.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass
from random import Random
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.sim.link import Link, OutputPort
from repro.sim.packet import Packet, PacketType

__all__ = [
    "LinkFlap",
    "PacketCorruption",
    "DegradedLink",
    "PauseStorm",
    "FaultPlan",
    "FaultEngine",
    "fault_from_dict",
    "FAULT_KINDS",
]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


@dataclass(frozen=True)
class LinkFlap:
    """Directed link ``src -> dst`` is down over ``[start_s, end_s)``."""

    src: str
    dst: str
    start_s: float
    end_s: float
    kind: str = "link_flap"

    def __post_init__(self) -> None:
        _require(self.start_s >= 0.0, "link_flap start_s must be >= 0")
        _require(self.end_s > self.start_s, "link_flap end_s must be > start_s")


@dataclass(frozen=True)
class PacketCorruption:
    """Seeded Bernoulli CRC corruption of DATA packets on ``src -> dst``."""

    src: str
    dst: str
    probability: float
    start_s: float = 0.0
    end_s: Optional[float] = None
    kind: str = "packet_corruption"

    def __post_init__(self) -> None:
        _require(
            0.0 < self.probability <= 1.0,
            "packet_corruption probability must be in (0, 1]",
        )
        _require(self.start_s >= 0.0, "packet_corruption start_s must be >= 0")
        if self.end_s is not None:
            _require(
                self.end_s > self.start_s,
                "packet_corruption end_s must be > start_s",
            )


@dataclass(frozen=True)
class DegradedLink:
    """Bandwidth/delay multipliers on ``src -> dst`` over a window."""

    src: str
    dst: str
    start_s: float
    end_s: float
    bandwidth_factor: float = 1.0
    delay_factor: float = 1.0
    kind: str = "degraded_link"

    def __post_init__(self) -> None:
        _require(self.start_s >= 0.0, "degraded_link start_s must be >= 0")
        _require(self.end_s > self.start_s, "degraded_link end_s must be > start_s")
        _require(
            0.0 < self.bandwidth_factor <= 1.0,
            "degraded_link bandwidth_factor must be in (0, 1]",
        )
        _require(self.delay_factor >= 1.0, "degraded_link delay_factor must be >= 1")


@dataclass(frozen=True)
class PauseStorm:
    """Force-pause the ``src``-side port towards ``dst`` over a window."""

    src: str
    dst: str
    start_s: float
    end_s: float
    kind: str = "pause_storm"

    def __post_init__(self) -> None:
        _require(self.start_s >= 0.0, "pause_storm start_s must be >= 0")
        _require(self.end_s > self.start_s, "pause_storm end_s must be > start_s")


#: Wire-format ``kind`` tag -> dataclass.  ``kind`` is a real (defaulted)
#: field, not a ClassVar, so ``dataclasses.asdict`` keeps it in the wire
#: payload and :func:`fault_from_dict` can dispatch on it.
FAULT_KINDS: Dict[str, type] = {
    "link_flap": LinkFlap,
    "packet_corruption": PacketCorruption,
    "degraded_link": DegradedLink,
    "pause_storm": PauseStorm,
}


def fault_from_dict(payload: Mapping[str, Any]) -> Any:
    """Rehydrate one fault from its wire dict, dispatching on ``kind``."""
    data = dict(payload)
    kind = data.get("kind")
    cls = FAULT_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown fault kind: {kind!r}")
    return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults plus recovery-metric knobs.

    ``goodput_bin_s`` sets the bin width of the goodput timeline used for
    ``recovery_time_s`` (default: derived from the topology's base RTT);
    ``stall_threshold_s`` sets the inter-delivery gap beyond which a flow
    counts as stalled (default: the transport's effective low RTO).
    """

    faults: Tuple[Any, ...] = ()
    goodput_bin_s: Optional[float] = None
    stall_threshold_s: Optional[float] = None

    def __post_init__(self) -> None:
        coerced = tuple(
            fault_from_dict(entry) if isinstance(entry, Mapping) else entry
            for entry in self.faults
        )
        for entry in coerced:
            if type(entry) not in FAULT_KINDS.values():
                raise ValueError(f"not a fault kind: {entry!r}")
        object.__setattr__(self, "faults", coerced)
        if self.goodput_bin_s is not None:
            _require(self.goodput_bin_s > 0.0, "goodput_bin_s must be > 0")
        if self.stall_threshold_s is not None:
            _require(self.stall_threshold_s > 0.0, "stall_threshold_s must be > 0")

    @property
    def is_empty(self) -> bool:
        return not self.faults

    def first_fault_start_s(self) -> Optional[float]:
        if not self.faults:
            return None
        return min(fault.start_s for fault in self.faults)

    def last_fault_end_s(self) -> Optional[float]:
        """Latest window end, or ``None`` if empty or any window is open-ended."""
        if not self.faults:
            return None
        ends = [fault.end_s for fault in self.faults]
        if any(end is None for end in ends):
            return None
        return max(ends)

    def windows(self) -> List[Tuple[float, Optional[float]]]:
        """Merged ``(start, end)`` fault windows; ``end`` may be ``None``."""
        raw = sorted(
            ((fault.start_s, fault.end_s) for fault in self.faults),
            key=lambda window: window[0],
        )
        merged: List[Tuple[float, Optional[float]]] = []
        for start, end in raw:
            if merged:
                last_start, last_end = merged[-1]
                if last_end is None:
                    continue
                if start <= last_end:
                    if end is None:
                        merged[-1] = (last_start, None)
                    else:
                        merged[-1] = (last_start, max(last_end, end))
                    continue
            merged.append((start, end))
        return merged

    def effective_goodput_bin_s(self, base_rtt_s: float) -> float:
        if self.goodput_bin_s is not None:
            return self.goodput_bin_s
        return max(100e-6, 10.0 * base_rtt_s)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        return cls(**dict(payload))


class _LinkState:
    """Per-directed-link fault state consulted by the receive tap."""

    __slots__ = ("down", "corruptions", "rng")

    def __init__(self) -> None:
        self.down = False
        self.corruptions: List[_CorruptionWindow] = []
        self.rng: Optional[Random] = None


class _CorruptionWindow:
    __slots__ = ("probability", "active")

    def __init__(self, probability: float) -> None:
        self.probability = probability
        self.active = False


class _ReceiveTap:
    """Wraps one node's ``receive`` to intercept faulted-link arrivals.

    Installed as the *outermost* wrapper (after any metrics probes), so a
    fault-dropped packet never reaches goodput accounting or the node.
    """

    __slots__ = ("engine", "inner")

    def __init__(self, engine: "FaultEngine", node: Any) -> None:
        self.engine = engine
        self.inner = node.receive
        node.receive = self

    def __call__(self, packet: Packet, link: Link) -> None:
        state = self.engine._link_state.get(id(link))
        if state is not None and self.engine._intercept(state, packet):
            return
        self.inner(packet, link)


class FaultEngine:
    """Schedules a :class:`FaultPlan` onto a built network.

    Usage: construct after the network exists, optionally point
    ``retransmission_probe`` at a cumulative-retransmissions counter, call
    :meth:`install` before the run and :meth:`finalize` after it.
    """

    def __init__(self, sim: Any, network: Any, plan: FaultPlan, seed: int) -> None:
        self.sim = sim
        self.network = network
        self.plan = plan
        self.seed = seed
        self.flap_drops = 0
        self.corruption_drops = 0
        #: Cumulative retransmission counter sampled at fault-window edges;
        #: set by the runner (``None`` disables the observable).
        self.retransmission_probe: Optional[Callable[[], int]] = None
        self.retransmissions_during_fault = 0
        self._link_state: Dict[int, _LinkState] = {}
        self._taps: Dict[str, _ReceiveTap] = {}
        self._window_open_probe: Optional[int] = None

    @property
    def fault_drops(self) -> int:
        """All packets this engine dropped (flap + corruption)."""
        return self.flap_drops + self.corruption_drops

    # -- wiring -----------------------------------------------------------

    def _link(self, src: str, dst: str) -> Link:
        link = self.network.link_between(src, dst)
        if link is None:
            raise ValueError(f"fault targets unknown link {src} -> {dst}")
        return link

    def _state_for(self, link: Link) -> _LinkState:
        state = self._link_state.get(id(link))
        if state is None:
            state = _LinkState()
            self._link_state[id(link)] = state
            dst = link.dst
            if dst.name not in self._taps:
                self._taps[dst.name] = _ReceiveTap(self, dst)
        return state

    def _port_towards(self, src: str, dst: str) -> Optional[OutputPort]:
        node = self.network.node(src)
        port_towards = getattr(node, "port_towards", None)
        if port_towards is not None:
            try:
                return port_towards(dst)
            except KeyError:
                return None
        return getattr(node, "uplink_port", None)

    def install(self) -> None:
        """Wrap receivers and schedule every window boundary."""
        for fault in self.plan.faults:
            if isinstance(fault, LinkFlap):
                self._install_flap(fault)
            elif isinstance(fault, PacketCorruption):
                self._install_corruption(fault)
            elif isinstance(fault, DegradedLink):
                self._install_degraded(fault)
            elif isinstance(fault, PauseStorm):
                self._install_pause_storm(fault)
        if self.retransmission_probe is not None:
            for start, end in self.plan.windows():
                self.sim.schedule_at(start, self._open_retrans_window)
                if end is not None:
                    self.sim.schedule_at(end, self._close_retrans_window)

    def _install_flap(self, fault: LinkFlap) -> None:
        link = self._link(fault.src, fault.dst)
        state = self._state_for(link)
        port = self._port_towards(fault.src, fault.dst)
        holder = {"we_paused": False}

        def down() -> None:
            state.down = True
            if port is not None:
                holder["we_paused"] = not port.paused
                port.pause()

        def up() -> None:
            state.down = False
            if port is not None and holder["we_paused"] and port.paused:
                port.resume()
            holder["we_paused"] = False

        self.sim.schedule_at(fault.start_s, down)
        self.sim.schedule_at(fault.end_s, up)

    def _install_corruption(self, fault: PacketCorruption) -> None:
        link = self._link(fault.src, fault.dst)
        state = self._state_for(link)
        if state.rng is None:
            digest = hashlib.sha256(
                f"{self.seed}:{fault.src}->{fault.dst}".encode()
            ).digest()
            state.rng = Random(int.from_bytes(digest[:8], "big"))
        window = _CorruptionWindow(fault.probability)
        state.corruptions.append(window)

        def start() -> None:
            window.active = True

        def end() -> None:
            window.active = False

        self.sim.schedule_at(fault.start_s, start)
        if fault.end_s is not None:
            self.sim.schedule_at(fault.end_s, end)

    def _install_degraded(self, fault: DegradedLink) -> None:
        link = self._link(fault.src, fault.dst)

        def start() -> None:
            link.bandwidth_bps *= fault.bandwidth_factor
            link.prop_delay_s *= fault.delay_factor

        def end() -> None:
            link.bandwidth_bps /= fault.bandwidth_factor
            link.prop_delay_s /= fault.delay_factor

        self.sim.schedule_at(fault.start_s, start)
        self.sim.schedule_at(fault.end_s, end)

    def _install_pause_storm(self, fault: PauseStorm) -> None:
        port = self._port_towards(fault.src, fault.dst)
        if port is None:
            return
        self.sim.schedule_at(fault.start_s, port.pause)
        self.sim.schedule_at(fault.end_s, port.resume)

    # -- runtime ----------------------------------------------------------

    def _intercept(self, state: _LinkState, packet: Packet) -> bool:
        """True if the packet is consumed (dropped) by a fault."""
        if state.down and not packet.is_pfc():
            self.flap_drops += 1
            return True
        if state.corruptions and packet.ptype is PacketType.DATA:
            rng = state.rng
            for window in state.corruptions:
                if window.active and rng.random() < window.probability:
                    self.corruption_drops += 1
                    return True
        return False

    def _open_retrans_window(self) -> None:
        if self.retransmission_probe is not None:
            self._window_open_probe = self.retransmission_probe()

    def _close_retrans_window(self) -> None:
        if self._window_open_probe is not None and self.retransmission_probe is not None:
            self.retransmissions_during_fault += (
                self.retransmission_probe() - self._window_open_probe
            )
        self._window_open_probe = None

    def finalize(self) -> None:
        """Close any fault window still open when the run ended."""
        self._close_retrans_window()
