"""Streaming (partial-result) aggregation over :class:`ResultRow` records.

The sweep layer's :func:`~repro.experiments.sweep.aggregate_rows` folds seed
replicas into per-cell records *after* every cell has finished.  A work-queue
sweep cannot wait: rows land one part-file at a time, possibly from several
worker machines, and the caller wants to watch the pooled tails converge
while the sweep is still running.

:class:`PartialAggregator` is the incremental engine both paths share.  Rows
are absorbed one at a time; per cell it keeps the replica scalars, the summed
fabric counters and one *merged* :class:`~repro.metrics.sketch.QuantileDigest`
per distribution (FCT, slowdown tails are already inside the FCT digest,
single-packet latency, and -- when runs collect them -- queue depth and PFC
pause durations).  Because digest merges are commutative and associative,
``snapshot()`` after N rows reports the *true pooled* percentiles over every
flow of every row absorbed so far -- not a mean of per-row tails -- and the
final snapshot is exactly what ``aggregate_rows`` computes over the complete
row set.  ``aggregate_rows`` is in fact implemented as "absorb everything,
then snapshot", so the two can never drift.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.metrics.sketch import QuantileDigest
from repro.metrics.stats import ci95_half_width, mean, percentile, stderr

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.results import ResultRow

__all__ = ["PartialAggregator", "aggregate_partial", "rows_in_batch_order"]

#: Metrics averaged (and tail-summarized) across seed replicas per cell.
MEAN_P99_METRICS = ("avg_slowdown", "avg_fct_s", "tail_fct_s")

#: Counters summed across seed replicas per cell.
SUMMED_COUNTERS = (
    "packets_dropped",
    "pause_frames",
    "retransmissions",
    "timeouts",
    "deadlock_events",
)

#: Digest-backed pooled-distribution columns, one entry per ``ResultRow``
#: digest field: ``(row_field, column_prefix, unit_suffix, percentile labels,
#: count_column, sum_column)``.  ``count_column``/``sum_column`` are emitted
#: only when non-``None`` (the merged digest's sample count / running sum).
DIGEST_COLUMNS: Tuple[Tuple[str, str, str, Tuple[Tuple[float, str], ...],
                            Optional[str], Optional[str]], ...] = (
    ("fct_digest", "fct", "s",
     ((0.50, "p50"), (0.99, "p99"), (0.999, "p999")), None, None),
    ("single_packet_digest", "single_packet", "s",
     ((0.90, "p90"), (0.99, "p99"), (0.999, "p999")), "single_packet_flows", None),
    # §4.4 congestion-spreading observability (collected when
    # ``ExperimentConfig.fabric_digests`` is set): per-switch input-port
    # occupancy sampled at every enqueue, and the duration of every PFC
    # pause episode any output port served.
    ("queue_depth_digest", "queue_depth", "bytes",
     ((0.50, "p50"), (0.99, "p99"), (0.999, "p999")), None, None),
    ("pfc_pause_digest", "pfc_pause", "s",
     ((0.50, "p50"), (0.99, "p99"), (0.999, "p999")),
     "pfc_pause_events", "pfc_pause_total_s"),
    # Fault-injection recovery observables (collected when the config
    # carries a non-empty ``fault_plan``): per-time-bin goodput over the
    # whole run, and per-flow total stall seconds.
    ("goodput_digest", "goodput", "bps",
     ((0.50, "p50"), (0.99, "p99")), None, None),
    ("stall_digest", "flow_stall", "s",
     ((0.50, "p50"), (0.99, "p99")), None, "flow_stall_total_s"),
    # c-latency ratios (collected when ``ExperimentConfig.c_latency_ratios``
    # is set): per-flow FCT over the path's speed-of-light propagation
    # bound -- the propagation-dominated fabrics' headline tail metric.
    ("c_latency_digest", "c_latency", "ratio",
     ((0.50, "p50"), (0.99, "p99"), (0.999, "p999")), None, None),
)

#: Counters summed per cell only when some absorbed row was fault-enabled
#: (mirrors ``min_time_to_deadlock_s``: fault-free cells keep their
#: pre-fault-injection record shape).
FAULT_COUNTERS = ("fault_injected_drops", "retransmissions_during_fault")


class _CellState:
    """Running aggregate of every row absorbed for one parameter cell."""

    __slots__ = ("key", "replicas", "seeds", "metric_values", "drop_rates",
                 "counters", "num_flows_total", "digests", "time_to_deadlock_s",
                 "faults_seen", "fault_counters", "recovery_times")

    def __init__(self, key: Tuple[Any, ...]) -> None:
        self.key = key
        self.replicas = 0
        self.seeds: List[int] = []
        #: metric -> replica values, in absorption order (the same order the
        #: batch aggregator would have summed them in).
        self.metric_values: Dict[str, List[float]] = {m: [] for m in MEAN_P99_METRICS}
        self.drop_rates: List[float] = []
        self.counters: Dict[str, int] = {c: 0 for c in SUMMED_COUNTERS}
        self.num_flows_total = 0
        #: Earliest first-deadlock time across replicas (None until one fires).
        self.time_to_deadlock_s: Optional[float] = None
        #: row digest field -> merged digest over every absorbed row.
        self.digests: Dict[str, Optional[QuantileDigest]] = {
            spec[0]: None for spec in DIGEST_COLUMNS
        }
        #: True once any absorbed row was fault-enabled; gates the fault
        #: columns so fault-free cells keep their record shape.
        self.faults_seen = False
        self.fault_counters: Dict[str, int] = {c: 0 for c in FAULT_COUNTERS}
        #: Replica ``recovery_time_s`` values that were not ``None``.
        self.recovery_times: List[float] = []

    def absorb(self, row: "ResultRow") -> None:
        self.replicas += 1
        self.seeds.append(row.seed)
        for metric in MEAN_P99_METRICS:
            self.metric_values[metric].append(getattr(row, metric))
        self.drop_rates.append(row.drop_rate)
        for counter in SUMMED_COUNTERS:
            self.counters[counter] += getattr(row, counter, 0)
        self.num_flows_total += row.num_flows
        ttd = getattr(row, "time_to_deadlock_s", None)
        if ttd is not None and (
            self.time_to_deadlock_s is None or ttd < self.time_to_deadlock_s
        ):
            self.time_to_deadlock_s = ttd
        if getattr(row, "faults_enabled", False):
            self.faults_seen = True
            for counter in FAULT_COUNTERS:
                self.fault_counters[counter] += getattr(row, counter, 0)
            recovery = getattr(row, "recovery_time_s", None)
            if recovery is not None:
                self.recovery_times.append(recovery)
        for field, *_ in DIGEST_COLUMNS:
            payload = getattr(row, field, None)
            if payload is None:
                continue
            digest = QuantileDigest.from_dict(payload)
            merged = self.digests[field]
            self.digests[field] = digest if merged is None else merged.merge(digest)

    def record(self, by: Sequence[str]) -> Dict[str, Any]:
        record: Dict[str, Any] = dict(zip(by, self.key))
        record["replicas"] = self.replicas
        record["seeds"] = sorted(self.seeds)
        for metric in MEAN_P99_METRICS:
            values = self.metric_values[metric]
            record[f"{metric}_mean"] = mean(values)
            record[f"{metric}_p99"] = percentile(values, 0.99)
            record[f"{metric}_stderr"] = stderr(values)
            record[f"{metric}_ci95"] = ci95_half_width(values)
        record["drop_rate_mean"] = mean(self.drop_rates)
        for counter in SUMMED_COUNTERS:
            record[f"{counter}_total"] = self.counters[counter]
        record["num_flows_total"] = self.num_flows_total
        if self.time_to_deadlock_s is not None:
            # Earliest wedge across replicas -- only emitted when one fired,
            # so deadlock-free cells keep their pre-detector record shape.
            record["min_time_to_deadlock_s"] = self.time_to_deadlock_s
        if self.faults_seen:
            for counter in FAULT_COUNTERS:
                record[f"{counter}_total"] = self.fault_counters[counter]
            record["recovered_replicas"] = len(self.recovery_times)
            if self.recovery_times:
                record["recovery_time_s_mean"] = mean(self.recovery_times)
                record["recovery_time_s_max"] = max(self.recovery_times)
        for field, prefix, unit, fractions, count_col, sum_col in DIGEST_COLUMNS:
            digest = self.digests[field]
            if digest is None or not digest.count:
                continue
            if count_col is not None:
                record[count_col] = digest.count
            for fraction, label in fractions:
                record[f"{prefix}_{label}_{unit}"] = digest.percentile(fraction)
            if sum_col is not None:
                record[sum_col] = digest.sum
        return record


class PartialAggregator:
    """Incrementally folds rows into per-cell aggregate records.

    Rows sharing the ``by`` fields form one cell.  :meth:`add` is O(1) per
    row (amortized); :meth:`snapshot` renders the current per-cell records in
    first-seen cell order -- the exact shape (and, over the full row set, the
    exact values) of :func:`~repro.experiments.sweep.aggregate_rows`.
    """

    def __init__(self, by: Sequence[str] = ("transport", "congestion_control", "pfc_enabled")) -> None:
        # Validated lazily against ResultRow to keep this module importable
        # without the experiments package.
        from repro.experiments.results import ResultRow

        self.by = tuple(by)
        invalid = [name for name in self.by if name not in ResultRow.__dataclass_fields__]
        if invalid:
            raise ValueError(f"unknown ResultRow field(s) in 'by': {sorted(invalid)}")
        self._cells: Dict[Tuple[Any, ...], _CellState] = {}
        self._rows_absorbed = 0

    @property
    def rows_absorbed(self) -> int:
        return self._rows_absorbed

    def __len__(self) -> int:
        """Number of distinct cells seen so far."""
        return len(self._cells)

    def add(self, row: "ResultRow") -> Dict[str, Any]:
        """Absorb one row; returns the *updated* cell's current record."""
        key = tuple(getattr(row, name) for name in self.by)
        cell = self._cells.get(key)
        if cell is None:
            cell = self._cells[key] = _CellState(key)
        cell.absorb(row)
        self._rows_absorbed += 1
        return cell.record(self.by)

    def add_all(self, rows: Iterable["ResultRow"]) -> "PartialAggregator":
        for row in rows:
            self.add(row)
        return self

    def snapshot(self) -> List[Dict[str, Any]]:
        """Every cell's current aggregate record, in first-seen order."""
        return [cell.record(self.by) for cell in self._cells.values()]


def rows_in_batch_order(
    rows: Iterable["ResultRow"],
    cell_name_order: Optional[Sequence[str]] = None,
) -> List["ResultRow"]:
    """Rows sorted into the canonical batch-aggregation absorption order.

    Digest merges are order-independent, but the scalar statistics
    (``mean``/``stderr`` float summation) and the snapshot's cell ordering
    are not: a batch sweep absorbs rows cell-by-cell in scenario order with
    seeds ascending.  Rows gathered in *arrival* order -- queue part-files
    landing from concurrent workers, cache files in label order -- must be
    re-sorted into that canonical order for the final aggregate to be
    bit-identical to the serial batch result.  This is the one definition
    the results service and its follow streams share.

    ``cell_name_order`` pins the cell ordering (a scenario's cells in spec
    order); names not listed sort after the listed ones, alphabetically.
    Within a cell, rows order by seed then label.
    """
    order = {name: index for index, name in enumerate(cell_name_order or ())}
    unknown = len(order)
    return sorted(
        rows,
        key=lambda row: (order.get(row.name, unknown), row.name, row.seed, row.label),
    )


def aggregate_partial(
    rows: Iterable["ResultRow"],
    by: Sequence[str] = ("transport", "congestion_control", "pfc_enabled"),
) -> List[Dict[str, Any]]:
    """Aggregate whatever rows exist *so far* (the partial-merge entry point).

    Identical to :func:`~repro.experiments.sweep.aggregate_rows` -- which is
    a re-export of this reduction over a complete row set -- but named for
    its streaming use: hand it the subset of rows that have landed and it
    reports true pooled digests over exactly that subset.
    """
    return PartialAggregator(by).add_all(rows).snapshot()
