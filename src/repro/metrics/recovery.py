"""Recovery observables for fault-enabled runs.

The :class:`RecoveryTracker` taps every host's ``receive`` (installed
*inside* the fault engine's tap, so injected drops never count as
delivered traffic) and maintains:

- a **goodput timeline**: delivered DATA payload bytes binned into
  fixed-width time bins, exported both as a quantile digest (per-bin
  goodput in bits/s over the whole run) and consulted for
  ``recovery_time_s``;
- **per-flow stall time**: for each flow, the summed inter-delivery gaps
  that exceeded the stall threshold (default: the transport's low RTO) —
  a flow that never stalls contributes 0;
- **recovery_time_s**: the delay from the last fault-window end to the
  first bin whose goodput reaches 90% of the best pre-fault bin.  ``None``
  when there is no pre-fault traffic to reference, when some fault window
  is open-ended, or when goodput never recovers before the run ends.

Everything here is driven by simulator event order and ``sim.now`` only —
no RNG, no wall clock — so fault-enabled rows stay byte-identical across
scheduler cores.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

from repro.metrics.sketch import QuantileDigest
from repro.sim.packet import Packet, PacketType

__all__ = ["RecoveryTracker", "RECOVERY_GOODPUT_FRACTION"]

#: Fraction of the best pre-fault bin goodput that counts as "recovered".
RECOVERY_GOODPUT_FRACTION = 0.9


class _HostTap:
    __slots__ = ("tracker", "inner")

    def __init__(self, tracker: "RecoveryTracker", host: Any) -> None:
        self.tracker = tracker
        self.inner = host.receive
        host.receive = self

    def __call__(self, packet: Packet, link: Any) -> None:
        if packet.ptype is PacketType.DATA:
            self.tracker.on_data_delivered(packet)
        self.inner(packet, link)


class RecoveryTracker:
    """Bins delivered goodput and tracks per-flow delivery gaps."""

    def __init__(self, sim: Any, bin_s: float, stall_threshold_s: float) -> None:
        if bin_s <= 0.0:
            raise ValueError("bin_s must be > 0")
        if stall_threshold_s <= 0.0:
            raise ValueError("stall_threshold_s must be > 0")
        self.sim = sim
        self.bin_s = bin_s
        self.stall_threshold_s = stall_threshold_s
        self._bins: Dict[int, float] = {}
        self._last_delivery: Dict[int, float] = {}
        self._stall: Dict[int, float] = {}

    def install(self, network: Any) -> None:
        for host in network.hosts.values():
            _HostTap(self, host)

    def on_data_delivered(self, packet: Packet) -> None:
        now = self.sim.now
        index = int(now / self.bin_s)
        self._bins[index] = self._bins.get(index, 0.0) + packet.payload_bytes
        last = self._last_delivery.get(packet.flow_id)
        if last is not None:
            gap = now - last
            if gap > self.stall_threshold_s:
                self._stall[packet.flow_id] = (
                    self._stall.get(packet.flow_id, 0.0) + gap
                )
        self._last_delivery[packet.flow_id] = now

    # -- exports ----------------------------------------------------------

    def goodput_timeline_digest(self) -> Optional[QuantileDigest]:
        """Per-bin goodput (bits/s) over the covered timeline, zeros included."""
        if not self._bins:
            return None
        digest = QuantileDigest()
        last_index = max(self._bins)
        for index in range(last_index + 1):
            digest.add(self._bins.get(index, 0.0) * 8.0 / self.bin_s)
        return digest

    def flow_stall_digest(self) -> Optional[QuantileDigest]:
        """Per-flow total stall seconds (0 for flows that never stalled)."""
        if not self._last_delivery:
            return None
        digest = QuantileDigest()
        for flow_id in self._last_delivery:
            digest.add(self._stall.get(flow_id, 0.0))
        return digest

    def total_stall_s(self) -> float:
        return sum(self._stall.values())

    def recovery_time_s(
        self,
        first_fault_start_s: Optional[float],
        last_fault_end_s: Optional[float],
    ) -> Optional[float]:
        """Seconds from last-fault-end to the first full-goodput bin."""
        if first_fault_start_s is None or last_fault_end_s is None:
            return None
        if not self._bins:
            return None
        reference_end = int(first_fault_start_s / self.bin_s)
        reference = max(
            (self._bins.get(index, 0.0) for index in range(reference_end)),
            default=0.0,
        )
        if reference <= 0.0:
            return None
        threshold = RECOVERY_GOODPUT_FRACTION * reference
        start_index = math.ceil(last_fault_end_s / self.bin_s)
        last_index = max(self._bins)
        for index in range(start_index, last_index + 1):
            if self._bins.get(index, 0.0) >= threshold:
                return index * self.bin_s - last_fault_end_s
        return None
