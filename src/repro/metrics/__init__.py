"""Metrics: FCTs, slowdowns, percentiles, mergeable digests and reports."""

from repro.metrics.stats import percentile, summarize, tail_cdf, MetricSummary
from repro.metrics.sketch import QuantileDigest, merge_digest_dicts
from repro.metrics.collector import FlowMetrics, GroupStats, MetricsCollector

#: Report formatters re-exported lazily (PEP 562) so ``python -m
#: repro.metrics.report`` does not import the module twice.
_REPORT_EXPORTS = (
    "format_aggregate_table",
    "format_incast_table",
    "format_metric_table",
    "format_ratio_table",
    "format_tail_cdf",
    "load_cached_rows",
)

__all__ = [
    "percentile",
    "summarize",
    "tail_cdf",
    "MetricSummary",
    "QuantileDigest",
    "merge_digest_dicts",
    "FlowMetrics",
    "GroupStats",
    "MetricsCollector",
    *_REPORT_EXPORTS,
]


def __getattr__(name):
    if name in _REPORT_EXPORTS:
        from repro.metrics import report

        return getattr(report, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
