"""Metrics: flow completion times, slowdowns, percentiles and tail CDFs."""

from repro.metrics.stats import percentile, summarize, tail_cdf, MetricSummary
from repro.metrics.collector import FlowMetrics, MetricsCollector

__all__ = [
    "percentile",
    "summarize",
    "tail_cdf",
    "MetricSummary",
    "FlowMetrics",
    "MetricsCollector",
]
