"""Per-flow metric collection.

The collector computes, for every completed flow, its flow completion time
and its *slowdown*: the FCT divided by the time the flow would have taken to
traverse its path at line rate in an empty network (one store-and-forward
MTU per hop plus propagation plus transmission of the whole flow at the
bottleneck rate).

Two representations are maintained as flows complete:

* **Streaming accumulators** (:class:`GroupStats`, one per workload group
  plus one over all flows): count, exact sums for means, and mergeable
  :class:`~repro.metrics.sketch.QuantileDigest` sketches of the FCT,
  slowdown and single-packet latency distributions.  These are compact,
  serializable and mergeable across seed replicas -- they are what
  :class:`~repro.experiments.results.ResultRow` exports through the sweep
  cache.
* **Per-flow records** (:class:`FlowMetrics`), kept when ``keep_records``
  is true (the default) so in-process analyses can still see every flow.
  Pass ``keep_records=False`` for long runs where only the streaming state
  matters; summaries then fall back to the digests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.transport import Flow
from repro.metrics.sketch import QuantileDigest
from repro.metrics.stats import MetricSummary, summarize, tail_cdf
from repro.sim.packet import DEFAULT_HEADER_BYTES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.network import Network


@dataclass
class FlowMetrics:
    """Completion metrics for one flow."""

    flow: Flow
    fct: float
    ideal_fct: float

    @property
    def slowdown(self) -> float:
        return max(1.0, self.fct / self.ideal_fct) if self.ideal_fct > 0 else float("inf")


@dataclass
class GroupStats:
    """Streaming accumulator over one group of completed flows.

    Everything here is O(1) per flow and mergeable: exact running sums for
    the means, quantile digests for the distributions.
    """

    count: int = 0
    fct_sum: float = 0.0
    slowdown_sum: float = 0.0
    fct_digest: QuantileDigest = field(default_factory=QuantileDigest)
    slowdown_digest: QuantileDigest = field(default_factory=QuantileDigest)
    #: FCTs of single-packet messages only (Figure 8's latency metric).
    single_packet_digest: QuantileDigest = field(default_factory=QuantileDigest)

    def observe(self, fct: float, slowdown: float, single_packet: bool) -> None:
        self.count += 1
        self.fct_sum += fct
        self.slowdown_sum += slowdown
        self.fct_digest.add(fct)
        # A degenerate zero-ideal-FCT flow reports an infinite slowdown; it
        # still poisons the mean (as it always did) but cannot enter the
        # digest, which only admits finite samples.
        if math.isfinite(slowdown):
            self.slowdown_digest.add(slowdown)
        if single_packet:
            self.single_packet_digest.add(fct)

    @property
    def avg_fct(self) -> float:
        if self.count == 0:
            raise ValueError("no flows observed")
        return self.fct_sum / self.count

    @property
    def avg_slowdown(self) -> float:
        if self.count == 0:
            raise ValueError("no flows observed")
        return self.slowdown_sum / self.count

    def summary(self, tail_fraction: float = 0.99) -> MetricSummary:
        """Headline metrics from the streaming state (means exact, tail from
        the digest -- identical to the per-record computation while the
        digest is in exact mode)."""
        if self.count == 0:
            raise ValueError("no flows observed")
        return MetricSummary(
            avg_slowdown=self.avg_slowdown,
            avg_fct=self.avg_fct,
            tail_fct=self.fct_digest.percentile(tail_fraction),
            num_flows=self.count,
        )


class MetricsCollector:
    """Accumulates completed flows and produces paper-style summaries."""

    def __init__(
        self,
        network: "Network",
        mtu_bytes: int = 1000,
        header_bytes: int = DEFAULT_HEADER_BYTES,
        keep_records: bool = True,
    ) -> None:
        self.network = network
        self.mtu_bytes = mtu_bytes
        self.header_bytes = header_bytes
        self.keep_records = keep_records
        self.records: List[FlowMetrics] = []
        #: Streaming accumulators: ``None`` covers all flows, a string key
        #: covers one workload group (``Flow.group``).
        self.streams: Dict[Optional[str], GroupStats] = {None: GroupStats()}
        self._ideal_cache: Dict[int, float] = {}
        #: Per-flow one-way propagation delay (filled alongside the ideal-FCT
        #: cache; the speed-of-light denominator of the c-latency ratio).
        self._prop_cache: Dict[int, float] = {}
        #: Per-flow c-latency ratio digest; ``None`` until
        #: :meth:`install_c_latency_probe` attaches it.
        self._c_latency_digest: Optional[QuantileDigest] = None
        #: Per-switch queue-depth digests, in switch order; ``None`` until
        #: :meth:`install_fabric_probes` attaches them.
        self._switch_depth_digests: Optional[List[QuantileDigest]] = None
        #: Per-output-port PFC pause-duration digests (switches and hosts).
        self._port_pause_digests: Optional[List[QuantileDigest]] = None
        #: Online PFC deadlock detector; ``None`` until
        #: :meth:`install_deadlock_detector` attaches it.
        self.deadlock_detector = None
        #: Recovery tracker for fault-enabled runs; ``None`` until
        #: :meth:`install_recovery_probes` attaches it.
        self.recovery_tracker = None

    # ------------------------------------------------------------------
    def ideal_fct(self, flow: Flow) -> float:
        """Completion time of ``flow`` at line rate on an empty network."""
        cached = self._ideal_cache.get(flow.flow_id)
        if cached is not None:
            return cached
        hops, bandwidth, prop_delay = self.network.path_properties(
            flow.src, flow.dst, flow.flow_id
        )
        packets = flow.num_packets(self.mtu_bytes)
        wire_bytes = flow.size_bytes + packets * self.header_bytes
        transmission = wire_bytes * 8.0 / bandwidth
        # Store-and-forward of the first packet across the remaining hops.
        per_hop_packet = (min(self.mtu_bytes, flow.size_bytes) + self.header_bytes) * 8.0 / bandwidth
        pipeline = (hops - 1) * per_hop_packet if hops > 1 else 0.0
        ideal = transmission + prop_delay + pipeline
        self._ideal_cache[flow.flow_id] = ideal
        self._prop_cache[flow.flow_id] = prop_delay
        return ideal

    def on_flow_complete(self, flow: Flow, now: float) -> None:
        """Record a completed flow (wired as the receiver completion callback)."""
        if flow.completion_time is None:
            flow.completion_time = now
        record = FlowMetrics(flow=flow, fct=flow.fct(), ideal_fct=self.ideal_fct(flow))
        if self.keep_records:
            self.records.append(record)
        single_packet = flow.num_packets(self.mtu_bytes) == 1
        self.streams[None].observe(record.fct, record.slowdown, single_packet)
        if self._c_latency_digest is not None:
            # ``ideal_fct`` above filled the propagation cache for this flow.
            prop = self._prop_cache.get(flow.flow_id, 0.0)
            if prop > 0:
                ratio = record.fct / prop
                if math.isfinite(ratio):
                    self._c_latency_digest.add(ratio)
        group_stats = self.streams.get(flow.group)
        if group_stats is None:
            group_stats = self.streams[flow.group] = GroupStats()
        group_stats.observe(record.fct, record.slowdown, single_packet)

    # ------------------------------------------------------------------
    # Fabric observability (§4.4 congestion spreading)
    # ------------------------------------------------------------------
    def install_fabric_probes(self) -> None:
        """Attach queue-depth / pause-duration digests across the fabric.

        One :class:`QuantileDigest` per switch samples the enqueueing input
        port's occupancy on every accepted packet; one per output port
        (switch ports and host NIC uplinks -- PFC pauses innocent hosts
        too, which is exactly the congestion spreading §4.4 studies)
        records the duration of every pause episode.  Call once, after the
        network is built and before the simulation runs.  Pure observation:
        it adds no events and consumes no randomness, so enabling it leaves
        results byte-identical.
        """
        self._switch_depth_digests = []
        self._port_pause_digests = []
        for switch in self.network.switches.values():
            digest = QuantileDigest()
            switch.queue_depth_digest = digest
            self._switch_depth_digests.append(digest)
        for port in self.network.output_ports():
            digest = QuantileDigest()
            port.pause_digest = digest
            self._port_pause_digests.append(digest)

    def install_c_latency_probe(self) -> None:
        """Attach the c-latency-ratio digest (§"Speed of Light Internet").

        Every completed flow contributes ``FCT / path propagation delay`` --
        its completion time over the speed-of-light lower bound implied by
        the topology's hop delays.  On propagation-dominated (WAN) fabrics
        this is the headline tail metric; on intra-DC fabrics it is
        serialization-dominated and mostly tracks slowdown.  Pure
        observation, like the fabric probes: no events, no randomness.
        Call once, before the run (enabled by
        ``ExperimentConfig.c_latency_ratios``).
        """
        self._c_latency_digest = QuantileDigest()

    def c_latency_digest(self) -> Optional[QuantileDigest]:
        """Per-flow c-latency ratios (``None`` unless the probe is installed)."""
        return self._c_latency_digest

    def install_deadlock_detector(self):
        """Attach a :class:`~repro.sim.deadlock.PfcDeadlockDetector` fabric-wide.

        Watches every output port's PFC pause state for wait-for cycles
        (the paper's §2 circular-buffer-dependency deadlocks).  Like
        :meth:`install_fabric_probes` this is pure observation -- no events,
        no randomness -- so it is installed unconditionally by the runner.
        Call once, after the network is built and before the run.
        """
        from repro.sim.deadlock import PfcDeadlockDetector

        detector = PfcDeadlockDetector()
        detector.install(self.network)
        self.deadlock_detector = detector
        return detector

    def install_recovery_probes(self, bin_s: float, stall_threshold_s: float):
        """Attach a :class:`~repro.metrics.recovery.RecoveryTracker` to every
        host (goodput timeline, per-flow stall gaps).

        Must be installed *before* the fault engine wraps the same
        receivers, so injected drops never count as delivered goodput.
        Pure observation otherwise: no events, no randomness.
        """
        from repro.metrics.recovery import RecoveryTracker

        tracker = RecoveryTracker(
            self.network.sim, bin_s=bin_s, stall_threshold_s=stall_threshold_s
        )
        tracker.install(self.network)
        self.recovery_tracker = tracker
        return tracker

    def goodput_timeline_digest(self) -> Optional[QuantileDigest]:
        """Per-bin goodput over the run (``None`` without recovery probes)."""
        tracker = self.recovery_tracker
        return None if tracker is None else tracker.goodput_timeline_digest()

    def flow_stall_digest(self) -> Optional[QuantileDigest]:
        """Per-flow stall seconds (``None`` without recovery probes)."""
        tracker = self.recovery_tracker
        return None if tracker is None else tracker.flow_stall_digest()

    @property
    def deadlock_events(self) -> int:
        """Wait-for cycles observed (0 when no detector is installed)."""
        detector = self.deadlock_detector
        return 0 if detector is None else detector.deadlock_events

    @property
    def time_to_deadlock_s(self) -> Optional[float]:
        """Simulation time of the first deadlock event, if any."""
        detector = self.deadlock_detector
        return None if detector is None else detector.time_to_deadlock_s

    @staticmethod
    def _merge_probe_digests(
        digests: Optional[List[QuantileDigest]],
    ) -> Optional[QuantileDigest]:
        if digests is None:
            return None
        merged = QuantileDigest()
        for digest in digests:
            merged.merge(digest)
        return merged

    def fabric_queue_depth_digest(self) -> Optional[QuantileDigest]:
        """Queue-depth samples pooled over every switch (``None`` when
        probes were never installed; per-switch digests stay readable on
        each :class:`~repro.sim.switch.Switch`)."""
        return self._merge_probe_digests(self._switch_depth_digests)

    def fabric_pfc_pause_digest(self) -> Optional[QuantileDigest]:
        """PFC pause durations pooled over every output port."""
        return self._merge_probe_digests(self._port_pause_digests)

    # ------------------------------------------------------------------
    # Streaming views
    # ------------------------------------------------------------------
    @property
    def completed_count(self) -> int:
        """Completed flows seen so far (independent of ``keep_records``)."""
        return self.streams[None].count

    def stream(self, group: Optional[str] = None) -> GroupStats:
        """The streaming accumulator for ``group`` (``None`` == all flows).

        An unknown group yields an empty accumulator, so callers can probe
        ``.count`` without special-casing.
        """
        return self.streams.get(group) or GroupStats()

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def completed_flows(self, group: Optional[str] = None) -> List[FlowMetrics]:
        """All completed-flow records, optionally filtered by workload group."""
        self._require_records()
        if group is None:
            return list(self.records)
        return [record for record in self.records if record.flow.group == group]

    def summary(self, group: Optional[str] = None, tail_fraction: float = 0.99) -> MetricSummary:
        """Average slowdown / average FCT / tail FCT over completed flows.

        With records kept the tail percentile is computed exactly from the
        per-flow list; otherwise it comes from the streaming digest (exact
        while the digest is in exact mode, within its documented error bound
        beyond).
        """
        if not self.keep_records:
            stats = self.stream(group)
            if stats.count == 0:
                raise RuntimeError("no completed flows to summarize")
            return stats.summary(tail_fraction)
        records = self.completed_flows(group)
        if not records:
            raise RuntimeError("no completed flows to summarize")
        return summarize(
            [record.fct for record in records],
            [record.slowdown for record in records],
            tail_fraction=tail_fraction,
        )

    def single_packet_latencies(self, group: Optional[str] = None) -> List[float]:
        """FCTs of single-packet messages (Figure 8's latency metric)."""
        return [
            record.fct
            for record in self.completed_flows(group)
            if record.flow.num_packets(self.mtu_bytes) == 1
        ]

    def single_packet_tail_cdf(
        self, start_fraction: float = 0.90, points: int = 40
    ) -> List[tuple]:
        """Tail CDF of single-packet message latency."""
        return tail_cdf(self.single_packet_latencies(), start_fraction, points)

    def completion_fraction(self, total_flows: int) -> float:
        """Fraction of generated flows that completed before the sim ended."""
        if total_flows <= 0:
            return 0.0
        return self.completed_count / total_flows

    def _require_records(self) -> None:
        if not self.keep_records and self.streams[None].count > 0:
            raise RuntimeError(
                "per-flow records were not kept (keep_records=False); "
                "use the streaming accessors (stream/summary) instead"
            )
