"""Per-flow metric collection.

The collector computes, for every completed flow, its flow completion time
and its *slowdown*: the FCT divided by the time the flow would have taken to
traverse its path at line rate in an empty network (one store-and-forward
MTU per hop plus propagation plus transmission of the whole flow at the
bottleneck rate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.core.transport import Flow
from repro.metrics.stats import MetricSummary, summarize, tail_cdf
from repro.sim.packet import DEFAULT_HEADER_BYTES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.network import Network


@dataclass
class FlowMetrics:
    """Completion metrics for one flow."""

    flow: Flow
    fct: float
    ideal_fct: float

    @property
    def slowdown(self) -> float:
        return max(1.0, self.fct / self.ideal_fct) if self.ideal_fct > 0 else float("inf")

    @property
    def is_single_packet(self) -> bool:
        return self.flow.num_packets(1000) == 1


class MetricsCollector:
    """Accumulates completed flows and produces paper-style summaries."""

    def __init__(
        self,
        network: "Network",
        mtu_bytes: int = 1000,
        header_bytes: int = DEFAULT_HEADER_BYTES,
    ) -> None:
        self.network = network
        self.mtu_bytes = mtu_bytes
        self.header_bytes = header_bytes
        self.records: List[FlowMetrics] = []
        self._ideal_cache: Dict[int, float] = {}

    # ------------------------------------------------------------------
    def ideal_fct(self, flow: Flow) -> float:
        """Completion time of ``flow`` at line rate on an empty network."""
        cached = self._ideal_cache.get(flow.flow_id)
        if cached is not None:
            return cached
        hops, bandwidth, prop_delay = self.network.path_properties(
            flow.src, flow.dst, flow.flow_id
        )
        packets = flow.num_packets(self.mtu_bytes)
        wire_bytes = flow.size_bytes + packets * self.header_bytes
        transmission = wire_bytes * 8.0 / bandwidth
        # Store-and-forward of the first packet across the remaining hops.
        per_hop_packet = (min(self.mtu_bytes, flow.size_bytes) + self.header_bytes) * 8.0 / bandwidth
        pipeline = (hops - 1) * per_hop_packet if hops > 1 else 0.0
        ideal = transmission + prop_delay + pipeline
        self._ideal_cache[flow.flow_id] = ideal
        return ideal

    def on_flow_complete(self, flow: Flow, now: float) -> None:
        """Record a completed flow (wired as the receiver completion callback)."""
        if flow.completion_time is None:
            flow.completion_time = now
        self.records.append(FlowMetrics(flow=flow, fct=flow.fct(), ideal_fct=self.ideal_fct(flow)))

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def completed_flows(self, group: Optional[str] = None) -> List[FlowMetrics]:
        """All completed-flow records, optionally filtered by workload group."""
        if group is None:
            return list(self.records)
        return [record for record in self.records if record.flow.group == group]

    def summary(self, group: Optional[str] = None, tail_fraction: float = 0.99) -> MetricSummary:
        """Average slowdown / average FCT / tail FCT over completed flows."""
        records = self.completed_flows(group)
        if not records:
            raise RuntimeError("no completed flows to summarize")
        return summarize(
            [record.fct for record in records],
            [record.slowdown for record in records],
            tail_fraction=tail_fraction,
        )

    def single_packet_latencies(self, group: Optional[str] = None) -> List[float]:
        """FCTs of single-packet messages (Figure 8's latency metric)."""
        return [
            record.fct
            for record in self.completed_flows(group)
            if record.flow.num_packets(self.mtu_bytes) == 1
        ]

    def single_packet_tail_cdf(
        self, start_fraction: float = 0.90, points: int = 40
    ) -> List[tuple]:
        """Tail CDF of single-packet message latency."""
        return tail_cdf(self.single_packet_latencies(), start_fraction, points)

    def completion_fraction(self, total_flows: int) -> float:
        """Fraction of generated flows that completed before the sim ended."""
        if total_flows <= 0:
            return 0.0
        return len(self.records) / total_flows
