"""Paper-style report rendering from results, rows and warm sweep caches.

One place for the table/CDF formatting that ``benchmarks/conftest.py`` and
the ``examples/`` scripts used to each reimplement.  Every formatter returns
a string (callers print it), and accepts anything exposing the shared result
surface -- ``.summary``, ``.drop_rate``, ``.pause_frames``,
``.retransmissions`` -- so heavyweight
:class:`~repro.experiments.runner.ExperimentResult` objects and flat cached
:class:`~repro.experiments.results.ResultRow` records both work.

Because :class:`ResultRow` round-trips through the sweep cache with its
quantile digests intact, a full report (headline tables *and* Figure 8-style
tail CDFs) can be regenerated from a warm cache without re-simulating::

    python -m repro.metrics.report .sweep-cache/quickstart --cdf

(imports of the experiments package happen lazily inside the cache helpers,
so importing :mod:`repro.metrics` never drags in the simulator stack).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.metrics.sketch import QuantileDigest
from repro.metrics.stats import tail_cdf as exact_tail_cdf

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.results import ResultRow

__all__ = [
    "format_metric_table",
    "format_ratio_table",
    "format_aggregate_table",
    "format_incast_table",
    "format_tail_cdf",
    "load_cached_rows",
    "render_cache_report",
    "render_rows_report",
    "main",
]

#: Tail-CDF sources: a digest, its serialized payload, or raw samples.
CdfSource = Union[QuantileDigest, Dict[str, Any], Sequence[float]]


def format_metric_table(title: str, results: Mapping[str, Any]) -> str:
    """The paper's three headline metrics per scheme, plus fabric counters."""
    lines = [f"=== {title} ===",
             f"{'scheme':<34} {'avg slowdown':>13} {'avg FCT (ms)':>13} {'99% FCT (ms)':>13} "
             f"{'drop %':>7} {'pauses':>7} {'rtx':>7}"]
    for label, result in results.items():
        summary = result.summary
        lines.append(
            f"{label:<34} {summary.avg_slowdown:>13.2f} {summary.avg_fct * 1e3:>13.4f} "
            f"{summary.tail_fct * 1e3:>13.4f} {result.drop_rate * 100:>7.2f} "
            f"{result.pause_frames:>7d} {result.retransmissions:>7d}"
        )
    return "\n".join(lines)


def format_ratio_table(title: str, rows: Mapping[str, Mapping[str, Any]]) -> str:
    """Appendix-style rows: IRN absolute values plus the two ratios."""
    lines = [f"=== {title} ===",
             f"{'row':<22} {'metric':<14} {'IRN':>10} {'IRN/IRN+PFC':>13} {'IRN/RoCE+PFC':>13}"]
    for row_label, schemes in rows.items():
        irn = schemes["IRN"].summary
        irn_pfc = schemes["IRN+PFC"].summary
        roce_pfc = schemes["RoCE+PFC"].summary
        metrics = [
            ("avg slowdown", irn.avg_slowdown, irn_pfc.avg_slowdown, roce_pfc.avg_slowdown),
            ("avg FCT", irn.avg_fct, irn_pfc.avg_fct, roce_pfc.avg_fct),
            ("99% FCT", irn.tail_fct, irn_pfc.tail_fct, roce_pfc.tail_fct),
        ]
        for name, value, versus_pfc, versus_roce in metrics:
            ratio_pfc = value / versus_pfc if versus_pfc else float("nan")
            ratio_roce = value / versus_roce if versus_roce else float("nan")
            lines.append(
                f"{row_label:<22} {name:<14} {value:>10.4f} {ratio_pfc:>13.3f} {ratio_roce:>13.3f}"
            )
    return "\n".join(lines)


def format_aggregate_table(
    records: Sequence[Mapping[str, Any]],
    label_keys: Optional[Sequence[str]] = None,
) -> str:
    """Render :func:`~repro.experiments.sweep.aggregate_rows` output.

    One line per parameter cell: the grouping columns, replica count, the
    headline means with their t-based 95% confidence half-widths (``+-``
    columns, 0 when the cell has a single replica), and -- when the rows
    carried digests -- the pooled p99/p99.9 FCT over every flow of every
    replica.
    """
    lines = [
        f"{'cell':<40} {'reps':>4} {'avg slowdown':>13} {'+-95%':>8} "
        f"{'avg FCT (ms)':>13} {'+-95%':>8} "
        f"{'p99 FCT (ms)':>13} {'p99.9 (ms)':>11} {'flows':>7}"
    ]
    computed = {"replicas", "seeds", "single_packet_flows"}
    computed_suffixes = ("_mean", "_p99", "_total", "_s", "_stderr", "_ci95")
    for record in records:
        keys = label_keys
        if keys is None:
            # The grouping columns are whatever aggregate_rows put first that
            # is not a derived statistic.
            keys = [
                key for key in record
                if key not in computed
                and not any(key.endswith(suffix) for suffix in computed_suffixes)
            ]
        label = ", ".join(f"{key}={record[key]}" for key in keys)
        pooled_p99 = record.get("fct_p99_s")
        pooled_p999 = record.get("fct_p999_s")
        lines.append(
            f"{label:<40} {record['replicas']:>4d} {record['avg_slowdown_mean']:>13.2f} "
            f"{record.get('avg_slowdown_ci95', 0.0):>8.2f} "
            f"{record['avg_fct_s_mean'] * 1e3:>13.4f} "
            f"{record.get('avg_fct_s_ci95', 0.0) * 1e3:>8.4f} "
            f"{pooled_p99 * 1e3 if pooled_p99 is not None else float('nan'):>13.4f} "
            f"{pooled_p999 * 1e3 if pooled_p999 is not None else float('nan'):>11.4f} "
            f"{record.get('num_flows_total', 0):>7d}"
        )
    return "\n".join(lines)


def format_incast_table(title: str, results: Mapping[str, Any]) -> str:
    """Incast request completion time plus background-traffic impact."""
    lines = [f"=== {title} ===",
             f"{'scheme':<36} {'incast RCT (ms)':>16} {'bg avg slowdown':>16} "
             f"{'drops':>7} {'pauses':>7}"]
    for label, result in results.items():
        rct = result.incast_rct_s
        background = result.background_summary
        lines.append(
            f"{label:<36} {rct * 1e3 if rct is not None else float('nan'):>16.3f} "
            f"{background.avg_slowdown if background is not None else float('nan'):>16.2f} "
            f"{result.packets_dropped:>7d} {result.pause_frames:>7d}"
        )
    return "\n".join(lines)


def _as_cdf_points(
    source: CdfSource, start_fraction: float, points: int
) -> List[tuple]:
    if isinstance(source, dict):
        source = QuantileDigest.from_dict(source)
    if isinstance(source, QuantileDigest):
        return source.tail_cdf(start_fraction, points)
    return exact_tail_cdf(list(source), start_fraction, points)


def format_tail_cdf(
    source: CdfSource,
    title: str = "tail CDF",
    start_fraction: float = 0.90,
    points: int = 12,
    width: int = 40,
    unit: str = "ms",
    unit_scale: float = 1e3,
) -> str:
    """A Figure 8-style text plot of the latency tail.

    ``source`` may be a :class:`QuantileDigest`, its ``to_dict()`` payload
    (as stored on a :class:`ResultRow`), or a raw sample sequence.  Each line
    shows a cumulative fraction, the latency at that fraction, and a bar
    scaled to the largest latency -- the tail's shape at a glance.
    """
    cdf = _as_cdf_points(source, start_fraction, points)
    top = max(value for value, _ in cdf) or 1.0
    lines = [f"=== {title} ===", f"{'fraction':>9} {f'latency ({unit})':>14}"]
    for value, fraction in cdf:
        bar = "#" * max(1, round(width * value / top))
        lines.append(f"{fraction:>9.4f} {value * unit_scale:>14.4f}  {bar}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Reporting from a warm sweep cache (no simulation)
# ---------------------------------------------------------------------------

def load_cached_rows(directory: str, code_aware: bool = True) -> "Dict[str, ResultRow]":
    """Every valid row in a sweep cache directory, keyed by label.

    Rows written by a different schema version or simulator source tree are
    skipped (they would re-run on the next sweep anyway); pass
    ``code_aware=False`` to keep other-version rows (archived result dirs).
    Distinct configs that were cached under the same scenario label (e.g. the
    same preset run at two flow counts) are all kept, disambiguated by a
    config-fingerprint suffix rather than silently collapsed.
    """
    from collections import Counter
    from pathlib import Path

    from repro.experiments.sweep import ResultCache

    # Reporting is read-only: never create the directory (ResultCache would),
    # so a mistyped path fails visibly instead of leaving an empty dir.
    if not Path(directory).is_dir():
        return {}
    rows = ResultCache(directory, code_aware=code_aware).rows()
    label_counts = Counter(row.label for row in rows)
    return {
        row.label if label_counts[row.label] == 1 else f"{row.label} [{row.fingerprint[:8]}]": row
        for row in rows
    }


def render_rows_report(
    rows: "Mapping[str, ResultRow]", directory: str, cdf: bool = False
) -> str:
    """The offline cache report body for ``rows``, as one string.

    This is the single renderer behind both ``python -m repro.metrics.report``
    and the ``?format=text`` read path of ``repro serve`` -- one code path,
    so the two outputs are byte-identical over the same rows.  ``directory``
    appears verbatim in the title (the CLI passes the path it was given).
    """
    parts = [format_metric_table(f"cached rows in {directory}", rows)]
    if cdf:
        for label, row in rows.items():
            digest = row.single_packet_distribution
            if digest is None or not digest.count:
                continue
            parts.append("")
            parts.append(format_tail_cdf(
                digest, title=f"{label}: single-packet latency tail ({digest.count} msgs)"
            ))
    return "\n".join(parts)


def render_cache_report(directory: str, cdf: bool = False) -> Optional[str]:
    """The full text report for a warm cache directory (``None`` when the
    directory holds no usable rows)."""
    rows = load_cached_rows(directory)
    if not rows:
        return None
    return render_rows_report(rows, directory, cdf=cdf)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: render the report for a warm cache directory.

    Usage: ``python -m repro.metrics.report CACHE_DIR [--cdf]``
    """
    import argparse

    parser = argparse.ArgumentParser(
        description="Render paper-style tables (and tail CDFs) from a sweep cache "
        "directory, without re-running any simulation."
    )
    parser.add_argument("cache_dir", help="sweep cache directory (ResultRow JSON files)")
    parser.add_argument(
        "--cdf", action="store_true",
        help="also plot the single-packet latency tail CDF of each cached row",
    )
    args = parser.parse_args(argv)

    report = render_cache_report(args.cache_dir, cdf=args.cdf)
    if report is None:
        print(f"no usable cached rows in {args.cache_dir} "
              "(empty, stale schema, or written by different simulator code)")
        return 1
    print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
