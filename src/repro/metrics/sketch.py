"""A deterministic, mergeable quantile sketch for latency distributions.

The paper's headline results are distributional -- average and tail FCT, and
Figure 8's tail CDF of single-packet message latency.  Computing those from
raw per-flow lists requires keeping every :class:`Flow` alive, which cannot
cross a process boundary cheaply and cannot be merged across seed replicas.
:class:`QuantileDigest` is the compact, *mergeable* representation that the
whole metrics pipeline carries instead (collector -> ``ResultRow`` -> sweep
cache -> report):

* **Exact mode.**  Up to ``max_exact`` positive samples are stored verbatim
  (zeros are counted separately), and every quantile is computed with the
  same linear-interpolation rule as :func:`repro.metrics.stats.percentile`
  -- bit-identical to the exact serial computation.
* **Bucket mode.**  Beyond ``max_exact`` samples the digest condenses into a
  fixed-resolution logarithmic histogram: a positive value ``v`` lands in
  bucket ``floor(log(v) / log(gamma))`` with ``gamma = (1 + relative_error)**2``,
  and quantile queries return the bucket's geometric midpoint
  ``gamma**(i + 0.5)``.

Error bound (documented and tested in ``tests/test_sketch.py``): a value in
bucket ``[gamma**i, gamma**(i+1))`` differs from the midpoint by at most a
factor ``sqrt(gamma) = 1 + relative_error``, so any reported quantile is
within ``relative_error`` (default **1%**) of *some* sample whose rank brackets
the requested one; there is no additional rank error.  For ``n >= 1000``
samples from a continuous distribution this keeps p99/p99.9 well inside the
2% envelope the Figure 8 acceptance check requires.  In exact mode the error
is zero.

Merge semantics: ``merge`` is commutative and associative -- folding the
same multiset of samples in any order or grouping yields identical quantile
state (samples/bucket counts, count, extrema, and hence identical
``percentile`` answers), because a value's bucket index depends only on the
value, the exact->bucket condensation is per-value deterministic, and the
mode (exact vs bucket) depends only on the total count.  Only the running
``sum`` is order-sensitive in its lowest floating-point bits.  The sweep's
:func:`~repro.experiments.sweep.aggregate_rows` relies on this to fold seed
replicas in whatever order the cache returns them.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.metrics.stats import percentile as _exact_percentile
from repro.metrics.stats import tail_fractions

__all__ = ["QuantileDigest", "merge_digest_dicts"]

#: Default ceiling on the exact-mode sample store.  Below this the digest is
#: lossless; fig-scale benchmark scenarios (a few hundred flows) never leave
#: exact mode, so their digests reproduce the serial computation bit-for-bit.
DEFAULT_MAX_EXACT = 1024

#: Default relative error of bucket-mode quantiles (see module docstring).
DEFAULT_RELATIVE_ERROR = 0.01


class QuantileDigest:
    """Mergeable quantile sketch over non-negative samples.

    Parameters
    ----------
    relative_error:
        Bucket-mode relative value error bound (``> 0``).  The bucket growth
        factor is ``gamma = (1 + relative_error)**2``.
    max_exact:
        Sample count up to which the digest stays exact (``>= 0``).

    Digests only merge with digests built with identical parameters.
    """

    __slots__ = (
        "relative_error",
        "max_exact",
        "_gamma",
        "_log_gamma",
        "_count",
        "_sum",
        "_min",
        "_max",
        "_zeros",
        "_exact",
        "_buckets",
    )

    def __init__(
        self,
        relative_error: float = DEFAULT_RELATIVE_ERROR,
        max_exact: int = DEFAULT_MAX_EXACT,
    ) -> None:
        if relative_error <= 0.0:
            raise ValueError("relative_error must be positive")
        if max_exact < 0:
            raise ValueError("max_exact must be non-negative")
        self.relative_error = relative_error
        self.max_exact = max_exact
        self._gamma = (1.0 + relative_error) ** 2
        self._log_gamma = math.log(self._gamma)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._zeros = 0
        #: Positive samples while in exact mode; ``None`` once condensed.
        self._exact: Optional[List[float]] = []
        #: ``bucket index -> count`` once condensed; ``None`` in exact mode.
        self._buckets: Optional[Dict[int, int]] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Total number of samples absorbed (including zeros)."""
        return self._count

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:  # an empty digest is falsy, like a list
        return self._count > 0

    @property
    def is_exact(self) -> bool:
        """Whether quantiles are still computed from verbatim samples."""
        return self._exact is not None

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        if self._count == 0:
            raise ValueError("cannot take the mean of an empty digest")
        return self._sum / self._count

    @property
    def min(self) -> float:
        if self._min is None:
            raise ValueError("empty digest has no minimum")
        return self._min

    @property
    def max(self) -> float:
        if self._max is None:
            raise ValueError("empty digest has no maximum")
        return self._max

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def add(self, value: float) -> None:
        """Absorb one sample (non-negative; latencies and slowdowns are)."""
        value = float(value)
        if not math.isfinite(value) or value < 0.0:
            raise ValueError(f"digest samples must be finite and >= 0, got {value!r}")
        self._count += 1
        self._sum += value
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)
        if value == 0.0:
            self._zeros += 1
        elif self._exact is not None:
            self._exact.append(value)
        else:
            assert self._buckets is not None
            index = self._bucket_index(value)
            self._buckets[index] = self._buckets.get(index, 0) + 1
        if self._exact is not None and self._count > self.max_exact:
            self._condense()

    def add_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def _bucket_index(self, value: float) -> int:
        return math.floor(math.log(value) / self._log_gamma)

    def _condense(self) -> None:
        """Switch from exact to bucket mode (per-value deterministic)."""
        assert self._exact is not None
        buckets: Dict[int, int] = {}
        for value in self._exact:
            index = self._bucket_index(value)
            buckets[index] = buckets.get(index, 0) + 1
        self._exact = None
        self._buckets = buckets

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    def merge(self, other: "QuantileDigest") -> "QuantileDigest":
        """Fold ``other`` into this digest in place; returns ``self``.

        ``other`` is left untouched.  Raises :class:`ValueError` when the two
        digests were built with different parameters (their buckets would not
        line up).
        """
        if (other.relative_error, other.max_exact) != (self.relative_error, self.max_exact):
            raise ValueError(
                "cannot merge digests with different parameters: "
                f"({self.relative_error}, {self.max_exact}) vs "
                f"({other.relative_error}, {other.max_exact})"
            )
        self._count += other._count
        self._sum += other._sum
        for bound in (other._min, other._max):
            if bound is not None:
                self._min = bound if self._min is None else min(self._min, bound)
                self._max = bound if self._max is None else max(self._max, bound)
        self._zeros += other._zeros

        if self._exact is not None and other._exact is not None and self._count <= self.max_exact:
            self._exact.extend(other._exact)
            return self

        if self._exact is not None:
            self._condense()
        assert self._buckets is not None
        if other._exact is not None:
            for value in other._exact:
                index = self._bucket_index(value)
                self._buckets[index] = self._buckets.get(index, 0) + 1
        else:
            assert other._buckets is not None
            for index, bucket_count in other._buckets.items():
                self._buckets[index] = self._buckets.get(index, 0) + bucket_count
        return self

    def copy(self) -> "QuantileDigest":
        """An independent deep copy (merging into it leaves ``self`` alone)."""
        clone = QuantileDigest(self.relative_error, self.max_exact)
        clone._count = self._count
        clone._sum = self._sum
        clone._min = self._min
        clone._max = self._max
        clone._zeros = self._zeros
        clone._exact = list(self._exact) if self._exact is not None else None
        clone._buckets = dict(self._buckets) if self._buckets is not None else None
        return clone

    # ------------------------------------------------------------------
    # Quantiles
    # ------------------------------------------------------------------
    def percentile(self, fraction: float) -> float:
        """The ``fraction``-quantile (``fraction`` in [0, 1]).

        Exact mode matches :func:`repro.metrics.stats.percentile` bit for
        bit; bucket mode returns the geometric midpoint of the containing
        bucket, clamped to the observed ``[min, max]`` range.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        if self._count == 0:
            raise ValueError("cannot take a percentile of an empty digest")

        if self._exact is not None:
            # Delegating keeps the bit-identity contract with the exact
            # serial computation by construction.
            return _exact_percentile([0.0] * self._zeros + self._exact, fraction)

        assert self._buckets is not None
        rank = fraction * (self._count - 1)
        cumulative = 0
        if self._zeros:
            cumulative += self._zeros
            if rank < cumulative:
                return 0.0
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            if rank < cumulative:
                midpoint = self._gamma ** (index + 0.5)
                return min(max(midpoint, self.min), self.max)
        return self.max

    def percentiles(self, fractions: Iterable[float]) -> List[float]:
        return [self.percentile(fraction) for fraction in fractions]

    def tail_cdf(
        self, start_fraction: float = 0.90, points: int = 40
    ) -> List[Tuple[float, float]]:
        """CDF points ``(value, fraction)`` over the tail, Figure 8 style."""
        return [
            (self.percentile(fraction), fraction)
            for fraction in tail_fractions(start_fraction, points)
        ]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A canonical JSON-safe payload (inverse of :meth:`from_dict`).

        Exact samples are sorted and bucket pairs ordered by index, so two
        digests over the same multiset serialize with identical quantile
        state regardless of insertion or merge order; only the running
        ``sum`` can differ in its lowest floating-point bits (addition
        order), so do not byte-compare payloads across merge orders.
        """
        return {
            "relative_error": self.relative_error,
            "max_exact": self.max_exact,
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "zeros": self._zeros,
            "exact": sorted(self._exact) if self._exact is not None else None,
            "buckets": (
                [[index, self._buckets[index]] for index in sorted(self._buckets)]
                if self._buckets is not None
                else None
            ),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "QuantileDigest":
        digest = cls(
            relative_error=payload["relative_error"],
            max_exact=payload["max_exact"],
        )
        digest._count = int(payload["count"])
        digest._sum = float(payload["sum"])
        digest._min = payload["min"]
        digest._max = payload["max"]
        digest._zeros = int(payload["zeros"])
        exact = payload.get("exact")
        buckets = payload.get("buckets")
        if (exact is None) == (buckets is None):
            raise ValueError("digest payload must carry exactly one of exact/buckets")
        digest._exact = [float(value) for value in exact] if exact is not None else None
        digest._buckets = (
            {int(index): int(bucket_count) for index, bucket_count in buckets}
            if buckets is not None
            else None
        )
        return digest

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantileDigest):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        mode = "exact" if self.is_exact else "buckets"
        return (
            f"QuantileDigest(count={self._count}, mode={mode}, "
            f"relative_error={self.relative_error}, max_exact={self.max_exact})"
        )


def merge_digest_dicts(payloads: Iterable[Optional[Dict[str, Any]]]) -> Optional[QuantileDigest]:
    """Merge serialized digests, skipping ``None`` entries.

    The reduction the sweep aggregator uses on cached rows: returns ``None``
    when no payload carries a digest, otherwise one merged
    :class:`QuantileDigest`.
    """
    merged: Optional[QuantileDigest] = None
    for payload in payloads:
        if payload is None:
            continue
        digest = QuantileDigest.from_dict(payload)
        merged = digest if merged is None else merged.merge(digest)
    return merged
