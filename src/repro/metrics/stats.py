"""Statistical helpers for the paper's three headline metrics.

The paper reports (i) average slowdown, (ii) average flow completion time and
(iii) 99th-percentile (tail) FCT, plus tail CDFs of single-packet message
latency for Figure 8.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile (``fraction`` in [0, 1])."""
    if not values:
        raise ValueError("cannot take a percentile of an empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high or ordered[low] == ordered[high]:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


@dataclass
class MetricSummary:
    """The paper's three headline metrics over a set of flows."""

    avg_slowdown: float
    avg_fct: float
    tail_fct: float
    num_flows: int

    def as_row(self) -> Tuple[float, float, float]:
        """(avg slowdown, avg FCT, 99%ile FCT) -- the order used in figures."""
        return (self.avg_slowdown, self.avg_fct, self.tail_fct)

    def ratio_to(self, other: "MetricSummary") -> Tuple[float, float, float]:
        """Element-wise ratio of this summary over ``other`` (appendix tables)."""
        return (
            self.avg_slowdown / other.avg_slowdown if other.avg_slowdown else float("nan"),
            self.avg_fct / other.avg_fct if other.avg_fct else float("nan"),
            self.tail_fct / other.tail_fct if other.tail_fct else float("nan"),
        )


def summarize(
    fcts: Sequence[float],
    slowdowns: Sequence[float],
    tail_fraction: float = 0.99,
) -> MetricSummary:
    """Aggregate per-flow FCTs and slowdowns into a :class:`MetricSummary`."""
    if not fcts or not slowdowns:
        raise ValueError("cannot summarize an empty flow set")
    if len(fcts) != len(slowdowns):
        raise ValueError("fcts and slowdowns must have the same length")
    return MetricSummary(
        avg_slowdown=sum(slowdowns) / len(slowdowns),
        avg_fct=sum(fcts) / len(fcts),
        tail_fct=percentile(fcts, tail_fraction),
        num_flows=len(fcts),
    )


def tail_fractions(start_fraction: float = 0.90, points: int = 50) -> List[float]:
    """The evenly spaced cumulative fractions a tail CDF is sampled at.

    Shared by the exact and digest-based tail CDFs so both plot the same
    grid.  The last point is clamped to 0.999: the degenerate 100th
    percentile only reads noise from a single maximum.
    """
    if points < 2:
        raise ValueError("need at least two CDF points")
    fractions = [
        start_fraction + (1.0 - start_fraction) * i / (points - 1) for i in range(points)
    ]
    fractions[-1] = min(fractions[-1], 0.999)
    return fractions


def tail_cdf(
    values: Sequence[float],
    start_fraction: float = 0.90,
    points: int = 50,
) -> List[Tuple[float, float]]:
    """CDF points ``(value, cumulative fraction)`` from ``start_fraction`` up.

    Figure 8 plots the 90th-99.9th percentile region of the single-packet
    message latency distribution.
    """
    if not values:
        raise ValueError("cannot build a CDF from an empty sequence")
    return [(percentile(values, f), f) for f in tail_fractions(start_fraction, points)]


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean (raises on empty input)."""
    values = list(values)
    if not values:
        raise ValueError("cannot take the mean of an empty sequence")
    return sum(values) / len(values)


def stderr(values: Iterable[float]) -> float:
    """Standard error of the mean: ``s / sqrt(n)`` with the sample (n-1)
    standard deviation.  0.0 for fewer than two samples (one replica gives
    no spread information), so single-seed sweeps stay well-defined.
    """
    values = list(values)
    n = len(values)
    if n == 0:
        raise ValueError("cannot take the standard error of an empty sequence")
    if n < 2:
        return 0.0
    m = sum(values) / n
    variance = sum((v - m) ** 2 for v in values) / (n - 1)
    return math.sqrt(variance / n)


#: Two-sided 95% Student-t critical values by degrees of freedom.  Seed
#: replica counts are small (3-10), where the normal 1.96 would understate
#: the interval badly (df=2 needs 4.30).
_T_CRITICAL_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}


def t_critical_95(df: int) -> float:
    """Two-sided 95% t critical value (normal 1.96 beyond 30 dof)."""
    if df < 1:
        raise ValueError("degrees of freedom must be at least 1")
    return _T_CRITICAL_95.get(df, 1.960)


def ci95_half_width(values: Iterable[float]) -> float:
    """Half-width of the t-based 95% confidence interval on the mean.

    ``mean +/- ci95_half_width`` brackets the true mean at 95% confidence
    under the usual normal-replicate assumption.  0.0 for a single sample.
    """
    values = list(values)
    if len(values) < 2:
        return 0.0 if values else _raise_empty()
    return t_critical_95(len(values) - 1) * stderr(values)


def _raise_empty() -> float:
    raise ValueError("cannot take a confidence interval of an empty sequence")
