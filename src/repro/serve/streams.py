"""Live-follow streams: watch a queue-backed sweep converge, over HTTP.

``GET /scenarios/<name>/follow`` tails the work queue's parts directory
(through the manifest-backed :class:`~repro.experiments.queue.PartsTail`, so
each poll costs O(new completions), not O(all parts)) and emits one SSE
event per completed task: the row's identity plus its cell's *current*
pooled aggregate record.  A dashboard -- or plain ``curl`` -- watches the
confidence intervals tighten as worker machines drain the spool.

When the spool drains (no tasks, no leases), the stream re-aggregates every
collected row in canonical batch order
(:func:`~repro.metrics.partial.rows_in_batch_order`) and emits a ``done``
event whose records are bit-identical to the serial batch aggregate over
the same rows -- the same guarantee the ``/aggregate`` endpoint makes.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.experiments.queue import PartsTail
from repro.experiments.spec import ScenarioSpec
from repro.metrics.partial import PartialAggregator, rows_in_batch_order

__all__ = ["follow_scenario"]


def follow_scenario(
    service,
    spec: ScenarioSpec,
    poll_interval_s: float = 0.2,
    timeout_s: Optional[float] = None,
    expect: int = 0,
    should_stop: Optional[Callable[[], bool]] = None,
) -> Iterator[Tuple[str, Dict[str, Any]]]:
    """Yield ``(event, payload)`` pairs tailing the queue for one scenario.

    Events, in order: one ``listening`` hello; an ``update`` per completed
    task belonging to the scenario (its cell's running aggregate, rows in
    *arrival* order -- a converging estimate); finally either ``done`` (the
    spool drained; final records re-aggregated in canonical batch order),
    ``timeout``, or ``closed`` (the ``should_stop`` callable turned true --
    a gracefully shutting-down server drains its follow streams this way,
    each with a final well-formed event instead of a severed socket).
    ``expect`` > 0 refuses to declare ``done`` before that many rows
    arrived, which closes the startup race where a follower attaches before
    the coordinator has spooled any tasks.
    """
    queue = service.queue
    if queue is None:
        raise ValueError("follow_scenario needs a service with a work queue")
    names: List[str] = service.cell_names(spec)
    wanted: Set[str] = set(names)
    running = PartialAggregator(spec.aggregate_by)
    rows: List[Any] = []
    seen: Set[str] = set()
    tail = PartsTail(queue)
    started = time.monotonic()

    yield "listening", {
        "scenario": spec.name,
        "queue": str(queue.directory),
        "aggregate_by": list(spec.aggregate_by),
        "poll_interval_s": poll_interval_s,
        "expect": expect,
    }

    def absorb(fingerprints: List[str]) -> List[Tuple[str, Dict[str, Any]]]:
        events: List[Tuple[str, Dict[str, Any]]] = []
        for fingerprint in fingerprints:
            if fingerprint in seen:
                continue
            row = queue.part_row(fingerprint)
            if row is None:
                # Unreadable / stale part: let a later manifest line or the
                # periodic rescan re-offer it once it is fully written.
                tail.forget(fingerprint)
                continue
            seen.add(fingerprint)
            if row.name not in wanted:
                continue
            rows.append(row)
            record = running.add(row)
            events.append(("update", {
                "completed": len(rows),
                "fingerprint": fingerprint,
                "label": row.label,
                "cell": record,
            }))
        return events

    while True:
        for event in absorb(tail.poll()):
            yield event
        counts = queue.counts()
        drained = counts["tasks"] == 0 and counts["leases"] == 0
        if drained and len(rows) >= expect:
            # One last forced scan: ``complete()`` renames the part and
            # appends the manifest line *before* releasing the lease, so
            # everything a drained spool produced is visible right now.
            for event in absorb(tail.poll(force_scan=True)):
                yield event
            final = (
                PartialAggregator(spec.aggregate_by)
                .add_all(rows_in_batch_order(rows, names))
                .snapshot()
            )
            yield "done", {
                "completed": len(rows),
                "failed": counts["failed"],
                "records": final,
            }
            return
        if timeout_s is not None and time.monotonic() - started > timeout_s:
            yield "timeout", {
                "completed": len(rows),
                "spool": counts,
                "partial": running.snapshot(),
            }
            return
        if should_stop is not None and should_stop():
            yield "closed", {
                "completed": len(rows),
                "spool": counts,
                "partial": running.snapshot(),
            }
            return
        time.sleep(poll_interval_s)
