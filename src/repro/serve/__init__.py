"""``repro.serve``: always-warm HTTP results service over the sweep cache.

See :mod:`repro.serve.server` for the endpoint map and consistency
contract, :mod:`repro.serve.catalog` for the shared CLI/HTTP scenario
catalog, and :mod:`repro.serve.streams` for the live-follow SSE generator.
"""

from repro.serve.catalog import catalog_entries, format_catalog
from repro.serve.server import (
    DEFAULT_PORT,
    ResultsServer,
    ResultsService,
    ServiceError,
    main,
    make_server,
)
from repro.serve.streams import follow_scenario

__all__ = [
    "DEFAULT_PORT",
    "ResultsServer",
    "ResultsService",
    "ServiceError",
    "catalog_entries",
    "follow_scenario",
    "format_catalog",
    "main",
    "make_server",
]
