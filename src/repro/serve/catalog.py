"""The scenario catalog: one shared source for CLI and HTTP listings.

``python -m repro list`` and the results service's ``GET /scenarios`` must
describe the registry identically -- a scenario visible on the command line
but absent (or differently shaped) over HTTP would make the service look
stale.  Both therefore render :func:`catalog_entries`: the CLI prints
:func:`format_catalog` over it, the server returns it as JSON (and serves
the same :func:`format_catalog` text under ``?format=text``).
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.experiments.spec import SCENARIOS

__all__ = ["catalog_entries", "format_catalog"]


def catalog_entries() -> List[Dict[str, Any]]:
    """One JSON-safe record per registered scenario, in registry order.

    Each record carries the spec's identifying metadata: ``name``,
    ``description``, the human ``shape`` summary, the ordered ``variants``
    and ``rows`` labels, the default ``seeds`` axis, the ``aggregate_by``
    policy and the cell count (variants x rows, before seed replication).
    """
    # The paper presets register themselves on import; pulling the module in
    # here keeps a cold interpreter's catalog complete.
    import repro.experiments.scenarios  # noqa: F401

    entries: List[Dict[str, Any]] = []
    for name in SCENARIOS.names():
        spec = SCENARIOS.get(name)
        entries.append({
            "name": name,
            "description": spec.description,
            "shape": spec.shape(),
            "variants": list(spec.variants),
            "rows": list(spec.rows) if spec.rows else None,
            "seeds": list(spec.seeds) if spec.seeds else None,
            "aggregate_by": list(spec.aggregate_by),
            "cells": len(spec.variants) * max(1, len(spec.rows or {})),
        })
    return entries


def format_catalog(entries: List[Dict[str, Any]]) -> str:
    """The ``python -m repro list`` rendering of a catalog."""
    if not entries:
        return "no scenarios registered"
    width = max(len(entry["name"]) for entry in entries)
    return "\n".join(
        f"{entry['name']:<{width}}  {entry['shape']:<28}  {entry['description']}"
        for entry in entries
    )
