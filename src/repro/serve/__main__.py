"""``python -m repro.serve`` -- standalone entry to the results service.

Equivalent to ``python -m repro serve`` (both parse the same arguments via
:func:`repro.serve.server.add_serve_arguments`).
"""

from repro.serve.server import main

if __name__ == "__main__":
    raise SystemExit(main())
