"""Always-warm HTTP results service over a sweep cache (``repro serve``).

Every figure/table the paper grid produces becomes *a URL*: a long-lived
:class:`~http.server.ThreadingHTTPServer` process (stdlib only, zero new
dependencies) exposes the warm :class:`~repro.experiments.sweep.ResultCache`
and :class:`~repro.metrics.partial.PartialAggregator` over JSON, so the
read path is a cache lookup plus an in-process aggregate reuse -- never a
simulation.  Start it with::

    python -m repro serve .sweep-cache/fig1 [--queue-dir DIR --port N]

Endpoints (all JSON; ``?format=text`` re-renders through the exact
:mod:`repro.metrics.report` / catalog formatters the offline CLIs use, so
the text bodies are byte-identical to their command-line counterparts):

=====================================  ====================================
``GET /``                              service index (endpoints, dirs, code)
``GET /scenarios``                     the scenario catalog (same metadata
                                       as ``python -m repro list``)
``GET /scenarios/<name>/aggregate``    pooled per-cell aggregate records
                                       (CI columns, merged-digest tails)
``GET /scenarios/<name>/cdf``          tail-CDF points from the stored
                                       quantile digests
``GET /scenarios/<name>/follow``       SSE stream tailing the work queue's
                                       parts manifest (needs ``--queue-dir``)
``GET /cells/<fingerprint>``           one raw ``ResultRow``
=====================================  ====================================

Consistency contract
--------------------

* **Zero simulation.**  The service never imports (let alone calls)
  :func:`~repro.experiments.runner.run_experiment`; every byte served comes
  from cache/part files and in-process aggregation.
* **Code-aware invalidation.**  Rows record the source-tree fingerprint
  that produced them.  A row written by a *different* tree is never served
  as current: ``/cells`` answers **409 Conflict**, aggregates exclude such
  rows (reporting a ``stale_rows`` count) and answer 409 outright when
  nothing fresh remains.  ``--any-code`` opts out (archived result dirs).
* **Warm aggregates.**  Aggregate tables are computed once and reused
  across requests; validity is re-checked per request against a cheap
  stat-based cache :meth:`~repro.experiments.sweep.ResultCache.signature`
  (plus the code fingerprint), so a row landing in the cache -- e.g. from
  a worker machine writing through the shared directory -- invalidates the
  warm copy immediately without the server watching anything.
* **Bit-identical parity.**  Aggregate records equal the offline batch
  ``spec.aggregate(spec.sweep(...))`` output bit for bit: cached rows are
  re-sorted into the canonical batch absorption order
  (:func:`~repro.metrics.partial.rows_in_batch_order`) before aggregation.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union
from urllib.parse import parse_qs, unquote, urlsplit

from repro.experiments.queue import TaskQueue
from repro.experiments.spec import ScenarioSpec
from repro.experiments.sweep import ResultCache, code_fingerprint
from repro.metrics.partial import PartialAggregator, rows_in_batch_order
from repro.metrics.report import format_tail_cdf, load_cached_rows, render_rows_report
from repro.registry import UnknownNameError
from repro.serve.catalog import catalog_entries, format_catalog

__all__ = [
    "DEFAULT_PORT",
    "ResultsServer",
    "ResultsService",
    "ServiceError",
    "add_serve_arguments",
    "main",
    "make_server",
]

#: Default listen port (``--port`` overrides; 0 picks an ephemeral port).
DEFAULT_PORT = 8123


class ServiceError(Exception):
    """An HTTP-mappable service failure (status + JSON payload)."""

    def __init__(self, status: int, message: str, **extra: Any) -> None:
        super().__init__(message)
        self.status = status
        self.payload: Dict[str, Any] = {"error": message, **extra}


class ResultsService:
    """The HTTP-agnostic read model: catalog, aggregates, CDFs, raw cells.

    All public methods are thread-safe (the handler runs one thread per
    request); the only shared mutable state is the warm-aggregate map,
    guarded by a lock.  Raises :class:`ServiceError` for every client-
    visible failure so the transport layer maps it to a status uniformly.
    """

    def __init__(
        self,
        cache_dir: Union[str, Path],
        queue_dir: Optional[Union[str, Path]] = None,
        code_aware: bool = True,
    ) -> None:
        #: Kept as the *given* string: it appears verbatim in text-report
        #: titles, which must match the offline CLI invoked with the same
        #: path argument byte for byte.
        self.cache_dir = str(cache_dir)
        self.code_aware = code_aware
        self.cache = ResultCache(cache_dir, code_aware=code_aware)
        self.queue = TaskQueue(queue_dir) if queue_dir is not None else None
        #: Read-only view over the queue's part-files (they share the cache
        #: envelope), so ``/cells`` can serve parts not yet in the cache.
        self._parts = ResultCache(self.queue.parts_dir) if self.queue else None
        self._lock = threading.Lock()
        #: scenario name -> (cache signature, code fingerprint, response).
        self._warm: Dict[str, Tuple[Any, str, Dict[str, Any]]] = {}

    # ------------------------------------------------------------------
    # Catalog
    # ------------------------------------------------------------------
    def index(self) -> Dict[str, Any]:
        return {
            "service": "repro serve",
            "cache_dir": self.cache_dir,
            "queue_dir": str(self.queue.directory) if self.queue else None,
            "code": code_fingerprint(),
            "endpoints": [
                "/healthz",
                "/scenarios",
                "/scenarios/<name>/aggregate",
                "/scenarios/<name>/cdf",
                "/scenarios/<name>/follow",
                "/cells/<fingerprint>",
            ],
        }

    def catalog(self) -> List[Dict[str, Any]]:
        return catalog_entries()

    def spec(self, name: str) -> ScenarioSpec:
        from repro.experiments.spec import scenario

        try:
            return scenario(name)
        except UnknownNameError as exc:
            raise ServiceError(404, str(exc)) from exc

    def cell_names(self, spec: ScenarioSpec) -> List[str]:
        """The scenario's aggregation-cell names, in spec order."""
        names: List[str] = []
        for config in spec.configs().values():
            if config.name not in names:
                names.append(config.name)
        return names

    # ------------------------------------------------------------------
    # Rows
    # ------------------------------------------------------------------
    def _scenario_rows(self, spec: ScenarioSpec, names: List[str]):
        """``(fresh_rows, stale_count)`` for the scenario's cached rows."""
        wanted = set(names)
        fresh, stale = [], 0
        for entry in self.cache.scan():
            if entry.row is None or entry.row.name not in wanted:
                continue
            if self.code_aware and entry.stale_code:
                stale += 1
            else:
                fresh.append(entry.row)
        return fresh, stale

    def scenario_report_rows(self, spec: ScenarioSpec) -> Dict[str, Any]:
        """Label -> row for the scenario, built through the *report CLI's*
        loader (same ordering, same duplicate-label disambiguation), so the
        text rendering over these rows matches the CLI byte for byte."""
        wanted = set(self.cell_names(spec))
        rows = load_cached_rows(self.cache_dir, code_aware=self.code_aware)
        return {label: row for label, row in rows.items() if row.name in wanted}

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def aggregate(self, name: str) -> Dict[str, Any]:
        """The scenario's pooled per-cell aggregate records (warm-reused).

        Bit-identical to ``spec.aggregate(spec.sweep(...))`` over the same
        rows: fresh cached rows are absorbed in canonical batch order.
        """
        spec = self.spec(name)
        signature = self.cache.signature()
        code = code_fingerprint()
        with self._lock:
            warm = self._warm.get(spec.name)
            if warm is not None and warm[0] == signature and warm[1] == code:
                response = dict(warm[2])
                response["warm"] = True
                return response

        names = self.cell_names(spec)
        fresh, stale = self._scenario_rows(spec, names)
        if not fresh:
            if stale:
                raise ServiceError(
                    409,
                    f"every cached row for scenario {name!r} was written by a "
                    "different simulator version; re-run the sweep to refresh "
                    "(or serve with --any-code)",
                    stale_rows=stale,
                    code=code,
                )
            raise ServiceError(
                404,
                f"no cached rows for scenario {name!r} in {self.cache_dir}",
                hint=f"warm the cache with: python -m repro run {name} "
                     f"--cache {self.cache_dir}",
            )
        ordered = rows_in_batch_order(fresh, names)
        records = PartialAggregator(spec.aggregate_by).add_all(ordered).snapshot()
        response = {
            "scenario": spec.name,
            "aggregate_by": list(spec.aggregate_by),
            "replica_rows": len(ordered),
            "stale_rows": stale,
            "code": code,
            "warm": False,
            "records": records,
        }
        with self._lock:
            self._warm[spec.name] = (signature, code, response)
        return dict(response)

    def aggregate_text(self, name: str, cdf: bool = False) -> str:
        """The offline-report rendering of the scenario's cached rows.

        Byte-identical to ``python -m repro.metrics.report <cache-dir>``
        (plus ``--cdf``) whenever the cache holds exactly this scenario's
        rows -- same loader, same renderer, same title string.
        """
        self.aggregate(name)  # enforce 404/409 semantics + warm the records
        spec = self.spec(name)
        return render_rows_report(self.scenario_report_rows(spec), self.cache_dir, cdf=cdf)

    # ------------------------------------------------------------------
    # Tail CDFs
    # ------------------------------------------------------------------
    def _cdf_rows(self, name: str):
        spec = self.spec(name)
        rows = self.scenario_report_rows(spec)
        plottable = [
            (label, row, row.single_packet_distribution)
            for label, row in rows.items()
        ]
        plottable = [
            (label, row, digest)
            for label, row, digest in plottable
            if digest is not None and digest.count
        ]
        if not plottable:
            fresh, stale = self._scenario_rows(spec, self.cell_names(spec))
            if not fresh and stale:
                raise ServiceError(
                    409,
                    f"every cached row for scenario {name!r} was written by a "
                    "different simulator version",
                    stale_rows=stale,
                )
            raise ServiceError(
                404,
                f"no single-packet latency digests cached for scenario {name!r}",
            )
        return spec, plottable

    def cdf(self, name: str, start_fraction: float = 0.90, points: int = 12) -> Dict[str, Any]:
        """Tail-CDF points per cached row, from the stored quantile digests."""
        spec, plottable = self._cdf_rows(name)
        cells = [
            {
                "label": label,
                "name": row.name,
                "fingerprint": row.fingerprint,
                "count": digest.count,
                "points": [
                    [value, fraction]
                    for value, fraction in digest.tail_cdf(start_fraction, points)
                ],
            }
            for label, row, digest in plottable
        ]
        return {
            "scenario": spec.name,
            "start_fraction": start_fraction,
            "points": points,
            "cells": cells,
        }

    def cdf_text(self, name: str) -> str:
        """The CLI's ``--cdf`` plot blocks (and only those), one per row."""
        _, plottable = self._cdf_rows(name)
        return "\n\n".join(
            format_tail_cdf(
                digest,
                title=f"{label}: single-packet latency tail ({digest.count} msgs)",
            )
            for label, _row, digest in plottable
        )

    # ------------------------------------------------------------------
    # Raw cells
    # ------------------------------------------------------------------
    def cell(self, fingerprint: str) -> Dict[str, Any]:
        """One raw :class:`ResultRow` by config fingerprint (409 on stale)."""
        entry = self.cache.load_entry(fingerprint)
        source = "cache"
        if (entry is None or entry.row is None) and self._parts is not None:
            part = self._parts.load_entry(fingerprint)
            if part is not None and part.row is not None:
                entry, source = part, "queue-part"
        if entry is None or entry.row is None:
            raise ServiceError(
                404, f"no cached row for fingerprint {fingerprint!r}"
            )
        if self.code_aware and entry.stale_code:
            raise ServiceError(
                409,
                f"row {fingerprint!r} was written by a different simulator "
                "version and cannot be served as current",
                fingerprint=fingerprint,
                row_code=entry.code,
                serving_code=code_fingerprint(),
            )
        return {
            "fingerprint": fingerprint,
            "source": source,
            "code": entry.code,
            "row": entry.row.to_dict(),
        }


# ---------------------------------------------------------------------------
# HTTP transport
# ---------------------------------------------------------------------------

class ResultsRequestHandler(BaseHTTPRequestHandler):
    """Routes GETs onto the :class:`ResultsService` owned by the server."""

    server_version = "repro-serve/1.0"

    @property
    def service(self) -> ResultsService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if getattr(self.server, "quiet", False):
            return
        super().log_message(format, *args)

    # -- responses ------------------------------------------------------
    def _send_body(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: Any) -> None:
        body = (json.dumps(payload, indent=1) + "\n").encode("utf-8")
        self._send_body(status, body, "application/json; charset=utf-8")

    def _send_text(self, status: int, text: str) -> None:
        # Trailing newline matches the CLIs' final ``print`` byte for byte.
        self._send_body(status, (text + "\n").encode("utf-8"), "text/plain; charset=utf-8")

    # -- routing --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (BaseHTTPRequestHandler API)
        parsed = urlsplit(self.path)
        segments = [unquote(part) for part in parsed.path.split("/") if part]
        params = {key: values[-1] for key, values in parse_qs(parsed.query).items()}
        try:
            self._route(segments, params)
        except ServiceError as exc:
            self._send_json(exc.status, exc.payload)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response
        except Exception as exc:  # pragma: no cover - defensive 500
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _route(self, segments: List[str], params: Dict[str, str]) -> None:
        text = params.get("format") == "text"
        if not segments:
            self._send_json(200, self.service.index())
        elif segments == ["healthz"]:
            # Liveness/readiness probe: cheap, no cache access.  A server
            # draining toward shutdown still answers (in-flight requests
            # are finished gracefully) but reports it, so orchestrators
            # can stop routing new traffic at it.
            self._send_json(200, {
                "status": "ok",
                "shutting_down": getattr(
                    self.server, "shutting_down", threading.Event()
                ).is_set(),
            })
        elif segments == ["scenarios"]:
            entries = self.service.catalog()
            if text:
                self._send_text(200, format_catalog(entries))
            else:
                self._send_json(200, {"scenarios": entries, "count": len(entries)})
        elif len(segments) == 3 and segments[0] == "scenarios":
            self._route_scenario(segments[1], segments[2], params, text)
        elif len(segments) == 2 and segments[0] == "cells":
            self._send_json(200, self.service.cell(segments[1]))
        else:
            raise ServiceError(
                404,
                f"unknown path {'/' + '/'.join(segments)!r}",
                endpoints=self.service.index()["endpoints"],
            )

    def _route_scenario(
        self, name: str, endpoint: str, params: Dict[str, str], text: bool
    ) -> None:
        if endpoint == "aggregate":
            if text:
                self._send_text(
                    200, self.service.aggregate_text(name, cdf=_flag(params, "cdf"))
                )
            else:
                self._send_json(200, self.service.aggregate(name))
        elif endpoint == "cdf":
            if text:
                self._send_text(200, self.service.cdf_text(name))
            else:
                self._send_json(200, self.service.cdf(
                    name,
                    start_fraction=_number(params, "start", 0.90),
                    points=int(_number(params, "points", 12)),
                ))
        elif endpoint == "follow":
            self._stream_follow(name, params)
        else:
            raise ServiceError(
                404,
                f"unknown scenario endpoint {endpoint!r}",
                valid=["aggregate", "cdf", "follow"],
            )

    def _stream_follow(self, name: str, params: Dict[str, str]) -> None:
        from repro.serve.streams import follow_scenario

        if self.service.queue is None:
            raise ServiceError(
                409,
                "live follow needs a work queue: start the server with "
                "--queue-dir pointing at the sweep's queue directory",
            )
        spec = self.service.spec(name)
        shutting_down = getattr(self.server, "shutting_down", None)
        events = follow_scenario(
            self.service,
            spec,
            poll_interval_s=_number(params, "poll", 0.2),
            timeout_s=_number(params, "timeout", 0) or None,
            expect=int(_number(params, "expect", 0)),
            # A shutdown request drains the stream with a final ``closed``
            # event instead of severing the socket mid-stream.
            should_stop=shutting_down.is_set if shutting_down is not None else None,
        )
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream; charset=utf-8")
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()
        try:
            for event, payload in events:
                chunk = f"event: {event}\ndata: {json.dumps(payload)}\n\n"
                self.wfile.write(chunk.encode("utf-8"))
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # follower disconnected; the queue drains regardless


def _flag(params: Dict[str, str], key: str) -> bool:
    return params.get(key, "").lower() in {"1", "true", "yes", "on"}


def _number(params: Dict[str, str], key: str, default: float) -> float:
    raw = params.get(key)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        raise ServiceError(400, f"query parameter {key}={raw!r} is not a number")


class ResultsServer(ThreadingHTTPServer):
    """A threading HTTP server owning one :class:`ResultsService`.

    Shuts down gracefully: :meth:`request_shutdown` (also wired to
    SIGTERM/SIGINT by :func:`run_from_args`) flips the ``shutting_down``
    event -- which open ``/follow`` streams watch, closing with a final
    ``closed`` SSE event -- then stops the accept loop.  In-flight request
    threads finish their responses; only then does ``serve_forever``
    return.
    """

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: ResultsService,
        quiet: bool = False,
    ) -> None:
        self.service = service
        self.quiet = quiet
        self.shutting_down = threading.Event()
        super().__init__(address, ResultsRequestHandler)

    def request_shutdown(self) -> None:
        """Begin a graceful shutdown; safe to call from any thread (signal
        handlers and request threads included -- ``shutdown()`` blocks
        until the accept loop exits, so it must not run on the serving
        thread itself)."""
        if self.shutting_down.is_set():
            return
        self.shutting_down.set()
        threading.Thread(target=self.shutdown, name="serve-shutdown", daemon=True).start()


def make_server(
    cache_dir: Union[str, Path],
    queue_dir: Optional[Union[str, Path]] = None,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    code_aware: bool = True,
    quiet: bool = False,
) -> ResultsServer:
    """Bind (but do not start) a results server; ``port=0`` = ephemeral."""
    service = ResultsService(cache_dir, queue_dir=queue_dir, code_aware=code_aware)
    return ResultsServer((host, port), service, quiet=quiet)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def add_serve_arguments(parser) -> None:
    """Shared argument definitions for ``python -m repro serve`` and
    ``python -m repro.serve`` (one definition, two entry points)."""
    parser.add_argument(
        "cache_dir",
        help="warm sweep-cache directory to serve (ResultRow JSON files)",
    )
    parser.add_argument(
        "--queue-dir", default=None, metavar="DIR",
        help="work-queue directory to tail for /follow streams "
             "(the sweep's --queue-dir)",
    )
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT, metavar="N",
        help=f"listen port (default {DEFAULT_PORT}; 0 picks a free port)",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="bind address (default 127.0.0.1; 0.0.0.0 serves the network)",
    )
    parser.add_argument(
        "--any-code", action="store_true",
        help="serve rows written by any simulator version "
             "(default: stale-code rows answer 409 Conflict)",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-request access logging",
    )


def run_from_args(args) -> int:
    """Start serving from parsed :func:`add_serve_arguments` arguments."""
    server = make_server(
        args.cache_dir,
        queue_dir=args.queue_dir,
        host=args.host,
        port=args.port,
        code_aware=not args.any_code,
        quiet=args.quiet,
    )
    host, port = server.server_address[:2]
    queue_note = f" queue={args.queue_dir}" if args.queue_dir else ""
    print(
        f"repro serve: cache={args.cache_dir}{queue_note} "
        f"listening on http://{host}:{port}",
        flush=True,
    )
    try:
        signal.signal(signal.SIGTERM, lambda *_: server.request_shutdown())
        signal.signal(signal.SIGINT, lambda *_: server.request_shutdown())
    except ValueError:  # pragma: no cover - not the main thread
        pass
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    print("repro serve: shut down cleanly", flush=True)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve warm sweep-cache results over HTTP: scenario "
        "catalog, pooled aggregates, tail CDFs, raw cells and live "
        "follow streams -- with zero simulation on the read path.",
    )
    add_serve_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
