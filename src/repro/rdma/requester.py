"""Requester-side RDMA logic (§5).

The requester packetizes posted work requests into RDMA packets carrying
IRN's extended headers, tracks responder acknowledgements via the message
sequence number (MSN), collects Read response packets (acknowledging each one
with IRN's read (N)ACK opcode, §5.2) and releases completion queue elements
to the application strictly in posting order.

Two packet-sequence-number spaces are kept, as required by §5.4: ``sPSN``
numbers the request packets the requester sends, ``rPSN`` numbers the Read
response packets it receives.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Set

from repro.rdma.types import (
    CompletionQueueElement,
    MemoryRegion,
    OpType,
    PacketOpcode,
    RdmaPacket,
    RequestWqe,
    WqeStatus,
)


@dataclass
class RequesterConfig:
    """Requester parameters."""

    mtu_bytes: int = 1000
    #: BDP cap: bounds outstanding request packets (BDP-FC) and sizes bitmaps.
    bdp_cap_packets: int = 110


class Requester:
    """The requester (initiator) side of a reliable-connected queue pair."""

    def __init__(self, config: Optional[RequesterConfig] = None) -> None:
        self.config = config or RequesterConfig()

        # Request (sPSN) space.
        self.next_spsn = 0
        #: Read-response (rPSN) space: next expected response sequence number.
        self.expected_rpsn = 0
        self._next_rpsn_alloc = 0
        self._ooo_read_responses: Set[int] = set()

        # WQE bookkeeping.
        self._pending: List[RequestWqe] = []        # posting order, not yet completed
        self._recv_wqe_counter = 0                  # recv_WQE_SN allocation
        self._read_wqe_counter = 0                  # read_WQE_SN allocation
        self._messages_posted = 0                   # message index == responder MSN target
        self._acked_msn = 0

        # Read response reassembly per WQE id.
        self._read_buffers: Dict[int, Dict[int, bytes]] = {}
        self._read_expected_packets: Dict[int, int] = {}
        self._read_rpsn_base: Dict[int, int] = {}

        self.outgoing: Deque[RdmaPacket] = deque()
        self.completions: Deque[CompletionQueueElement] = deque()

        # Statistics
        self.packets_built = 0
        self.read_acks_sent = 0
        self.read_nacks_sent = 0

    # ------------------------------------------------------------------
    # Posting work requests
    # ------------------------------------------------------------------
    def post(self, wqe: RequestWqe) -> List[RdmaPacket]:
        """Post a work request; returns (and queues) the packets it produces."""
        wqe.status = WqeStatus.IN_PROGRESS
        if wqe.op.needs_receive_wqe:
            wqe.recv_wqe_sn = self._recv_wqe_counter
            self._recv_wqe_counter += 1
        if wqe.op is OpType.READ or wqe.op.is_atomic:
            wqe.read_wqe_sn = self._read_wqe_counter
            self._read_wqe_counter += 1

        packets = self._packetize(wqe)
        wqe.start_psn = packets[0].psn if packets else self.next_spsn
        wqe.num_packets = len(packets)
        self._pending.append(wqe)
        self._messages_posted += 1
        self.outgoing.extend(packets)
        self.packets_built += len(packets)
        return packets

    def pop_outgoing(self) -> List[RdmaPacket]:
        """Drain the queue of packets waiting to be handed to the transport."""
        packets = list(self.outgoing)
        self.outgoing.clear()
        return packets

    def poll_cq(self) -> List[CompletionQueueElement]:
        """Drain the completion queue."""
        cqes = list(self.completions)
        self.completions.clear()
        return cqes

    @property
    def outstanding_requests(self) -> int:
        """Posted WQEs whose completion has not yet been delivered."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # Packetization
    # ------------------------------------------------------------------
    def _packetize(self, wqe: RequestWqe) -> List[RdmaPacket]:
        mtu = self.config.mtu_bytes
        if wqe.op in (OpType.WRITE, OpType.WRITE_WITH_IMM):
            return self._packetize_write(wqe, mtu)
        if wqe.op in (OpType.SEND, OpType.SEND_WITH_INV):
            return self._packetize_send(wqe, mtu)
        if wqe.op is OpType.READ:
            return [self._build_read_request(wqe)]
        if wqe.op.is_atomic:
            return [self._build_atomic_request(wqe)]
        raise ValueError(f"unsupported operation {wqe.op!r}")

    def _chunks(self, data: bytes, mtu: int) -> List[bytes]:
        if not data:
            return [b""]
        return [data[i:i + mtu] for i in range(0, len(data), mtu)]

    def _packetize_write(self, wqe: RequestWqe, mtu: int) -> List[RdmaPacket]:
        chunks = self._chunks(wqe.local_data, mtu)
        packets = []
        for index, chunk in enumerate(chunks):
            last = index == len(chunks) - 1
            if wqe.op is OpType.WRITE_WITH_IMM and last:
                opcode = (
                    PacketOpcode.WRITE_ONLY_WITH_IMM if len(chunks) == 1
                    else PacketOpcode.WRITE_LAST_WITH_IMM
                )
            elif len(chunks) == 1:
                opcode = PacketOpcode.WRITE_ONLY
            elif index == 0:
                opcode = PacketOpcode.WRITE_FIRST
            elif last:
                opcode = PacketOpcode.WRITE_LAST
            else:
                opcode = PacketOpcode.WRITE_MIDDLE
            packets.append(
                RdmaPacket(
                    opcode=opcode,
                    psn=self._alloc_spsn(),
                    payload=chunk,
                    # IRN extension (§5.3.1): the RETH rides on *every* packet.
                    reth_addr=wqe.remote_addr,
                    rkey=wqe.rkey,
                    immediate=wqe.immediate if (last and wqe.op is OpType.WRITE_WITH_IMM) else None,
                    recv_wqe_sn=wqe.recv_wqe_sn if (last and wqe.op is OpType.WRITE_WITH_IMM) else None,
                    offset=index,
                    last=last,
                )
            )
        return packets

    def _packetize_send(self, wqe: RequestWqe, mtu: int) -> List[RdmaPacket]:
        chunks = self._chunks(wqe.local_data, mtu)
        packets = []
        for index, chunk in enumerate(chunks):
            last = index == len(chunks) - 1
            if len(chunks) == 1:
                opcode = PacketOpcode.SEND_ONLY
            elif index == 0:
                opcode = PacketOpcode.SEND_FIRST
            elif last:
                opcode = PacketOpcode.SEND_LAST
            else:
                opcode = PacketOpcode.SEND_MIDDLE
            packets.append(
                RdmaPacket(
                    opcode=opcode,
                    psn=self._alloc_spsn(),
                    payload=chunk,
                    # IRN extension (§5.3.2): every Send packet carries the
                    # recv_WQE_SN and its offset so it can be placed OOO.
                    recv_wqe_sn=wqe.recv_wqe_sn,
                    invalidate_rkey=wqe.invalidate_rkey if last and wqe.op is OpType.SEND_WITH_INV else None,
                    offset=index,
                    last=last,
                )
            )
        return packets

    def _build_read_request(self, wqe: RequestWqe) -> RdmaPacket:
        response_packets = max(1, math.ceil(wqe.length / self.config.mtu_bytes))
        rpsn_base = self._next_rpsn_alloc
        self._next_rpsn_alloc += response_packets
        self._read_buffers[wqe.wqe_id] = {}
        self._read_expected_packets[wqe.wqe_id] = response_packets
        self._read_rpsn_base[wqe.wqe_id] = rpsn_base
        return RdmaPacket(
            opcode=PacketOpcode.READ_REQUEST,
            psn=self._alloc_spsn(),
            read_length=wqe.length,
            read_remote_addr=wqe.remote_addr,
            rkey=wqe.rkey,
            read_wqe_sn=wqe.read_wqe_sn,
            last=True,
        )

    def _build_atomic_request(self, wqe: RequestWqe) -> RdmaPacket:
        return RdmaPacket(
            opcode=PacketOpcode.ATOMIC_REQUEST,
            psn=self._alloc_spsn(),
            read_remote_addr=wqe.remote_addr,
            rkey=wqe.rkey,
            read_wqe_sn=wqe.read_wqe_sn,
            atomic_op=wqe.op,
            atomic_add=wqe.atomic_add,
            atomic_compare=wqe.atomic_compare,
            atomic_swap=wqe.atomic_swap,
            last=True,
        )

    def _alloc_spsn(self) -> int:
        psn = self.next_spsn
        self.next_spsn += 1
        return psn

    # ------------------------------------------------------------------
    # Response handling
    # ------------------------------------------------------------------
    def on_packet(self, packet: RdmaPacket) -> List[RdmaPacket]:
        """Process a responder-to-requester packet; returns read (N)ACKs."""
        if packet.opcode in (PacketOpcode.ACK, PacketOpcode.NACK, PacketOpcode.RNR_NACK):
            self._acked_msn = max(self._acked_msn, packet.msn)
            self._try_complete()
            return []
        if packet.opcode is PacketOpcode.ATOMIC_RESPONSE:
            self._on_atomic_response(packet)
            return []
        if packet.opcode is PacketOpcode.READ_RESPONSE:
            return self._on_read_response(packet)
        return []

    def _on_atomic_response(self, packet: RdmaPacket) -> None:
        for wqe in self._pending:
            if wqe.op.is_atomic and wqe.read_wqe_sn == packet.read_wqe_sn:
                wqe.status = WqeStatus.COMPLETED
                wqe.atomic_result = packet.atomic_result
                break
        self._try_complete()

    def _on_read_response(self, packet: RdmaPacket) -> List[RdmaPacket]:
        responses: List[RdmaPacket] = []
        rpsn = packet.psn
        # Per-packet read (N)ACK generation (§5.2).
        if rpsn == self.expected_rpsn:
            self.expected_rpsn += 1
            while self.expected_rpsn in self._ooo_read_responses:
                self._ooo_read_responses.remove(self.expected_rpsn)
                self.expected_rpsn += 1
            responses.append(
                RdmaPacket(
                    opcode=PacketOpcode.READ_ACK,
                    psn=rpsn,
                    cumulative_psn=self.expected_rpsn,
                )
            )
            self.read_acks_sent += 1
        elif rpsn > self.expected_rpsn:
            self._ooo_read_responses.add(rpsn)
            responses.append(
                RdmaPacket(
                    opcode=PacketOpcode.READ_NACK,
                    psn=rpsn,
                    cumulative_psn=self.expected_rpsn,
                    sack_psn=rpsn,
                )
            )
            self.read_nacks_sent += 1
        else:
            # Duplicate response; acknowledge cumulatively.
            responses.append(
                RdmaPacket(
                    opcode=PacketOpcode.READ_ACK,
                    psn=rpsn,
                    cumulative_psn=self.expected_rpsn,
                )
            )
            self.read_acks_sent += 1

        # Stash the data with the owning Read WQE.
        target = self._find_read_wqe_by_rpsn(rpsn)
        if target is not None:
            buffer = self._read_buffers[target.wqe_id]
            offset = rpsn - self._read_rpsn_base[target.wqe_id]
            if offset not in buffer:
                buffer[offset] = packet.payload
            if len(buffer) >= self._read_expected_packets[target.wqe_id]:
                target.status = WqeStatus.COMPLETED
        self._try_complete()
        return responses

    def _find_read_wqe_by_rpsn(self, rpsn: int) -> Optional[RequestWqe]:
        for wqe in self._pending:
            if wqe.op is not OpType.READ:
                continue
            base = self._read_rpsn_base[wqe.wqe_id]
            if base <= rpsn < base + self._read_expected_packets[wqe.wqe_id]:
                return wqe
        return None

    # ------------------------------------------------------------------
    # Completion (strictly in posting order)
    # ------------------------------------------------------------------
    def _try_complete(self) -> None:
        while self._pending:
            wqe = self._pending[0]
            # Index of this message in posting order (the responder's MSN
            # reaches message_index + 1 once the message is fully received).
            message_index = self._messages_posted - len(self._pending)
            if wqe.op in (OpType.WRITE, OpType.WRITE_WITH_IMM, OpType.SEND, OpType.SEND_WITH_INV):
                if self._acked_msn <= message_index:
                    break
            elif wqe.op is OpType.READ:
                if wqe.status is not WqeStatus.COMPLETED:
                    break
            elif wqe.op.is_atomic:
                if wqe.status is not WqeStatus.COMPLETED:
                    break
            self._pending.pop(0)
            wqe.status = WqeStatus.COMPLETED
            self.completions.append(self._build_cqe(wqe))

    def _build_cqe(self, wqe: RequestWqe) -> CompletionQueueElement:
        read_data: Optional[bytes] = None
        if wqe.op is OpType.READ:
            chunks = self._read_buffers.pop(wqe.wqe_id, {})
            read_data = b"".join(chunks[i] for i in sorted(chunks))[: wqe.length]
        return CompletionQueueElement(
            wqe_id=wqe.wqe_id,
            op=wqe.op,
            byte_len=wqe.length or len(wqe.local_data),
            immediate=wqe.immediate,
            is_receive=False,
            atomic_result=wqe.atomic_result,
            read_data=read_data,
        )
