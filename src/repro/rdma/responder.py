"""Responder-side RDMA logic with out-of-order packet delivery (§5.3).

The responder DMA-places out-of-order packets directly at their final address
in application memory and tracks them with a 2-bitmap: one bit records that
the packet arrived, the other that it is the last packet of a message whose
completion actions (MSN update, Receive-WQE expiration, CQE generation) must
fire only once every packet up to it has arrived.  Premature CQEs for
messages whose last packet arrived early are buffered until that point.

Read and Atomic requests that arrive out of order are parked in the Read WQE
buffer (indexed by their ``read_WQE_SN``) and executed only when all earlier
packets have been received, preserving the Infiniband ordering rules.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set

from repro.rdma.srq import SharedReceiveQueue
from repro.rdma.types import (
    CompletionQueueElement,
    MemoryRegion,
    OpType,
    PacketOpcode,
    RdmaPacket,
    ReceiveWqe,
    WqeStatus,
)


@dataclass
class ResponderConfig:
    """Responder parameters."""

    mtu_bytes: int = 1000
    #: BDP cap: sizes the 2-bitmap and bounds how far ahead packets may arrive.
    bdp_cap_packets: int = 110
    #: Use end-to-end credits for Send/Write-with-immediate (§B.3).
    use_credits: bool = True


@dataclass
class _PendingCompletion:
    """Completion actions recorded when a message's last packet arrives."""

    op: OpType
    recv_wqe_sn: Optional[int]
    immediate: Optional[int]
    invalidate_rkey: Optional[int]
    byte_len: int


class Responder:
    """The responder (target) side of a reliable-connected queue pair."""

    def __init__(
        self,
        config: Optional[ResponderConfig] = None,
        srq: Optional[SharedReceiveQueue] = None,
    ) -> None:
        self.config = config or ResponderConfig()
        self.srq = srq

        #: Registered memory regions by rkey.
        self.memory: Dict[int, MemoryRegion] = {}

        #: Expected (next in-order) request PSN.
        self.expected_psn = 0
        #: Message sequence number: completed messages, echoed in ACKs.
        self.msn = 0
        #: Arrival half of the 2-bitmap: PSNs received ahead of expected_psn.
        self.arrived: Set[int] = set()
        #: "Last packet" half of the 2-bitmap: completion actions keyed by the
        #: PSN that triggers them once everything before it has arrived.
        self.pending_completions: Dict[int, _PendingCompletion] = {}
        #: Read/Atomic requests parked until they can execute in order.
        self.read_wqe_buffer: Dict[int, RdmaPacket] = {}
        self._read_request_psns: Dict[int, int] = {}

        # Receive queue (per-QP) or SRQ; recv_WQE_SN allocation state.
        self._receive_queue: Deque[ReceiveWqe] = deque()
        self._allotted_recv_wqes: List[ReceiveWqe] = []   # indexed by recv_wqe_sn
        self._expired_recv_wqes = 0

        #: Read responses use their own PSN space (the requester's rPSN).
        self.next_response_psn = 0

        self.completions: Deque[CompletionQueueElement] = deque()

        # Statistics
        self.packets_processed = 0
        self.duplicates = 0
        self.ooo_arrivals = 0
        self.rnr_nacks = 0
        self.dropped_probes = 0

    # ------------------------------------------------------------------
    # Application-facing API
    # ------------------------------------------------------------------
    def register_memory(self, region: MemoryRegion) -> None:
        """Register a memory region so requests can target its rkey."""
        self.memory[region.rkey] = region

    def post_receive(self, wqe: ReceiveWqe) -> None:
        """Post a receive WQE on the per-QP receive queue.

        With a per-QP queue the ``recv_WQE_SN`` is allotted at post time; with
        an SRQ it is allotted lazily at dequeue time (§B.2).
        """
        if self.srq is not None:
            raise RuntimeError("this QP uses an SRQ; post receives to the SRQ instead")
        wqe.recv_wqe_sn = len(self._allotted_recv_wqes)
        self._receive_queue.append(wqe)
        self._allotted_recv_wqes.append(wqe)

    def poll_cq(self) -> List[CompletionQueueElement]:
        """Drain responder-side completions (receive CQEs)."""
        cqes = list(self.completions)
        self.completions.clear()
        return cqes

    def available_credits(self) -> int:
        """Receive WQEs available but not yet consumed (piggybacked in ACKs)."""
        if self.srq is not None:
            return len(self.srq)
        return len(self._allotted_recv_wqes) - self._expired_recv_wqes

    # ------------------------------------------------------------------
    # Packet processing
    # ------------------------------------------------------------------
    def on_request(self, packet: RdmaPacket) -> List[RdmaPacket]:
        """Process one requester-to-responder packet; returns responses."""
        self.packets_processed += 1
        psn = packet.psn

        if psn < self.expected_psn or psn in self.arrived:
            self.duplicates += 1
            return [self._ack(duplicate=True)]

        if psn >= self.expected_psn + self.config.bdp_cap_packets:
            # Beyond the BDP cap: cannot track it in the bitmaps; drop it and
            # let the sender's loss recovery handle the retransmission.
            self.dropped_probes += 1
            return []

        in_order = psn == self.expected_psn

        # Handle operations that need a Receive WQE before any state changes.
        if packet.opcode in (
            PacketOpcode.SEND_FIRST, PacketOpcode.SEND_MIDDLE,
            PacketOpcode.SEND_LAST, PacketOpcode.SEND_ONLY,
        ):
            wqe = self._recv_wqe_for(packet.recv_wqe_sn)
            if wqe is None:
                if in_order:
                    self.rnr_nacks += 1
                    return [self._rnr_nack()]
                # An out-of-sequence probe without credits is silently dropped
                # (§B.3): sending an RNR NACK now would be ill-timed and
                # placing the data could overwrite another message's buffer.
                self.dropped_probes += 1
                return []
            self._place_send(packet, wqe)
        elif packet.opcode in (
            PacketOpcode.WRITE_FIRST, PacketOpcode.WRITE_MIDDLE,
            PacketOpcode.WRITE_LAST, PacketOpcode.WRITE_ONLY,
            PacketOpcode.WRITE_LAST_WITH_IMM, PacketOpcode.WRITE_ONLY_WITH_IMM,
        ):
            error = self._place_write(packet)
            if error is not None:
                return [error]
        elif packet.opcode in (PacketOpcode.READ_REQUEST, PacketOpcode.ATOMIC_REQUEST):
            # Park the request in the Read WQE buffer, indexed by read_WQE_SN,
            # until every earlier packet has arrived (§5.3.2).
            if packet.read_wqe_sn is None:
                raise ValueError("Read/Atomic request without a read_WQE_SN")
            self.read_wqe_buffer[packet.read_wqe_sn] = packet
            self._read_request_psns[packet.read_wqe_sn] = psn
        else:
            raise ValueError(f"unexpected request opcode {packet.opcode!r}")

        # Record arrival and last-packet completion actions (the 2-bitmap).
        if packet.last and packet.opcode not in (
            PacketOpcode.READ_REQUEST, PacketOpcode.ATOMIC_REQUEST,
        ):
            self.pending_completions[psn] = _PendingCompletion(
                op=self._op_for(packet.opcode),
                recv_wqe_sn=packet.recv_wqe_sn,
                immediate=packet.immediate,
                invalidate_rkey=packet.invalidate_rkey,
                byte_len=len(packet.payload) + packet.offset * self.config.mtu_bytes,
            )

        responses: List[RdmaPacket] = []
        if in_order:
            self.expected_psn += 1
            responses.extend(self._advance())
            responses.insert(0, self._ack())
        else:
            self.ooo_arrivals += 1
            self.arrived.add(psn)
            responses.append(self._nack(sack_psn=psn))
        return responses

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _region(self, rkey: int) -> Optional[MemoryRegion]:
        region = self.memory.get(rkey)
        if region is None or not region.valid:
            return None
        return region

    def _place_write(self, packet: RdmaPacket) -> Optional[RdmaPacket]:
        if packet.reth_addr is None:
            raise ValueError("Write packet without a RETH (remote address)")
        region = self._region(packet.rkey)
        if region is None:
            return self._error_nack()
        if packet.payload:
            region.write(packet.reth_addr + packet.offset * self.config.mtu_bytes, packet.payload)
        return None

    def _place_send(self, packet: RdmaPacket, wqe: ReceiveWqe) -> None:
        if not packet.payload:
            return
        region = self._region(0) or next(iter(self.memory.values()), None)
        if region is None:
            raise RuntimeError("no memory region registered for Send placement")
        region.write(wqe.buffer_addr + packet.offset * self.config.mtu_bytes, packet.payload)

    def _recv_wqe_for(self, recv_wqe_sn: Optional[int]) -> Optional[ReceiveWqe]:
        """Find (or, with an SRQ, allot) the receive WQE for a Send packet."""
        if recv_wqe_sn is None:
            return None
        if self.srq is not None:
            while len(self._allotted_recv_wqes) <= recv_wqe_sn:
                wqe = self.srq.dequeue()
                if wqe is None:
                    return None
                wqe.recv_wqe_sn = len(self._allotted_recv_wqes)
                self._allotted_recv_wqes.append(wqe)
            return self._allotted_recv_wqes[recv_wqe_sn]
        if recv_wqe_sn < len(self._allotted_recv_wqes):
            return self._allotted_recv_wqes[recv_wqe_sn]
        return None

    @staticmethod
    def _op_for(opcode: PacketOpcode) -> OpType:
        if opcode in (PacketOpcode.WRITE_LAST_WITH_IMM, PacketOpcode.WRITE_ONLY_WITH_IMM):
            return OpType.WRITE_WITH_IMM
        if opcode in (
            PacketOpcode.WRITE_FIRST, PacketOpcode.WRITE_MIDDLE,
            PacketOpcode.WRITE_LAST, PacketOpcode.WRITE_ONLY,
        ):
            return OpType.WRITE
        return OpType.SEND

    # ------------------------------------------------------------------
    # In-order advancement: MSN updates, CQEs, Read/Atomic execution
    # ------------------------------------------------------------------
    def _advance(self) -> List[RdmaPacket]:
        """Advance ``expected_psn`` over received packets, firing completions.

        Called after ``expected_psn`` moved past an in-order arrival: fires
        the completion actions of every packet the window passes (in PSN
        order) and executes any Read/Atomic request whose turn has come.
        """
        responses: List[RdmaPacket] = []
        self._maybe_fire(self.expected_psn - 1)
        responses.extend(self._execute_ready_reads())
        while self.expected_psn in self.arrived:
            self.arrived.remove(self.expected_psn)
            self.expected_psn += 1
            self._maybe_fire(self.expected_psn - 1)
            responses.extend(self._execute_ready_reads())
        return responses

    def _maybe_fire(self, psn: int) -> None:
        pending = self.pending_completions.pop(psn, None)
        if pending is not None:
            self._fire_completion(pending)

    def _fire_completion(self, pending: _PendingCompletion) -> None:
        self.msn += 1
        if pending.op in (OpType.SEND, OpType.SEND_WITH_INV, OpType.WRITE_WITH_IMM):
            wqe = self._recv_wqe_for(pending.recv_wqe_sn)
            if wqe is not None:
                wqe.status = WqeStatus.COMPLETED
                self._expired_recv_wqes += 1
            self.completions.append(
                CompletionQueueElement(
                    wqe_id=wqe.wqe_id if wqe is not None else -1,
                    op=pending.op,
                    byte_len=pending.byte_len,
                    immediate=pending.immediate,
                    is_receive=True,
                )
            )
        if pending.invalidate_rkey is not None:
            region = self.memory.get(pending.invalidate_rkey)
            if region is not None:
                region.invalidate()

    def _execute_ready_reads(self) -> List[RdmaPacket]:
        """Execute parked Read/Atomic requests whose turn has come."""
        responses: List[RdmaPacket] = []
        ready = sorted(
            sn for sn, psn in self._read_request_psns.items() if psn < self.expected_psn
        )
        for read_sn in ready:
            packet = self.read_wqe_buffer.pop(read_sn)
            del self._read_request_psns[read_sn]
            self.msn += 1
            if packet.opcode is PacketOpcode.READ_REQUEST:
                responses.extend(self._execute_read(packet))
            else:
                responses.append(self._execute_atomic(packet))
        return responses

    def _execute_read(self, packet: RdmaPacket) -> List[RdmaPacket]:
        region = self._region(packet.rkey)
        if region is None:
            return [self._error_nack()]
        data = region.read(packet.read_remote_addr, packet.read_length)
        mtu = self.config.mtu_bytes
        chunks = [data[i:i + mtu] for i in range(0, len(data), mtu)] or [b""]
        responses = []
        for index, chunk in enumerate(chunks):
            responses.append(
                RdmaPacket(
                    opcode=PacketOpcode.READ_RESPONSE,
                    psn=self.next_response_psn,
                    payload=chunk,
                    read_wqe_sn=packet.read_wqe_sn,
                    offset=index,
                    last=index == len(chunks) - 1,
                    msn=self.msn,
                )
            )
            self.next_response_psn += 1
        return responses

    def _execute_atomic(self, packet: RdmaPacket) -> RdmaPacket:
        region = self._region(packet.rkey)
        if region is None:
            return self._error_nack()
        original = region.read_u64(packet.read_remote_addr)
        if packet.atomic_op is OpType.ATOMIC_FETCH_ADD:
            region.write_u64(packet.read_remote_addr, original + packet.atomic_add)
        elif packet.atomic_op is OpType.ATOMIC_CMP_SWAP:
            if original == packet.atomic_compare:
                region.write_u64(packet.read_remote_addr, packet.atomic_swap)
        return RdmaPacket(
            opcode=PacketOpcode.ATOMIC_RESPONSE,
            psn=self.next_response_psn,
            read_wqe_sn=packet.read_wqe_sn,
            atomic_result=original,
            msn=self.msn,
        )

    # ------------------------------------------------------------------
    # Acknowledgement construction
    # ------------------------------------------------------------------
    def _ack(self, duplicate: bool = False) -> RdmaPacket:
        return RdmaPacket(
            opcode=PacketOpcode.ACK,
            psn=self.expected_psn,
            cumulative_psn=self.expected_psn,
            msn=self.msn,
            credits=self.available_credits() if self.config.use_credits else 0,
        )

    def _nack(self, sack_psn: int) -> RdmaPacket:
        return RdmaPacket(
            opcode=PacketOpcode.NACK,
            psn=self.expected_psn,
            cumulative_psn=self.expected_psn,
            sack_psn=sack_psn,
            msn=self.msn,
            credits=self.available_credits() if self.config.use_credits else 0,
        )

    def _rnr_nack(self) -> RdmaPacket:
        return RdmaPacket(
            opcode=PacketOpcode.RNR_NACK,
            psn=self.expected_psn,
            cumulative_psn=self.expected_psn,
            msn=self.msn,
        )

    def _error_nack(self) -> RdmaPacket:
        return RdmaPacket(
            opcode=PacketOpcode.NACK,
            psn=self.expected_psn,
            cumulative_psn=self.expected_psn,
            msn=self.msn,
            sack_psn=None,
        )
