"""Data types of the RDMA verbs layer: WQEs, CQEs, packets and memory regions."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Dict, Optional


class OpType(Enum):
    """RDMA operation types supported by the NIC (§5.1)."""

    WRITE = auto()
    WRITE_WITH_IMM = auto()
    READ = auto()
    SEND = auto()
    SEND_WITH_INV = auto()
    ATOMIC_FETCH_ADD = auto()
    ATOMIC_CMP_SWAP = auto()

    @property
    def is_atomic(self) -> bool:
        return self in (OpType.ATOMIC_FETCH_ADD, OpType.ATOMIC_CMP_SWAP)

    @property
    def needs_receive_wqe(self) -> bool:
        """Operations that consume a Receive WQE at the responder."""
        return self in (OpType.SEND, OpType.SEND_WITH_INV, OpType.WRITE_WITH_IMM)


class PacketOpcode(Enum):
    """Wire opcodes (a subset of the Infiniband BTH opcodes, plus IRN's
    read (N)ACK which uses one of the reserved reliable-connected opcodes)."""

    WRITE_FIRST = auto()
    WRITE_MIDDLE = auto()
    WRITE_LAST = auto()
    WRITE_ONLY = auto()
    WRITE_LAST_WITH_IMM = auto()
    WRITE_ONLY_WITH_IMM = auto()
    SEND_FIRST = auto()
    SEND_MIDDLE = auto()
    SEND_LAST = auto()
    SEND_ONLY = auto()
    READ_REQUEST = auto()
    READ_RESPONSE = auto()
    ATOMIC_REQUEST = auto()
    ATOMIC_RESPONSE = auto()
    ACK = auto()
    NACK = auto()
    RNR_NACK = auto()
    #: IRN extension: per-packet acknowledgement of Read responses (§5.2).
    READ_ACK = auto()
    READ_NACK = auto()


class WqeStatus(Enum):
    """Lifecycle of a work queue element."""

    POSTED = auto()
    IN_PROGRESS = auto()
    COMPLETED = auto()
    ERROR = auto()


_wqe_ids = itertools.count()


@dataclass
class RequestWqe:
    """A work request posted at the requester (§5.1).

    The fields mirror what a verbs consumer supplies: operation, data length,
    local source buffer, remote address/rkey for one-sided operations, and
    immediate data where applicable.  IRN additionally stamps WQE sequence
    numbers used to match packets to WQEs under out-of-order delivery.
    """

    op: OpType
    length: int = 0
    local_data: bytes = b""
    remote_addr: int = 0
    rkey: int = 0
    immediate: Optional[int] = None
    #: For Send-with-invalidate: the rkey to invalidate at the responder.
    invalidate_rkey: Optional[int] = None
    #: Atomic operands.
    atomic_add: int = 0
    atomic_compare: int = 0
    atomic_swap: int = 0
    #: Signal a CQE on completion (always true in this model).
    signaled: bool = True

    # Filled in by the requester when the WQE is posted.
    wqe_id: int = field(default_factory=lambda: next(_wqe_ids))
    status: WqeStatus = WqeStatus.POSTED
    #: Sequence number among Send/Write-with-imm requests (recv_WQE_SN, §5.3.2).
    recv_wqe_sn: Optional[int] = None
    #: Sequence number among Read/Atomic requests (read_WQE_SN, §5.3.2).
    read_wqe_sn: Optional[int] = None
    #: First PSN of the message and number of packets, set when packetized.
    start_psn: int = 0
    num_packets: int = 0
    #: Result returned by Atomic operations (original value at the address).
    atomic_result: Optional[int] = None


@dataclass
class ReceiveWqe:
    """A receive work request posted at the responder (sink buffer for Sends,
    completion hook for Write-with-immediate)."""

    buffer_addr: int = 0
    length: int = 0
    wqe_id: int = field(default_factory=lambda: next(_wqe_ids))
    status: WqeStatus = WqeStatus.POSTED
    #: Order in which the WQE was posted/allotted (recv_WQE_SN).
    recv_wqe_sn: Optional[int] = None


@dataclass
class CompletionQueueElement:
    """Signals completion of a request or receive WQE to the application."""

    wqe_id: int
    op: Optional[OpType]
    byte_len: int = 0
    immediate: Optional[int] = None
    #: True for responder-side (receive) completions.
    is_receive: bool = False
    #: Atomic/Read results returned to the requester.
    atomic_result: Optional[int] = None
    read_data: Optional[bytes] = None
    status: WqeStatus = WqeStatus.COMPLETED


@dataclass
class RdmaPacket:
    """One RDMA wire packet, carrying IRN's extended headers (§5.3.1).

    Under IRN every packet of a Write carries the RETH (remote address), Send
    packets carry the recv_WQE_SN and their payload offset, and Read/Atomic
    requests carry the read_WQE_SN, so any packet can be processed on arrival
    regardless of ordering.
    """

    opcode: PacketOpcode
    psn: int
    payload: bytes = b""
    #: Remote placement address (RETH); present on every Write packet.
    reth_addr: Optional[int] = None
    rkey: int = 0
    immediate: Optional[int] = None
    invalidate_rkey: Optional[int] = None
    #: Receive-WQE sequence number (Sends and last Write-with-imm packet).
    recv_wqe_sn: Optional[int] = None
    #: Read-WQE sequence number (Read/Atomic requests).
    read_wqe_sn: Optional[int] = None
    #: Payload offset of this packet within its message, in packets.
    offset: int = 0
    #: True for the last packet of its message.
    last: bool = False
    #: Read request metadata.
    read_length: int = 0
    read_remote_addr: int = 0
    #: Atomic operands.
    atomic_op: Optional[OpType] = None
    atomic_add: int = 0
    atomic_compare: int = 0
    atomic_swap: int = 0
    #: Acknowledgement fields.
    msn: int = 0
    cumulative_psn: int = 0
    sack_psn: Optional[int] = None
    #: Credits piggybacked on ACKs (§B.3).
    credits: int = 0
    #: Atomic response payload.
    atomic_result: Optional[int] = None

    @property
    def is_request(self) -> bool:
        return self.opcode not in (
            PacketOpcode.ACK,
            PacketOpcode.NACK,
            PacketOpcode.RNR_NACK,
            PacketOpcode.READ_RESPONSE,
            PacketOpcode.ATOMIC_RESPONSE,
            PacketOpcode.READ_ACK,
            PacketOpcode.READ_NACK,
        )


class MemoryRegion:
    """A registered memory region the NIC can DMA into.

    The responder places Write/Send payloads directly at their final address
    (IRN's OOO placement strategy, §5.3), so tests can verify byte-exact
    placement under arbitrary reordering.
    """

    def __init__(self, size: int, rkey: int = 0) -> None:
        if size <= 0:
            raise ValueError("memory region size must be positive")
        self.size = size
        self.rkey = rkey
        self.data = bytearray(size)
        self.valid = True

    def write(self, addr: int, payload: bytes) -> None:
        """DMA ``payload`` to ``addr`` (bounds checked)."""
        if not self.valid:
            raise PermissionError("memory region has been invalidated")
        if addr < 0 or addr + len(payload) > self.size:
            raise IndexError(f"write of {len(payload)} bytes at {addr} exceeds region size {self.size}")
        self.data[addr:addr + len(payload)] = payload

    def read(self, addr: int, length: int) -> bytes:
        """DMA ``length`` bytes from ``addr``."""
        if not self.valid:
            raise PermissionError("memory region has been invalidated")
        if addr < 0 or addr + length > self.size:
            raise IndexError(f"read of {length} bytes at {addr} exceeds region size {self.size}")
        return bytes(self.data[addr:addr + length])

    def read_u64(self, addr: int) -> int:
        return int.from_bytes(self.read(addr, 8), "little")

    def write_u64(self, addr: int, value: int) -> None:
        self.write(addr, (value & (2 ** 64 - 1)).to_bytes(8, "little"))

    def invalidate(self) -> None:
        """Invalidate the region (target of Send-with-invalidate)."""
        self.valid = False
