"""The RDMA verbs layer (§5 of the paper).

This package models the NIC-visible RDMA machinery that IRN must keep
working when packets arrive out of order: queue pairs, work queue elements
(WQEs) and completion queue elements (CQEs), the four RDMA operation types
(Write, Read, Send, Atomic, plus Write-with-immediate and
Send-with-invalidate), the responder's message sequence number (MSN) and
2-bitmap tracking, WQE sequence-number matching, premature CQEs, shared
receive queues and end-to-end credits.

The layer is transport-agnostic and is exercised directly by the test suite
with reordered, duplicated and lost packet streams (the same conditions the
network simulator produces), which is how §5's correctness arguments are
validated here.
"""

from repro.rdma.types import (
    CompletionQueueElement,
    MemoryRegion,
    OpType,
    PacketOpcode,
    ReceiveWqe,
    RdmaPacket,
    RequestWqe,
    WqeStatus,
)
from repro.rdma.requester import Requester, RequesterConfig
from repro.rdma.responder import Responder, ResponderConfig
from repro.rdma.srq import SharedReceiveQueue

__all__ = [
    "CompletionQueueElement",
    "MemoryRegion",
    "OpType",
    "PacketOpcode",
    "ReceiveWqe",
    "RdmaPacket",
    "RequestWqe",
    "WqeStatus",
    "Requester",
    "RequesterConfig",
    "Responder",
    "ResponderConfig",
    "SharedReceiveQueue",
]
