"""Shared receive queues (§B.2).

With an SRQ, receive WQEs are shared across queue pairs.  IRN keeps a running
``recv_WQE_SN`` per QP, but instead of allotting the sequence number when the
WQE is posted (as with a per-QP receive queue), it allots it when the WQE is
*dequeued* from the SRQ: when a Send packet with ``recv_WQE_SN = k`` arrives
and only ``j < k+1`` WQEs have been dequeued so far, the responder dequeues
``k + 1 - j`` WQEs, allotting them consecutive sequence numbers, and uses the
last one to process the packet.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.rdma.types import ReceiveWqe


class SharedReceiveQueue:
    """A pool of receive WQEs shared by multiple queue pairs."""

    def __init__(self) -> None:
        self._queue: Deque[ReceiveWqe] = deque()
        self.posted = 0
        self.dequeued = 0

    def post(self, wqe: ReceiveWqe) -> None:
        """Add a receive WQE to the shared pool."""
        self._queue.append(wqe)
        self.posted += 1

    def __len__(self) -> int:
        return len(self._queue)

    def dequeue(self) -> Optional[ReceiveWqe]:
        """Remove and return the oldest WQE (or ``None`` if empty)."""
        if not self._queue:
            return None
        self.dequeued += 1
        return self._queue.popleft()

    def dequeue_up_to(self, count: int) -> List[ReceiveWqe]:
        """Dequeue up to ``count`` WQEs (fewer if the pool runs dry)."""
        wqes: List[ReceiveWqe] = []
        for _ in range(count):
            wqe = self.dequeue()
            if wqe is None:
                break
            wqes.append(wqe)
        return wqes
