"""IRN: the Improved RoCE NIC transport (§3 of the paper).

IRN makes two changes to the RoCE transport:

1. **Efficient loss recovery.**  The receiver does not discard out-of-order
   packets; on every out-of-order arrival it sends a NACK carrying both the
   cumulative acknowledgement (its expected sequence number) and the sequence
   number of the packet that triggered the NACK (a simplified SACK).  The
   sender tracks cumulative/selective acknowledgements in a bitmap and, while
   in loss-recovery mode, selectively retransmits lost packets instead of new
   ones.  The first retransmission is the cumulative-ack packet; any later
   packet is considered lost only once a higher sequence number has been
   selectively acked.  Recovery ends when the cumulative ack passes the
   recovery sequence (the last regular packet sent before the first
   retransmission).

2. **BDP-FC.**  A static cap -- the bandwidth-delay product of the longest
   network path divided by the MTU -- bounds the number of packets in flight.

Timeouts use two static values: ``RTO_low`` when at most ``N`` packets are in
flight (so single-packet messages recover quickly) and ``RTO_high`` otherwise
(so large flows avoid spurious retransmissions).

The module also implements the §4.3 factor-analysis variants via
:class:`LossRecovery`: go-back-N loss recovery, selective retransmission
without SACK state, and disabling BDP-FC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, List, Optional, Set

from repro.core.transport import BaseReceiver, BaseSender, Flow, FlowCallback, TransportConfig
from repro.sim.packet import Packet, PacketType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.congestion.base import CongestionControl
    from repro.sim.engine import Simulator
    from repro.sim.host import Host


class LossRecovery(Enum):
    """Loss-recovery scheme used by the sender (for the factor analysis)."""

    SACK = "sack"
    GO_BACK_N = "go_back_n"
    SELECTIVE_NO_SACK = "selective_no_sack"


@dataclass
class IrnConfig(TransportConfig):
    """IRN transport parameters (defaults follow §4.1)."""

    #: BDP of the longest path in MTU-sized packets (110 for the paper's
    #: default 40 Gbps fat-tree).
    bdp_cap_packets: int = 110
    #: Enable the BDP-FC in-flight cap (disabled for the factor analysis).
    bdp_fc_enabled: bool = True
    #: Loss recovery scheme.
    loss_recovery: LossRecovery = LossRecovery.SACK
    #: Low timeout used when few packets are in flight.
    rto_low_s: float = 100e-6
    #: High timeout used otherwise (also inherited as ``rto_s``).
    rto_high_s: float = 320e-6
    #: In-flight threshold N below which ``rto_low`` applies.
    rto_low_threshold_packets: int = 3
    #: §6.3 worst-case overhead: delay before a packet identified as lost can
    #: be fetched over PCIe for retransmission (0 disables the model).
    retransmission_fetch_delay_s: float = 0.0

    def __post_init__(self) -> None:
        # Keep the generic single-timer field in sync with RTO_high so shared
        # machinery (and introspection) sees a sensible value.
        self.rto_s = self.rto_high_s


class IrnSender(BaseSender):
    """IRN transmit-side logic: SACK-based recovery plus BDP-FC."""

    def __init__(
        self,
        sim: "Simulator",
        host: "Host",
        flow: Flow,
        config: Optional[IrnConfig] = None,
        congestion_control: Optional["CongestionControl"] = None,
        on_complete: Optional[FlowCallback] = None,
    ) -> None:
        config = config or IrnConfig()
        super().__init__(sim, host, flow, config, congestion_control, on_complete)
        self.config: IrnConfig = config

        #: Selectively acknowledged PSNs above ``snd_una``.
        self.sacked: Set[int] = set()
        self.in_recovery = False
        #: PSN that must be cumulatively acked to exit recovery.
        self.recovery_seq = 0
        #: PSNs already retransmitted in the current recovery episode.
        self._rtx_done: Set[int] = set()
        #: Earliest time a retransmission may leave the NIC (PCIe fetch model).
        self._rtx_not_before = 0.0

        # Statistics
        self.recovery_episodes = 0

    # ------------------------------------------------------------------
    # Packet selection
    # ------------------------------------------------------------------
    def _window_limit(self) -> float:
        limit = super()._window_limit()
        if self.config.bdp_fc_enabled:
            limit = min(limit, self.config.bdp_cap_packets)
        return limit

    def _select_packet(self, now: float) -> Optional[int]:
        if self.in_recovery and now >= self._rtx_not_before:
            lost = self._next_lost_packet()
            if lost is not None:
                return lost
        if self.snd_nxt < self.num_packets and self.in_flight() < self._window_limit():
            return self.snd_nxt
        return None

    def _next_lost_packet(self) -> Optional[int]:
        """The next PSN to retransmit under the configured recovery scheme."""
        if self.config.loss_recovery is LossRecovery.GO_BACK_N:
            # Go-back-N rewinds snd_nxt instead of retransmitting selectively.
            return None
        max_sacked = max(self.sacked) if self.sacked else -1
        for psn in range(self.snd_una, min(self.highest_sent, self.num_packets)):
            if psn in self.sacked or psn in self._rtx_done:
                continue
            if psn == self.snd_una:
                return psn
            if self.config.loss_recovery is LossRecovery.SACK and psn < max_sacked:
                return psn
            # Without SACK state only the cumulative-ack packet is recovered.
            break
        return None

    def _note_sent(self, psn: int, packet: Packet, now: float) -> None:
        if psn == self.snd_nxt:
            self.snd_nxt += 1
        else:
            self._rtx_done.add(psn)
        super()._note_sent(psn, packet, now)

    # ------------------------------------------------------------------
    # Feedback
    # ------------------------------------------------------------------
    def _handle_ack(self, packet: Packet, now: float) -> None:
        if self.cc is not None:
            self.cc.on_ack(
                now - packet.echo_time,
                now,
                packet.ecn_echo,
                newly_acked=self._newly_acked(packet.cumulative_ack),
            )
        self._advance(packet.cumulative_ack, now)

    def _handle_nack(self, packet: Packet, now: float) -> None:
        if self.cc is not None:
            self.cc.on_ack(
                now - packet.echo_time,
                now,
                packet.ecn_echo,
                newly_acked=self._newly_acked(packet.cumulative_ack),
            )
        if packet.error_nack:
            # "Receiver not ready" style errors fall back to go-back-N (§B.4).
            self._advance(packet.cumulative_ack, now)
            self.snd_nxt = self.snd_una
            return
        cum = packet.cumulative_ack
        if packet.sack_psn is not None and packet.sack_psn >= cum:
            self.sacked.add(packet.sack_psn)
        entered = False
        if not self.in_recovery and cum < self.num_packets:
            self._enter_recovery(now)
            entered = True
        if self.config.loss_recovery is LossRecovery.GO_BACK_N:
            self._advance(cum, now)
            self.snd_nxt = max(self.snd_una, cum)
        else:
            if self.config.loss_recovery is LossRecovery.SELECTIVE_NO_SACK:
                # Each NACK only licenses one retransmission of the expected
                # packet; forget prior retransmissions so it can be resent.
                self._rtx_done.discard(cum)
            self._advance(cum, now)
        if entered and self.cc is not None:
            self.cc.on_loss(now)

    def _advance(self, cum: int, now: float) -> None:
        if self._advance_cumulative(cum, now):
            self.sacked = {psn for psn in self.sacked if psn >= self.snd_una}
            if self.in_recovery and self.snd_una > self.recovery_seq:
                self._exit_recovery()

    def _enter_recovery(self, now: float) -> None:
        self.in_recovery = True
        self.recovery_episodes += 1
        self.recovery_seq = max(self.snd_nxt - 1, self.snd_una)
        self._rtx_done.clear()
        delay = self.config.retransmission_fetch_delay_s
        if delay > 0:
            self._rtx_not_before = now + delay
            self.sim.schedule(delay, self.host.notify_ready)

    def _exit_recovery(self) -> None:
        self.in_recovery = False
        self._rtx_done.clear()

    # ------------------------------------------------------------------
    # Timeouts
    # ------------------------------------------------------------------
    def _rto_value(self, now: float) -> float:
        if self.in_flight() <= self.config.rto_low_threshold_packets:
            return self.config.rto_low_s
        return self.config.rto_high_s

    def _handle_timeout(self, now: float) -> None:
        if self.snd_una >= self.num_packets:
            return
        if not self.in_recovery:
            self._enter_recovery(now)
        else:
            # Allow the cumulative-ack packet to be retransmitted again.
            self._rtx_done.discard(self.snd_una)
        if self.config.loss_recovery is LossRecovery.GO_BACK_N:
            self.snd_nxt = self.snd_una


class IrnReceiver(BaseReceiver):
    """IRN receive-side logic: out-of-order acceptance and (N)ACK generation."""

    def __init__(
        self,
        sim: "Simulator",
        flow: Flow,
        config: Optional[IrnConfig] = None,
        on_complete: Optional[FlowCallback] = None,
        cnp_interval_s: Optional[float] = None,
        accept_ooo: bool = True,
    ) -> None:
        config = config or IrnConfig()
        super().__init__(sim, flow, config, on_complete, cnp_interval_s)
        self.accept_ooo = accept_ooo
        #: Next expected PSN (cumulative acknowledgement value).
        self.expected_psn = 0
        #: Out-of-order PSNs already received (the receive bitmap).
        self.ooo_received: Set[int] = set()
        self._nacked_expected: Optional[int] = None

    # ------------------------------------------------------------------
    def on_data(self, packet: Packet, now: float) -> List[Packet]:
        responses: List[Packet] = []
        cnp = self._maybe_cnp(packet, now)
        if cnp is not None:
            responses.append(cnp)
        self.data_received += 1

        psn = packet.psn
        if psn < self.expected_psn or psn in self.ooo_received:
            # Duplicates signal recovery in progress: the ACK fires
            # immediately (and supersedes any banked coalescing window,
            # since it carries the latest cumulative acknowledgement).
            self.duplicates_received += 1
            if self.config.generate_acks:
                banked_ecn = self._absorb_pending_ack()
                responses.append(
                    self._control(
                        PacketType.ACK,
                        packet,
                        cumulative_ack=self.expected_psn,
                        ecn_echo=packet.ecn or banked_ecn,
                    )
                )
            return responses

        if psn == self.expected_psn:
            self._advance_expected()
            self._note_delivered(1, now)
            self._nacked_expected = None
            if self.config.generate_acks:
                self._queue_ack(packet, self.expected_psn, responses, now)
            return responses

        # Out-of-order arrival: loss signals always fire immediately, and a
        # NACK carries the cumulative ack, so it folds in any banked window.
        if self.accept_ooo:
            self.ooo_received.add(psn)
            self._note_delivered(1, now)
            banked_ecn = self._absorb_pending_ack()
            responses.append(
                self._control(
                    PacketType.NACK,
                    packet,
                    cumulative_ack=self.expected_psn,
                    sack_psn=psn,
                    ecn_echo=packet.ecn or banked_ecn,
                )
            )
        else:
            # Go-back-N receiver: discard and NACK once per sequence error.
            self.duplicates_received += 1
            if self._nacked_expected != self.expected_psn:
                self._nacked_expected = self.expected_psn
                banked_ecn = self._absorb_pending_ack()
                responses.append(
                    self._control(
                        PacketType.NACK,
                        packet,
                        cumulative_ack=self.expected_psn,
                        sack_psn=None,
                        ecn_echo=packet.ecn or banked_ecn,
                    )
                )
        return responses

    def _advance_expected(self) -> None:
        self.expected_psn += 1
        while self.expected_psn in self.ooo_received:
            self.ooo_received.remove(self.expected_psn)
            self.expected_psn += 1

    @property
    def ooo_degree(self) -> int:
        """Number of out-of-order packets currently buffered in the bitmap."""
        return len(self.ooo_received)
