"""Current RoCE NIC transport: go-back-N loss recovery (§2.1).

RoCE adopted the Infiniband reliable-connected transport unchanged: the
responder discards out-of-order packets and returns a NACK carrying its
expected sequence number; the requester then retransmits *everything* from
that sequence number onward (go-back-N).  There is no end-to-end window --
absent congestion control the sender transmits as fast as the NIC drains --
which is why the design depends on PFC to avoid drops.

Configuration notes mirroring §4.1 of the paper:

* With PFC enabled the baseline sends no ACKs (the all-Reads extreme) and
  timeouts are disabled to avoid spurious retransmissions.
* Without PFC a single fixed timeout of ``RTO_high`` is used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.irn import IrnReceiver
from repro.core.transport import BaseSender, Flow, FlowCallback, TransportConfig
from repro.sim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.congestion.base import CongestionControl
    from repro.core.irn import IrnConfig
    from repro.sim.engine import Simulator
    from repro.sim.host import Host


@dataclass
class RoceConfig(TransportConfig):
    """RoCE transport parameters."""

    #: Fixed retransmission timeout (the paper uses RTO_high = 320 us).
    rto_s: float = 320e-6


class RoceSender(BaseSender):
    """Go-back-N requester logic of current RoCE NICs."""

    def __init__(
        self,
        sim: "Simulator",
        host: "Host",
        flow: Flow,
        config: Optional[RoceConfig] = None,
        congestion_control: Optional["CongestionControl"] = None,
        on_complete: Optional[FlowCallback] = None,
    ) -> None:
        config = config or RoceConfig()
        super().__init__(sim, host, flow, config, congestion_control, on_complete)
        self.config: RoceConfig = config
        self.go_back_events = 0

    # ------------------------------------------------------------------
    def _select_packet(self, now: float) -> Optional[int]:
        if self.snd_nxt >= self.num_packets:
            return None
        if self.in_flight() >= self._window_limit():
            return None
        return self.snd_nxt

    def _is_retransmission(self, psn: int) -> bool:
        return psn < self.highest_sent

    def _note_sent(self, psn: int, packet: Packet, now: float) -> None:
        if psn == self.snd_nxt:
            self.snd_nxt += 1
        super()._note_sent(psn, packet, now)

    # ------------------------------------------------------------------
    def _handle_ack(self, packet: Packet, now: float) -> None:
        if self.cc is not None:
            self.cc.on_ack(
                now - packet.echo_time,
                now,
                packet.ecn_echo,
                newly_acked=self._newly_acked(packet.cumulative_ack),
            )
        self._advance_cumulative(packet.cumulative_ack, now)

    def _handle_nack(self, packet: Packet, now: float) -> None:
        """Go back to the responder's expected sequence number."""
        if self.cc is not None:
            self.cc.on_ack(
                now - packet.echo_time,
                now,
                packet.ecn_echo,
                newly_acked=self._newly_acked(packet.cumulative_ack),
            )
            self.cc.on_loss(now)
        self._advance_cumulative(packet.cumulative_ack, now)
        if packet.cumulative_ack < self.num_packets:
            self.go_back_events += 1
            self.snd_nxt = max(self.snd_una, packet.cumulative_ack)

    def _handle_timeout(self, now: float) -> None:
        if self.snd_una >= self.num_packets:
            return
        self.go_back_events += 1
        self.snd_nxt = self.snd_una


class RoceReceiver(IrnReceiver):
    """RoCE responder: discards out-of-order packets and NACKs once per gap."""

    def __init__(
        self,
        sim: "Simulator",
        flow: Flow,
        config: Optional[TransportConfig] = None,
        on_complete: Optional[FlowCallback] = None,
        cnp_interval_s: Optional[float] = None,
    ) -> None:
        from repro.core.irn import IrnConfig  # local import to avoid cycle at module load

        if config is None:
            irn_config = IrnConfig()
        elif isinstance(config, IrnConfig):
            irn_config = config
        else:
            irn_config = IrnConfig(
                mtu_bytes=config.mtu_bytes,
                header_bytes=config.header_bytes,
                rto_s=config.rto_s,
                generate_acks=config.generate_acks,
                timeouts_enabled=config.timeouts_enabled,
                ack_coalesce_n=config.ack_coalesce_n,
                ack_coalesce_s=config.ack_coalesce_s,
                pacing_quantum_s=config.pacing_quantum_s,
            )
        super().__init__(
            sim,
            flow,
            irn_config,
            on_complete=on_complete,
            cnp_interval_s=cnp_interval_s,
            accept_ooo=False,
        )
