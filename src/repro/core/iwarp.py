"""iWARP-style transport: a full TCP stack in the NIC (§2.3, §4.6).

iWARP implements the complete TCP machinery in hardware.  For the transport
comparison in §4.6 the paper uses the INET TCP implementation; here we model
the pieces that matter for network-wide performance:

* slow start and AIMD congestion avoidance (a congestion window instead of
  IRN's static BDP-FC cap),
* fast retransmit after three duplicate acknowledgements, with SACK-based
  selective retransmission during recovery,
* dynamically estimated retransmission timeouts (SRTT/RTTVAR, RFC 6298).

The receive side is shared with IRN (out-of-order acceptance plus SACK
NACKs), since both ends of an iWARP connection buffer out-of-order segments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.core.irn import IrnConfig, IrnSender, LossRecovery
from repro.core.transport import Flow, FlowCallback
from repro.sim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.congestion.base import CongestionControl
    from repro.sim.engine import Simulator
    from repro.sim.host import Host


@dataclass
class TcpConfig(IrnConfig):
    """TCP stack parameters used by the iWARP model."""

    #: Initial congestion window in packets.
    initial_cwnd_packets: float = 2.0
    #: Initial slow-start threshold.
    initial_ssthresh_packets: float = float("inf")
    #: Duplicate-acknowledgement threshold for fast retransmit.
    dupack_threshold: int = 3
    #: Minimum and initial RTO bounds.
    min_rto_s: float = 100e-6
    initial_rto_s: float = 1e-3
    max_rto_s: float = 64e-3

    def __post_init__(self) -> None:
        super().__post_init__()
        # The TCP stack has no static BDP cap; its window is the cwnd.
        self.bdp_fc_enabled = False
        self.loss_recovery = LossRecovery.SACK


class TcpSender(IrnSender):
    """NewReno-with-SACK sender modelling the iWARP hardware TCP stack."""

    def __init__(
        self,
        sim: "Simulator",
        host: "Host",
        flow: Flow,
        config: Optional[TcpConfig] = None,
        congestion_control: Optional["CongestionControl"] = None,
        on_complete: Optional[FlowCallback] = None,
    ) -> None:
        config = config or TcpConfig()
        super().__init__(sim, host, flow, config, congestion_control, on_complete)
        self.config: TcpConfig = config

        self.cwnd = config.initial_cwnd_packets
        self.ssthresh = config.initial_ssthresh_packets
        self._dupacks = 0

        # RTO estimation (RFC 6298).
        self._srtt: Optional[float] = None
        self._rttvar = 0.0
        self._rto = config.initial_rto_s

        # Statistics
        self.fast_retransmits = 0
        self.slow_start_exits = 0

    # ------------------------------------------------------------------
    # Windowing
    # ------------------------------------------------------------------
    def _window_limit(self) -> float:
        limit = super()._window_limit()
        return min(limit, max(1.0, self.cwnd))

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    # ------------------------------------------------------------------
    # RTT / RTO estimation
    # ------------------------------------------------------------------
    def _update_rtt(self, sample: float) -> None:
        if sample <= 0:
            return
        if self._srtt is None:
            self._srtt = sample
            self._rttvar = sample / 2.0
        else:
            self._rttvar = 0.75 * self._rttvar + 0.25 * abs(self._srtt - sample)
            self._srtt = 0.875 * self._srtt + 0.125 * sample
        rto = self._srtt + 4.0 * self._rttvar
        self._rto = min(self.config.max_rto_s, max(self.config.min_rto_s, rto))

    def _rto_value(self, now: float) -> float:
        return self._rto

    # ------------------------------------------------------------------
    # Feedback
    # ------------------------------------------------------------------
    def _handle_ack(self, packet: Packet, now: float) -> None:
        self._update_rtt(now - packet.echo_time)
        previous_una = self.snd_una
        super()._handle_ack(packet, now)
        if self.snd_una > previous_una:
            self._dupacks = 0
            acked = self.snd_una - previous_una
            self._grow_window(acked)

    def _handle_nack(self, packet: Packet, now: float) -> None:
        """Each SACK-carrying NACK behaves like a duplicate acknowledgement."""
        self._update_rtt(now - packet.echo_time)
        cum = packet.cumulative_ack
        if packet.sack_psn is not None and packet.sack_psn >= cum:
            self.sacked.add(packet.sack_psn)
        previous_una = self.snd_una
        self._advance(cum, now)
        if self.snd_una > previous_una:
            self._dupacks = 0
            self._grow_window(self.snd_una - previous_una)
            return
        if self.in_recovery:
            return
        self._dupacks += 1
        if self._dupacks >= self.config.dupack_threshold:
            self._fast_retransmit(now)

    def _fast_retransmit(self, now: float) -> None:
        self.fast_retransmits += 1
        self.ssthresh = max(2.0, self.in_flight() / 2.0)
        self.cwnd = self.ssthresh
        self._dupacks = 0
        self._enter_recovery(now)
        if self.cc is not None:
            self.cc.on_loss(now)

    def _grow_window(self, acked_packets: int) -> None:
        for _ in range(acked_packets):
            if self.in_slow_start:
                self.cwnd += 1.0
            else:
                self.cwnd += 1.0 / max(self.cwnd, 1.0)

    # ------------------------------------------------------------------
    # Timeouts
    # ------------------------------------------------------------------
    def _handle_timeout(self, now: float) -> None:
        if self.snd_una >= self.num_packets:
            return
        self.ssthresh = max(2.0, self.cwnd / 2.0)
        self.cwnd = 1.0
        self._rto = min(self.config.max_rto_s, self._rto * 2.0)
        self._dupacks = 0
        super()._handle_timeout(now)
