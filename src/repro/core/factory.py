"""Transport registry and factories building matched sender/receiver pairs.

Transports are pluggable: each variant registers an *endpoint builder* in
:data:`TRANSPORTS` under a name, and :func:`make_flow_endpoints` (the single
entry point the runner uses) resolves the configured transport through that
registry.  The legacy :class:`TransportKind` enum survives as a thin alias
layer -- its members resolve through the registry via their ``.value`` -- so
existing configs, cache fingerprints and call sites keep working.

A registered builder has the signature::

    def build(sim, src_host, flow, *, irn_config=None, roce_config=None,
              tcp_config=None, congestion_control=None, cnp_interval_s=None,
              on_sender_complete=None, on_receiver_complete=None,
              **extra) -> (BaseSender, BaseReceiver)

Builders only read the keyword arguments they care about and must tolerate
(ignore) the rest, so new transports can be registered from outside this
package without changing the runner::

    from repro.core import register_transport

    @register_transport("my_transport")
    def build_mine(sim, src_host, flow, *, congestion_control=None,
                   on_sender_complete=None, on_receiver_complete=None, **_):
        return MySender(...), MyReceiver(...)
"""

from __future__ import annotations

import dataclasses
from enum import Enum
from typing import TYPE_CHECKING, Callable, Optional, Sequence, Tuple, Union

from repro.core.irn import IrnConfig, IrnReceiver, IrnSender, LossRecovery
from repro.core.iwarp import TcpConfig, TcpSender
from repro.core.roce import RoceConfig, RoceReceiver, RoceSender
from repro.core.transport import BaseReceiver, BaseSender, Flow, FlowCallback
from repro.registry import Registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.congestion.base import CongestionControl
    from repro.sim.engine import Simulator
    from repro.sim.host import Host

#: ``(sim, src_host, flow, **options) -> (sender, receiver)``.
EndpointBuilder = Callable[..., Tuple[BaseSender, BaseReceiver]]

TRANSPORTS: Registry[EndpointBuilder] = Registry("transport")


def register_transport(name: str, *, aliases: Sequence[str] = (), replace: bool = False):
    """Decorator registering a transport endpoint builder under ``name``."""
    return TRANSPORTS.register(name, aliases=aliases, replace=replace)


class TransportKind(Enum):
    """Transport variants evaluated in the paper.

    .. deprecated::
        Kept as a thin alias layer over the :data:`TRANSPORTS` registry --
        each member resolves through the registry via its ``.value``.  New
        code (and new transports) should use plain string names.
    """

    IRN = "irn"
    ROCE = "roce"
    IWARP = "iwarp"
    #: §4.3 factor analysis: IRN with go-back-N instead of SACK recovery.
    IRN_GO_BACK_N = "irn_go_back_n"
    #: §4.3 factor analysis: IRN without the BDP-FC in-flight cap.
    IRN_NO_BDPFC = "irn_no_bdpfc"
    #: §4.3 factor analysis: selective retransmit without SACK state.
    IRN_NO_SACK = "irn_no_sack"


def make_flow_endpoints(
    sim: "Simulator",
    src_host: "Host",
    flow: Flow,
    kind: Union[TransportKind, str],
    irn_config: Optional[IrnConfig] = None,
    roce_config: Optional[RoceConfig] = None,
    tcp_config: Optional[TcpConfig] = None,
    congestion_control: Optional["CongestionControl"] = None,
    cnp_interval_s: Optional[float] = None,
    on_sender_complete: Optional[FlowCallback] = None,
    on_receiver_complete: Optional[FlowCallback] = None,
) -> Tuple[BaseSender, BaseReceiver]:
    """Instantiate the sender and receiver for ``flow`` under ``kind``.

    ``kind`` is a registered transport name (or a :class:`TransportKind`
    member, which resolves through the registry).  The caller is responsible
    for registering the returned endpoints with their hosts
    (``src_host.register_sender`` / ``dst_host.register_receiver``); the
    factory only needs the source host to wire the sender's NIC callbacks.
    """
    build = TRANSPORTS.get(kind)
    return build(
        sim,
        src_host,
        flow,
        irn_config=irn_config,
        roce_config=roce_config,
        tcp_config=tcp_config,
        congestion_control=congestion_control,
        cnp_interval_s=cnp_interval_s,
        on_sender_complete=on_sender_complete,
        on_receiver_complete=on_receiver_complete,
    )


# ---------------------------------------------------------------------------
# Built-in transports
# ---------------------------------------------------------------------------

@register_transport("roce")
def _build_roce(
    sim: "Simulator",
    src_host: "Host",
    flow: Flow,
    *,
    roce_config: Optional[RoceConfig] = None,
    congestion_control: Optional["CongestionControl"] = None,
    cnp_interval_s: Optional[float] = None,
    on_sender_complete: Optional[FlowCallback] = None,
    on_receiver_complete: Optional[FlowCallback] = None,
    **_: object,
) -> Tuple[BaseSender, BaseReceiver]:
    config = roce_config or RoceConfig()
    sender = RoceSender(
        sim, src_host, flow, config,
        congestion_control=congestion_control,
        on_complete=on_sender_complete,
    )
    receiver = RoceReceiver(
        sim, flow, config,
        on_complete=on_receiver_complete,
        cnp_interval_s=cnp_interval_s,
    )
    return sender, receiver


@register_transport("iwarp")
def _build_iwarp(
    sim: "Simulator",
    src_host: "Host",
    flow: Flow,
    *,
    tcp_config: Optional[TcpConfig] = None,
    congestion_control: Optional["CongestionControl"] = None,
    cnp_interval_s: Optional[float] = None,
    on_sender_complete: Optional[FlowCallback] = None,
    on_receiver_complete: Optional[FlowCallback] = None,
    **_: object,
) -> Tuple[BaseSender, BaseReceiver]:
    config = tcp_config or TcpConfig()
    sender = TcpSender(
        sim, src_host, flow, config,
        congestion_control=congestion_control,
        on_complete=on_sender_complete,
    )
    receiver = IrnReceiver(
        sim, flow, config,
        on_complete=on_receiver_complete,
        cnp_interval_s=cnp_interval_s,
        accept_ooo=True,
    )
    return sender, receiver


def _register_irn_variant(name: str, tweak, accept_ooo: bool = True) -> None:
    """IRN and its §4.3 factor-analysis variants share one builder body."""

    @register_transport(name)
    def _build_irn(
        sim: "Simulator",
        src_host: "Host",
        flow: Flow,
        *,
        irn_config: Optional[IrnConfig] = None,
        congestion_control: Optional["CongestionControl"] = None,
        cnp_interval_s: Optional[float] = None,
        on_sender_complete: Optional[FlowCallback] = None,
        on_receiver_complete: Optional[FlowCallback] = None,
        **_: object,
    ) -> Tuple[BaseSender, BaseReceiver]:
        config = tweak(irn_config or IrnConfig())
        sender = IrnSender(
            sim, src_host, flow, config,
            congestion_control=congestion_control,
            on_complete=on_sender_complete,
        )
        receiver = IrnReceiver(
            sim, flow, config,
            on_complete=on_receiver_complete,
            cnp_interval_s=cnp_interval_s,
            accept_ooo=accept_ooo,
        )
        return sender, receiver


_register_irn_variant("irn", lambda config: config)
# The go-back-N variant keeps the RoCE-style receiver that discards
# out-of-order packets; all other variants accept them.
_register_irn_variant(
    "irn_go_back_n",
    lambda config: dataclasses.replace(config, loss_recovery=LossRecovery.GO_BACK_N),
    accept_ooo=False,
)
_register_irn_variant(
    "irn_no_bdpfc",
    lambda config: dataclasses.replace(config, bdp_fc_enabled=False),
)
_register_irn_variant(
    "irn_no_sack",
    lambda config: dataclasses.replace(config, loss_recovery=LossRecovery.SELECTIVE_NO_SACK),
)
