"""Factories that build matched sender/receiver pairs for a flow."""

from __future__ import annotations

import dataclasses
from enum import Enum
from typing import TYPE_CHECKING, Optional, Tuple

from repro.core.irn import IrnConfig, IrnReceiver, IrnSender, LossRecovery
from repro.core.iwarp import TcpConfig, TcpSender
from repro.core.roce import RoceConfig, RoceReceiver, RoceSender
from repro.core.transport import BaseReceiver, BaseSender, Flow, FlowCallback

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.congestion.base import CongestionControl
    from repro.sim.engine import Simulator
    from repro.sim.host import Host


class TransportKind(Enum):
    """Transport variants evaluated in the paper."""

    IRN = "irn"
    ROCE = "roce"
    IWARP = "iwarp"
    #: §4.3 factor analysis: IRN with go-back-N instead of SACK recovery.
    IRN_GO_BACK_N = "irn_go_back_n"
    #: §4.3 factor analysis: IRN without the BDP-FC in-flight cap.
    IRN_NO_BDPFC = "irn_no_bdpfc"
    #: §4.3 factor analysis: selective retransmit without SACK state.
    IRN_NO_SACK = "irn_no_sack"


def make_flow_endpoints(
    sim: "Simulator",
    src_host: "Host",
    flow: Flow,
    kind: TransportKind,
    irn_config: Optional[IrnConfig] = None,
    roce_config: Optional[RoceConfig] = None,
    tcp_config: Optional[TcpConfig] = None,
    congestion_control: Optional["CongestionControl"] = None,
    cnp_interval_s: Optional[float] = None,
    on_sender_complete: Optional[FlowCallback] = None,
    on_receiver_complete: Optional[FlowCallback] = None,
) -> Tuple[BaseSender, BaseReceiver]:
    """Instantiate the sender and receiver for ``flow`` under ``kind``.

    The caller is responsible for registering the returned endpoints with
    their hosts (``src_host.register_sender`` / ``dst_host.register_receiver``);
    the factory only needs the source host to wire the sender's NIC callbacks.
    """
    if kind is TransportKind.ROCE:
        config = roce_config or RoceConfig()
        sender: BaseSender = RoceSender(
            sim, src_host, flow, config,
            congestion_control=congestion_control,
            on_complete=on_sender_complete,
        )
        receiver: BaseReceiver = RoceReceiver(
            sim, flow, config,
            on_complete=on_receiver_complete,
            cnp_interval_s=cnp_interval_s,
        )
        return sender, receiver

    if kind is TransportKind.IWARP:
        config = tcp_config or TcpConfig()
        sender = TcpSender(
            sim, src_host, flow, config,
            congestion_control=congestion_control,
            on_complete=on_sender_complete,
        )
        receiver = IrnReceiver(
            sim, flow, config,
            on_complete=on_receiver_complete,
            cnp_interval_s=cnp_interval_s,
            accept_ooo=True,
        )
        return sender, receiver

    # IRN and its factor-analysis variants.
    config = irn_config or IrnConfig()
    if kind is TransportKind.IRN_GO_BACK_N:
        config = dataclasses.replace(config, loss_recovery=LossRecovery.GO_BACK_N)
    elif kind is TransportKind.IRN_NO_BDPFC:
        config = dataclasses.replace(config, bdp_fc_enabled=False)
    elif kind is TransportKind.IRN_NO_SACK:
        config = dataclasses.replace(config, loss_recovery=LossRecovery.SELECTIVE_NO_SACK)
    elif kind is not TransportKind.IRN:
        raise ValueError(f"unsupported transport kind {kind!r}")

    sender = IrnSender(
        sim, src_host, flow, config,
        congestion_control=congestion_control,
        on_complete=on_sender_complete,
    )
    # The go-back-N variant keeps the RoCE-style receiver that discards
    # out-of-order packets; all other variants accept them.
    accept_ooo = kind is not TransportKind.IRN_GO_BACK_N
    receiver = IrnReceiver(
        sim, flow, config,
        on_complete=on_receiver_complete,
        cnp_interval_s=cnp_interval_s,
        accept_ooo=accept_ooo,
    )
    return sender, receiver
