"""Common transport machinery shared by IRN, RoCE and the iWARP TCP stack.

A :class:`Flow` is the unit of data transfer from the paper: one or more
messages between a source/destination queue pair.  :class:`BaseSender` and
:class:`BaseReceiver` implement everything that is identical across the
transports -- packetization, the host-NIC scheduling interface, pacing via an
optional congestion-control module, retransmission timers, and completion
signalling -- so each concrete transport only implements its loss-recovery
and windowing policy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional

from repro.sim.packet import DEFAULT_HEADER_BYTES, Packet, PacketType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.congestion.base import CongestionControl
    from repro.sim.engine import Simulator
    from repro.sim.host import Host


FlowCallback = Callable[["Flow", float], None]


@dataclass
class Flow:
    """A unit of data transfer between a source and a destination host."""

    flow_id: int
    src: str
    dst: str
    size_bytes: int
    start_time: float = 0.0
    #: Optional grouping key (e.g. "incast" vs "background" traffic).
    group: str = "default"

    # Filled in at runtime -----------------------------------------------------
    completion_time: Optional[float] = None
    first_packet_time: Optional[float] = None

    def num_packets(self, mtu_bytes: int) -> int:
        """Number of MTU-sized packets needed to carry the flow."""
        return max(1, math.ceil(self.size_bytes / mtu_bytes))

    @property
    def completed(self) -> bool:
        return self.completion_time is not None

    def fct(self) -> float:
        """Flow completion time (raises if the flow has not finished)."""
        if self.completion_time is None:
            raise RuntimeError(f"flow {self.flow_id} has not completed")
        return self.completion_time - self.start_time


@dataclass
class TransportConfig:
    """Knobs shared by every transport implementation."""

    mtu_bytes: int = 1000
    header_bytes: int = DEFAULT_HEADER_BYTES
    #: Retransmission timeout used when the transport has a single timer.
    rto_s: float = 320e-6
    #: Whether the receiver generates per-packet cumulative ACKs.  The paper's
    #: RoCE-with-PFC baseline models the all-Reads extreme and sends no ACKs.
    generate_acks: bool = True
    #: Whether the sender arms retransmission timers (disabled for the
    #: RoCE-with-PFC baseline to avoid spurious retransmissions).
    timeouts_enabled: bool = True
    #: Receiver-side cumulative-ACK coalescing window, in packets: the
    #: receiver banks up to N in-order ACK grants and emits one cumulative
    #: ACK covering all of them.  1 (the default here) reproduces the
    #: per-packet ACK stream exactly -- no deferral state is ever touched.
    #: NACK/SACK and duplicate-arrival paths always fire immediately, so
    #: loss recovery never waits on the window.
    ack_coalesce_n: int = 1
    #: Flush timeout for a partially filled coalescing window (N packets or
    #: T seconds, whichever first).  Must stay well below RTO_low or a
    #: delayed ACK could masquerade as a loss; the experiment wiring clamps
    #: it to half of the effective RTO_low (the sender budgets the flush
    #: delay into its retransmission timer, see ``BaseSender._arm_rto``).
    ack_coalesce_s: float = 25e-6
    #: Pacing wake-up quantization grid, in seconds.  0 keeps one wake-up
    #: event per paced packet (per QP); a positive quantum rounds wake-ups
    #: up onto the grid and shares a single timer host-wide, so a paced
    #: sender costs one event per quantized batch.  The congestion module's
    #: burst credit is set to the quantum so the average rate is preserved.
    pacing_quantum_s: float = 0.0


class BaseSender:
    """Transmit side of a flow.

    Subclasses must implement :meth:`_select_packet` (choose the next PSN to
    put on the wire, or ``None``) and the control-packet handlers
    :meth:`_handle_ack` / :meth:`_handle_nack`.
    """

    def __init__(
        self,
        sim: "Simulator",
        host: "Host",
        flow: Flow,
        config: TransportConfig,
        congestion_control: Optional["CongestionControl"] = None,
        on_complete: Optional[FlowCallback] = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.flow = flow
        self.config = config
        self.cc = congestion_control
        self.on_complete = on_complete

        self.flow_id = flow.flow_id
        self.num_packets = flow.num_packets(config.mtu_bytes)
        self.last_packet_payload = flow.size_bytes - (self.num_packets - 1) * config.mtu_bytes

        #: Highest cumulatively acknowledged PSN (all packets < snd_una done).
        self.snd_una = 0
        #: Next brand-new PSN to send.
        self.snd_nxt = 0
        #: Highest PSN handed to the NIC so far (exclusive).
        self.highest_sent = 0

        self.completed = False

        # Statistics
        self.packets_sent = 0
        self.retransmissions = 0
        self.timeouts_fired = 0
        self.nacks_received = 0

        self._rto_event = None
        self._pacing_event = None

    # ------------------------------------------------------------------
    # Interface used by the host NIC
    # ------------------------------------------------------------------
    def has_packet_ready(self, now: float) -> bool:
        """True when the NIC could send a packet of this flow right now."""
        if self.completed:
            return False
        psn = self._select_packet(now)
        if psn is None:
            return False
        release = self._pacing_release_time(now)
        if release > now:
            self._ensure_pacing_wakeup(release)
            return False
        return True

    def next_packet(self, now: float) -> Optional[Packet]:
        """Hand the next packet of this flow to the NIC (or ``None``).

        Selection runs before the pacing gate, mirroring
        :meth:`has_packet_ready`: a flow with nothing eligible returns
        ``None`` *without* arming a pacing wake-up, so an idle-but-paced QP
        never keeps the event loop alive on its own.
        """
        if self.completed:
            return None
        psn = self._select_packet(now)
        if psn is None:
            return None
        release = self._pacing_release_time(now)
        if release > now:
            self._ensure_pacing_wakeup(release)
            return None
        packet = self._build_packet(psn, now)
        self._note_sent(psn, packet, now)
        return packet

    def on_control(self, packet: Packet, now: float) -> None:
        """Dispatch an ACK/NACK/CNP to the right handler."""
        if packet.ptype is PacketType.ACK:
            self._handle_ack(packet, now)
        elif packet.ptype is PacketType.NACK:
            self.nacks_received += 1
            self._handle_nack(packet, now)
        elif packet.ptype is PacketType.CNP:
            if self.cc is not None:
                self.cc.on_cnp(now)
        self.host.notify_ready()

    # ------------------------------------------------------------------
    # Hooks for subclasses
    # ------------------------------------------------------------------
    def _select_packet(self, now: float) -> Optional[int]:
        """Return the PSN to transmit next, or ``None`` if nothing is ready."""
        raise NotImplementedError

    def _handle_ack(self, packet: Packet, now: float) -> None:
        raise NotImplementedError

    def _handle_nack(self, packet: Packet, now: float) -> None:
        raise NotImplementedError

    def _is_retransmission(self, psn: int) -> bool:
        return psn < self.highest_sent

    # ------------------------------------------------------------------
    # Packet construction and pacing
    # ------------------------------------------------------------------
    def _payload_for(self, psn: int) -> int:
        if psn == self.num_packets - 1:
            return max(1, self.last_packet_payload)
        return self.config.mtu_bytes

    def _build_packet(self, psn: int, now: float) -> Packet:
        return Packet(
            ptype=PacketType.DATA,
            flow_id=self.flow_id,
            src=self.flow.src,
            dst=self.flow.dst,
            psn=psn,
            payload_bytes=self._payload_for(psn),
            header_bytes=self.config.header_bytes,
            msg_id=0,
            last_of_message=(psn == self.num_packets - 1),
            retransmitted=self._is_retransmission(psn),
            sent_time=now,
        )

    def _note_sent(self, psn: int, packet: Packet, now: float) -> None:
        self.packets_sent += 1
        if packet.retransmitted:
            self.retransmissions += 1
        if self.flow.first_packet_time is None:
            self.flow.first_packet_time = now
        self.highest_sent = max(self.highest_sent, psn + 1)
        if self.cc is not None:
            self.cc.on_packet_sent(packet.size_bits, now)
        if self.config.timeouts_enabled:
            self._arm_rto(now)

    def _pacing_release_time(self, now: float) -> float:
        if self.cc is None:
            return now
        return self.cc.next_send_time(now)

    def _ensure_pacing_wakeup(self, release: float) -> None:
        quantum = self.config.pacing_quantum_s
        if quantum > 0.0:
            # Round up onto the quantum grid and share the wake-up host-wide:
            # one timer serves every paced QP on this NIC, and the pacer's
            # burst credit lets it catch up on the whole quantum at once.
            self.host.request_pacing_wakeup(math.ceil(release / quantum) * quantum)
            return
        if self._pacing_event is not None and not self._pacing_event.cancelled:
            return
        self._pacing_event = self.sim.schedule_at(release, self._pacing_fired)

    def _pacing_fired(self) -> None:
        self._pacing_event = None
        self.host.notify_ready()

    def _newly_acked(self, cum: int) -> int:
        """Packets a cumulative acknowledgement newly covers (for the
        congestion module's ``newly_acked``).  With coalescing off this is
        pinned to 1, keeping window dynamics byte-identical to the
        historical one-credit-per-ACK-frame behavior; with coalescing on it
        is the true cumulative delta, so growth does not depend on how many
        per-packet ACKs were folded into the frame."""
        if self.config.ack_coalesce_n <= 1:
            return 1
        return max(1, min(cum, self.num_packets) - self.snd_una)

    # ------------------------------------------------------------------
    # Windowing
    # ------------------------------------------------------------------
    def _window_limit(self) -> float:
        """Maximum number of unacknowledged packets allowed in flight."""
        base = float("inf")
        if self.cc is not None:
            base = self.cc.window_limit(base)
        return base

    def in_flight(self) -> int:
        """Packets sent but not yet cumulatively acknowledged."""
        return max(0, self.snd_nxt - self.snd_una)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def _rto_value(self, now: float) -> float:
        return self.config.rto_s

    def _arm_rto(self, now: float, restart: bool = False) -> None:
        if not self.config.timeouts_enabled or self.completed:
            return
        if self._rto_event is not None and not self._rto_event.cancelled:
            if not restart:
                return
            self._rto_event.cancel()
        delay = self._rto_value(now)
        if self.config.ack_coalesce_n > 1:
            # A coalescing receiver may legitimately sit on the ACK for up
            # to the flush timeout; budget it into the RTO (as RFC 6298
            # stacks do for delayed ACKs) or that wait reads as a loss.
            delay += self.config.ack_coalesce_s
        # Retransmission timers follow the set-then-cancel pattern (almost
        # every timer is cancelled by the ACK that precedes it), so they go
        # on the engine's timer wheel where cancellation is O(1) and never
        # leaves a tombstone in the sorted event structures.
        self._rto_event = self.sim.set_timer(delay, self._rto_fired)

    def _cancel_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None

    def _rto_fired(self) -> None:
        self._rto_event = None
        if self.completed or self.snd_una >= self.num_packets:
            return
        self.timeouts_fired += 1
        self._handle_timeout(self.sim.now)
        if self.cc is not None:
            self.cc.on_timeout(self.sim.now)
        self._arm_rto(self.sim.now)
        self.host.notify_ready()

    def _handle_timeout(self, now: float) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def _advance_cumulative(self, cum: int, now: float) -> bool:
        """Advance ``snd_una``; returns True if it moved."""
        if cum <= self.snd_una:
            return False
        self.snd_una = cum
        self.snd_nxt = max(self.snd_nxt, cum)
        if self.snd_una >= self.num_packets:
            self._mark_complete(now)
        else:
            self._arm_rto(now, restart=True)
        return True

    def _mark_complete(self, now: float) -> None:
        if self.completed:
            return
        self.completed = True
        self._cancel_rto()
        if self._pacing_event is not None:
            self._pacing_event.cancel()
        if self.on_complete is not None:
            self.on_complete(self.flow, now)


class BaseReceiver:
    """Receive side of a flow.

    Tracks arrival of the flow's packets and signals completion once every
    byte has been delivered, independently of whether the transport generates
    acknowledgements (the paper's RoCE-with-PFC baseline does not).
    """

    def __init__(
        self,
        sim: "Simulator",
        flow: Flow,
        config: TransportConfig,
        on_complete: Optional[FlowCallback] = None,
        cnp_interval_s: Optional[float] = None,
    ) -> None:
        self.sim = sim
        self.flow = flow
        self.config = config
        self.flow_id = flow.flow_id
        self.num_packets = flow.num_packets(config.mtu_bytes)
        self.on_complete = on_complete

        self.delivered_packets = 0
        self.completed = False

        # DCQCN notification-point state: at most one CNP per interval.
        self._cnp_interval_s = cnp_interval_s
        self._last_cnp_time = -float("inf")

        #: Out-of-band control emitter, wired by ``Host.register_receiver``;
        #: lets the ACK-coalescing flush timer send a frame outside the
        #: ``on_data`` response path.  Coalescing stays off until it is set.
        self.send_control: Optional[Callable[[Packet], None]] = None
        # Deferred cumulative-ACK state (the coalescing window).
        self._ack_pending = 0
        self._ack_cum = 0
        self._ack_psn = 0
        self._ack_echo_time = 0.0
        self._ack_ecn = False
        self._ack_timer = None
        self._ack_last_data_time = -float("inf")

        # Statistics
        self.data_received = 0
        self.duplicates_received = 0
        self.acks_sent = 0
        self.nacks_sent = 0
        self.cnps_sent = 0
        #: Per-packet ACK grants absorbed into a later cumulative frame.
        self.acks_coalesced = 0
        #: Coalescing windows flushed by the timeout rather than the count.
        self.ack_flush_timeouts = 0

    # ------------------------------------------------------------------
    def on_data(self, packet: Packet, now: float) -> List[Packet]:
        """Consume a data packet; returns control frames to send back."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------
    def _control(self, ptype: PacketType, data_packet: Packet, **fields) -> Packet:
        """Build an ACK/NACK/CNP going back to the data packet's source."""
        packet = Packet(
            ptype=ptype,
            flow_id=self.flow_id,
            src=self.flow.dst,
            dst=self.flow.src,
            psn=data_packet.psn,
            echo_time=data_packet.sent_time,
            ecn_echo=data_packet.ecn,
        )
        for key, value in fields.items():
            setattr(packet, key, value)
        if ptype is PacketType.ACK:
            self.acks_sent += 1
        elif ptype is PacketType.NACK:
            self.nacks_sent += 1
        return packet

    # ------------------------------------------------------------------
    # Cumulative-ACK coalescing
    # ------------------------------------------------------------------
    def _queue_ack(
        self, data_packet: Packet, cum: int, responses: List[Packet], now: float
    ) -> None:
        """Emit a cumulative ACK, or bank it into the coalescing window.

        The window flushes on whichever comes first: the N-th banked grant,
        the flush timer, or flow completion (so the last ACK of a message is
        never delayed).  At ``ack_coalesce_n <= 1`` -- or before the host has
        wired :attr:`send_control` -- this is exactly the historical
        one-ACK-per-packet path.
        """
        config = self.config
        gap, self._ack_last_data_time = now - self._ack_last_data_time, now
        if config.ack_coalesce_n <= 1 or self.send_control is None:
            responses.append(self._control(PacketType.ACK, data_packet, cumulative_ack=cum))
            return
        if data_packet.retransmitted:
            # Recovery traffic: the sender is waiting on this cumulative
            # advance to exit recovery -- holding it in the window would
            # stretch every loss episode by up to the flush timeout.
            banked_ecn = self._absorb_pending_ack()
            responses.append(
                self._control(
                    PacketType.ACK,
                    data_packet,
                    cumulative_ack=cum,
                    ecn_echo=data_packet.ecn or banked_ecn,
                )
            )
            return
        if self._ack_pending == 0 and gap > config.ack_coalesce_s:
            # Adaptive moderation, as NICs do: only back-to-back streams are
            # worth banking.  At this arrival spacing the window would be cut
            # short by the flush timer anyway, so deferring buys no ACK
            # deletion -- it just converts each ACK into a timer event plus a
            # late ACK.  Send immediately and keep the slow path per-packet.
            responses.append(self._control(PacketType.ACK, data_packet, cumulative_ack=cum))
            return
        self._ack_pending += 1
        self._ack_cum = cum
        self._ack_psn = data_packet.psn
        self._ack_echo_time = data_packet.sent_time
        self._ack_ecn = self._ack_ecn or data_packet.ecn
        if self._ack_pending >= config.ack_coalesce_n or self.completed:
            responses.append(self._flush_ack())
        elif self._ack_timer is None:
            self._ack_timer = self.sim.set_timer(config.ack_coalesce_s, self._ack_timer_fired)

    def _flush_ack(self) -> Packet:
        """Materialize the banked window as one cumulative ACK frame."""
        packet = Packet(
            ptype=PacketType.ACK,
            flow_id=self.flow_id,
            src=self.flow.dst,
            dst=self.flow.src,
            psn=self._ack_psn,
            echo_time=self._ack_echo_time,
            ecn_echo=self._ack_ecn,
            cumulative_ack=self._ack_cum,
        )
        self.acks_sent += 1
        self.acks_coalesced += self._ack_pending - 1
        self._clear_pending_ack()
        return packet

    def _absorb_pending_ack(self) -> bool:
        """Fold the banked window into an immediate frame the caller is
        about to emit (a NACK or duplicate-ACK already carries the latest
        cumulative acknowledgement, superseding the deferred one).

        Returns the banked ECN echo bit: the superseding frame must OR it
        into its own ``ecn_echo`` or congestion marks observed on the
        absorbed packets would be lost -- under-signaling DCTCP/DCQCN
        exactly during loss episodes."""
        ecn = self._ack_ecn
        if self._ack_pending:
            self.acks_coalesced += self._ack_pending
            self._clear_pending_ack()
        return ecn

    def _clear_pending_ack(self) -> None:
        self._ack_pending = 0
        self._ack_ecn = False
        if self._ack_timer is not None:
            self._ack_timer.cancel()
            self._ack_timer = None

    def _ack_timer_fired(self) -> None:
        self._ack_timer = None
        if self._ack_pending == 0:
            return
        self.ack_flush_timeouts += 1
        packet = self._flush_ack()
        if self.send_control is not None:
            self.send_control(packet)

    def _maybe_cnp(self, data_packet: Packet, now: float) -> Optional[Packet]:
        """Generate a DCQCN CNP if the packet was ECN-marked (rate limited)."""
        if self._cnp_interval_s is None or not data_packet.ecn:
            return None
        if now - self._last_cnp_time < self._cnp_interval_s:
            return None
        self._last_cnp_time = now
        self.cnps_sent += 1
        return self._control(PacketType.CNP, data_packet)

    def _note_delivered(self, count: int, now: float) -> None:
        """Record ``count`` newly delivered (in-order or placed) packets."""
        self.delivered_packets += count
        if not self.completed and self.delivered_packets >= self.num_packets:
            self.completed = True
            self.flow.completion_time = now
            if self.on_complete is not None:
                self.on_complete(self.flow, now)
