"""Common transport machinery shared by IRN, RoCE and the iWARP TCP stack.

A :class:`Flow` is the unit of data transfer from the paper: one or more
messages between a source/destination queue pair.  :class:`BaseSender` and
:class:`BaseReceiver` implement everything that is identical across the
transports -- packetization, the host-NIC scheduling interface, pacing via an
optional congestion-control module, retransmission timers, and completion
signalling -- so each concrete transport only implements its loss-recovery
and windowing policy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional

from repro.sim.packet import DEFAULT_HEADER_BYTES, Packet, PacketType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.congestion.base import CongestionControl
    from repro.sim.engine import Simulator
    from repro.sim.host import Host


FlowCallback = Callable[["Flow", float], None]


@dataclass
class Flow:
    """A unit of data transfer between a source and a destination host."""

    flow_id: int
    src: str
    dst: str
    size_bytes: int
    start_time: float = 0.0
    #: Optional grouping key (e.g. "incast" vs "background" traffic).
    group: str = "default"

    # Filled in at runtime -----------------------------------------------------
    completion_time: Optional[float] = None
    first_packet_time: Optional[float] = None

    def num_packets(self, mtu_bytes: int) -> int:
        """Number of MTU-sized packets needed to carry the flow."""
        return max(1, math.ceil(self.size_bytes / mtu_bytes))

    @property
    def completed(self) -> bool:
        return self.completion_time is not None

    def fct(self) -> float:
        """Flow completion time (raises if the flow has not finished)."""
        if self.completion_time is None:
            raise RuntimeError(f"flow {self.flow_id} has not completed")
        return self.completion_time - self.start_time


@dataclass
class TransportConfig:
    """Knobs shared by every transport implementation."""

    mtu_bytes: int = 1000
    header_bytes: int = DEFAULT_HEADER_BYTES
    #: Retransmission timeout used when the transport has a single timer.
    rto_s: float = 320e-6
    #: Whether the receiver generates per-packet cumulative ACKs.  The paper's
    #: RoCE-with-PFC baseline models the all-Reads extreme and sends no ACKs.
    generate_acks: bool = True
    #: Whether the sender arms retransmission timers (disabled for the
    #: RoCE-with-PFC baseline to avoid spurious retransmissions).
    timeouts_enabled: bool = True


class BaseSender:
    """Transmit side of a flow.

    Subclasses must implement :meth:`_select_packet` (choose the next PSN to
    put on the wire, or ``None``) and the control-packet handlers
    :meth:`_handle_ack` / :meth:`_handle_nack`.
    """

    def __init__(
        self,
        sim: "Simulator",
        host: "Host",
        flow: Flow,
        config: TransportConfig,
        congestion_control: Optional["CongestionControl"] = None,
        on_complete: Optional[FlowCallback] = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.flow = flow
        self.config = config
        self.cc = congestion_control
        self.on_complete = on_complete

        self.flow_id = flow.flow_id
        self.num_packets = flow.num_packets(config.mtu_bytes)
        self.last_packet_payload = flow.size_bytes - (self.num_packets - 1) * config.mtu_bytes

        #: Highest cumulatively acknowledged PSN (all packets < snd_una done).
        self.snd_una = 0
        #: Next brand-new PSN to send.
        self.snd_nxt = 0
        #: Highest PSN handed to the NIC so far (exclusive).
        self.highest_sent = 0

        self.completed = False

        # Statistics
        self.packets_sent = 0
        self.retransmissions = 0
        self.timeouts_fired = 0
        self.nacks_received = 0

        self._rto_event = None
        self._pacing_event = None

    # ------------------------------------------------------------------
    # Interface used by the host NIC
    # ------------------------------------------------------------------
    def has_packet_ready(self, now: float) -> bool:
        """True when the NIC could send a packet of this flow right now."""
        if self.completed:
            return False
        psn = self._select_packet(now)
        if psn is None:
            return False
        release = self._pacing_release_time(now)
        if release > now:
            self._ensure_pacing_wakeup(release)
            return False
        return True

    def next_packet(self, now: float) -> Optional[Packet]:
        """Hand the next packet of this flow to the NIC (or ``None``).

        Selection runs before the pacing gate, mirroring
        :meth:`has_packet_ready`: a flow with nothing eligible returns
        ``None`` *without* arming a pacing wake-up, so an idle-but-paced QP
        never keeps the event loop alive on its own.
        """
        if self.completed:
            return None
        psn = self._select_packet(now)
        if psn is None:
            return None
        release = self._pacing_release_time(now)
        if release > now:
            self._ensure_pacing_wakeup(release)
            return None
        packet = self._build_packet(psn, now)
        self._note_sent(psn, packet, now)
        return packet

    def on_control(self, packet: Packet, now: float) -> None:
        """Dispatch an ACK/NACK/CNP to the right handler."""
        if packet.ptype is PacketType.ACK:
            self._handle_ack(packet, now)
        elif packet.ptype is PacketType.NACK:
            self.nacks_received += 1
            self._handle_nack(packet, now)
        elif packet.ptype is PacketType.CNP:
            if self.cc is not None:
                self.cc.on_cnp(now)
        self.host.notify_ready()

    # ------------------------------------------------------------------
    # Hooks for subclasses
    # ------------------------------------------------------------------
    def _select_packet(self, now: float) -> Optional[int]:
        """Return the PSN to transmit next, or ``None`` if nothing is ready."""
        raise NotImplementedError

    def _handle_ack(self, packet: Packet, now: float) -> None:
        raise NotImplementedError

    def _handle_nack(self, packet: Packet, now: float) -> None:
        raise NotImplementedError

    def _is_retransmission(self, psn: int) -> bool:
        return psn < self.highest_sent

    # ------------------------------------------------------------------
    # Packet construction and pacing
    # ------------------------------------------------------------------
    def _payload_for(self, psn: int) -> int:
        if psn == self.num_packets - 1:
            return max(1, self.last_packet_payload)
        return self.config.mtu_bytes

    def _build_packet(self, psn: int, now: float) -> Packet:
        return Packet(
            ptype=PacketType.DATA,
            flow_id=self.flow_id,
            src=self.flow.src,
            dst=self.flow.dst,
            psn=psn,
            payload_bytes=self._payload_for(psn),
            header_bytes=self.config.header_bytes,
            msg_id=0,
            last_of_message=(psn == self.num_packets - 1),
            retransmitted=self._is_retransmission(psn),
            sent_time=now,
        )

    def _note_sent(self, psn: int, packet: Packet, now: float) -> None:
        self.packets_sent += 1
        if packet.retransmitted:
            self.retransmissions += 1
        if self.flow.first_packet_time is None:
            self.flow.first_packet_time = now
        self.highest_sent = max(self.highest_sent, psn + 1)
        if self.cc is not None:
            self.cc.on_packet_sent(packet.size_bits, now)
        if self.config.timeouts_enabled:
            self._arm_rto(now)

    def _pacing_release_time(self, now: float) -> float:
        if self.cc is None:
            return now
        return self.cc.next_send_time(now)

    def _ensure_pacing_wakeup(self, release: float) -> None:
        if self._pacing_event is not None and not self._pacing_event.cancelled:
            return
        self._pacing_event = self.sim.schedule_at(release, self._pacing_fired)

    def _pacing_fired(self) -> None:
        self._pacing_event = None
        self.host.notify_ready()

    # ------------------------------------------------------------------
    # Windowing
    # ------------------------------------------------------------------
    def _window_limit(self) -> float:
        """Maximum number of unacknowledged packets allowed in flight."""
        base = float("inf")
        if self.cc is not None:
            base = self.cc.window_limit(base)
        return base

    def in_flight(self) -> int:
        """Packets sent but not yet cumulatively acknowledged."""
        return max(0, self.snd_nxt - self.snd_una)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def _rto_value(self, now: float) -> float:
        return self.config.rto_s

    def _arm_rto(self, now: float, restart: bool = False) -> None:
        if not self.config.timeouts_enabled or self.completed:
            return
        if self._rto_event is not None and not self._rto_event.cancelled:
            if not restart:
                return
            self._rto_event.cancel()
        # Retransmission timers follow the set-then-cancel pattern (almost
        # every timer is cancelled by the ACK that precedes it), so they go
        # on the engine's timer wheel where cancellation is O(1) and never
        # leaves a tombstone in the sorted event structures.
        self._rto_event = self.sim.set_timer(self._rto_value(now), self._rto_fired)

    def _cancel_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None

    def _rto_fired(self) -> None:
        self._rto_event = None
        if self.completed or self.snd_una >= self.num_packets:
            return
        self.timeouts_fired += 1
        self._handle_timeout(self.sim.now)
        if self.cc is not None:
            self.cc.on_timeout(self.sim.now)
        self._arm_rto(self.sim.now)
        self.host.notify_ready()

    def _handle_timeout(self, now: float) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def _advance_cumulative(self, cum: int, now: float) -> bool:
        """Advance ``snd_una``; returns True if it moved."""
        if cum <= self.snd_una:
            return False
        self.snd_una = cum
        self.snd_nxt = max(self.snd_nxt, cum)
        if self.snd_una >= self.num_packets:
            self._mark_complete(now)
        else:
            self._arm_rto(now, restart=True)
        return True

    def _mark_complete(self, now: float) -> None:
        if self.completed:
            return
        self.completed = True
        self._cancel_rto()
        if self._pacing_event is not None:
            self._pacing_event.cancel()
        if self.on_complete is not None:
            self.on_complete(self.flow, now)


class BaseReceiver:
    """Receive side of a flow.

    Tracks arrival of the flow's packets and signals completion once every
    byte has been delivered, independently of whether the transport generates
    acknowledgements (the paper's RoCE-with-PFC baseline does not).
    """

    def __init__(
        self,
        sim: "Simulator",
        flow: Flow,
        config: TransportConfig,
        on_complete: Optional[FlowCallback] = None,
        cnp_interval_s: Optional[float] = None,
    ) -> None:
        self.sim = sim
        self.flow = flow
        self.config = config
        self.flow_id = flow.flow_id
        self.num_packets = flow.num_packets(config.mtu_bytes)
        self.on_complete = on_complete

        self.delivered_packets = 0
        self.completed = False

        # DCQCN notification-point state: at most one CNP per interval.
        self._cnp_interval_s = cnp_interval_s
        self._last_cnp_time = -float("inf")

        # Statistics
        self.data_received = 0
        self.duplicates_received = 0
        self.acks_sent = 0
        self.nacks_sent = 0
        self.cnps_sent = 0

    # ------------------------------------------------------------------
    def on_data(self, packet: Packet, now: float) -> List[Packet]:
        """Consume a data packet; returns control frames to send back."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------
    def _control(self, ptype: PacketType, data_packet: Packet, **fields) -> Packet:
        """Build an ACK/NACK/CNP going back to the data packet's source."""
        packet = Packet(
            ptype=ptype,
            flow_id=self.flow_id,
            src=self.flow.dst,
            dst=self.flow.src,
            psn=data_packet.psn,
            echo_time=data_packet.sent_time,
            ecn_echo=data_packet.ecn,
        )
        for key, value in fields.items():
            setattr(packet, key, value)
        if ptype is PacketType.ACK:
            self.acks_sent += 1
        elif ptype is PacketType.NACK:
            self.nacks_sent += 1
        return packet

    def _maybe_cnp(self, data_packet: Packet, now: float) -> Optional[Packet]:
        """Generate a DCQCN CNP if the packet was ECN-marked (rate limited)."""
        if self._cnp_interval_s is None or not data_packet.ecn:
            return None
        if now - self._last_cnp_time < self._cnp_interval_s:
            return None
        self._last_cnp_time = now
        self.cnps_sent += 1
        return self._control(PacketType.CNP, data_packet)

    def _note_delivered(self, count: int, now: float) -> None:
        """Record ``count`` newly delivered (in-order or placed) packets."""
        self.delivered_packets += count
        if not self.completed and self.delivered_packets >= self.num_packets:
            self.completed = True
            self.flow.completion_time = now
            if self.on_complete is not None:
                self.on_complete(self.flow, now)
