"""Transport logic: IRN (the paper's contribution), RoCE, iWARP and variants."""

from repro.core.transport import Flow, BaseSender, BaseReceiver, TransportConfig
from repro.core.irn import IrnConfig, IrnSender, IrnReceiver, LossRecovery
from repro.core.roce import RoceConfig, RoceSender, RoceReceiver
from repro.core.iwarp import TcpConfig, TcpSender
from repro.core.factory import make_flow_endpoints

__all__ = [
    "Flow",
    "BaseSender",
    "BaseReceiver",
    "TransportConfig",
    "IrnConfig",
    "IrnSender",
    "IrnReceiver",
    "LossRecovery",
    "RoceConfig",
    "RoceSender",
    "RoceReceiver",
    "TcpConfig",
    "TcpSender",
    "make_flow_endpoints",
]
