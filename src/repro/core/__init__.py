"""Transport logic: IRN (the paper's contribution), RoCE, iWARP and variants."""

from repro.core.transport import Flow, BaseSender, BaseReceiver, TransportConfig
from repro.core.irn import IrnConfig, IrnSender, IrnReceiver, LossRecovery
from repro.core.roce import RoceConfig, RoceSender, RoceReceiver
from repro.core.iwarp import TcpConfig, TcpSender
from repro.core.factory import (
    TRANSPORTS,
    TransportKind,
    make_flow_endpoints,
    register_transport,
)

__all__ = [
    "TRANSPORTS",
    "TransportKind",
    "register_transport",
    "Flow",
    "BaseSender",
    "BaseReceiver",
    "TransportConfig",
    "IrnConfig",
    "IrnSender",
    "IrnReceiver",
    "LossRecovery",
    "RoceConfig",
    "RoceSender",
    "RoceReceiver",
    "TcpConfig",
    "TcpSender",
    "make_flow_endpoints",
]
