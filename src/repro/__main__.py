"""Command-line entry point: ``python -m repro``.

Subcommands
-----------

``run <scenario>``
    Resolve a registered scenario by name, sweep every cell (optionally over
    seed replicas and worker processes, served from a disk cache), and print
    the per-replica metric table, the per-cell aggregate table (means with
    95% confidence intervals, pooled tail percentiles) and, with ``--cdf``,
    Figure 8-style tail CDFs.  ``--backend queue --queue-dir DIR`` spools the
    cells through a durable work queue that any number of ``repro worker``
    processes (anywhere that sees the directory) drain; ``--follow`` streams
    the partial per-cell aggregates as results land, and re-running the same
    command resumes from the part-files already on disk.

``worker <queue-dir>``
    Lease and execute tasks from a queue directory until it drains (or
    forever, without ``--drain``) -- the process you start on *other*
    machines to shard a queue-backend sweep.

``list``
    Show every registered scenario with its description and shape.

``serve <cache-dir>``
    Long-lived HTTP results service over a warm sweep cache: scenario
    catalog, pooled per-cell aggregates, tail CDFs, raw rows and (with
    ``--queue-dir``) live ``/follow`` streams over a draining work queue --
    zero simulation on the read path.  See :mod:`repro.serve.server`.

Examples::

    python -m repro run fig1
    python -m repro run fig8 --seeds 3 --workers 4 --cache .sweep-cache/fig8 --cdf
    python -m repro run fig1 --quick                 # seed 1 only, fast feedback
    python -m repro run fig1 --backend queue --queue-dir /shared/q --follow
    python -m repro worker /shared/q                 # on as many machines as you like
    python -m repro list
    python -m repro serve .sweep-cache/fig8 --port 8123

(``--set`` applies to *every* cell; setting a field a scenario sweeps as its
row axis would collapse the sweep, so the CLI warns when that happens.)
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Dict, List, Optional, Sequence

from repro.api import (
    SweepResult,
    format_aggregate_table,
    format_incast_table,
    format_metric_table,
    format_tail_cdf,
    load_scenario,
)
from repro.experiments.spec import ScenarioSpec
from repro.registry import UnknownNameError


def _parse_set_overrides(pairs: Sequence[str]) -> Dict[str, Any]:
    """``--set key=value`` pairs; values parse as JSON when possible, so
    ``--set target_load=0.9 --set workload='"uniform"'`` and bare strings
    (``--set workload=uniform``) both work."""
    overrides: Dict[str, Any] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--set expects key=value, got {pair!r}")
        try:
            overrides[key] = json.loads(raw)
        except json.JSONDecodeError:
            overrides[key] = raw
    return overrides


def _print_report(spec: ScenarioSpec, sweep: SweepResult, show_cdf: bool) -> None:
    print(format_metric_table(f"{spec.name}: per-run metrics", sweep.rows))
    if any(row.incast_rct_s is not None for row in sweep.rows.values()):
        print()
        print(format_incast_table(f"{spec.name}: incast", sweep.rows))
    if len(sweep.rows) > len(spec.variants) * len(spec.row_labels() or (None,)):
        # Seed replicas present: fold them into per-cell aggregates.
        print()
        print(f"=== {spec.name}: per-cell aggregates over seed replicas ===")
        print(format_aggregate_table(spec.aggregate(sweep), label_keys=spec.aggregate_by))
    if show_cdf:
        for label, row in sweep.rows.items():
            digest = row.single_packet_distribution
            if digest is None or not digest.count:
                continue
            print()
            print(format_tail_cdf(
                digest,
                title=f"{label}: single-packet latency tail ({digest.count} msgs)",
            ))


def _make_follow_printer(spec: ScenarioSpec):
    """A ``run_sweep`` progress observer that streams converging aggregates.

    Prints one line per completed cell with the *pooled* tail over every row
    that has landed so far -- the point of ``--follow`` on a queue sweep is
    watching those partial aggregates converge before the sweep finishes.
    """
    del spec  # the aggregate record itself carries the cell key

    def follow(progress, row) -> None:
        line = f"  [{progress.completed}/{progress.total}] {row.label}"
        record = progress.last_update
        if record is not None:
            # The cell key is whatever the spec aggregates by (its leading
            # ``by`` columns), so this renders for any aggregate_by policy.
            cell = ", ".join(str(record[field]) for field in progress.by)
            line += f"  ->  {cell}: replicas={record['replicas']}"
            if "fct_p99_s" in record:
                line += f" fct_p99_s={record['fct_p99_s']:.6f}"
            line += f" avg_slowdown={record['avg_slowdown_mean']:.3f}"
        print(line, flush=True)

    return follow


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        spec = load_scenario(args.scenario)
    except UnknownNameError as exc:
        print(exc)
        return 2

    overrides = _parse_set_overrides(args.set or [])
    if args.flows is not None:
        overrides["num_flows"] = args.flows

    # Overriding a field the scenario sweeps as its row axis would make every
    # row run the same simulation while keeping its distinct label -- warn.
    swept = {key for row in (spec.rows or {}).values() for key in row}
    collapsed = sorted(swept & set(overrides))
    if collapsed:
        print(f"warning: override of {', '.join(collapsed)} collapses "
              f"{spec.name}'s row sweep -- every row now runs the same value")
    # Names define aggregation cells; forcing one name onto >1 cell would
    # pool every scheme's replicas into a single meaningless aggregate.
    if "name" in overrides and len(spec.configs()) > 1:
        print("warning: --set name=... gives every cell the same name, so "
              "the per-cell aggregate table pools all of them together")

    if args.quick and args.seeds is not None:
        raise SystemExit("--quick (seed 1 only) and --seeds are mutually exclusive")
    seeds: Optional[int] = 1 if args.quick else args.seeds
    cache = None if args.no_cache else args.cache

    backend = args.backend
    if backend == "queue":
        from repro.experiments.queue import QueueBackend

        queue_dir = args.queue_dir or f".repro-queue/{spec.name}"
        backend = QueueBackend(queue_dir, workers=args.workers)
        print(f"{spec.name}: queue backend at {queue_dir} "
              f"(add workers anywhere with: python -m repro worker {queue_dir})")
    elif args.queue_dir:
        raise SystemExit("--queue-dir only applies with --backend queue")

    progress = _make_follow_printer(spec) if args.follow else None
    sweep = spec.sweep(
        seeds=seeds, workers=args.workers, cache=cache,
        backend=backend, progress=progress, **overrides,
    )

    executed = sweep.runs_executed
    served = sweep.cache_hits
    print(f"{spec.name}: {len(sweep)} runs "
          f"({executed} simulated, {served} from cache, "
          f"{sweep.workers_used} worker{'s' if sweep.workers_used != 1 else ''}, "
          f"{sweep.backend} backend)")
    print()
    _print_report(spec, sweep, show_cdf=args.cdf)
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.experiments.queue import TaskQueue, default_worker_id, run_worker

    queue = TaskQueue(args.queue_dir, lease_timeout_s=args.lease_timeout)
    worker_id = default_worker_id()
    counts = queue.counts()
    print(f"worker {worker_id} draining {queue.directory} "
          f"(tasks={counts['tasks']} leases={counts['leases']} "
          f"parts={counts['parts']})", flush=True)
    executed = run_worker(
        queue,
        cache=args.cache,
        worker_id=worker_id,
        poll_interval_s=args.poll,
        drain=args.drain,
        max_tasks=args.max_tasks,
    )
    print(f"worker {worker_id} done: {executed} cell(s) executed; "
          f"spool now {queue.counts()}")
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    # The same entries (and formatter) back GET /scenarios on the results
    # service, so the CLI and HTTP catalogs cannot drift.
    from repro.serve.catalog import catalog_entries, format_catalog

    print(format_catalog(catalog_entries()))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.server import run_from_args

    return run_from_args(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run registered experiment scenarios end-to-end "
        "(sweep -> aggregate -> report).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one scenario and print its report")
    run.add_argument("scenario", help="registered scenario name (see: python -m repro list)")
    run.add_argument("--seeds", type=int, default=None, metavar="N",
                     help="run seeds 1..N per cell (default: the spec's own seed axis)")
    run.add_argument("--workers", type=int, default=None, metavar="N",
                     help="worker processes (default: auto; 1 = serial)")
    run.add_argument("--cache", default=None, metavar="DIR",
                     help="serve/store results in this sweep-cache directory")
    run.add_argument("--no-cache", action="store_true",
                     help="force fresh simulations even if --cache is set")
    run.add_argument("--flows", type=int, default=None, metavar="N",
                     help="override num_flows for every cell (quick smoke runs)")
    run.add_argument("--set", action="append", metavar="KEY=VALUE",
                     help="override any ExperimentConfig field for every cell "
                          "(repeatable; value parsed as JSON when possible)")
    run.add_argument("--cdf", action="store_true",
                     help="also print single-packet latency tail CDFs")
    run.add_argument("--quick", action="store_true",
                     help="seed 1 only (bypass the scenario's seed axis "
                          "for fast interactive runs)")
    run.add_argument("--backend", default=None, metavar="NAME",
                     help="execution backend: serial, process, or queue "
                          "(default: process/serial per --workers)")
    run.add_argument("--queue-dir", default=None, metavar="DIR",
                     help="queue directory for --backend queue "
                          "(default: .repro-queue/<scenario>)")
    run.add_argument("--follow", action="store_true",
                     help="stream partial per-cell aggregates as results land")
    run.set_defaults(func=_cmd_run)

    worker = sub.add_parser(
        "worker",
        help="lease and execute sweep tasks from a queue directory",
        description="Drain a queue-backend sweep: claim fingerprint-named "
        "task files, run each through the shared result cache, and publish "
        "durable ResultRow part-files.  Start as many of these as you like, "
        "on any machine that sees the directory.",
    )
    worker.add_argument("queue_dir", help="the sweep's queue directory")
    worker.add_argument("--cache", default=None, metavar="DIR",
                        help="result cache directory (default: <queue-dir>/cache)")
    worker.add_argument("--poll", type=float, default=0.5, metavar="SECONDS",
                        help="idle re-poll interval (default: 0.5)")
    worker.add_argument("--drain", action="store_true",
                        help="exit once no pending tasks remain "
                             "(default: keep serving new tasks forever)")
    worker.add_argument("--max-tasks", type=int, default=None, metavar="N",
                        help="exit after executing N cells")
    worker.add_argument("--lease-timeout", type=float, default=600.0,
                        metavar="SECONDS",
                        help="reclaim another worker's lease only after its "
                             "heartbeat file (touched every --poll seconds "
                             "while the cell simulates) has been silent this "
                             "long -- a live worker is never preempted, "
                             "however slow its cell (default: 600)")
    worker.set_defaults(func=_cmd_worker)

    lst = sub.add_parser("list", help="list registered scenarios")
    lst.set_defaults(func=_cmd_list)

    from repro.serve.server import add_serve_arguments

    serve = sub.add_parser(
        "serve",
        help="serve warm sweep-cache results over HTTP",
        description="Long-lived stdlib-http.server results service over a "
        "warm sweep cache: GET /scenarios (catalog), "
        "/scenarios/<name>/aggregate, /scenarios/<name>/cdf, "
        "/cells/<fingerprint>, and -- with --queue-dir -- live "
        "/scenarios/<name>/follow streams over a draining work queue.  "
        "Append ?format=text for the offline CLIs' byte-identical text "
        "renderings.  The read path never simulates.",
    )
    add_serve_arguments(serve)
    serve.set_defaults(func=_cmd_serve)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    # Import REPRO_PLUGINS modules before touching any registry, so custom
    # scenarios/components registered by plugins resolve by name in the CLI
    # (worker processes import the same modules via the sweep layer).
    from repro.experiments.sweep import import_plugins

    import_plugins()
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
