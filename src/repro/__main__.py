"""Command-line entry point: ``python -m repro``.

Subcommands
-----------

``run <scenario>``
    Resolve a registered scenario by name, sweep every cell (optionally over
    seed replicas and worker processes, served from a disk cache), and print
    the per-replica metric table, the per-cell aggregate table (means with
    95% confidence intervals, pooled tail percentiles) and, with ``--cdf``,
    Figure 8-style tail CDFs.

``list``
    Show every registered scenario with its description and shape.

Examples::

    python -m repro run fig1
    python -m repro run fig8 --seeds 3 --workers 4 --cache .sweep-cache/fig8 --cdf
    python -m repro run fig1 --flows 60 --set target_load=0.9
    python -m repro list

(``--set`` applies to *every* cell; setting a field a scenario sweeps as its
row axis would collapse the sweep, so the CLI warns when that happens.)
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Dict, List, Optional, Sequence

from repro.api import (
    SweepResult,
    format_aggregate_table,
    format_incast_table,
    format_metric_table,
    format_tail_cdf,
    list_scenarios,
    load_scenario,
)
from repro.experiments.spec import ScenarioSpec
from repro.registry import UnknownNameError


def _parse_set_overrides(pairs: Sequence[str]) -> Dict[str, Any]:
    """``--set key=value`` pairs; values parse as JSON when possible, so
    ``--set target_load=0.9 --set workload='"uniform"'`` and bare strings
    (``--set workload=uniform``) both work."""
    overrides: Dict[str, Any] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--set expects key=value, got {pair!r}")
        try:
            overrides[key] = json.loads(raw)
        except json.JSONDecodeError:
            overrides[key] = raw
    return overrides


def _print_report(spec: ScenarioSpec, sweep: SweepResult, show_cdf: bool) -> None:
    print(format_metric_table(f"{spec.name}: per-run metrics", sweep.rows))
    if any(row.incast_rct_s is not None for row in sweep.rows.values()):
        print()
        print(format_incast_table(f"{spec.name}: incast", sweep.rows))
    if len(sweep.rows) > len(spec.variants) * len(spec.row_labels() or (None,)):
        # Seed replicas present: fold them into per-cell aggregates.
        print()
        print(f"=== {spec.name}: per-cell aggregates over seed replicas ===")
        print(format_aggregate_table(spec.aggregate(sweep), label_keys=spec.aggregate_by))
    if show_cdf:
        for label, row in sweep.rows.items():
            digest = row.single_packet_distribution
            if digest is None or not digest.count:
                continue
            print()
            print(format_tail_cdf(
                digest,
                title=f"{label}: single-packet latency tail ({digest.count} msgs)",
            ))


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        spec = load_scenario(args.scenario)
    except UnknownNameError as exc:
        print(exc)
        return 2

    overrides = _parse_set_overrides(args.set or [])
    if args.flows is not None:
        overrides["num_flows"] = args.flows

    # Overriding a field the scenario sweeps as its row axis would make every
    # row run the same simulation while keeping its distinct label -- warn.
    swept = {key for row in (spec.rows or {}).values() for key in row}
    collapsed = sorted(swept & set(overrides))
    if collapsed:
        print(f"warning: override of {', '.join(collapsed)} collapses "
              f"{spec.name}'s row sweep -- every row now runs the same value")
    # Names define aggregation cells; forcing one name onto >1 cell would
    # pool every scheme's replicas into a single meaningless aggregate.
    if "name" in overrides and len(spec.configs()) > 1:
        print("warning: --set name=... gives every cell the same name, so "
              "the per-cell aggregate table pools all of them together")

    seeds: Optional[int] = args.seeds
    cache = None if args.no_cache else args.cache
    sweep = spec.sweep(seeds=seeds, workers=args.workers, cache=cache, **overrides)

    executed = sweep.runs_executed
    served = sweep.cache_hits
    print(f"{spec.name}: {len(sweep)} runs "
          f"({executed} simulated, {served} from cache, "
          f"{sweep.workers_used} worker{'s' if sweep.workers_used != 1 else ''})")
    print()
    _print_report(spec, sweep, show_cdf=args.cdf)
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    names = list_scenarios()
    width = max(len(name) for name in names)
    for name in names:
        spec = load_scenario(name)
        shape = f"{len(spec.variants)} variants"
        if spec.rows:
            shape += f" x {len(spec.rows)} rows"
        if spec.seeds:
            shape += f", seeds {list(spec.seeds)}"
        print(f"{name:<{width}}  {shape:<28}  {spec.description}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run registered experiment scenarios end-to-end "
        "(sweep -> aggregate -> report).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one scenario and print its report")
    run.add_argument("scenario", help="registered scenario name (see: python -m repro list)")
    run.add_argument("--seeds", type=int, default=None, metavar="N",
                     help="run seeds 1..N per cell (default: the spec's own seed axis)")
    run.add_argument("--workers", type=int, default=None, metavar="N",
                     help="worker processes (default: auto; 1 = serial)")
    run.add_argument("--cache", default=None, metavar="DIR",
                     help="serve/store results in this sweep-cache directory")
    run.add_argument("--no-cache", action="store_true",
                     help="force fresh simulations even if --cache is set")
    run.add_argument("--flows", type=int, default=None, metavar="N",
                     help="override num_flows for every cell (quick smoke runs)")
    run.add_argument("--set", action="append", metavar="KEY=VALUE",
                     help="override any ExperimentConfig field for every cell "
                          "(repeatable; value parsed as JSON when possible)")
    run.add_argument("--cdf", action="store_true",
                     help="also print single-packet latency tail CDFs")
    run.set_defaults(func=_cmd_run)

    lst = sub.add_parser("list", help="list registered scenarios")
    lst.set_defaults(func=_cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    # Import REPRO_PLUGINS modules before touching any registry, so custom
    # scenarios/components registered by plugins resolve by name in the CLI
    # (worker processes import the same modules via the sweep layer).
    from repro.experiments.sweep import import_plugins

    import_plugins()
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
